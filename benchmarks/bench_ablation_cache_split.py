"""Ablation: the unquantified core/cache energy split in §5.5.

The paper pins 80 % of baseline energy on memory but never says how the
remaining 20 % splits between core and LLC; our model defaults to 5 %
LLC. This ablation sweeps the split and shows Finding #8's categorical
conclusions do not depend on it.
"""

from __future__ import annotations

from repro.cache.hierarchy import CachedProcessor, MemoryBoundWorkload
from repro.cache.llc_study import llc_sweep
from repro.core.classify import Sustainability
from repro.report.table import format_table

CACHE_SHARES = (0.0, 0.025, 0.05, 0.1, 0.2)


def sweep_split():
    rows = []
    for share in CACHE_SHARES:
        template = CachedProcessor(
            llc_size_mb=1.0,
            workload=MemoryBoundWorkload(cache_energy_share=share),
        )
        emb = llc_sweep(0.8, template=template)
        op = llc_sweep(0.2, template=template)
        rows.append(
            (
                share,
                emb[-1].category,  # 16 MB, embodied-dominated
                op[1].category,  # 2 MB, operational-dominated
                op[-1].category,  # 16 MB, operational-dominated
            )
        )
    return rows


def test_cache_split_ablation(benchmark, emit):
    rows = benchmark(sweep_split)
    emit(
        format_table(
            [
                "LLC energy share @1MB",
                "16MB emb-dom",
                "2MB op-dom",
                "16MB op-dom",
            ],
            [[s, a.value, b.value, c.value] for s, a, b, c in rows],
            title="\n=== ablation: core/cache energy split (paper leaves it open)",
        )
    )
    for _, emb16, op2, op16 in rows:
        assert emb16 is Sustainability.LESS
        assert op2 is Sustainability.WEAK
        assert op16 is Sustainability.LESS
