"""Ablation/extension: Hill-Marty's dynamic multicore under FOCAL.

The paper analyzes symmetric (§5.1) and asymmetric (§5.2) multicores.
Hill & Marty's third organization — the dynamic multicore — maximizes
speedup but burns all-N power in both phases. This bench quantifies
where it lands versus the symmetric design: always worse on fixed-time
power; on fixed-work it only pays at large N (32 BCEs: weakly
sustainable) where the serial-phase speedup outweighs the symmetric
chip's idle leakage — at 8 BCEs it is simply less sustainable.
"""

from __future__ import annotations

from repro.amdahl.dynamic import DynamicMulticore
from repro.amdahl.symmetric import SymmetricMulticore
from repro.core.classify import Sustainability, classify
from repro.report.table import format_table

CONFIGS = [(n, f) for n in (8, 16, 32) for f in (0.5, 0.8, 0.95)]


def sweep_dynamic():
    rows = []
    for n, f in CONFIGS:
        dyn = DynamicMulticore(n, f).design_point()
        sym = SymmetricMulticore(n, f).design_point()
        verdict = classify(dyn, sym, 0.5)
        rows.append(
            (
                n,
                f,
                dyn.perf / sym.perf,
                verdict.ncf_fixed_work,
                verdict.ncf_fixed_time,
                verdict.category,
            )
        )
    return rows


def test_dynamic_multicore_ablation(benchmark, emit):
    rows = benchmark(sweep_dynamic)
    emit(
        format_table(
            ["BCEs", "f", "perf vs sym", "NCF_fw", "NCF_ft", "category"],
            [[n, f, s, fw, ft, c.value] for n, f, s, fw, ft, c in rows],
            title="\n=== extension: dynamic multicore vs symmetric (alpha=0.5)",
        )
    )
    for n, f, speed, ncf_fw, ncf_ft, category in rows:
        assert speed >= 1.0 - 1e-9  # never slower
        assert ncf_ft > 1.0  # always pays in power
        assert category in {Sustainability.WEAK, Sustainability.LESS}
    # Only at large N does the fused core's serial-phase saving beat
    # the leakage the symmetric chip spends idling 31 cores: dynamic is
    # weakly sustainable at 32 BCEs, less sustainable at 8.
    assert all(r[5] is Sustainability.WEAK for r in rows if r[0] == 32)
    assert all(r[5] is Sustainability.LESS for r in rows if r[0] == 8)
