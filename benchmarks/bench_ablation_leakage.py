"""Ablation: how the paper's multicore conclusions depend on gamma.

The paper fixes idle-core leakage at gamma = 0.2. This ablation sweeps
gamma and checks which Figure 3 conclusions are gamma-robust:

* Finding #1 (multicore strongly sustainable vs equal-area single core)
  holds for every gamma < 1;
* Finding #2's fixed-work reduction from parallelizing software shrinks
  as gamma -> 0 (with no leakage there is nothing for parallelism to
  save under fixed-work) — the finding is leakage-driven.
"""

from __future__ import annotations

from repro.amdahl.pollack import big_core_design
from repro.amdahl.symmetric import SymmetricMulticore
from repro.core.classify import Sustainability, classify
from repro.core.design import DesignPoint
from repro.core.ncf import relative_footprint
from repro.core.scenario import UseScenario
from repro.report.table import format_table

GAMMAS = (0.0, 0.1, 0.2, 0.4, 0.8)
BASELINE = DesignPoint.baseline("1-BCE single-core")


def sweep_gamma():
    rows = []
    for gamma in GAMMAS:
        multicore = SymmetricMulticore(32, 0.95, leakage=gamma).design_point()
        single = big_core_design(32)
        category = classify(multicore, single, 0.5).category
        high = SymmetricMulticore(32, 0.95, leakage=gamma).design_point()
        low = SymmetricMulticore(32, 0.5, leakage=gamma).design_point()
        fw_reduction = 1.0 - relative_footprint(
            high, low, BASELINE, UseScenario.FIXED_WORK, 0.2
        )
        rows.append((gamma, category, fw_reduction))
    return rows


def test_leakage_ablation(benchmark, emit):
    rows = benchmark(sweep_gamma)
    emit(
        format_table(
            ["gamma", "multicore vs single-core", "F2 fixed-work reduction"],
            [[g, c.value, r] for g, c, r in rows],
            title="\n=== ablation: idle-core leakage gamma (paper uses 0.2)",
        )
    )
    # Finding #1 is gamma-robust.
    assert all(c is Sustainability.STRONG for _, c, _ in rows)
    # Finding #2's fixed-work saving grows with gamma and vanishes at 0.
    reductions = [r for _, _, r in rows]
    assert reductions == sorted(reductions)
    assert abs(reductions[0]) < 1e-9
