"""Benchmark: FOCAL-vs-ACT directional agreement (paper §3.5).

Runs the simplified bottom-up ACT model against FOCAL over a grid of
chip pairs (area and power ratios spanning 4x each way) and reports the
directional-agreement rate and the median relative gap — the
quantitative version of the paper's claim that FOCAL complements ACT.
"""

from __future__ import annotations

from repro.act.compare import compare_focal_vs_act
from repro.act.model import ActChipSpec
from repro.report.table import format_table

AREAS = (100.0, 200.0, 400.0, 800.0)
POWERS = (5.0, 20.0, 80.0, 320.0)
BASELINE = ActChipSpec("baseline", die_area_mm2=300.0, avg_power_w=60.0, node="7nm")


def sweep_agreement():
    reports = []
    for area in AREAS:
        for power in POWERS:
            spec = ActChipSpec(
                f"{area:g}mm2/{power:g}W", die_area_mm2=area, avg_power_w=power, node="7nm"
            )
            reports.append(compare_focal_vs_act(spec, BASELINE))
    return reports


def test_act_agreement(benchmark, emit):
    reports = benchmark(sweep_agreement)
    rows = [
        [r.design, r.act_ratio, r.focal_ncf, r.relative_gap, r.agree]
        for r in reports
    ]
    emit(
        format_table(
            ["design vs 300mm2/60W", "ACT ratio", "FOCAL NCF", "rel gap", "agree"],
            rows,
            title="\n=== FOCAL vs simplified ACT (alpha derived from ACT's split)",
        )
    )
    agreement = sum(r.agree for r in reports) / len(reports)
    gaps = sorted(r.relative_gap for r in reports)
    median_gap = gaps[len(gaps) // 2]
    emit(f"directional agreement: {agreement:.0%}; median relative gap: {median_gap:.1%}")
    assert agreement == 1.0
    assert median_gap < 0.10
