"""Extension benchmark: chiplet partitioning of a reticle-scale die.

The performance-per-wafer analysis of Zhang et al. (the paper's ref.
[52]) applied to an 800 mm^2 GPU: sweep 1-8 chiplets and report yield,
systems per wafer, embodied footprint per system, and performance per
wafer under the Murphy yield model.
"""

from __future__ import annotations

from repro.core.errors import DomainError
from repro.multichip.chiplets import ChipletPartition, best_partition, evaluate_partition
from repro.report.table import format_table

LOGIC_AREA = 800.0


def sweep_partitions():
    outcomes = []
    for k in range(1, 9):
        try:
            outcomes.append(evaluate_partition(ChipletPartition(k, LOGIC_AREA)))
        except DomainError:
            continue
    return outcomes


def test_chiplets(benchmark, emit):
    outcomes = benchmark(sweep_partitions)
    rows = [
        [
            o.partition.chiplets,
            o.partition.die_area_mm2,
            o.die_yield,
            o.systems_per_wafer,
            o.embodied_per_system * 1000,  # per-mil of a wafer
            o.performance,
            o.perf_per_wafer,
        ]
        for o in outcomes
    ]
    emit(
        format_table(
            [
                "chiplets",
                "die mm2",
                "yield",
                "systems/wafer",
                "embodied (wafer/1000)",
                "perf",
                "perf/wafer",
            ],
            rows,
            title=f"\n=== chiplet partitioning of a {LOGIC_AREA:g} mm2 GPU (Murphy, D0=0.09)",
        )
    )
    best = best_partition(LOGIC_AREA, max_chiplets=8)
    emit(
        f"best partition: {best.partition.chiplets} chiplets "
        f"({best.perf_per_wafer:.1f} perf/wafer vs "
        f"{outcomes[0].perf_per_wafer:.1f} monolithic)"
    )
    assert best.partition.chiplets > 1
    # Yield improves monotonically with splitting.
    yields = [o.die_yield for o in outcomes]
    assert yields == sorted(yields)
