"""Benchmark: scalar vs vectorized DSE engine (tracked trajectory).

Times the paths the batch engine replaces —

* a ~10k-point grid sweep (``Explorer.explore`` + category histogram)
  against the :class:`~repro.dse.batch.BatchExplorer` re-sweep path
  (warm factory cache + vectorized NCF/classify kernels): ``subgrid``
  pins, tornado runs and chart re-draws revisit the same grid points
  over and over;
* the same sweep cold (empty cache) through a
  :class:`~repro.dse.factories.SymmetricMulticoreFactory`, the
  columnar path that never constructs per-point Python objects (the
  substrate-kernel benchmark, ``bench_substrate.py``, gates this one
  at >= 5x);
* 100k-sample Monte-Carlo verdict classification, scalar
  per-sample loop vs :func:`~repro.core.batch.classify_arrays`;
* the parallel-columnar engine at its ``workers="auto"`` operating
  point against the single-process columnar path on a 100k-point grid
  through a deliberately compute-heavy iterative fixed-point factory,
  with an exact-parity gate (``max_abs_ncf_diff == 0.0``, identical
  category counts and cache contents) and a **never-slower** speedup
  gate enforced on every host: >= 1.0 anywhere, >= 2.0 on hosts with
  at least 4 CPUs. A forced ``workers=4`` pool is timed alongside as
  an advisory figure, and serial/static/work-stealing schedules are
  cross-checked for identical result, cache and checkpoint bytes;
* the persistent result store (``repro.dse.store``): a warm re-sweep
  of a 20k-point compute-heavy grid served entirely from disk against
  the cold columnar run that populated it (>= 10x gate, enforced on
  every host — disk reads beat a compute-bound kernel everywhere),
  plus a delta sweep over a 50%-overlapping grid that must evaluate
  exactly the new points and match a full cold sweep bit-for-bit.

Every batch test asserts numerical parity with its scalar twin
(bit-identical NCFs, identical verdict counts) before timing means are
recorded, and the module writes ``BENCH_dse.json`` at the repo root so
CI can archive the perf trajectory from this PR onward.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.batch import category_counts, classify_arrays
from repro.core.classify import Sustainability, classify_values
from repro.core.design import DesignPoint
from repro.core.scenario import EMBODIED_DOMINATED
from repro.dse.batch import BatchExplorer, FactoryCache
from repro.dse.explorer import Explorer
from repro.dse.factories import IterativeFixedPointFactory
from repro.dse.grid import ParameterGrid, linear_range
from repro.dse.montecarlo import CategoryProbabilities, sample_verdicts

GRID = ParameterGrid(
    {
        "cores": list(range(1, 101)),
        "f": linear_range(0.50, 0.99, 100),
    }
)  # 10,000 points
MC_SAMPLES = 100_000
BASELINE = DesignPoint.baseline("1-BCE single core")
#: NCF crosses 1 inside the alpha band -> verdicts actually vary.
EDGE_DESIGN = DesignPoint("edge", area=1.1, perf=1.0, power=0.6)

#: 100,000 points for the parallel-columnar operating point.
PARALLEL_GRID = ParameterGrid(
    {
        "cores": list(range(1, 401)),
        "f": linear_range(0.50, 0.99, 250),
    }
)
PARALLEL_WORKERS = 4
#: Never-slower, always enforced: the ``workers="auto"`` operating
#: point may not lose to ``workers=0`` on any host, and on real
#: multicore (>= 4 CPUs) it must win by at least 2x.
PARALLEL_SPEEDUP_GATE_MULTICORE = 2.0
FIXED_POINT_ITERS = 2500
#: Smaller grid for the schedule byte-identity cross-check (three full
#: sweeps; identity is geometry-independent, so keep them cheap).
SCHEDULE_GRID = ParameterGrid(
    {
        "cores": list(range(1, 101)),
        "f": linear_range(0.50, 0.99, 100),
    }
)
SCHEDULE_ITERS = 500

#: Store operating point: 20,000 points through a kernel heavy enough
#: (~60k fixed-point iterations per chunk) that the warm path's
#: irreducible costs — object decode + DesignPoint materialization —
#: stay far below a tenth of the cold compute.
STORE_CORES = list(range(1, 201))
STORE_FRACTIONS = linear_range(0.50, 0.99, 100)
STORE_GRID = ParameterGrid({"cores": STORE_CORES, "f": STORE_FRACTIONS})
#: 50 overlapping fractions from the base grid + 50 new ones: the
#: delta-sweep grid shares exactly half its points with STORE_GRID.
DELTA_FRACTIONS = STORE_FRACTIONS[50:] + linear_range(0.25, 0.49, 50)
DELTA_GRID = ParameterGrid({"cores": STORE_CORES, "f": DELTA_FRACTIONS})
STORE_ITERS = 60_000
STORE_WARM_SPEEDUP_GATE = 10.0

TRAJECTORY_PATH = Path(__file__).resolve().parent.parent / "BENCH_dse.json"

_RESULTS: dict[str, object] = {
    "grid_points": len(GRID),
    "mc_samples": MC_SAMPLES,
}


def multicore_factory(params):
    from repro.amdahl.symmetric import SymmetricMulticore

    return SymmetricMulticore(
        cores=params["cores"], parallel_fraction=params["f"]
    ).design_point()


def scalar_sweep() -> dict[Sustainability, int]:
    """The status-quo path: scalar explore + per-result classification."""
    explorer = Explorer(
        factory=multicore_factory, baseline=BASELINE, weight=EMBODIED_DOMINATED
    )
    return Explorer.count_categories(explorer.explore(GRID))


def scalar_classify_counts(ncf_fw, ncf_ft) -> dict[Sustainability, int]:
    """The pre-vectorization Monte-Carlo loop: one ``classify_values``
    call per sample."""
    counts = {category: 0 for category in Sustainability}
    for fw, ft in zip(ncf_fw, ncf_ft):
        counts[classify_values(float(fw), float(ft))] += 1
    return counts


def scalar_sample_verdicts() -> CategoryProbabilities:
    """``sample_verdicts`` as implemented before the batch engine."""
    rng = np.random.default_rng(0)
    lo, hi = EMBODIED_DOMINATED.band
    alphas = rng.uniform(lo, hi, size=MC_SAMPLES)
    area = EDGE_DESIGN.area_ratio(BASELINE)
    energy = EDGE_DESIGN.energy_ratio(BASELINE)
    power = EDGE_DESIGN.power_ratio(BASELINE)
    ncf_fw = alphas * area + (1.0 - alphas) * energy
    ncf_ft = alphas * area + (1.0 - alphas) * power
    counts = scalar_classify_counts(ncf_fw, ncf_ft)
    return CategoryProbabilities(
        samples=MC_SAMPLES,
        strong=counts[Sustainability.STRONG] / MC_SAMPLES,
        weak=counts[Sustainability.WEAK] / MC_SAMPLES,
        less=counts[Sustainability.LESS] / MC_SAMPLES,
        neutral=counts[Sustainability.NEUTRAL] / MC_SAMPLES,
    )


def _mc_ncf_arrays() -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(0)
    lo, hi = EMBODIED_DOMINATED.band
    alphas = rng.uniform(lo, hi, size=MC_SAMPLES)
    area = EDGE_DESIGN.area_ratio(BASELINE)
    energy = EDGE_DESIGN.energy_ratio(BASELINE)
    power = EDGE_DESIGN.power_ratio(BASELINE)
    return (
        alphas * area + (1.0 - alphas) * energy,
        alphas * area + (1.0 - alphas) * power,
    )


def _record_mean(key: str, benchmark, fallback) -> None:
    """Store the benchmark's mean runtime; time *fallback* by hand when
    the fixture did not collect stats (``--benchmark-disable`` runs)."""
    try:
        mean = float(benchmark.stats.stats.mean)
    except (AttributeError, TypeError):
        start = time.perf_counter()
        fallback()
        mean = time.perf_counter() - start
    _RESULTS[key] = mean


@pytest.fixture(scope="module", autouse=True)
def write_trajectory():
    """Emit BENCH_dse.json once every benchmark in the module has run."""
    yield
    for pair, out in (
        (("sweep_scalar_s", "sweep_batch_s"), "sweep_speedup"),
        (("sweep_scalar_s", "sweep_cold_batch_s"), "sweep_cold_speedup"),
        (("mc_scalar_s", "mc_batch_s"), "mc_speedup"),
        (("mc_scalar_s", "mc_end_to_end_s"), "mc_end_to_end_speedup"),
    ):
        slow, fast = pair
        if slow in _RESULTS and fast in _RESULTS:
            _RESULTS[out] = float(_RESULTS[slow]) / float(_RESULTS[fast])
    TRAJECTORY_PATH.write_text(json.dumps(_RESULTS, indent=2, default=str) + "\n")


# ----------------------------------------------------------------------
# Grid sweep: scalar Explorer vs BatchExplorer re-sweep
# ----------------------------------------------------------------------
def test_grid_sweep_scalar(benchmark, emit):
    counts = benchmark(scalar_sweep)
    _record_mean("sweep_scalar_s", benchmark, scalar_sweep)
    assert sum(counts.values()) == len(GRID)
    emit(f"scalar sweep: {len(GRID)} points -> {len(counts)} categories")


def test_grid_sweep_batch(benchmark, emit):
    explorer = BatchExplorer(
        factory=multicore_factory,
        baseline=BASELINE,
        weight=EMBODIED_DOMINATED,
        cache=FactoryCache(multicore_factory),
    )
    warm = explorer.explore_arrays(GRID)  # first pass fills the cache

    # Parity gate: byte-identical results and identical verdict counts
    # against the scalar engine before any timing is recorded.
    scalar_results = Explorer(
        factory=multicore_factory, baseline=BASELINE, weight=EMBODIED_DOMINATED
    ).explore(GRID)
    batch_results = warm.results()
    assert batch_results == scalar_results
    max_diff = max(
        max(abs(a.ncf_fixed_work - b.ncf_fixed_work) for a, b in zip(batch_results, scalar_results)),
        max(abs(a.ncf_fixed_time - b.ncf_fixed_time) for a, b in zip(batch_results, scalar_results)),
    )
    assert max_diff <= 1e-12
    assert warm.category_counts() == Explorer.count_categories(scalar_results)
    _RESULTS["sweep_max_abs_ncf_diff"] = max_diff
    _RESULTS["sweep_category_counts"] = {
        category.value: count for category, count in warm.category_counts().items()
    }

    run = lambda: explorer.count_categories(GRID)
    counts = benchmark(run)
    _record_mean("sweep_batch_s", benchmark, run)
    assert sum(counts.values()) == len(GRID)
    emit(
        f"batch re-sweep: {len(GRID)} points, cache "
        f"{explorer.cache.hits} hits / {explorer.cache.misses} misses"
    )


def test_grid_sweep_cold_batch(benchmark, emit):
    """The cold path: empty cache, vector factory, no per-point objects."""
    from repro.dse.factories import SymmetricMulticoreFactory

    factory = SymmetricMulticoreFactory()

    def run():
        explorer = BatchExplorer(
            factory=factory,
            baseline=BASELINE,
            weight=EMBODIED_DOMINATED,
            cache=FactoryCache(factory),
        )
        return explorer.count_categories(GRID)

    counts = benchmark(run)
    _record_mean("sweep_cold_batch_s", benchmark, run)
    assert counts == scalar_sweep()  # identical verdict histogram
    emit(f"cold batch sweep: {len(GRID)} points, empty cache, columnar factory")


# ----------------------------------------------------------------------
# Monte-Carlo verdicts: scalar classify loop vs classify_arrays
# ----------------------------------------------------------------------
def test_montecarlo_scalar(benchmark, emit):
    ncf_fw, ncf_ft = _mc_ncf_arrays()
    run = lambda: scalar_classify_counts(ncf_fw, ncf_ft)
    counts = benchmark(run)
    _record_mean("mc_scalar_s", benchmark, run)
    assert sum(counts.values()) == MC_SAMPLES
    emit(f"scalar MC classify: {MC_SAMPLES} samples")


def test_montecarlo_batch(benchmark, emit):
    ncf_fw, ncf_ft = _mc_ncf_arrays()
    assert category_counts(classify_arrays(ncf_fw, ncf_ft)) == scalar_classify_counts(
        ncf_fw, ncf_ft
    )
    run = lambda: category_counts(classify_arrays(ncf_fw, ncf_ft))
    counts = benchmark(run)
    _record_mean("mc_batch_s", benchmark, run)
    assert sum(counts.values()) == MC_SAMPLES
    _RESULTS["mc_category_counts"] = {
        category.value: count for category, count in counts.items()
    }
    emit(f"batch MC classify: {MC_SAMPLES} samples")


def test_montecarlo_end_to_end(benchmark, emit):
    """The full (rewritten) sampler, including RNG and NCF arrays."""
    run = lambda: sample_verdicts(
        EDGE_DESIGN, BASELINE, EMBODIED_DOMINATED, samples=MC_SAMPLES, seed=0
    )
    probs = benchmark(run)
    _record_mean("mc_end_to_end_s", benchmark, run)
    assert probs == scalar_sample_verdicts()  # byte-identical verdict mix
    emit(f"sample_verdicts end-to-end: strong={probs.strong:.3f}")


# ----------------------------------------------------------------------
# Parallel-columnar engine: auto operating point + forced pool advisory
# ----------------------------------------------------------------------
def _timed_parallel_sweep(workers, grid=PARALLEL_GRID, iters=FIXED_POINT_ITERS):
    factory = IterativeFixedPointFactory(iters=iters)
    explorer = BatchExplorer(
        factory=factory,
        baseline=BASELINE,
        weight=EMBODIED_DOMINATED,
        cache=FactoryCache(factory),
        chunk_size=4096,
        workers=workers,
    )
    start = time.perf_counter()
    sweep = explorer.explore_arrays(grid)
    return sweep, explorer, time.perf_counter() - start


def _sweep_bytes(sweep) -> tuple:
    return (
        sweep.ncf_fixed_work.tobytes(),
        sweep.ncf_fixed_time.tobytes(),
        sweep.perf.tobytes(),
        sweep.codes.tobytes(),
    )


def test_parallel_columnar_sweep(benchmark, emit):
    """The never-slower gate: ``workers="auto"`` vs ``workers=0``.

    Enforced on **every** host, always. Auto calibrates on the first
    chunk and engages a pool only when dispatch can win; when it
    declines (few CPUs, cheap kernel), the sweep *is* the serial
    columnar path — asserted byte-identical here, so the speedup is
    1.0 by construction, not by luck of the timer. When it engages, the
    measured speedup must clear the tiered gate: >= 1.0 anywhere
    (auto may never lose), >= 2.0 on real multicore (>= 4 CPUs). The
    forced ``workers=4`` pool is also timed as an advisory figure —
    on starved hosts it documents *why* auto declining is correct (this
    is the configuration that once benchmarked at 0.69x on 1 CPU).

    Parity gates — bit-identical NCFs, identical category counts and
    cache contents — are enforced everywhere, for both the auto and the
    forced-pool sweep.
    """
    cpus = os.cpu_count() or 1
    serial_sweep, serial_explorer, serial_s = _timed_parallel_sweep(0)
    assert serial_explorer.last_sweep.mode == "columnar"
    auto_sweep, auto_explorer, auto_s = benchmark.pedantic(
        lambda: _timed_parallel_sweep("auto"), rounds=1, iterations=1
    )
    auto_engine = auto_explorer.last_sweep
    auto_engaged = auto_engine.workers > 0
    assert _sweep_bytes(auto_sweep) == _sweep_bytes(serial_sweep)
    assert dict(auto_explorer.cache._entries) == dict(
        serial_explorer.cache._entries
    )
    # Declined auto runs the exact serial code path: the honest speedup
    # is definitionally 1.0 (byte-equality above is the proof), and
    # timing noise between two identical runs is not a regression.
    speedup = serial_s / auto_s if auto_engaged else 1.0
    gate = PARALLEL_SPEEDUP_GATE_MULTICORE if cpus >= 4 else 1.0

    forced_sweep, forced_explorer, forced_s = _timed_parallel_sweep(
        PARALLEL_WORKERS
    )
    assert forced_explorer.last_sweep.mode == "parallel-columnar"
    max_diff = max(
        float(np.max(np.abs(forced_sweep.ncf_fixed_work - serial_sweep.ncf_fixed_work))),
        float(np.max(np.abs(forced_sweep.ncf_fixed_time - serial_sweep.ncf_fixed_time))),
    )
    counts_equal = (
        forced_sweep.category_counts() == serial_sweep.category_counts()
    )
    cache_equal = dict(forced_explorer.cache._entries) == dict(
        serial_explorer.cache._entries
    )
    _RESULTS.update(
        {
            "parallel_grid_points": len(PARALLEL_GRID),
            "parallel_kernel_iters": FIXED_POINT_ITERS,
            "parallel_cpus": cpus,
            "sweep_columnar_s": serial_s,
            "sweep_auto_s": auto_s,
            "parallel_auto_engaged": auto_engaged,
            "parallel_auto_workers": auto_engine.workers,
            "parallel_speedup": speedup,
            "parallel_speedup_gate": gate,
            "parallel_gate_enforced": True,
            "parallel_max_abs_ncf_diff": max_diff,
            "parallel_category_counts_equal": counts_equal,
            "parallel_cache_entries_equal": cache_equal,
            "parallel_workers": PARALLEL_WORKERS,
            "sweep_parallel_columnar_s": forced_s,
            "parallel_forced_speedup": serial_s / forced_s,
            "parallel_forced_gate_enforced": False,
            "parallel_worker_utilization": forced_explorer.last_sweep.worker_utilization,
            "parallel_shm_bytes": forced_explorer.last_sweep.shm_bytes,
            "parallel_scheduler": forced_explorer.last_sweep.scheduler,
        }
    )
    assert max_diff == 0.0
    assert counts_equal
    assert cache_equal
    assert speedup >= gate, (
        f"auto operating point lost to serial: {speedup:.2f}x < {gate:g}x "
        f"({cpus} CPUs, auto -> {auto_engine.workers or 'serial'})"
    )
    emit(
        f"parallel-columnar auto: {len(PARALLEL_GRID)} points, auto -> "
        f"{auto_engine.workers or 'serial'} on {cpus} CPUs, {speedup:.2f}x "
        f"(gate >= {gate:g}x, enforced); forced {PARALLEL_WORKERS} workers: "
        f"{serial_s / forced_s:.2f}x (advisory)"
    )


def test_parallel_schedule_byte_identity(emit, tmp_path):
    """Serial, static shards and work-stealing shards must be fully
    interchangeable: identical result bytes, identical cache contents,
    identical checkpoint bytes (the fingerprint deliberately excludes
    workers/scheduler/spill, so a checkpoint written under any schedule
    resumes under any other)."""
    runs = {}
    for key, kwargs in (
        ("serial", dict(workers=0)),
        ("static", dict(workers=2, scheduler="static")),
        ("steal", dict(workers=2, scheduler="steal")),
    ):
        factory = IterativeFixedPointFactory(iters=SCHEDULE_ITERS)
        explorer = BatchExplorer(
            factory=factory,
            baseline=BASELINE,
            weight=EMBODIED_DOMINATED,
            cache=FactoryCache(factory),
            chunk_size=2048,
            **kwargs,
        )
        ckpt = tmp_path / f"{key}.ckpt"
        sweep = explorer.explore_arrays(SCHEDULE_GRID, checkpoint=ckpt)
        runs[key] = {
            "bytes": _sweep_bytes(sweep),
            "cache": dict(explorer.cache._entries),
            "ckpt": ckpt.read_bytes(),
        }
    reference = runs["serial"]
    bytes_equal = all(r["bytes"] == reference["bytes"] for r in runs.values())
    cache_equal = all(r["cache"] == reference["cache"] for r in runs.values())
    ckpt_equal = all(r["ckpt"] == reference["ckpt"] for r in runs.values())
    _RESULTS.update(
        {
            "schedule_grid_points": len(SCHEDULE_GRID),
            "schedule_bytes_identical": bytes_equal,
            "schedule_cache_entries_equal": cache_equal,
            "schedule_checkpoint_bytes_equal": ckpt_equal,
        }
    )
    assert bytes_equal
    assert cache_equal
    assert ckpt_equal
    emit(
        f"schedule identity: {len(SCHEDULE_GRID)} points x "
        "{serial, static, steal} -> identical result, cache and "
        "checkpoint bytes"
    )


# ----------------------------------------------------------------------
# Persistent result store: warm re-sweep and delta sweep vs cold
# ----------------------------------------------------------------------
def _store_explorer():
    factory = IterativeFixedPointFactory(iters=STORE_ITERS)
    return BatchExplorer(
        factory=factory,
        baseline=BASELINE,
        weight=EMBODIED_DOMINATED,
        cache=FactoryCache(factory),
        chunk_size=4096,
    )


@pytest.fixture(scope="module")
def populated_store(tmp_path_factory):
    """One timed cold sweep of STORE_GRID into a fresh store; the warm
    and delta benchmarks both read from it."""
    from repro.dse.store import ResultStore

    root = tmp_path_factory.mktemp("result-store")
    store_dir = root / "store"
    cold_ck = root / "cold.ckpt"
    explorer = _store_explorer()
    start = time.perf_counter()
    cold = explorer.explore_arrays(
        STORE_GRID, checkpoint=cold_ck, store=ResultStore(store_dir)
    )
    cold_s = time.perf_counter() - start
    assert explorer.last_sweep.mode == "columnar"
    assert explorer.last_sweep.fresh_points == len(STORE_GRID)
    _RESULTS.update(
        {
            "store_grid_points": len(STORE_GRID),
            "store_kernel_iters": STORE_ITERS,
            "store_cold_s": cold_s,
        }
    )
    return {
        "dir": store_dir,
        "root": root,
        "cold_sweep": cold,
        "cold_s": cold_s,
        "cold_ck": cold_ck,
    }


def test_store_warm_resweep(benchmark, emit, populated_store):
    """A warm re-sweep must be served entirely from the store — zero
    fresh evaluations, byte-identical outputs, byte-identical
    checkpoint — at >= 10x over the cold columnar run. Unlike the pool
    gate this one is enforced on every host: reading a few MB of JSON
    beats a compute-bound kernel regardless of CPU count."""
    from repro.dse.store import ResultStore

    cold = populated_store["cold_sweep"]
    warm_ck = populated_store["root"] / "warm.ckpt"

    def warm_run():
        explorer = _store_explorer()  # fresh cache: nothing memoized
        start = time.perf_counter()
        sweep = explorer.explore_arrays(
            STORE_GRID,
            checkpoint=warm_ck,
            store=ResultStore(populated_store["dir"]),
        )
        return sweep, explorer, time.perf_counter() - start

    warm_sweep, warm_explorer, warm_s = benchmark.pedantic(
        warm_run, rounds=1, iterations=1
    )
    engine = warm_explorer.last_sweep
    speedup = populated_store["cold_s"] / warm_s
    max_diff = max(
        float(np.max(np.abs(warm_sweep.ncf_fixed_work - cold.ncf_fixed_work))),
        float(np.max(np.abs(warm_sweep.ncf_fixed_time - cold.ncf_fixed_time))),
    )
    bytes_identical = (
        warm_sweep.ncf_fixed_work.tobytes() == cold.ncf_fixed_work.tobytes()
        and warm_sweep.ncf_fixed_time.tobytes() == cold.ncf_fixed_time.tobytes()
        and warm_sweep.perf.tobytes() == cold.perf.tobytes()
    )
    counts_equal = warm_sweep.category_counts() == cold.category_counts()
    checkpoint_equal = (
        populated_store["cold_ck"].read_bytes() == warm_ck.read_bytes()
    )
    _RESULTS.update(
        {
            "store_warm_s": warm_s,
            "store_warm_speedup": speedup,
            "store_warm_speedup_gate": STORE_WARM_SPEEDUP_GATE,
            "store_warm_gate_enforced": True,
            "store_warm_fresh_points": engine.fresh_points,
            "store_warm_reuse_ratio": engine.store_reuse_ratio,
            "store_max_abs_ncf_diff": max_diff,
            "store_bytes_identical": bytes_identical,
            "store_category_counts_equal": counts_equal,
            "store_checkpoint_bytes_equal": checkpoint_equal,
        }
    )
    assert engine.store_used
    assert engine.fresh_points == 0
    assert engine.store_points == len(STORE_GRID)
    assert warm_sweep.designs == cold.designs
    assert max_diff == 0.0
    assert bytes_identical
    assert counts_equal
    assert checkpoint_equal
    assert speedup >= STORE_WARM_SPEEDUP_GATE
    emit(
        f"store warm re-sweep: {len(STORE_GRID)} points, {speedup:.1f}x vs "
        f"cold columnar ({engine.store_disk_points} pts from disk, "
        f"{engine.store_memory_points} from memory, gated >= "
        f"{STORE_WARM_SPEEDUP_GATE:g}x)"
    )


def test_store_delta_sweep(emit, populated_store):
    """A 50%-overlapping grid must evaluate exactly the new points —
    counted by the factory-cache miss delta, which store adoptions
    never touch — and match a full cold sweep of the same grid
    bit-for-bit."""
    from repro.dse.store import ResultStore

    expected_fresh = len(STORE_CORES) * (len(DELTA_FRACTIONS) - 50)
    delta_explorer = _store_explorer()
    start = time.perf_counter()
    delta = delta_explorer.explore_arrays(
        DELTA_GRID, store=ResultStore(populated_store["dir"])
    )
    delta_s = time.perf_counter() - start
    engine = delta_explorer.last_sweep

    cold_explorer = _store_explorer()
    cold = cold_explorer.explore_arrays(DELTA_GRID)

    bytes_identical = (
        delta.ncf_fixed_work.tobytes() == cold.ncf_fixed_work.tobytes()
        and delta.ncf_fixed_time.tobytes() == cold.ncf_fixed_time.tobytes()
        and delta.perf.tobytes() == cold.perf.tobytes()
    )
    _RESULTS.update(
        {
            "store_delta_grid_points": len(DELTA_GRID),
            "store_delta_s": delta_s,
            "store_delta_fresh_points": engine.fresh_points,
            "store_delta_expected_fresh": expected_fresh,
            "store_delta_chunks": engine.delta_chunks,
            "store_delta_bytes_identical": bytes_identical,
            "store_delta_category_counts_equal": (
                delta.category_counts() == cold.category_counts()
            ),
        }
    )
    assert engine.store_used
    assert engine.fresh_points == expected_fresh
    assert engine.store_points == len(DELTA_GRID) - expected_fresh
    assert delta.designs == cold.designs
    assert bytes_identical
    assert delta.category_counts() == cold.category_counts()
    emit(
        f"store delta sweep: {len(DELTA_GRID)} points, "
        f"{engine.fresh_points} evaluated fresh (expected {expected_fresh}), "
        f"{engine.store_points} adopted, {engine.delta_chunks} stitched "
        "delta chunks"
    )
