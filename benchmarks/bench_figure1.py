"""Benchmark + reproduction: Figure 1 (embodied footprint vs die size).

Regenerates both yield curves under timing and prints the series the
paper plots, plus the headline shape checks (normalization at 100 mm^2,
Murphy super-linearity).
"""

from __future__ import annotations

from repro.studies.figure1 import figure1


def test_figure1(benchmark, emit_figure, emit):
    figure = benchmark(figure1)
    emit_figure(figure)

    panel = figure.panels[0]
    perfect = panel.series_by_name("perfect yield")
    murphy = panel.series_by_name("Murphy model")
    assert perfect.points[0].y == 1.0
    assert murphy.points[-1].y > perfect.points[-1].y
    emit(
        f"shape check: at 800 mm2 perfect={perfect.points[-1].y:.2f}x, "
        f"murphy={murphy.points[-1].y:.2f}x (paper: ~8x vs ~16-20x)"
    )
