"""Benchmark + reproduction: Figure 2 (scenario illustration).

Conceptual in the paper; reproduced as exact step profiles whose
integrals verify the two proxy identities the caption states.
"""

from __future__ import annotations

from repro.studies.figure2 import DEFAULT_X, DEFAULT_Y, figure2, profile_energy


def test_figure2(benchmark, emit_figure, emit):
    figure = benchmark(figure2)
    emit_figure(figure)

    fixed_work = figure.panel("(a) fixed-work")
    fixed_time = figure.panel("(b) fixed-time")
    x_energy = profile_energy(fixed_work.series_by_name(DEFAULT_X.name))
    y_power = profile_energy(
        fixed_time.series_by_name(f"{DEFAULT_Y.name} (+extra work)")
    )
    emit(
        f"proxy identities: fixed-work area(X) = {x_energy:.3f} = E_X "
        f"({DEFAULT_X.energy:.3f}); fixed-time area(Y) = {y_power:.3f} = P_Y "
        f"({DEFAULT_Y.power:.3f})"
    )
    assert abs(x_energy - DEFAULT_X.energy) < 1e-9
    assert abs(y_power - DEFAULT_Y.power) < 1e-9
