"""Benchmark + reproduction: Figure 3 (symmetric multicore)."""

from __future__ import annotations

from repro.studies.figure3 import figure3


def test_figure3(benchmark, emit_figure, emit):
    figure = benchmark(figure3)
    emit_figure(figure)

    # Finding #1 shape: the 32-BCE f=0.95 multicore sits below the
    # 32-BCE single core in every panel.
    for panel in figure.panels:
        multicore = panel.series_by_name("f=0.95").points[-1]
        single = panel.series_by_name("single-core").points[-1]
        assert multicore.y < single.y
    emit("shape check: multicore below equal-area single core in all panels (Finding #1)")
