"""Benchmark + reproduction: Figure 4 (asymmetric multicore)."""

from __future__ import annotations

from repro.studies.figure4 import figure4


def test_figure4(benchmark, emit_figure, emit):
    figure = benchmark(figure4)
    emit_figure(figure)

    # Finding #4 shape in the operational-dominated panels: asym below
    # sym under fixed-work, above under fixed-time (32 BCEs, f=0.8).
    fw = figure.panel("(c) operational dominated, fixed-work")
    ft = figure.panel("(d) operational dominated, fixed-time")
    assert (
        fw.series_by_name("asym 0.8").points[-1].y
        < fw.series_by_name("sym 0.8").points[-1].y
    )
    assert (
        ft.series_by_name("asym 0.8").points[-1].y
        > ft.series_by_name("sym 0.8").points[-1].y
    )
    emit("shape check: heterogeneity weakly sustainable at 32 BCEs f=0.8 (Finding #4)")
