"""Benchmark + reproduction: Figure 5 (acceleration, dark silicon)."""

from __future__ import annotations

from repro.accel.accelerator import HAMEED_H264, breakeven_utilization
from repro.accel.dark_silicon import PAPER_DARK_SILICON
from repro.core.scenario import UseScenario
from repro.studies.figure5 import figure5


def test_figure5(benchmark, emit_figure, emit):
    figure = benchmark(figure5)
    emit_figure(figure)

    accel_breakeven = breakeven_utilization(HAMEED_H264, 0.8, UseScenario.FIXED_WORK)
    dark_breakeven = PAPER_DARK_SILICON.breakeven(0.2)
    emit(
        f"crossovers: H.264 breakeven @ alpha=0.8 t*={accel_breakeven:.3f} "
        f"(paper: >0.30); dark silicon @ alpha=0.2 t*={dark_breakeven:.3f} "
        "(paper: >0.50)"
    )
    assert 0.2 < accel_breakeven < 0.35
    assert abs(dark_breakeven - 0.5) < 0.01
