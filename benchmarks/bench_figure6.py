"""Benchmark + reproduction: Figure 6 (LLC sizing)."""

from __future__ import annotations

from repro.studies.figure6 import figure6


def test_figure6(benchmark, emit_figure, emit):
    figure = benchmark(figure6)
    emit_figure(figure)

    # Finding #8 shape: embodied-dominated never below 1 above 1 MB;
    # operational-dominated fixed-work dips below 1 at 2 MB.
    emb_fw = figure.panel("(a) embodied dominated").series_by_name("fixed-work")
    assert all(p.y >= 1.0 - 1e-9 for p in emb_fw.points)
    op_fw = figure.panel("(b) operational dominated").series_by_name("fixed-work")
    assert op_fw.points[1].y < 1.0
    emit(
        "shape check: caching not sustainable (embodied-dom); 2MB marginally "
        "weakly sustainable (operational-dom) — Finding #8"
    )
