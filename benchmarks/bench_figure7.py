"""Benchmark + reproduction: Figure 7 (InO / FSC / OoO)."""

from __future__ import annotations

from repro.studies.figure7 import figure7


def test_figure7(benchmark, emit_figure, emit):
    figure = benchmark(figure7)
    emit_figure(figure)

    for panel in figure.panels:
        points = {p.label: p for p in panel.series[0].points}
        assert points["FSC"].y < points["OoO"].y  # Finding #11
        assert points["OoO"].y > 1.0  # Finding #9
    emit(
        "shape check: OoO above InO, FSC below OoO in every panel "
        "(Findings #9-#11)"
    )
