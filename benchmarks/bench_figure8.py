"""Benchmark + reproduction: Figure 8 (branch prediction)."""

from __future__ import annotations

from repro.core.scenario import UseScenario
from repro.speculation.branch_prediction import max_sustainable_area
from repro.studies.figure8 import figure8


def test_figure8(benchmark, emit_figure, emit):
    figure = benchmark(figure8)
    emit_figure(figure)

    boundary = max_sustainable_area(UseScenario.FIXED_WORK, 0.8)
    emit(
        f"crossover: fixed-work embodied-dominated NCF=1 at "
        f"{boundary:.2%} predictor area (paper: ~2%)"
    )
    assert 0.015 < boundary < 0.02
    # Fixed-time is unsustainable at every size in both regimes.
    for panel in figure.panels:
        assert all(p.y > 1.0 for p in panel.series_by_name("fixed-time").points)
