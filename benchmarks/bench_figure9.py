"""Benchmark + reproduction: Figure 9 / §7 case study."""

from __future__ import annotations

from repro.core.classify import Sustainability
from repro.report.table import format_table
from repro.studies.case_study import case_study, figure9


def test_figure9(benchmark, emit_figure, emit):
    figure = benchmark(figure9)
    emit_figure(figure)

    points = case_study()
    rows = [
        [
            p.cores,
            p.frequency_multiplier,
            p.perf,
            p.embodied,
            p.category(0.8).value,
            p.category(0.2).value,
        ]
        for p in points
    ]
    emit(
        format_table(
            ["cores", "freq x", "perf x", "embodied x", "emb-dom", "op-dom"],
            rows,
            title="-- case study summary (vs old-node quad-core)",
        )
    )
    by_cores = {p.cores: p for p in points}
    for cores in (4, 5, 6):
        assert by_cores[cores].category(0.8) is Sustainability.STRONG
        assert by_cores[cores].category(0.2) is Sustainability.STRONG
    assert by_cores[8].category(0.8) is Sustainability.LESS
    assert by_cores[8].category(0.2) is Sustainability.WEAK
