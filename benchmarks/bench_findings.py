"""Benchmark + reproduction: the full Findings #1-#17 table.

This is the repository's paper-vs-measured scoreboard: every
quantitative claim in §5-§7, the paper's value, the value this library
computes, and a pass/fail — printed in full.
"""

from __future__ import annotations

from repro.report.table import format_mapping_rows
from repro.studies.findings import all_findings


def test_findings_table(benchmark, emit):
    checks = benchmark(all_findings)
    rows = [check.as_dict() for check in checks]
    emit(
        format_mapping_rows(
            rows,
            columns=["finding", "claim", "paper", "computed", "passed"],
            title="\n=== Findings #1-#17 + case study: paper vs computed",
        )
    )
    failed = [c for c in checks if not c.passed]
    emit(f"{len(checks) - len(failed)}/{len(checks)} checks pass")
    assert not failed
