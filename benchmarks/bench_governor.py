"""Extension benchmark: race-to-idle versus pacing across core types.

Sweeps the leakage fraction (dynamic-dominated to leakage-dominated
cores) at fixed slack and reports which policy the energy-minimal
governor converges to — the §5.8 scaling laws turned into a scheduling
insight.
"""

from __future__ import annotations

from repro.dvfs.governor import EnergyModel, race_vs_pace
from repro.report.table import format_table

LEAKAGE_FRACTIONS = (0.0, 0.1, 0.3, 0.6, 0.9)
DEADLINE = 3.0


def sweep_governor():
    rows = []
    for leak in LEAKAGE_FRACTIONS:
        model = EnergyModel(leakage_fraction=leak, idle_leakage=0.02)
        result = race_vs_pace(DEADLINE, model)
        rows.append((leak, result))
    return rows


def test_governor(benchmark, emit):
    rows = benchmark(sweep_governor)
    emit(
        format_table(
            [
                "leakage fraction",
                "race energy",
                "pace energy",
                "best policy",
                "optimal s",
                "optimal energy",
            ],
            [
                [
                    leak,
                    r.race_energy,
                    r.pace_energy,
                    r.best_policy,
                    r.optimal_multiplier,
                    r.optimal_energy,
                ]
                for leak, r in rows
            ],
            title=f"\n=== race-to-idle vs pace at deadline {DEADLINE:g}x (voltage floor 0.5)",
        )
    )
    by_leak = dict(rows)
    # Dynamic-dominated cores pace; leakage-dominated cores race.
    assert by_leak[0.0].best_policy == "pace"
    assert by_leak[0.9].best_policy == "race-to-idle"
    # The optimum never loses to either fixed policy.
    for _, r in rows:
        assert r.optimal_energy <= min(r.race_energy, r.pace_energy) + 1e-9
