"""Extension benchmark: upgrade indifference points across node gaps.

GreenChip-style analysis wired through the ACT bridge: for an always-on
server on each old node, how many years must the new-node replacement
serve before the upgrade is carbon-positive?
"""

from __future__ import annotations

from repro.act.model import ActChipSpec
from repro.lifetime.act_bridge import device_from_act
from repro.lifetime.replacement import footprint_per_work, indifference_point
from repro.report.table import format_table

OLD_NODES = ("28nm", "16nm", "7nm")
NEW_NODE = "3nm"


def sweep_upgrades():
    new = device_from_act(
        ActChipSpec("new 3nm", die_area_mm2=300.0, avg_power_w=120.0, node=NEW_NODE)
    )
    rows = []
    for node in OLD_NODES:
        # Older nodes burn more power for the same work.
        power = {"28nm": 300.0, "16nm": 220.0, "7nm": 150.0}[node]
        old = device_from_act(
            ActChipSpec(f"old {node}", die_area_mm2=350.0, avg_power_w=power, node=node)
        )
        rows.append((node, old, new, indifference_point(old, new)))
    return rows


def test_lifetime_upgrades(benchmark, emit):
    rows = benchmark(sweep_upgrades)
    table = [
        [
            node,
            old.operational_rate,
            new.operational_rate,
            new.embodied,
            "never" if t is None else f"{t:.2f} yr",
        ]
        for node, old, new, t in rows
    ]
    emit(
        format_table(
            ["old node", "old kg/yr", "new kg/yr", "new embodied kg", "indifference point"],
            table,
            title="\n=== upgrade-to-3nm indifference points (GreenChip-style)",
        )
    )
    # The dirtier the old node, the sooner the upgrade pays.
    points = [t for _, _, _, t in rows if t is not None]
    assert points == sorted(points)
    # Junkyard check: footprint per work falls with service life.
    _, old, _, _ = rows[0]
    assert footprint_per_work(old, 6.0) < footprint_per_work(old, 3.0)
