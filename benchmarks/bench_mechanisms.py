"""Benchmark + reproduction: the paper's mechanism categorization.

The top-level summary every §5/§6 figure feeds into: 13 archetypal
mechanisms x 2 alpha regimes, each classified strongly / weakly / less
sustainable and checked against the paper's category.
"""

from __future__ import annotations

from repro.report.table import format_mapping_rows
from repro.studies.mechanisms import mechanism_catalogue


def test_mechanism_catalogue(benchmark, emit):
    entries = benchmark(mechanism_catalogue)
    emit(
        format_mapping_rows(
            [entry.as_dict() for entry in entries],
            columns=[
                "mechanism",
                "section",
                "regime",
                "ncf_fw",
                "ncf_ft",
                "computed",
                "paper",
                "match",
            ],
            title="\n=== mechanism categorization: paper vs computed",
        )
    )
    mismatches = [e for e in entries if not e.matches_paper]
    emit(f"{len(entries) - len(mismatches)}/{len(entries)} categories match the paper")
    assert not mismatches
