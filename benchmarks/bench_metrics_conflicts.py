"""Extension benchmark: classical metrics versus FOCAL across the
mechanism catalogue.

§3.4's claim — architects already optimize area/energy/power, just not
holistically — becomes measurable: for every catalogue mechanism and
every classical metric, does the metric's verdict conflict with
FOCAL's? A conflict means the metric endorses a less-sustainable design
or rejects a strongly sustainable one.
"""

from __future__ import annotations

from repro.core.design import DesignPoint
from repro.core.metrics import ClassicMetric, disagreement, metric_ratio
from repro.report.table import format_table
from repro.studies.mechanisms import catalogue_pairs

ALPHA = 0.8  # embodied-dominated: where holism matters most


def sweep_conflicts():
    rows = []
    for mechanism, _section, design, baseline in catalogue_pairs():
        for metric in ClassicMetric:
            result = disagreement(design, baseline, metric, ALPHA)
            rows.append(
                (
                    mechanism,
                    metric.name,
                    metric_ratio(design, baseline, metric),
                    result.focal_category.value,
                    result.conflicting,
                )
            )
    return rows


def test_metric_conflicts(benchmark, emit):
    rows = benchmark(sweep_conflicts)
    conflicts = [r for r in rows if r[4]]
    emit(
        format_table(
            ["mechanism", "metric", "metric goodness", "FOCAL verdict", "conflict"],
            [list(r) for r in conflicts],
            title=(
                "\n=== classical-metric verdicts that conflict with FOCAL "
                f"(alpha={ALPHA})"
            ),
        )
    )
    emit(
        f"{len(conflicts)}/{len(rows)} metric-mechanism verdicts conflict "
        "with the sustainability classification"
    )
    # The §5.6 flagship conflict must be among them: EDP endorses OoO.
    assert any(
        mech == "OoO core (vs InO)" and metric == "EDP" for mech, metric, *_ in conflicts
    )
    # And perf-oriented metrics must reject at least one strongly
    # sustainable mechanism (pipeline gating is slower).
    assert any(r[3] == "strongly sustainable" for r in conflicts)
