"""Benchmark gate: observability must be free when switched off.

Times the PR 1 10k-point warm re-sweep (the batch engine's designed
operating point) three ways —

* **uninstrumented**: a faithful copy of the pre-observability
  ``BatchExplorer.count_categories`` path, reproduced here exactly as
  ``bench_dse_engine`` reproduces the scalar engine;
* **disabled**: the shipped instrumented path with tracing and metrics
  off (the default everyone runs);
* **enabled**: the same path with tracing + metrics recording.

A second operating point covers the parallel-columnar engine: the
shipped ``eval_shard`` (which carries the worker-event capture hooks)
is timed against a verbatim copy of its pre-telemetry form on the same
worker pool and shared block, with event capture disabled and enabled.
Numerical parity is asserted at both operating points — instrumented
results (traced or not, and under injected worker faults) are
bit-identical to the uninstrumented engine. The module writes
``BENCH_obs.json`` at the repo root and **gates** the
disabled-instrumentation overhead at < 5% for both operating points
(on min-of-rounds timings, the noise-robust estimator).
"""

from __future__ import annotations

import json
import time
from concurrent.futures import ProcessPoolExecutor
from itertools import product
from pathlib import Path

import numpy as np
import pytest

from repro.core.batch import category_counts, classify_arrays
from repro.core.design import DesignPoint
from repro.core.errors import ConfigurationError
from repro.core.scenario import EMBODIED_DOMINATED
from repro.dse import parallel
from repro.dse.batch import BatchExplorer, FactoryCache
from repro.dse.factories import IterativeFixedPointFactory
from repro.dse.grid import ParameterGrid, linear_range
from repro.obs import events as obs_events
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace

GRID = ParameterGrid(
    {
        "cores": list(range(1, 101)),
        "f": linear_range(0.50, 0.99, 100),
    }
)  # 10,000 points — the PR 1 sweep
BASELINE = DesignPoint.baseline("1-BCE single core")
OVERHEAD_GATE = 0.05  # disabled instrumentation must cost < 5%

#: The parallel-columnar operating point: the PR 5 shard kernel on a
#: live pool, small enough to round-trip in seconds on a busy CI box
#: but heavy enough (fixed-point iterations) that shard compute — not
#: pool startup — dominates each timed pass.
PARALLEL_GRID = ParameterGrid(
    {
        "cores": [float(c) for c in range(1, 101)],
        "f": linear_range(0.50, 0.99, 100),
    }
)  # 10,000 points
PARALLEL_WORKERS = 2
PARALLEL_CHUNK = 512
PARALLEL_ITERS = 500
PARALLEL_ROUNDS = 7

TRAJECTORY_PATH = Path(__file__).resolve().parent.parent / "BENCH_obs.json"

_RESULTS: dict[str, object] = {
    "grid_points": len(GRID),
    "overhead_gate": OVERHEAD_GATE,
    "parallel_grid_points": len(PARALLEL_GRID),
    "parallel_workers": PARALLEL_WORKERS,
    "parallel_iters": PARALLEL_ITERS,
    "note": (
        "warm 10k-point re-sweep; 'uninstrumented' replicates the "
        "pre-observability count_categories path on the same cache, "
        "'disabled' is the shipped path with obs off, 'enabled' with "
        "tracing + metrics on; 'parallel_*' keys time the shipped "
        "eval_shard against its pre-telemetry form on one shared pool; "
        "gate applies to min-of-rounds timings"
    ),
}


def factory(params):
    from repro.amdahl.symmetric import SymmetricMulticore

    return SymmetricMulticore(
        cores=params["cores"], parallel_fraction=params["f"]
    ).design_point()


def uninstrumented_count_categories(explorer: BatchExplorer, grid: ParameterGrid):
    """``BatchExplorer.count_categories`` exactly as shipped in PR 1,
    before the observability hooks existed (same cache, same kernels)."""
    from repro.core.errors import DomainError

    cache = explorer.cache
    entries = cache._entries
    names = list(grid.axes)
    slots = sorted(range(len(names)), key=names.__getitem__)
    designs = []
    hits = 0
    misses = 0
    for combo in product(*(grid.axes[name] for name in names)):
        key = tuple([(names[i], combo[i]) for i in slots])
        outcome = entries.get(key)
        if outcome is None:
            misses += 1
            try:
                outcome = explorer.factory(dict(zip(names, combo)))
            except DomainError as exc:
                outcome = exc
            entries[key] = outcome
        else:
            hits += 1
        if not isinstance(outcome, DomainError):
            designs.append(outcome)
    cache.record(hits=hits, misses=misses)
    _, ncf_fw, ncf_ft = explorer._ncf_arrays(designs)
    counts = category_counts(classify_arrays(ncf_fw, ncf_ft))
    return {category: n for category, n in counts.items() if n}


@pytest.fixture(scope="module")
def explorer():
    """One explorer with a fully warm cache, shared by every timing."""
    obs_trace.reset()
    obs_metrics.reset()
    exp = BatchExplorer(
        factory=factory,
        baseline=BASELINE,
        weight=EMBODIED_DOMINATED,
        cache=FactoryCache(factory),
    )
    exp.explore_arrays(GRID)  # fill the cache once
    yield exp
    obs_trace.reset()
    obs_metrics.reset()


def _best_of(fn, rounds: int = 5) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _record(key: str, benchmark, fallback) -> None:
    """Store mean + min runtimes; time by hand on --benchmark-disable."""
    try:
        _RESULTS[f"{key}_mean_s"] = float(benchmark.stats.stats.mean)
        _RESULTS[f"{key}_min_s"] = float(benchmark.stats.stats.min)
    except (AttributeError, TypeError):
        best = _best_of(fallback)
        _RESULTS[f"{key}_mean_s"] = best
        _RESULTS[f"{key}_min_s"] = best


@pytest.fixture(scope="module", autouse=True)
def write_trajectory():
    """Emit BENCH_obs.json and enforce the overhead gates at the end."""
    yield
    for key, slow, fast in (
        ("overhead_disabled", "disabled_min_s", "uninstrumented_min_s"),
        ("overhead_enabled", "enabled_min_s", "uninstrumented_min_s"),
        (
            "overhead_parallel_disabled",
            "parallel_disabled_min_s",
            "parallel_uninstrumented_min_s",
        ),
        (
            "overhead_parallel_enabled",
            "parallel_enabled_min_s",
            "parallel_uninstrumented_min_s",
        ),
    ):
        if slow in _RESULTS and fast in _RESULTS:
            _RESULTS[key] = float(_RESULTS[slow]) / float(_RESULTS[fast]) - 1.0
    TRAJECTORY_PATH.write_text(json.dumps(_RESULTS, indent=2, default=str) + "\n")
    for gate_key, label in (
        ("overhead_disabled", "disabled-instrumentation"),
        ("overhead_parallel_disabled", "parallel disabled-instrumentation"),
    ):
        overhead = _RESULTS.get(gate_key)
        if overhead is not None:
            assert overhead < OVERHEAD_GATE, (
                f"{label} overhead {overhead:.2%} exceeds "
                f"the {OVERHEAD_GATE:.0%} gate (see {TRAJECTORY_PATH.name})"
            )


def test_parity_instrumented_vs_uninstrumented(explorer, emit):
    """Numerical parity gate: tracing on or off never changes results."""
    expected = uninstrumented_count_categories(explorer, GRID)
    assert explorer.count_categories(GRID) == expected

    plain = explorer.explore_arrays(GRID)
    obs_trace.enable()
    obs_metrics.enable()
    try:
        traced = explorer.explore_arrays(GRID)
        assert explorer.count_categories(GRID) == expected
    finally:
        obs_trace.reset()
        obs_metrics.reset()
    assert traced.params == plain.params
    assert np.array_equal(traced.ncf_fixed_work, plain.ncf_fixed_work)
    assert np.array_equal(traced.ncf_fixed_time, plain.ncf_fixed_time)
    assert np.array_equal(traced.codes, plain.codes)
    _RESULTS["parity"] = "bit-exact (traced == untraced == uninstrumented)"
    emit(f"parity: {len(GRID)} points, verdicts {_counts_str(expected)}")


def _counts_str(counts) -> str:
    return ", ".join(f"{cat.value}={n}" for cat, n in counts.items())


def test_resweep_uninstrumented(benchmark, explorer, emit):
    run = lambda: uninstrumented_count_categories(explorer, GRID)
    counts = benchmark(run)
    _record("uninstrumented", benchmark, run)
    assert sum(counts.values()) == len(GRID)
    emit(f"uninstrumented warm re-sweep: {_RESULTS['uninstrumented_min_s'] * 1e3:.2f} ms (min)")


def test_resweep_instrumentation_disabled(benchmark, explorer, emit):
    assert not obs_trace.is_enabled()
    assert not obs_metrics.get_registry().enabled
    run = lambda: explorer.count_categories(GRID)
    counts = benchmark(run)
    _record("disabled", benchmark, run)
    assert sum(counts.values()) == len(GRID)
    emit(f"instrumented (disabled) re-sweep: {_RESULTS['disabled_min_s'] * 1e3:.2f} ms (min)")


def test_resweep_instrumentation_enabled(benchmark, explorer, emit):
    obs_trace.enable()
    obs_metrics.enable()
    tracer = obs_trace.get_tracer()
    try:
        run = lambda: (tracer.clear(), explorer.count_categories(GRID))[1]
        counts = benchmark(run)
        _record("enabled", benchmark, run)
    finally:
        obs_trace.reset()
        obs_metrics.reset()
    assert sum(counts.values()) == len(GRID)
    emit(f"instrumented (enabled) re-sweep: {_RESULTS['enabled_min_s'] * 1e3:.2f} ms (min)")


# ----------------------------------------------------------------------
# Parallel-columnar operating point: the PR 5 shard kernel
# ----------------------------------------------------------------------
def uninstrumented_eval_shard(job):
    """PR 5's ``eval_shard`` exactly as shipped before worker-event
    telemetry existed — the baseline the shipped kernel is gated
    against. Runs on the same pool/worker state the shipped kernel
    uses, so the only delta between the two timings is the telemetry
    hook itself."""
    start, stop, columns = job
    factory = parallel._STATE["factory"]
    begin = time.perf_counter()
    arrays = factory.batch_arrays(columns)
    busy = time.perf_counter() - begin
    if len(arrays) != stop - start:
        raise ConfigurationError(
            f"batch_arrays returned {len(arrays)} rows for a "
            f"{stop - start}-point shard"
        )
    block = parallel._STATE.get("block")
    if block is None:
        return (
            start,
            stop,
            busy,
            (arrays.area, arrays.perf, arrays.power, arrays.valid),
        )
    block.write(start, stop, arrays.area, arrays.perf, arrays.power, arrays.valid)
    return (start, stop, busy, None)


def _shard_jobs(grid, chunk_size, workers):
    """The ``(lo, hi, columns)`` jobs a parallel-columnar sweep of
    *grid* would dispatch (same planner, same column layout)."""
    points = list(grid)
    names = list(grid.axes)
    return [
        (
            lo,
            hi,
            {
                name: np.asarray([points[i][name] for i in range(lo, hi)])
                for name in names
            },
        )
        for lo, hi in parallel.plan_shards(len(points), 0, chunk_size, workers)
    ]


def _columnar_pool(factory, total, capture):
    """A live worker pool attached to a fresh shared block."""
    block = parallel.ColumnarBlock.allocate(total)
    pool = ProcessPoolExecutor(
        max_workers=PARALLEL_WORKERS,
        initializer=parallel.init_columnar_worker,
        initargs=(factory, block.name, total, capture, None),
    )
    return pool, block


@pytest.fixture(scope="module")
def parallel_rig():
    """One capture-disabled pool + jobs, shared by the paired timing."""
    factory = IterativeFixedPointFactory(iters=PARALLEL_ITERS)
    jobs = _shard_jobs(PARALLEL_GRID, PARALLEL_CHUNK, PARALLEL_WORKERS)
    pool, block = _columnar_pool(factory, len(PARALLEL_GRID), capture=False)
    yield pool, jobs
    pool.shutdown()
    block.release()


def _drain(pool, fn, jobs) -> list:
    return list(pool.map(fn, jobs))


def test_parallel_shard_overhead_disabled(parallel_rig, emit):
    """Gate: with capture off, the shipped eval_shard must match its
    pre-telemetry form. Rounds interleave the two kernels on the same
    pool so scheduler drift hits both timings equally."""
    pool, jobs = parallel_rig
    _drain(pool, parallel.eval_shard, jobs)  # warm the pool
    best_plain = best_shipped = float("inf")
    for _ in range(PARALLEL_ROUNDS):
        begin = time.perf_counter()
        _drain(pool, uninstrumented_eval_shard, jobs)
        best_plain = min(best_plain, time.perf_counter() - begin)
        begin = time.perf_counter()
        replies = _drain(pool, parallel.eval_shard, jobs)
        best_shipped = min(best_shipped, time.perf_counter() - begin)
    assert all(events is None for *_, events in replies)  # capture is off
    _RESULTS["parallel_uninstrumented_min_s"] = best_plain
    _RESULTS["parallel_disabled_min_s"] = best_shipped
    emit(
        f"parallel shards ({len(jobs)} shards x {len(PARALLEL_GRID)} pts): "
        f"pre-telemetry {best_plain * 1e3:.2f} ms, "
        f"shipped (capture off) {best_shipped * 1e3:.2f} ms (min of "
        f"{PARALLEL_ROUNDS})"
    )


def test_parallel_shard_capture_enabled(emit):
    """The same shard pass with worker-event capture armed — recorded
    in the trajectory (no gate: capture is opt-in, priced here)."""
    factory = IterativeFixedPointFactory(iters=PARALLEL_ITERS)
    jobs = _shard_jobs(PARALLEL_GRID, PARALLEL_CHUNK, PARALLEL_WORKERS)
    pool, block = _columnar_pool(factory, len(PARALLEL_GRID), capture=True)
    try:
        _drain(pool, parallel.eval_shard, jobs)  # warm the pool
        best = float("inf")
        for _ in range(PARALLEL_ROUNDS):
            begin = time.perf_counter()
            replies = _drain(pool, parallel.eval_shard, jobs)
            best = min(best, time.perf_counter() - begin)
    finally:
        pool.shutdown()
        block.release()
    assert all(events for *_, events in replies)  # every shard reported
    _RESULTS["parallel_enabled_min_s"] = best
    emit(
        f"parallel shards (capture on): {best * 1e3:.2f} ms (min of "
        f"{PARALLEL_ROUNDS})"
    )


@pytest.mark.chaos
def test_parallel_parity_telemetry_and_faults(tmp_path, emit):
    """Telemetry never changes parallel results: explore_arrays output
    is byte-identical with capture off, capture on, and capture on
    while injected worker faults force retries and a pool respawn."""
    from repro.resilience import FaultPlan, RetryPolicy

    grid = ParameterGrid(
        {
            "cores": [float(c) for c in range(1, 25)],
            "f": linear_range(0.50, 0.99, 10),
        }
    )
    factory = IterativeFixedPointFactory(iters=150)
    policy = RetryPolicy(max_retries=3, backoff_base_s=0.001)

    def sweep(factory, resilience=None):
        return BatchExplorer(
            factory=factory,
            baseline=BASELINE,
            weight=EMBODIED_DOMINATED,
            chunk_size=32,
            workers=PARALLEL_WORKERS,
            resilience=resilience,
        ).explore_arrays(grid)

    obs_trace.reset()
    obs_metrics.reset()
    obs_events.reset()
    reference = sweep(factory)
    obs_trace.enable()
    obs_metrics.enable()
    obs_events.enable()
    try:
        with obs_trace.get_tracer().span("parity"):
            captured = sweep(factory)
            plan = FaultPlan.plan(
                grid, seed=11, state_dir=tmp_path, crashes=1, errors=1
            )
            faulted = sweep(plan.wrap_vector(factory), resilience=policy)
        observed = len(obs_events.get_log())
    finally:
        obs_trace.reset()
        obs_metrics.reset()
        obs_events.reset()
    for result in (captured, faulted):
        assert result.params == reference.params
        assert np.array_equal(result.ncf_fixed_work, reference.ncf_fixed_work)
        assert np.array_equal(result.ncf_fixed_time, reference.ncf_fixed_time)
        assert np.array_equal(result.codes, reference.codes)
    assert observed > 0  # the captured sweeps really produced events
    _RESULTS["parallel_parity"] = (
        "bit-exact (capture off == capture on == capture on + faults)"
    )
    emit(
        f"parallel parity: {len(grid)} pts bit-exact across capture "
        f"off/on/faulted ({observed} events captured)"
    )
