"""Benchmark gate: observability must be free when switched off.

Times the PR 1 10k-point warm re-sweep (the batch engine's designed
operating point) three ways —

* **uninstrumented**: a faithful copy of the pre-observability
  ``BatchExplorer.count_categories`` path, reproduced here exactly as
  ``bench_dse_engine`` reproduces the scalar engine;
* **disabled**: the shipped instrumented path with tracing and metrics
  off (the default everyone runs);
* **enabled**: the same path with tracing + metrics recording.

Before any timing, numerical parity is asserted: instrumented results
(traced or not) are bit-identical to the uninstrumented engine. The
module writes ``BENCH_obs.json`` at the repo root and **gates** the
disabled-instrumentation overhead at < 5% (on min-of-rounds timings,
the noise-robust estimator).
"""

from __future__ import annotations

import json
import time
from itertools import product
from pathlib import Path

import numpy as np
import pytest

from repro.core.batch import category_counts, classify_arrays
from repro.core.design import DesignPoint
from repro.core.scenario import EMBODIED_DOMINATED
from repro.dse.batch import BatchExplorer, FactoryCache
from repro.dse.grid import ParameterGrid, linear_range
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace

GRID = ParameterGrid(
    {
        "cores": list(range(1, 101)),
        "f": linear_range(0.50, 0.99, 100),
    }
)  # 10,000 points — the PR 1 sweep
BASELINE = DesignPoint.baseline("1-BCE single core")
OVERHEAD_GATE = 0.05  # disabled instrumentation must cost < 5%

TRAJECTORY_PATH = Path(__file__).resolve().parent.parent / "BENCH_obs.json"

_RESULTS: dict[str, object] = {
    "grid_points": len(GRID),
    "overhead_gate": OVERHEAD_GATE,
    "note": (
        "warm 10k-point re-sweep; 'uninstrumented' replicates the "
        "pre-observability count_categories path on the same cache, "
        "'disabled' is the shipped path with obs off, 'enabled' with "
        "tracing + metrics on; gate applies to min-of-rounds timings"
    ),
}


def factory(params):
    from repro.amdahl.symmetric import SymmetricMulticore

    return SymmetricMulticore(
        cores=params["cores"], parallel_fraction=params["f"]
    ).design_point()


def uninstrumented_count_categories(explorer: BatchExplorer, grid: ParameterGrid):
    """``BatchExplorer.count_categories`` exactly as shipped in PR 1,
    before the observability hooks existed (same cache, same kernels)."""
    from repro.core.errors import DomainError

    cache = explorer.cache
    entries = cache._entries
    names = list(grid.axes)
    slots = sorted(range(len(names)), key=names.__getitem__)
    designs = []
    hits = 0
    misses = 0
    for combo in product(*(grid.axes[name] for name in names)):
        key = tuple([(names[i], combo[i]) for i in slots])
        outcome = entries.get(key)
        if outcome is None:
            misses += 1
            try:
                outcome = explorer.factory(dict(zip(names, combo)))
            except DomainError as exc:
                outcome = exc
            entries[key] = outcome
        else:
            hits += 1
        if not isinstance(outcome, DomainError):
            designs.append(outcome)
    cache.record(hits=hits, misses=misses)
    _, ncf_fw, ncf_ft = explorer._ncf_arrays(designs)
    counts = category_counts(classify_arrays(ncf_fw, ncf_ft))
    return {category: n for category, n in counts.items() if n}


@pytest.fixture(scope="module")
def explorer():
    """One explorer with a fully warm cache, shared by every timing."""
    obs_trace.reset()
    obs_metrics.reset()
    exp = BatchExplorer(
        factory=factory,
        baseline=BASELINE,
        weight=EMBODIED_DOMINATED,
        cache=FactoryCache(factory),
    )
    exp.explore_arrays(GRID)  # fill the cache once
    yield exp
    obs_trace.reset()
    obs_metrics.reset()


def _best_of(fn, rounds: int = 5) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _record(key: str, benchmark, fallback) -> None:
    """Store mean + min runtimes; time by hand on --benchmark-disable."""
    try:
        _RESULTS[f"{key}_mean_s"] = float(benchmark.stats.stats.mean)
        _RESULTS[f"{key}_min_s"] = float(benchmark.stats.stats.min)
    except (AttributeError, TypeError):
        best = _best_of(fallback)
        _RESULTS[f"{key}_mean_s"] = best
        _RESULTS[f"{key}_min_s"] = best


@pytest.fixture(scope="module", autouse=True)
def write_trajectory():
    """Emit BENCH_obs.json and enforce the overhead gate at the end."""
    yield
    for key, slow, fast in (
        ("overhead_disabled", "disabled_min_s", "uninstrumented_min_s"),
        ("overhead_enabled", "enabled_min_s", "uninstrumented_min_s"),
    ):
        if slow in _RESULTS and fast in _RESULTS:
            _RESULTS[key] = float(_RESULTS[slow]) / float(_RESULTS[fast]) - 1.0
    TRAJECTORY_PATH.write_text(json.dumps(_RESULTS, indent=2, default=str) + "\n")
    overhead = _RESULTS.get("overhead_disabled")
    if overhead is not None:
        assert overhead < OVERHEAD_GATE, (
            f"disabled-instrumentation overhead {overhead:.2%} exceeds "
            f"the {OVERHEAD_GATE:.0%} gate (see {TRAJECTORY_PATH.name})"
        )


def test_parity_instrumented_vs_uninstrumented(explorer, emit):
    """Numerical parity gate: tracing on or off never changes results."""
    expected = uninstrumented_count_categories(explorer, GRID)
    assert explorer.count_categories(GRID) == expected

    plain = explorer.explore_arrays(GRID)
    obs_trace.enable()
    obs_metrics.enable()
    try:
        traced = explorer.explore_arrays(GRID)
        assert explorer.count_categories(GRID) == expected
    finally:
        obs_trace.reset()
        obs_metrics.reset()
    assert traced.params == plain.params
    assert np.array_equal(traced.ncf_fixed_work, plain.ncf_fixed_work)
    assert np.array_equal(traced.ncf_fixed_time, plain.ncf_fixed_time)
    assert np.array_equal(traced.codes, plain.codes)
    _RESULTS["parity"] = "bit-exact (traced == untraced == uninstrumented)"
    emit(f"parity: {len(GRID)} points, verdicts {_counts_str(expected)}")


def _counts_str(counts) -> str:
    return ", ".join(f"{cat.value}={n}" for cat, n in counts.items())


def test_resweep_uninstrumented(benchmark, explorer, emit):
    run = lambda: uninstrumented_count_categories(explorer, GRID)
    counts = benchmark(run)
    _record("uninstrumented", benchmark, run)
    assert sum(counts.values()) == len(GRID)
    emit(f"uninstrumented warm re-sweep: {_RESULTS['uninstrumented_min_s'] * 1e3:.2f} ms (min)")


def test_resweep_instrumentation_disabled(benchmark, explorer, emit):
    assert not obs_trace.is_enabled()
    assert not obs_metrics.get_registry().enabled
    run = lambda: explorer.count_categories(GRID)
    counts = benchmark(run)
    _record("disabled", benchmark, run)
    assert sum(counts.values()) == len(GRID)
    emit(f"instrumented (disabled) re-sweep: {_RESULTS['disabled_min_s'] * 1e3:.2f} ms (min)")


def test_resweep_instrumentation_enabled(benchmark, explorer, emit):
    obs_trace.enable()
    obs_metrics.enable()
    tracer = obs_trace.get_tracer()
    try:
        run = lambda: (tracer.clear(), explorer.count_categories(GRID))[1]
        counts = benchmark(run)
        _record("enabled", benchmark, run)
    finally:
        obs_trace.reset()
        obs_metrics.reset()
    assert sum(counts.values()) == len(GRID)
    emit(f"instrumented (enabled) re-sweep: {_RESULTS['enabled_min_s'] * 1e3:.2f} ms (min)")
