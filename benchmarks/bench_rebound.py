"""Extension benchmark: usage-rebound tipping points (§3.7).

For each archetypal mechanism the paper studies, find the usage-rebound
elasticity at which the mechanism stops paying off — the quantitative
refinement of the strong/weak boundary: strongly sustainable designs
never tip (None), weakly sustainable ones tip at some r* in (0, 1), and
less sustainable ones are already unsustainable at r = 0.
"""

from __future__ import annotations

from repro.amdahl.pollack import big_core_design
from repro.amdahl.symmetric import SymmetricMulticore
from repro.core.design import DesignPoint
from repro.gating.pipeline_gating import gated_design
from repro.microarch.cores import FSC_CORE, INO_CORE, OOO_CORE
from repro.rebound.model import usage_rebound_tipping_point
from repro.report.table import format_table
from repro.speculation.runahead import runahead_design

CASES = [
    (
        "multicore 32 vs single 32",
        SymmetricMulticore(32, 0.95).design_point(),
        big_core_design(32),
    ),
    ("FSC vs OoO", FSC_CORE, OOO_CORE),
    ("FSC vs InO", FSC_CORE, INO_CORE),
    ("PRE vs OoO", runahead_design(), DesignPoint.baseline("OoO")),
    ("OoO vs InO", OOO_CORE, INO_CORE),
    ("gating vs ungated", gated_design(), DesignPoint.baseline("ungated")),
]


def sweep_tipping_points():
    results = []
    for name, design, baseline in CASES:
        for alpha in (0.8, 0.2):
            results.append(
                (
                    name,
                    alpha,
                    usage_rebound_tipping_point(design, baseline, alpha),
                )
            )
    return results


def test_rebound_tipping_points(benchmark, emit):
    results = benchmark(sweep_tipping_points)
    rows = [
        [name, alpha, "never tips" if r is None else f"{r:.3f}"]
        for name, alpha, r in results
    ]
    emit(
        format_table(
            ["mechanism", "alpha", "usage-rebound tipping point r*"],
            rows,
            title="\n=== usage-rebound tipping points (r=0 fixed-work, r=1 fixed-time)",
        )
    )
    lookup = {(name, alpha): r for name, alpha, r in results}
    # Strongly sustainable mechanisms never tip.
    assert lookup[("multicore 32 vs single 32", 0.2)] is None
    assert lookup[("gating vs ungated", 0.8)] is None
    # Weakly sustainable mechanisms tip inside (0, 1).
    pre = lookup[("PRE vs OoO", 0.2)]
    assert pre is not None and 0.0 < pre < 1.0
    # Less sustainable mechanisms are gone at r = 0 already.
    assert lookup[("OoO vs InO", 0.8)] == 0.0
