"""Benchmark gate: resilience must be free when off, exact when on.

Two properties of the resilient execution layer are enforced here,
mirroring how ``bench_obs_overhead`` gates observability:

* **zero-cost when disabled** — the shipped ``explore_arrays`` with no
  checkpoint and no supervision is timed against a faithful copy of the
  pre-resilience sweep loop (same chunking, same kernels, none of the
  checkpoint/supervision plumbing). The cold 10k-point sweep must come
  in under 5% overhead on min-of-rounds timings;
* **byte-identical when recovering** — real injected faults (a worker
  killed via ``os._exit``, a worker oversleeping its chunk timeout, a
  mid-sweep crash followed by ``resume=True``) must each produce a
  sweep identical to the fault-free reference, down to the NCF bit
  patterns. The containment scenarios extend the same gate: poison
  points are quarantined with every *survivor* byte-identical, a
  wedged pool is watchdog-reaped well inside its hang, and a salvaged
  partial run resumes to byte-identical completion.

The module writes ``BENCH_resilience.json`` at the repo root and
**gates** both properties at teardown: every chaos scenario that ran
must have recorded ``byte-identical``, and the disabled-resilience
overhead must stay under :data:`OVERHEAD_GATE`.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.batch import classify_arrays
from repro.core.design import DesignPoint
from repro.core.errors import DomainError
from repro.core.scenario import BALANCED
from repro.dse.batch import BatchExplorer, BatchSweepResult, FactoryCache, _chunked
from repro.dse.factories import SymmetricMulticoreFactory
from repro.dse.grid import ParameterGrid, linear_range
from repro.obs import trace as obs_trace
from repro.resilience import FaultPlan, QuarantineLedger, RetryPolicy
from repro.resilience.containment import point_key

FACTORY = SymmetricMulticoreFactory()
BASELINE = DesignPoint.baseline("1-BCE single core")
GRID = ParameterGrid(
    {
        "cores": list(range(1, 101)),
        "f": linear_range(0.50, 0.99, 100),
    }
)  # 10,000 points — the PR 1 sweep, cold every round
CHAOS_GRID = ParameterGrid({"cores": list(range(1, 33)), "f": [0.5, 0.9]})
CHAOS_CHUNK = 16  # 64 points / 4 chunks: small, the guarantees scale
OVERHEAD_GATE = 0.05  # disabled resilience must cost < 5%
PARITY_KEYS = (
    "crash_parity",
    "timeout_parity",
    "resume_parity",
    "quarantine_parity",
    "watchdog_parity",
    "salvage_parity",
)

TRAJECTORY_PATH = Path(__file__).resolve().parent.parent / "BENCH_resilience.json"

_RESULTS: dict[str, object] = {
    "grid_points": len(GRID),
    "chaos_grid_points": len(CHAOS_GRID),
    "overhead_gate": OVERHEAD_GATE,
    "note": (
        "cold 10k-point sweep; 'unguarded' replicates the "
        "pre-resilience explore_arrays loop, 'disabled' is the shipped "
        "path with no checkpoint and no supervision, 'checkpointed' "
        "persists every chunk; chaos scenarios inject real faults and "
        "must recover byte-identically; gates apply at module teardown"
    ),
}


def _cold_explorer(**overrides) -> BatchExplorer:
    """A fresh explorer with an empty private cache (a cold sweep)."""
    overrides.setdefault("factory", FACTORY)
    overrides.setdefault("cache", FactoryCache(overrides["factory"]))
    return BatchExplorer(baseline=BASELINE, weight=BALANCED, **overrides)


def unguarded_explore_arrays(
    explorer: BatchExplorer, grid: ParameterGrid
) -> BatchSweepResult:
    """``BatchExplorer.explore_arrays`` exactly as shipped before the
    resilience layer existed: same chunk stream, same evaluation and
    classification kernels, no checkpoint plumbing, no supervision."""
    tracer = obs_trace.get_tracer()
    mode = explorer._resolve_mode()
    use_vector = mode == "columnar"
    params_list = []
    designs = []
    with tracer.span(
        "sweep",
        grid_points=len(grid),
        chunk_size=explorer.chunk_size,
        workers=explorer.workers,
        mode=mode,
    ):
        start_s = time.perf_counter()
        for index, chunk in enumerate(_chunked(iter(grid), explorer.chunk_size)):
            with tracer.span("chunk", index=index, mode=mode):
                if use_vector:
                    outcomes = explorer._vector_chunk(chunk)
                else:
                    outcomes = explorer._evaluate_chunk(chunk, None)
                for params, outcome in zip(chunk, outcomes):
                    if isinstance(outcome, DomainError):
                        continue
                    params_list.append(params)
                    designs.append(outcome)
        with tracer.span("classify", points=len(designs)):
            perf, ncf_fw, ncf_ft = explorer._ncf_arrays(designs)
            codes = classify_arrays(ncf_fw, ncf_ft)
        explorer._engine_stats(
            mode=mode,
            grid_points=len(grid),
            valid_points=len(params_list),
            seconds=time.perf_counter() - start_s,
        )
    return BatchSweepResult(
        params=tuple(params_list),
        designs=tuple(designs),
        perf=perf,
        ncf_fixed_work=ncf_fw,
        ncf_fixed_time=ncf_ft,
        codes=codes,
    )


def assert_identical(result: BatchSweepResult, reference: BatchSweepResult) -> None:
    assert result.params == reference.params
    assert tuple(result.designs) == tuple(reference.designs)
    assert np.array_equal(result.ncf_fixed_work, reference.ncf_fixed_work)
    assert np.array_equal(result.ncf_fixed_time, reference.ncf_fixed_time)
    assert np.array_equal(result.codes, reference.codes)


def assert_survivors_identical(
    result: BatchSweepResult, reference: BatchSweepResult, quarantined
) -> None:
    """Every non-quarantined point is byte-identical to the reference."""
    excluded = {point_key(params) for params in quarantined}
    keep = [
        index
        for index, params in enumerate(reference.params)
        if point_key(params) not in excluded
    ]
    assert len(keep) == len(reference.params) - len(excluded)
    assert tuple(result.params) == tuple(reference.params[i] for i in keep)
    assert tuple(result.designs) == tuple(reference.designs[i] for i in keep)
    assert np.array_equal(result.ncf_fixed_work, reference.ncf_fixed_work[keep])
    assert np.array_equal(result.ncf_fixed_time, reference.ncf_fixed_time[keep])
    assert np.array_equal(result.codes, reference.codes[keep])


def _best_of(fn, rounds: int = 5) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _record(key: str, benchmark, fallback) -> None:
    """Store mean + min runtimes; time by hand on --benchmark-disable."""
    try:
        _RESULTS[f"{key}_mean_s"] = float(benchmark.stats.stats.mean)
        _RESULTS[f"{key}_min_s"] = float(benchmark.stats.stats.min)
    except (AttributeError, TypeError):
        best = _best_of(fallback)
        _RESULTS[f"{key}_mean_s"] = best
        _RESULTS[f"{key}_min_s"] = best


@pytest.fixture(scope="module", autouse=True)
def write_trajectory():
    """Emit BENCH_resilience.json and enforce both gates at the end."""
    yield
    for key, slow, fast in (
        ("overhead_disabled", "disabled_min_s", "unguarded_min_s"),
        ("overhead_checkpointed", "checkpointed_min_s", "unguarded_min_s"),
    ):
        if slow in _RESULTS and fast in _RESULTS:
            _RESULTS[key] = float(_RESULTS[slow]) / float(_RESULTS[fast]) - 1.0
    ran = [key for key in PARITY_KEYS if key in _RESULTS]
    _RESULTS["parity_gate"] = f"{len(ran)}/{len(PARITY_KEYS)} chaos scenarios ran"
    TRAJECTORY_PATH.write_text(json.dumps(_RESULTS, indent=2, default=str) + "\n")
    for key in ran:
        assert _RESULTS[key] == "byte-identical", (
            f"chaos scenario {key} did not recover byte-identically "
            f"(see {TRAJECTORY_PATH.name})"
        )
    overhead = _RESULTS.get("overhead_disabled")
    if overhead is not None:
        assert overhead < OVERHEAD_GATE, (
            f"disabled-resilience overhead {overhead:.2%} exceeds the "
            f"{OVERHEAD_GATE:.0%} gate (see {TRAJECTORY_PATH.name})"
        )


@pytest.fixture(scope="module")
def reference() -> BatchSweepResult:
    """The fault-free chaos-grid sweep every recovery must reproduce."""
    return _cold_explorer(chunk_size=CHAOS_CHUNK).explore_arrays(CHAOS_GRID)


@pytest.fixture
def fast_policy() -> RetryPolicy:
    return RetryPolicy(max_retries=2, backoff_base_s=0.001, chunk_timeout_s=15.0)


# ----------------------------------------------------------------------
# Parity: the guarded path never changes numbers
# ----------------------------------------------------------------------


def test_parity_guarded_vs_unguarded(emit):
    """The shipped sweep is bit-identical to the pre-resilience loop."""
    plain = unguarded_explore_arrays(_cold_explorer(), GRID)
    guarded = _cold_explorer().explore_arrays(GRID)
    assert_identical(guarded, plain)
    _RESULTS["parity"] = "bit-exact (guarded == unguarded)"
    emit(f"parity: {len(GRID)} points, guarded == unguarded bit-exact")


# ----------------------------------------------------------------------
# Overhead: a cold sweep pays nothing for disabled resilience
# ----------------------------------------------------------------------


def test_cold_sweep_unguarded(benchmark, emit):
    run = lambda: unguarded_explore_arrays(_cold_explorer(), GRID)
    result = benchmark(run)
    _record("unguarded", benchmark, run)
    assert len(result) == len(GRID)
    emit(f"unguarded cold sweep: {_RESULTS['unguarded_min_s'] * 1e3:.2f} ms (min)")


def test_cold_sweep_resilience_disabled(benchmark, emit):
    run = lambda: _cold_explorer().explore_arrays(GRID)
    result = benchmark(run)
    _record("disabled", benchmark, run)
    assert len(result) == len(GRID)
    emit(f"resilience-disabled cold sweep: {_RESULTS['disabled_min_s'] * 1e3:.2f} ms (min)")


def test_cold_sweep_checkpointed(benchmark, tmp_path, emit):
    """Informational: what chunk-granular persistence actually costs."""
    ckpt = tmp_path / "sweep.ckpt"
    run = lambda: _cold_explorer().explore_arrays(GRID, checkpoint=ckpt)
    result = benchmark(run)
    _record("checkpointed", benchmark, run)
    assert len(result) == len(GRID)
    emit(f"checkpointed cold sweep: {_RESULTS['checkpointed_min_s'] * 1e3:.2f} ms (min)")


# ----------------------------------------------------------------------
# Chaos parity: every recovery path reproduces the reference bit-exactly
# ----------------------------------------------------------------------


def test_chaos_injected_crash(tmp_path, fast_policy, reference, emit):
    plan = FaultPlan.plan(CHAOS_GRID, seed=11, state_dir=tmp_path, crashes=1)
    explorer = _cold_explorer(
        factory=plan.wrap(FACTORY),
        chunk_size=CHAOS_CHUNK,
        workers=2,
        resilience=fast_policy,
    )
    result = explorer.explore_arrays(CHAOS_GRID)
    assert_identical(result, reference)
    stats = explorer.last_supervision
    assert stats.crashes >= 1 and stats.respawns >= 1
    _RESULTS["crash_parity"] = "byte-identical"
    _RESULTS["crash_stats"] = stats.as_dict()
    emit(f"chaos crash: recovered byte-identical ({stats.summary()})")


def test_chaos_injected_timeout(tmp_path, reference, emit):
    plan = FaultPlan.plan(
        CHAOS_GRID, seed=13, state_dir=tmp_path, hangs=1, hang_s=30.0
    )
    policy = RetryPolicy(max_retries=2, backoff_base_s=0.001, chunk_timeout_s=2.0)
    explorer = _cold_explorer(
        factory=plan.wrap(FACTORY),
        chunk_size=CHAOS_CHUNK,
        workers=2,
        resilience=policy,
    )
    result = explorer.explore_arrays(CHAOS_GRID)
    assert_identical(result, reference)
    stats = explorer.last_supervision
    assert stats.timeouts >= 1
    _RESULTS["timeout_parity"] = "byte-identical"
    _RESULTS["timeout_stats"] = stats.as_dict()
    emit(f"chaos timeout: recovered byte-identical ({stats.summary()})")


def test_chaos_kill_then_resume(tmp_path, reference, emit):
    """A sweep killed mid-flight resumes from its checkpoint and ends
    byte-identical to never having crashed."""
    from concurrent.futures.process import BrokenProcessPool

    ckpt = tmp_path / "sweep.ckpt"
    plan = FaultPlan.plan(CHAOS_GRID, seed=19, state_dir=tmp_path, crashes=1)
    doomed = _cold_explorer(
        factory=plan.wrap(FACTORY), chunk_size=CHAOS_CHUNK, workers=2
    )
    with pytest.raises(BrokenProcessPool):
        doomed.explore_arrays(CHAOS_GRID, checkpoint=ckpt)
    resumed = _cold_explorer(
        factory=plan.wrap(FACTORY), chunk_size=CHAOS_CHUNK, workers=2
    )
    result = resumed.explore_arrays(CHAOS_GRID, checkpoint=ckpt, resume=True)
    assert_identical(result, reference)
    _RESULTS["resume_parity"] = "byte-identical"
    emit("chaos kill-then-resume: recovered byte-identical")


# ----------------------------------------------------------------------
# Containment parity: quarantine, watchdog, salvage-resume
# ----------------------------------------------------------------------


def test_chaos_poison_quarantine(tmp_path, fast_policy, reference, emit):
    """Deterministic killers are bisected out; survivors stay bit-exact."""
    plan = FaultPlan.plan(CHAOS_GRID, seed=23, state_dir=tmp_path, poisons=2)
    policy = RetryPolicy(max_retries=1, backoff_base_s=0.001, chunk_timeout_s=15.0)
    explorer = _cold_explorer(
        factory=plan.wrap(FACTORY),
        chunk_size=CHAOS_CHUNK,
        workers=2,
        resilience=policy,
    )
    result = explorer.explore_arrays(
        CHAOS_GRID, quarantine=QuarantineLedger(tmp_path / "poison.json")
    )
    assert len(result.quarantined) == 2
    assert {point_key(p) for p in result.quarantined} == {
        point_key(p) for p in plan.poison_points
    }
    assert_survivors_identical(result, reference, result.quarantined)
    stats = explorer.last_supervision
    assert stats.quarantined == 2
    _RESULTS["quarantine_parity"] = "byte-identical"
    _RESULTS["quarantine_stats"] = stats.as_dict()
    emit(f"chaos poison: 2 quarantined, survivors byte-identical ({stats.summary()})")


def test_chaos_watchdog_reap(tmp_path, reference, emit):
    """A wedged pool is reaped on stale heartbeats, far inside the hang."""
    plan = FaultPlan.plan(
        CHAOS_GRID, seed=37, state_dir=tmp_path, stales=1, stale_s=60.0
    )
    policy = RetryPolicy(
        max_retries=2,
        backoff_base_s=0.001,
        chunk_timeout_s=None,
        heartbeat_timeout_s=0.5,
    )
    explorer = _cold_explorer(
        factory=plan.wrap(FACTORY),
        chunk_size=CHAOS_CHUNK,
        workers=2,
        resilience=policy,
    )
    start = time.perf_counter()
    result = explorer.explore_arrays(CHAOS_GRID)
    wall = time.perf_counter() - start
    assert_identical(result, reference)
    stats = explorer.last_supervision
    assert stats.watchdog_reaps >= 1
    # The fault sleeps 60s; recovery well inside it proves the reap.
    assert wall < 30.0
    _RESULTS["watchdog_parity"] = "byte-identical"
    _RESULTS["watchdog_wall_s"] = wall
    _RESULTS["watchdog_stats"] = stats.as_dict()
    emit(f"chaos watchdog: reaped in {wall:.2f}s against a 60s hang, byte-identical")


def test_chaos_salvage_then_resume(tmp_path, fast_policy, reference, emit):
    """An irrecoverable pool salvages its prefix; the checkpoint + a
    quarantine ledger then finish the sweep byte-identically."""
    ckpt = tmp_path / "salvage.ckpt"
    plan = FaultPlan.plan(CHAOS_GRID, seed=31, state_dir=tmp_path, poisons=1)
    salvage_policy = RetryPolicy(
        max_retries=0,
        backoff_base_s=0.001,
        chunk_timeout_s=15.0,
        max_respawns=0,
        degrade_in_process=False,
        salvage=True,
    )
    doomed = _cold_explorer(
        factory=plan.wrap(FACTORY),
        chunk_size=CHAOS_CHUNK,
        workers=2,
        resilience=salvage_policy,
    )
    partial = doomed.explore_arrays(CHAOS_GRID, checkpoint=ckpt)
    assert not partial.complete and partial.failure is not None
    assert partial.failure.checkpoint == str(ckpt)

    resumed = _cold_explorer(
        factory=plan.wrap(FACTORY),
        chunk_size=CHAOS_CHUNK,
        workers=2,
        resilience=fast_policy,
    )
    result = resumed.explore_arrays(
        CHAOS_GRID,
        checkpoint=ckpt,
        resume=True,
        quarantine=QuarantineLedger(tmp_path / "poison.json"),
    )
    assert result.complete and len(result.quarantined) == 1
    assert_survivors_identical(result, reference, result.quarantined)
    _RESULTS["salvage_parity"] = "byte-identical"
    _RESULTS["salvage_report"] = partial.failure.as_dict()
    emit(
        f"chaos salvage: kept {partial.failure.completed_chunks}/"
        f"{partial.failure.total_chunks} chunks, resume byte-identical"
    )
