"""Extension benchmark: Moore's Law spent two ways (§6 discussion).

Quantifies the paper's Jevons-paradox remark across the full Imec node
range: shrinking the same chip every node versus doubling cores at
constant area.
"""

from __future__ import annotations

from repro.core.scenario import UseScenario
from repro.report.table import format_table
from repro.technode.roadmap import RoadmapPolicy, roadmap


def run_both():
    return {policy: roadmap(policy, 6) for policy in RoadmapPolicy}


def test_roadmap(benchmark, emit):
    trajectories = benchmark(run_both)
    for policy, points in trajectories.items():
        rows = [
            [
                p.generation,
                p.cores,
                p.embodied,
                p.perf,
                p.power,
                p.ncf(UseScenario.FIXED_WORK, 0.5),
                p.ncf(UseScenario.FIXED_TIME, 0.5),
            ]
            for p in points
        ]
        emit(
            format_table(
                ["gen", "cores", "embodied", "perf", "power", "NCF_fw", "NCF_ft"],
                rows,
                title=f"\n=== roadmap policy: {policy.value} (f=0.75, post-Dennard)",
            )
        )
    shrink_end = trajectories[RoadmapPolicy.SHRINK][-1]
    grow_end = trajectories[RoadmapPolicy.CONSTANT_AREA][-1]
    emit(
        f"after 6 nodes: shrink NCF_ft={shrink_end.ncf(UseScenario.FIXED_TIME, 0.5):.2f} "
        f"(perf {shrink_end.perf:.1f}x) vs constant-area "
        f"NCF_ft={grow_end.ncf(UseScenario.FIXED_TIME, 0.5):.2f} "
        f"(perf {grow_end.perf:.1f}x) - Jevons' paradox quantified"
    )
    assert shrink_end.ncf(UseScenario.FIXED_TIME, 0.5) < 1.0
    assert grow_end.ncf(UseScenario.FIXED_TIME, 0.5) > 1.0
    assert grow_end.perf > shrink_end.perf
