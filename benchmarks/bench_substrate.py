"""Benchmark: columnar substrate kernels vs their scalar twins.

This is the cold-sweep story the vector factories unlock: a fresh
10k-point grid evaluated end to end without constructing a single
per-point Python object. Three groups of measurements:

* substrate kernels (``repro.wafer.batch``, ``repro.amdahl.batch``,
  ``repro.dvfs.batch``) against per-point scalar loops, with a
  bit-exactness gate (``max abs diff == 0.0``) that runs before any
  timing is recorded, including the awkward corners — the 300 mm
  wafer's maximum practical die area, Seeds at pathological defect
  densities, and the asymmetric ``M >= N`` corners whose columnar
  mask must match the scalar ``DomainError`` skips row for row;
* the cold sweep itself: scalar ``Explorer.explore`` + histogram vs
  ``BatchExplorer.count_categories`` with a
  :class:`~repro.dse.factories.SymmetricMulticoreFactory`, gated at
  >= 5x;
* a byte-identical ``BatchExplorer.explore`` check with and without
  the vector factory (ordering, skips, values, cache contents).

Writes ``BENCH_substrate.json`` at the repo root so CI can gate the
parity invariants and archive the perf trajectory.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.amdahl.asymmetric import AsymmetricMulticore
from repro.amdahl.batch import (
    asymmetric_power,
    asymmetric_speedup,
    asymmetric_valid_mask,
    symmetric_energy,
    symmetric_power,
    symmetric_speedup,
)
from repro.amdahl.symmetric import SymmetricMulticore
from repro.core.design import DesignPoint
from repro.core.errors import DomainError
from repro.core.scenario import EMBODIED_DOMINATED
from repro.dse.batch import BatchExplorer, FactoryCache
from repro.dse.explorer import Explorer
from repro.dse.factories import (
    AsymmetricMulticoreFactory,
    DVFSOperatingPointFactory,
    SymmetricMulticoreFactory,
)
from repro.dse.grid import ParameterGrid, linear_range
from repro.dvfs.batch import scale_design_arrays
from repro.dvfs.operating_point import scale_design
from repro.wafer.batch import normalized_footprint_array
from repro.wafer.embodied import EmbodiedFootprintModel
from repro.wafer.geometry import WAFER_300MM
from repro.wafer.yield_models import MurphyYield, PoissonYield, SeedsYield

GRID = ParameterGrid(
    {
        "cores": list(range(1, 101)),
        "f": linear_range(0.50, 0.99, 100),
    }
)  # 10,000 points
BASELINE = DesignPoint.baseline("1-BCE single core")
MIN_COLD_SPEEDUP = 5.0

TRAJECTORY_PATH = Path(__file__).resolve().parent.parent / "BENCH_substrate.json"

_RESULTS: dict[str, object] = {
    "grid_points": len(GRID),
    "min_cold_speedup_gate": MIN_COLD_SPEEDUP,
}


def multicore_factory(params):
    return SymmetricMulticore(
        cores=params["cores"], parallel_fraction=params["f"]
    ).design_point()


def _max_abs_diff(batch: np.ndarray, scalar) -> float:
    return float(np.max(np.abs(np.asarray(batch) - np.asarray(scalar, dtype=np.float64))))


def _record_mean(key: str, benchmark, fallback) -> None:
    """Store the benchmark's mean runtime; time *fallback* by hand when
    the fixture did not collect stats (``--benchmark-disable`` runs)."""
    try:
        mean = float(benchmark.stats.stats.mean)
    except (AttributeError, TypeError):
        start = time.perf_counter()
        fallback()
        mean = time.perf_counter() - start
    _RESULTS[key] = mean


@pytest.fixture(scope="module", autouse=True)
def write_trajectory():
    """Emit BENCH_substrate.json once every benchmark has run, and gate
    the headline cold-sweep speedup at >= 5x."""
    yield
    if "sweep_cold_scalar_s" in _RESULTS and "sweep_cold_vector_s" in _RESULTS:
        speedup = float(_RESULTS["sweep_cold_scalar_s"]) / float(
            _RESULTS["sweep_cold_vector_s"]
        )
        _RESULTS["sweep_cold_speedup"] = speedup
    TRAJECTORY_PATH.write_text(json.dumps(_RESULTS, indent=2, default=str) + "\n")
    if "sweep_cold_speedup" in _RESULTS:
        assert _RESULTS["sweep_cold_speedup"] >= MIN_COLD_SPEEDUP, (
            f"cold vector sweep is only "
            f"{_RESULTS['sweep_cold_speedup']:.1f}x faster than scalar "
            f"(gate: {MIN_COLD_SPEEDUP}x)"
        )


# ----------------------------------------------------------------------
# Wafer kernels: batch vs per-point scalar, including the edge corners
# ----------------------------------------------------------------------
def test_wafer_kernels(benchmark, emit):
    # 100 mm^2 up to just inside the wafer's maximum practical die area
    # (at the root itself the de Vries CPW is exactly 0 and both the
    # scalar and the batch path raise DomainError).
    max_area = WAFER_300MM.max_practical_die_area_mm2() * (1.0 - 1e-9)
    areas = np.linspace(100.0, max_area, 2_000)
    models = [
        EmbodiedFootprintModel(yield_model=PoissonYield(defect_density_per_cm2=0.09)),
        EmbodiedFootprintModel(yield_model=MurphyYield(defect_density_per_cm2=0.09)),
        # Seeds at a pathologically high defect density: yields collapse
        # toward zero, stressing the 1/(1 + AD) tail.
        EmbodiedFootprintModel(yield_model=SeedsYield(defect_density_per_cm2=5.0)),
    ]
    worst = 0.0
    for model in models:
        batch = normalized_footprint_array(model, areas, 100.0)
        scalar = [model.normalized_footprint(float(a), 100.0) for a in areas]
        worst = max(worst, _max_abs_diff(batch, scalar))
    assert worst == 0.0, f"wafer kernels drifted from scalar by {worst}"
    _RESULTS["wafer_max_abs_diff"] = worst

    model = models[1]
    run = lambda: normalized_footprint_array(model, areas, 100.0)
    benchmark(run)
    _record_mean("wafer_batch_s", benchmark, run)
    start = time.perf_counter()
    for a in areas:
        model.normalized_footprint(float(a), 100.0)
    _RESULTS["wafer_scalar_s"] = time.perf_counter() - start
    emit(
        f"wafer: {len(areas)} areas up to {max_area:.0f} mm2, "
        f"3 yield models, max abs diff {worst}"
    )


# ----------------------------------------------------------------------
# Amdahl kernels: batch vs scalar constructors, incl. invalid corners
# ----------------------------------------------------------------------
def test_amdahl_kernels(benchmark, emit):
    cores = np.arange(1, 257, dtype=np.float64)
    f = 0.95
    fractions = np.full_like(cores, f)
    speedups = symmetric_speedup(cores, fractions)
    powers = symmetric_power(cores, fractions, 0.3)
    energies = symmetric_energy(cores, fractions, 0.3)
    worst = 0.0
    for i, n in enumerate(cores):
        model = SymmetricMulticore(cores=int(n), parallel_fraction=f, leakage=0.3)
        worst = max(
            worst,
            abs(speedups[i] - model.speedup),
            abs(powers[i] - model.power),
            abs(energies[i] - model.energy),
        )
    # Asymmetric: the columnar mask vs the scalar DomainError corners.
    total = np.repeat(np.arange(2.0, 34.0), 33)
    big = np.tile(np.arange(1.0, 34.0), 32)
    mask = asymmetric_valid_mask(total, big)
    afrac = np.full_like(total, f)
    perf = asymmetric_speedup(total[mask], big[mask], afrac[mask])
    power = asymmetric_power(total[mask], big[mask], afrac[mask], 0.3)
    row = 0
    for i in range(len(total)):
        try:
            point = AsymmetricMulticore(
                total_bces=int(total[i]),
                big_core_bces=int(big[i]),
                parallel_fraction=f,
                leakage=0.3,
            ).design_point()
        except DomainError:
            assert not mask[i], "mask kept a corner the scalar model rejects"
            continue
        assert mask[i], "mask dropped a corner the scalar model accepts"
        worst = max(worst, abs(perf[row] - point.perf), abs(power[row] - point.power))
        row += 1
    assert worst == 0.0, f"amdahl kernels drifted from scalar by {worst}"
    _RESULTS["amdahl_max_abs_diff"] = worst

    run = lambda: symmetric_power(cores, fractions, 0.3)
    benchmark(run)
    _record_mean("amdahl_batch_s", benchmark, run)
    emit(f"amdahl: {len(cores)} sym + {int(mask.sum())} asym points, max abs diff {worst}")


# ----------------------------------------------------------------------
# DVFS kernels: batch vs scale_design
# ----------------------------------------------------------------------
def test_dvfs_kernels(benchmark, emit):
    design = DesignPoint("chip", area=20.0, perf=2.0, power=3.0)
    multipliers = np.asarray(linear_range(0.25, 2.0, 1_000))
    areas, perfs, powers = scale_design_arrays(design, multipliers)
    worst = 0.0
    for i, s in enumerate(multipliers):
        point = scale_design(design, float(s))
        worst = max(
            worst,
            abs(areas[i] - point.area),
            abs(perfs[i] - point.perf),
            abs(powers[i] - point.power),
        )
    assert worst == 0.0, f"dvfs kernels drifted from scalar by {worst}"
    _RESULTS["dvfs_max_abs_diff"] = worst

    run = lambda: scale_design_arrays(design, multipliers)
    benchmark(run)
    _record_mean("dvfs_batch_s", benchmark, run)
    emit(f"dvfs: {len(multipliers)} operating points, max abs diff {worst}")


# ----------------------------------------------------------------------
# The headline: cold 10k-point sweep, scalar vs columnar
# ----------------------------------------------------------------------
def test_cold_sweep_scalar(benchmark, emit):
    def run():
        explorer = Explorer(
            factory=multicore_factory, baseline=BASELINE, weight=EMBODIED_DOMINATED
        )
        return Explorer.count_categories(explorer.explore(GRID))

    counts = benchmark(run)
    _record_mean("sweep_cold_scalar_s", benchmark, run)
    assert sum(counts.values()) == len(GRID)
    emit(f"cold scalar sweep: {len(GRID)} points")


def test_cold_sweep_vector(benchmark, emit):
    factory = SymmetricMulticoreFactory()

    # Parity gate before timing: byte-identical NCFs and verdicts
    # against the scalar Explorer.
    scalar_results = Explorer(
        factory=multicore_factory, baseline=BASELINE, weight=EMBODIED_DOMINATED
    ).explore(GRID)
    vector_results = BatchExplorer(
        factory=factory, baseline=BASELINE, weight=EMBODIED_DOMINATED
    ).explore(GRID)
    assert list(vector_results) == list(scalar_results)
    max_diff = max(
        max(
            abs(a.ncf_fixed_work - b.ncf_fixed_work)
            for a, b in zip(vector_results, scalar_results)
        ),
        max(
            abs(a.ncf_fixed_time - b.ncf_fixed_time)
            for a, b in zip(vector_results, scalar_results)
        ),
    )
    assert max_diff == 0.0
    _RESULTS["sweep_max_abs_ncf_diff"] = max_diff

    def run():
        # A fresh explorer each iteration keeps the cache empty: this
        # times the true cold path, not the re-sweep path.
        explorer = BatchExplorer(
            factory=factory,
            baseline=BASELINE,
            weight=EMBODIED_DOMINATED,
            cache=FactoryCache(factory),
        )
        return explorer.count_categories(GRID)

    counts = benchmark(run)
    _record_mean("sweep_cold_vector_s", benchmark, run)
    assert sum(counts.values()) == len(GRID)
    scalar_counts = Explorer.count_categories(scalar_results)
    assert counts == scalar_counts
    _RESULTS["sweep_category_counts"] = {
        category.value: count for category, count in counts.items()
    }
    emit(f"cold vector sweep: {len(GRID)} points, max abs NCF diff {max_diff}")


# ----------------------------------------------------------------------
# Byte-identical explore with and without the vector factory
# ----------------------------------------------------------------------
def test_explore_byte_identical(emit):
    vector = BatchExplorer(
        factory=SymmetricMulticoreFactory(),
        baseline=BASELINE,
        weight=EMBODIED_DOMINATED,
    )
    plain = BatchExplorer(
        factory=multicore_factory, baseline=BASELINE, weight=EMBODIED_DOMINATED
    )
    assert list(vector.explore(GRID)) == list(plain.explore(GRID))
    assert vector.last_sweep is not None and vector.last_sweep.mode == "columnar"
    assert plain.last_sweep is not None and plain.last_sweep.mode == "scalar"
    assert vector.cache.stats() == plain.cache.stats()
    _RESULTS["explore_byte_identical"] = True

    # The asymmetric space exercises skips: masked corners on the vector
    # path, DomainError on the scalar path, identical output either way.
    agrid = ParameterGrid({"n": [2, 3, 4, 6, 8, 16], "m": [1, 4, 8]})
    avf = AsymmetricMulticoreFactory(parallel_fraction=0.9)

    def plain_asym(params):
        return AsymmetricMulticore(
            total_bces=params["n"],
            big_core_bces=params["m"],
            parallel_fraction=0.9,
        ).design_point()

    a_vec = BatchExplorer(
        factory=avf, baseline=BASELINE, weight=EMBODIED_DOMINATED
    ).explore(agrid)
    a_plain = BatchExplorer(
        factory=plain_asym, baseline=BASELINE, weight=EMBODIED_DOMINATED
    ).explore(agrid)
    assert list(a_vec) == list(a_plain)
    assert len(a_vec) < len(agrid)  # some corners really were skipped
    _RESULTS["explore_skip_parity"] = True
    emit(
        f"explore byte-identical with/without VectorFactory "
        f"({len(a_vec)}/{len(agrid)} asym points kept)"
    )


def test_dvfs_factory_parity(emit):
    design = DesignPoint("chip", area=20.0, perf=2.0, power=3.0)
    factory = DVFSOperatingPointFactory(design=design)
    sgrid = ParameterGrid({"s": linear_range(0.5, 1.5, 101)})
    vec = BatchExplorer(
        factory=factory, baseline=BASELINE, weight=EMBODIED_DOMINATED
    ).explore(sgrid)
    scalar = Explorer(
        factory=factory, baseline=BASELINE, weight=EMBODIED_DOMINATED
    ).explore(sgrid)
    assert list(vec) == list(scalar)
    _RESULTS["dvfs_factory_byte_identical"] = True
    emit(f"DVFS factory: {len(vec)} operating points byte-identical")
