"""Extension benchmark: why LCA-based validation must show a gap (§3.6).

Sweeps the chip's share of the device total and reports the relative
gap a *perfect* chip-level model would exhibit when scored against
LCA totals — reproducing the structure behind ACT's reported
"non-negligible gap".
"""

from __future__ import annotations

from repro.report.table import format_table
from repro.validation.lca import SystemLCA, chip_attribution_error, validation_gap

CHIP_SHARES = (0.05, 0.1, 0.25, 0.5, 0.8)
CHIP_RATIOS = (0.5, 0.7, 1.3, 2.0)


def sweep_gaps():
    rows = []
    for share in CHIP_SHARES:
        for ratio in CHIP_RATIOS:
            rows.append((share, ratio, validation_gap(ratio, share)))
    return rows


def test_validation_gap(benchmark, emit):
    rows = benchmark(sweep_gaps)
    emit(
        format_table(
            ["chip share of device", "true chip ratio", "apparent gap vs LCA"],
            [[s, r, g] for s, r, g in rows],
            title="\n=== gap a PERFECT chip model shows against LCA totals (§3.6)",
        )
    )
    # The gap shrinks monotonically as the chip dominates the device.
    for ratio in CHIP_RATIOS:
        gaps = [g for s, r, g in rows if r == ratio]
        assert gaps == sorted(gaps, reverse=True)

    phone = SystemLCA("phone A", chip=12.0)
    phone_b = SystemLCA("phone B", chip=36.0)
    emit(
        f"attribution example: a 3.0x chip difference appears as a "
        f"{phone_b.total / phone.total:.2f}x total difference "
        f"(attribution error {chip_attribution_error(phone_b, phone):.2f}x)"
    )
    assert chip_attribution_error(phone_b, phone) > 2.0
