"""Shared fixtures for the benchmark harness.

Each ``bench_figure*.py`` regenerates one paper figure under
``pytest-benchmark`` timing and prints the same rows/series the paper
plots, so ``pytest benchmarks/ --benchmark-only`` doubles as the
experiment reproduction run. The ``emit`` fixture prints through
pytest's output capture so the tables land in the console/tee output.
"""

from __future__ import annotations

from typing import Callable

import pytest

from repro.report.series import FigureResult
from repro.report.table import format_table


@pytest.fixture
def emit(capsys) -> Callable[[str], None]:
    """Print *text* through pytest's capture (visible without -s)."""

    def _emit(text: str) -> None:
        with capsys.disabled():
            print(text)

    return _emit


@pytest.fixture
def emit_figure(emit) -> Callable[[FigureResult], None]:
    """Print every panel of a figure as the paper-shaped row table."""

    def _emit(figure: FigureResult) -> None:
        emit(f"\n=== {figure.figure_id}: {figure.caption}")
        for note in figure.notes:
            emit(f"    note: {note}")
        for panel in figure.panels:
            rows = [
                [series.name, point.label, point.x, point.y]
                for series in panel.series
                for point in series.points
            ]
            emit(
                format_table(
                    ["series", "label", panel.x_label, panel.y_label],
                    rows,
                    title=f"-- {panel.name}",
                )
            )

    return _emit
