#!/usr/bin/env python3
"""Scenario: should your SoC grow another fixed-function accelerator?

A mobile SoC team weighs three options with FOCAL (paper §5.3-§5.4):

1. one well-used accelerator (the H.264 example: +6.5 % area, 500x
   energy advantage) — find the utilization break-even per alpha
   regime;
2. a full dark-silicon estate (accelerators = 2/3 of the chip) — show
   why it cannot pay off on a mobile (embodied-dominated) device;
3. one *reconfigurable* fabric serving all the workloads — quantify the
   §5.4 discussion point that reuse amortizes embodied footprint.

Run:  python examples/accelerator_tradeoffs.py
"""

from __future__ import annotations

from repro.accel import (
    PAPER_DARK_SILICON,
    AcceleratedSystem,
    Accelerator,
    HAMEED_H264,
    SoC,
    breakeven_utilization,
    reconfigurable_equivalent,
)
from repro.core.scenario import UseScenario
from repro.report.table import format_table

FW = UseScenario.FIXED_WORK


def option_one() -> None:
    print("Option 1: a single H.264-class accelerator")
    rows = []
    for alpha, regime in ((0.8, "embodied-dominated (mobile)"), (0.2, "operational-dominated")):
        breakeven = breakeven_utilization(HAMEED_H264, alpha, FW)
        at_30 = AcceleratedSystem(HAMEED_H264, 0.3).ncf(alpha, FW)
        at_70 = AcceleratedSystem(HAMEED_H264, 0.7).ncf(alpha, FW)
        rows.append([regime, f"{breakeven:.1%}", f"{at_30:.3f}", f"{at_70:.3f}"])
    print(format_table(["regime", "break-even use", "NCF @30%", "NCF @70%"], rows))
    print(
        "Reading: on a mobile device the accelerator must run >26% of the\n"
        "time to pay for its silicon; if your codec runs a few percent of\n"
        "the time, the accelerator makes the phone LESS sustainable.\n"
    )


def option_two() -> None:
    print("Option 2: the dark-silicon estate (accelerators = 2/3 of chip)")
    rows = []
    for util in (0.0, 0.25, 0.5, 0.75, 1.0):
        rows.append(
            [
                f"{util:.0%}",
                f"{PAPER_DARK_SILICON.ncf(util, 0.8):.3f}",
                f"{PAPER_DARK_SILICON.ncf(util, 0.2):.3f}",
            ]
        )
    print(format_table(["estate utilization", "NCF (alpha=0.8)", "NCF (alpha=0.2)"], rows))
    op_breakeven = PAPER_DARK_SILICON.breakeven(0.2)
    feasible = PAPER_DARK_SILICON.breakeven_feasible(0.2)
    print(
        f"Reading: embodied-dominated NCF never drops below 1 (2.6x at idle);\n"
        f"operational-dominated break-even is {op_breakeven:.0%} utilization, "
        f"which the power\nbudget makes {'feasible' if feasible else 'infeasible'} "
        "- dark silicon is not sustainable (Finding #7).\n"
    )


def option_three() -> None:
    print("Option 3: one reconfigurable fabric instead of four fixed blocks")
    video = Accelerator(area_overhead=0.3, energy_advantage=300.0, name="video")
    isp = Accelerator(area_overhead=0.25, energy_advantage=200.0, name="ISP")
    npu = Accelerator(area_overhead=0.35, energy_advantage=400.0, name="NPU")
    audio = Accelerator(area_overhead=0.1, energy_advantage=150.0, name="audio")
    fixed = SoC.build(
        [(video, 0.2), (isp, 0.15), (npu, 0.25), (audio, 0.1)], name="fixed-function SoC"
    )
    fabric = reconfigurable_equivalent(fixed, area_premium=1.5)

    rows = []
    for soc in (fixed, fabric):
        rows.append(
            [
                soc.name,
                f"{soc.area:.2f}",
                f"{soc.energy:.4f}",
                f"{soc.ncf(0.8):.3f}",
                f"{soc.ncf(0.2):.3f}",
            ]
        )
    print(format_table(["design", "area", "energy", "NCF(0.8)", "NCF(0.2)"], rows))
    print(
        "Reading: identical energy profile, but the fabric carries one\n"
        "block's area instead of four - it wins on embodied footprint even\n"
        "with a 50% density premium (the paper's reconfigurability remark).\n"
    )


if __name__ == "__main__":
    print("All numbers relative to the bare host core.\n")
    option_one()
    option_two()
    option_three()
