#!/usr/bin/env python3
"""Scenario: monolithic or chiplets for a reticle-scale GPU?

A GPU team needs 800 mm^2 of logic. Splitting it into chiplets improves
yield (smaller dies dodge defects) but costs die-to-die interface area,
packaging footprint and a little performance. This script runs the
performance-per-wafer analysis (Zhang et al., the paper's ref. [52]) on
FOCAL's wafer/yield substrate and shows how the answer depends on the
defect density — mature vs leading-edge process.

Run:  python examples/chiplet_gpu.py
"""

from __future__ import annotations

from repro.core.errors import DomainError
from repro.multichip import ChipletPartition, best_partition, evaluate_partition
from repro.report.table import format_table
from repro.wafer import EmbodiedFootprintModel, MurphyYield

LOGIC_AREA = 800.0


def sweep(defect_density: float, title: str) -> None:
    model = EmbodiedFootprintModel(
        yield_model=MurphyYield(defect_density_per_cm2=defect_density)
    )
    rows = []
    for k in range(1, 9):
        try:
            o = evaluate_partition(ChipletPartition(k, LOGIC_AREA), model)
        except DomainError:
            continue
        rows.append(
            [
                k,
                f"{o.partition.die_area_mm2:.0f}",
                f"{o.die_yield:.2%}",
                f"{o.systems_per_wafer:.1f}",
                f"{o.performance:.3f}",
                f"{o.perf_per_wafer:.1f}",
            ]
        )
    print(
        format_table(
            ["chiplets", "die mm2", "yield", "systems/wafer", "perf", "perf/wafer"],
            rows,
            title=title,
        )
    )
    best = best_partition(LOGIC_AREA, max_chiplets=8, model=model)
    print(f"-> best: {best.partition.chiplets} chiplet(s)\n")


def main() -> None:
    print(f"Partitioning {LOGIC_AREA:g} mm^2 of GPU logic (10% D2D area,")
    print("10% packaging footprint, 2% perf loss per extra chiplet).\n")

    sweep(0.09, "Volume production process (D0 = 0.09/cm2, the paper's number)")
    sweep(0.30, "Early-ramp process (D0 = 0.30/cm2)")
    sweep(0.01, "Very mature process (D0 = 0.01/cm2)")

    print(
        "Reading: the worse the yield, the stronger the case for chiplets -\n"
        "on an early-ramp node splitting is a large embodied-footprint win\n"
        "(the same argument as the paper's §3.1 binning discussion: don't\n"
        "scrap silicon); on a very mature process the overheads win and the\n"
        "monolithic die is the sustainable choice."
    )


if __name__ == "__main__":
    main()
