#!/usr/bin/env python3
"""Scenario: your EDP dashboard says ship it. Should you?

Architects steer by EDP, perf/W and perf/mm^2 every day. This script
takes the paper's §5 mechanism catalogue and shows, metric by metric,
where those dashboards and FOCAL's sustainability verdict part ways —
§3.4's "holistic" argument as a concrete table.

Run:  python examples/classical_vs_focal.py
"""

from __future__ import annotations

from repro.core.metrics import ClassicMetric, disagreement, metric_ratio
from repro.report.table import format_table
from repro.studies.mechanisms import catalogue_pairs, mechanism_catalogue


def main() -> None:
    alpha = 0.8  # mobile / hyperscale: embodied dominates

    print("The §5 catalogue judged by EDP versus FOCAL (alpha = 0.8):\n")
    rows = []
    for mechanism, _section, design, baseline in catalogue_pairs():
        edp = metric_ratio(design, baseline, ClassicMetric.EDP)
        result = disagreement(design, baseline, ClassicMetric.EDP, alpha)
        rows.append(
            [
                mechanism,
                f"{edp:.3f}",
                "adopt" if result.metric_says_better else "reject",
                result.focal_category.value,
                "CONFLICT" if result.conflicting else "",
            ]
        )
    print(
        format_table(
            ["mechanism", "EDP goodness", "EDP says", "FOCAL says", ""], rows
        )
    )

    print("\nWhere each classical metric conflicts with FOCAL:")
    summary = []
    for metric in ClassicMetric:
        conflicts = [
            mechanism
            for mechanism, _s, design, baseline in catalogue_pairs()
            if disagreement(design, baseline, metric, alpha).conflicting
        ]
        summary.append(
            [metric.value, len(conflicts), ", ".join(conflicts[:3]) or "-"]
        )
    print(format_table(["metric", "#conflicts", "examples"], summary))

    total = mechanism_catalogue()
    print(
        f"\nReading: across {len(total) // 2} mechanisms, every classical\n"
        "metric endorses at least one design FOCAL calls less sustainable\n"
        "(EDP famously endorses the OoO core) or rejects a strongly\n"
        "sustainable one (perf metrics reject pipeline gating). That gap\n"
        "is the paper's case for optimizing area, energy and power\n"
        "*holistically* rather than through any single-ratio dashboard."
    )


if __name__ == "__main__":
    main()
