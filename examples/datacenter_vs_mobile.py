#!/usr/bin/env python3
"""Scenario: the same design choice on a phone versus in a datacenter.

FOCAL's alpha_E2O is not a free parameter — it encodes where a device's
carbon actually comes from. This script derives alpha per device class
with the bottom-up ACT-style model (paper §3.5), then shows how one
design decision (adopting the FSC core) lands differently:

* a battery-operated phone SoC: embodied-dominated (Gupta et al.);
* an always-on datacenter CPU: operational-dominated;

and closes with a Monte-Carlo robustness check of each verdict inside
its alpha uncertainty band.

Run:  python examples/datacenter_vs_mobile.py
"""

from __future__ import annotations

from repro.act.model import ActChipSpec, ActModel
from repro.core.design import DesignPoint
from repro.core.scenario import E2OWeight, UseScenario
from repro.core.classify import classify
from repro.dse.montecarlo import sample_verdicts
from repro.microarch.cores import FSC_CORE, OOO_CORE
from repro.report.table import format_table


def derive_alpha(spec: ActChipSpec, model: ActModel) -> float:
    """alpha_E2O = the device's embodied share of lifetime carbon."""
    return model.footprint(spec).embodied_share


def main() -> None:
    act = ActModel()
    phone = ActChipSpec("phone SoC", die_area_mm2=120.0, avg_power_w=0.25, node="5nm")
    server = ActChipSpec("server CPU", die_area_mm2=450.0, avg_power_w=180.0, node="7nm")

    rows = []
    alphas = {}
    for spec in (phone, server):
        fp = act.footprint(spec)
        alphas[spec.name] = fp.embodied_share
        rows.append(
            [
                spec.name,
                f"{fp.embodied_kg:.1f}",
                f"{fp.operational_kg:.1f}",
                f"{fp.embodied_share:.2f}",
            ]
        )
    print(
        format_table(
            ["device", "embodied kgCO2e", "operational kgCO2e", "derived alpha"],
            rows,
            title="Step 1: derive alpha_E2O bottom-up (simplified ACT)",
        )
    )
    print(
        "\nThe phone is embodied-dominated, the server operational-dominated\n"
        "- matching the regimes the paper adopts from Gupta et al.\n"
    )

    print("Step 2: the same decision - replace the OoO core with FSC:")
    decision_rows = []
    for name, alpha in alphas.items():
        verdict = classify(FSC_CORE, OOO_CORE, alpha)
        decision_rows.append(
            [
                name,
                f"{alpha:.2f}",
                f"{verdict.ncf_fixed_work:.3f}",
                f"{verdict.ncf_fixed_time:.3f}",
                verdict.category.value,
            ]
        )
    print(
        format_table(
            ["device", "alpha", "NCF_fw", "NCF_ft", "verdict"], decision_rows
        )
    )
    print(
        "\nFSC-for-OoO is strongly sustainable on both devices, but the\n"
        "*magnitude* differs: the power-hungry server saves far more\n"
        "(operational weight dominates there).\n"
    )

    print("Step 3: Monte-Carlo robustness inside each alpha band (+/-0.1):")
    base = DesignPoint.baseline()
    mc_rows = []
    for name, alpha in alphas.items():
        weight = E2OWeight(name, alpha=min(max(alpha, 0.1), 0.9), spread=0.1)
        probs = sample_verdicts(FSC_CORE, OOO_CORE, weight, samples=5000, seed=1)
        mc_rows.append(
            [name, f"{probs.strong:.1%}", f"{probs.weak:.1%}", f"{probs.less:.1%}"]
        )
    print(format_table(["device", "P(strong)", "P(weak)", "P(less)"], mc_rows))
    print(
        "\n100% strong in both bands: the FSC verdict survives the data\n"
        "uncertainty - the kind of conclusion the paper says we can trust."
    )

    # And a contrast: turbo boost on the server, which does NOT survive.
    boosted = DesignPoint("turbo", area=1.01, perf=1.2, power=1.2**3)
    verdict = classify(boosted, base, alphas["server CPU"])
    print(f"\nContrast - turbo boost on the server: {verdict.category}")


if __name__ == "__main__":
    main()
