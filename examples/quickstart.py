#!/usr/bin/env python3
"""Quickstart: assess a design choice's sustainability with FOCAL.

This walks the library's core loop on the paper's §5.6 example
(the Forward Slice Core vs in-order and out-of-order cores):

1. describe designs by the four first-order quantities
   (area, performance, power; energy is derived);
2. compute the Normalized Carbon Footprint under both lifetime
   scenarios — fixed-work (energy proxy) and fixed-time (power proxy,
   i.e. the rebound-effect case illustrated in the paper's Figure 2);
3. classify the choice as strongly / weakly / less sustainable;
4. check the verdict's robustness across the embodied-to-operational
   weight bands the paper sweeps (alpha = 0.8 +/- 0.1 and 0.2 +/- 0.1).

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    EMBODIED_DOMINATED,
    OPERATIONAL_DOMINATED,
    DesignPoint,
    UseScenario,
    classify,
    ncf,
    ncf_band,
    robust_classification,
)

# ---------------------------------------------------------------- 1 --
# A design point is (area, perf, power) relative to any consistent
# unit. Here everything is relative to the in-order core.
ino = DesignPoint.baseline("InO")
fsc = DesignPoint("FSC", area=1.01, perf=1.64, power=1.01)
ooo = DesignPoint("OoO", area=1.39, perf=1.75, power=2.32)

print("Designs (relative to InO):")
for core in (ino, fsc, ooo):
    print(
        f"  {core.name:>4}: area={core.area:5.2f}  perf={core.perf:5.2f}  "
        f"power={core.power:5.2f}  energy/work={core.energy:5.2f}"
    )

# ---------------------------------------------------------------- 2 --
# NCF < 1 means the design incurs a lower footprint than the baseline.
# Fixed-work uses the energy ratio; fixed-time (think: a device that is
# used *more* because it is faster — the rebound effect) uses power.
print("\nNCF of FSC vs OoO (alpha = embodied weight):")
for scenario in UseScenario:
    for alpha in (0.8, 0.2):
        value = ncf(fsc, ooo, scenario, alpha)
        print(f"  {scenario.value:>10}, alpha={alpha}: NCF = {value:.3f}")

# ---------------------------------------------------------------- 3 --
# The two scenarios together give the paper's three-way verdict.
print("\nClassification at alpha = 0.8:")
for design, baseline in ((fsc, ino), (fsc, ooo), (ooo, ino)):
    verdict = classify(design, baseline, alpha=0.8)
    print(f"  {design.name} vs {baseline.name}: {verdict.category}")

# ---------------------------------------------------------------- 4 --
# FOCAL's answer to data uncertainty: sweep the alpha bands; a verdict
# that holds across both regimes "holds true despite the unknowns".
print("\nRobustness across both alpha regimes (0.7-0.9 and 0.1-0.3):")
for design, baseline in ((fsc, ooo), (ooo, ino)):
    conclusion = robust_classification(
        design, baseline, [EMBODIED_DOMINATED, OPERATIONAL_DOMINATED]
    )
    status = (
        f"unanimous: {conclusion.consensus}"
        if conclusion.unanimous
        else f"depends on alpha: {[c.value for c in conclusion.categories]}"
    )
    print(f"  {design.name} vs {baseline.name}: {status}")

# Error bars, exactly as the paper reports them:
band = ncf_band(fsc, ooo, UseScenario.FIXED_WORK, EMBODIED_DOMINATED)
print(
    f"\nFSC vs OoO fixed-work NCF with error bars: "
    f"{band.nominal:.3f} [{band.low:.3f}, {band.high:.3f}]"
)
print("=> FSC cuts the footprint by roughly a third to a half versus OoO")
print("   at a 6.3% performance cost - the paper's Finding #11.")
