#!/usr/bin/env python3
"""Regenerate every reproducible figure and the findings table.

Writes each figure as CSV + Markdown + standalone HTML (SVG charts)
into ``out/`` and prints the
findings scoreboard — the one-command full reproduction.

Run:  python examples/reproduce_paper.py [output_dir]
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.report.export import write_figure
from repro.report.table import format_mapping_rows
from repro.studies.findings import all_findings
from repro.studies.registry import run_study, study_names


def main(out_dir: str = "out") -> int:
    target = Path(out_dir)
    target.mkdir(parents=True, exist_ok=True)

    print(f"Regenerating {len(study_names())} figures into {target}/ ...")
    for name in study_names():
        figure = run_study(name)
        for suffix in ("csv", "md", "html"):
            path = write_figure(figure, target / f"{name}.{suffix}")
            print(f"  wrote {path} ({figure.total_points} points)")

    checks = all_findings()
    table = format_mapping_rows(
        [c.as_dict() for c in checks],
        columns=["finding", "claim", "paper", "computed", "passed"],
        title="\nFindings #1-#17 + case study:",
    )
    print(table)
    (target / "findings.txt").write_text(table + "\n")

    failed = [c for c in checks if not c.passed]
    print(f"\n{len(checks) - len(failed)}/{len(checks)} checks reproduce")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1] if len(sys.argv) > 1 else "out"))
