#!/usr/bin/env python3
"""Scenario: planning a next-generation multicore under a power cap.

You are the architect of a quad-core chip moving to the next technology
node (the paper's §7 case study). Marketing wants 8 cores; this script
asks FOCAL what each option costs the planet:

* iso-power constraint: more cores force the clock (and voltage) down
  cubically;
* embodied footprint: area halves per shrink, but the per-wafer
  manufacturing footprint grows 25.2 % (Imec);
* the verdict per core count, for both alpha regimes — then a what-if:
  how does the answer change if the software team delivers f = 0.95
  instead of f = 0.75?

Run:  python examples/sustainable_multicore_design.py
"""

from __future__ import annotations

from repro.core.scenario import UseScenario
from repro.report.table import format_table
from repro.studies.case_study import CaseStudyConfig, case_study


def show(config: CaseStudyConfig, title: str) -> None:
    points = case_study(config)
    rows = []
    for p in points:
        rows.append(
            [
                p.cores,
                f"{p.frequency_multiplier:.3f}x",
                f"{p.perf:.3f}x",
                f"{p.embodied:.3f}x",
                f"{p.ncf(UseScenario.FIXED_WORK, 0.8):.3f}",
                f"{p.ncf(UseScenario.FIXED_TIME, 0.8):.3f}",
                p.category(0.8).value,
                p.category(0.2).value,
            ]
        )
    print(
        format_table(
            [
                "cores",
                "freq",
                "perf",
                "embodied",
                "NCF_fw(0.8)",
                "NCF_ft(0.8)",
                "embodied-dom",
                "operational-dom",
            ],
            rows,
            title=title,
        )
    )
    print()


def main() -> None:
    print("Everything relative to the old-node quad-core.\n")

    show(
        CaseStudyConfig(),
        "Paper configuration: f = 0.75, gamma = 0.2, iso-power",
    )
    print(
        "Reading: the sober 4-6 core options are strongly sustainable AND\n"
        "deliver 1.41-1.52x performance; 7-8 cores are weakly sustainable or\n"
        "worse. A market that only rewards peak performance pushes toward\n"
        "the unsustainable end - the paper's closing warning.\n"
    )

    show(
        CaseStudyConfig(parallel_fraction=0.95),
        "What-if: the software team parallelizes to f = 0.95",
    )
    print(
        "Reading: with highly parallel software the extra cores translate\n"
        "into real performance, but the embodied penalty of a full-size die\n"
        "is unchanged - the sustainable pick is still the smaller chip,\n"
        "now with a bigger performance win (Finding #3: parallelize\n"
        "software rather than adding cores).\n"
    )

    # The crossover, found programmatically: largest core count that is
    # strongly sustainable in both regimes under the paper's workload.
    points = case_study(CaseStudyConfig(core_options=tuple(range(4, 9))))
    sustainable = [
        p.cores
        for p in points
        if p.category(0.8).value == "strongly sustainable"
        and p.category(0.2).value == "strongly sustainable"
    ]
    print(f"Strongly sustainable core counts (both regimes): {sustainable}")
    print(f"=> recommended design: {max(sustainable)} cores")


if __name__ == "__main__":
    main()
