#!/usr/bin/env python3
"""Scenario: how much should you trust a sustainability verdict?

The paper's §2 is all about inherent data uncertainty. This script
demonstrates the three uncertainty tools the library provides, on one
running question — "is replacing the OoO core with FSC the right
call?" — plus a deliberately marginal design to show what an
*untrustworthy* verdict looks like:

1. exact alpha-band analysis (the paper's error bars);
2. tornado sensitivity: which input moves the NCF most;
3. Monte-Carlo measurement noise: how often the verdict survives
   errors in the area/energy/power numbers themselves.

Run:  python examples/uncertainty_analysis.py
"""

from __future__ import annotations

from repro.core.design import DesignPoint
from repro.core.ncf import ncf_band, ncf_from_ratios
from repro.core.scenario import EMBODIED_DOMINATED, OPERATIONAL_DOMINATED, UseScenario
from repro.dse.montecarlo import sample_measurement_noise
from repro.dse.sensitivity import tornado
from repro.microarch.cores import FSC_CORE, OOO_CORE
from repro.report.table import format_table

FW = UseScenario.FIXED_WORK


def alpha_bands() -> None:
    print("1) Alpha-band analysis (the paper's error bars)")
    rows = []
    for weight in (EMBODIED_DOMINATED, OPERATIONAL_DOMINATED):
        band = ncf_band(FSC_CORE, OOO_CORE, FW, weight)
        rows.append(
            [
                weight.name,
                f"{band.nominal:.3f}",
                f"[{band.low:.3f}, {band.high:.3f}]",
                "yes" if band.below_one() else "no",
            ]
        )
    print(format_table(["regime", "NCF_fw", "band", "robustly < 1?"], rows))
    print(
        "   The whole band sits below 1 in both regimes: the FSC verdict\n"
        "   does not depend on the embodied/operational split.\n"
    )


def tornado_analysis() -> None:
    print("2) Tornado: which input uncertainty moves the verdict most?")
    nominal = {
        "alpha": 0.8,
        "area_ratio": FSC_CORE.area / OOO_CORE.area,
        "energy_ratio": FSC_CORE.energy / OOO_CORE.energy,
    }

    def metric(params):
        return ncf_from_ratios(
            params["area_ratio"], params["energy_ratio"], params["alpha"]
        )

    entries = tornado(
        metric,
        nominal,
        {
            "alpha": (0.7, 0.9),
            "area_ratio": (nominal["area_ratio"] * 0.8, nominal["area_ratio"] * 1.2),
            "energy_ratio": (
                nominal["energy_ratio"] * 0.8,
                nominal["energy_ratio"] * 1.2,
            ),
        },
    )
    rows = [
        [e.parameter, f"{e.metric_at_low:.3f}", f"{e.metric_at_high:.3f}", f"{e.swing:.3f}"]
        for e in entries
    ]
    print(format_table(["parameter (+/-20% or band)", "low", "high", "swing"], rows))
    print(
        f"   Largest lever: {entries[0].parameter}. Even so, every endpoint\n"
        "   stays below 1 - the conclusion is insensitive to the inputs.\n"
    )


def measurement_noise() -> None:
    print("3) Monte-Carlo measurement noise on area/energy/power")
    marginal = DesignPoint("marginal", area=0.98, perf=1.0, power=0.98)
    baseline = DesignPoint.baseline()
    rows = []
    for name, design, base in (
        ("FSC vs OoO", FSC_CORE, OOO_CORE),
        ("marginal 2% win", marginal, baseline),
    ):
        for sigma in (0.05, 0.15):
            probs = sample_measurement_noise(
                design, base, alpha=0.8, relative_sigma=sigma, samples=20_000, seed=42
            )
            rows.append(
                [name, f"{sigma:.0%}", f"{probs.strong:.1%}", f"{probs.less:.1%}"]
            )
    print(
        format_table(
            ["comparison", "meas. noise", "P(strong)", "P(less)"], rows
        )
    )
    print(
        "   FSC's ~35% margins shrug off even 15% measurement error; the\n"
        "   marginal 2% design flips constantly - exactly the kind of\n"
        "   conclusion the paper warns should not be trusted."
    )


if __name__ == "__main__":
    alpha_bands()
    tornado_analysis()
    measurement_noise()
