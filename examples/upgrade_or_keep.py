#!/usr/bin/env python3
"""Scenario: should the fleet upgrade, and how hard does rebound bite?

An infrastructure team weighs replacing 28 nm servers with 3 nm ones.
Three analyses, all on FOCAL's machinery:

1. **GreenChip indifference point** — years of service before the new
   machine's embodied footprint is paid back by its power savings;
2. **junkyard amortization** — what keeping the old machine longer does
   to its footprint per unit of work;
3. **rebound stress test** — the upgrade's NCF as usage and deployment
   rebound kick in (the §3.7 discussion made quantitative).

Run:  python examples/upgrade_or_keep.py
"""

from __future__ import annotations

from repro.act.model import ActChipSpec
from repro.core.design import DesignPoint
from repro.lifetime import device_from_act, footprint_per_work, indifference_point
from repro.rebound import ReboundModel, rebound_ncf, usage_rebound_tipping_point
from repro.report.table import format_table


def main() -> None:
    old = device_from_act(
        ActChipSpec("28nm server", die_area_mm2=350.0, avg_power_w=300.0, node="28nm"),
        performance=1.0,
    )
    new = device_from_act(
        ActChipSpec("3nm server", die_area_mm2=300.0, avg_power_w=120.0, node="3nm"),
        performance=2.5,
    )

    # ---- 1: indifference point -------------------------------------
    t_star = indifference_point(old, new)
    print(
        f"1) GreenChip indifference point: the 3nm server pays back its\n"
        f"   {new.embodied:.0f} kg embodied footprint after {t_star:.2f} years "
        f"of service\n   (old burns {old.operational_rate:.0f} kg/yr, "
        f"new {new.operational_rate:.0f} kg/yr).\n"
    )

    # ---- 2: junkyard amortization ----------------------------------
    rows = [
        [f"{t:g} yr", f"{footprint_per_work(old, t):.1f}", f"{footprint_per_work(new, t):.1f}"]
        for t in (1.0, 3.0, 6.0, 10.0)
    ]
    print(
        format_table(
            ["service life", "old kg/work-yr", "new kg/work-yr"],
            rows,
            title="2) footprint per unit of work vs service life (junkyard effect)",
        )
    )
    print(
        "   Longer lifetimes amortize embodied carbon; the new machine's\n"
        "   per-work footprint also benefits from its 2.5x throughput.\n"
    )

    # ---- 3: rebound stress test ------------------------------------
    old_design = DesignPoint("old", area=old.embodied, perf=1.0, power=old.operational_rate)
    new_design = DesignPoint(
        "new", area=new.embodied, perf=2.5, power=new.operational_rate
    )
    alpha = 0.2  # always-on servers: operational-dominated
    rows = []
    for r, d in ((0.0, 0.0), (0.5, 0.0), (1.0, 0.0), (1.0, 0.5), (1.0, 1.0)):
        value = rebound_ncf(new_design, old_design, alpha, ReboundModel(r, d))
        rows.append([f"{r:g}", f"{d:g}", f"{value:.3f}", "yes" if value < 1 else "NO"])
    print(
        format_table(
            ["usage elasticity", "deployment elasticity", "NCF", "still pays?"],
            rows,
            title="3) upgrade NCF under rebound (alpha = 0.2)",
        )
    )
    tip = usage_rebound_tipping_point(new_design, old_design, alpha)
    if tip is None:
        print(
            "\n   Verdict: the upgrade survives even full usage rebound -\n"
            "   strongly sustainable in the paper's terms. Only deployment\n"
            "   rebound (buying more servers because they are cheap to run)\n"
            "   can undo it - Jevons' paradox is a fleet-size effect here."
        )
    else:
        print(f"\n   Verdict: the upgrade stops paying at usage elasticity {tip:.2f}.")


if __name__ == "__main__":
    main()
