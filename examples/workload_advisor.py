#!/usr/bin/env python3
"""Scenario: which mechanisms should each product line invest in?

An SoC vendor serves three product lines — phones, desktops, and
datacenter parts. This script runs FOCAL's mechanism advisor on each
workload class under the appropriate footprint regime and prints the
ranked shortlist, then highlights the mechanisms whose verdicts *flip*
between product lines (the ones where a one-size-fits-all roadmap would
get sustainability wrong).

Run:  python examples/workload_advisor.py
"""

from __future__ import annotations

from repro.core.scenario import EMBODIED_DOMINATED, OPERATIONAL_DOMINATED
from repro.report.table import format_table
from repro.workloads import advise, workload_by_name

PRODUCT_LINES = (
    ("mobile", EMBODIED_DOMINATED),  # battery devices: embodied dominates
    ("desktop", OPERATIONAL_DOMINATED),  # always-connected: operational
    ("datacenter", EMBODIED_DOMINATED),  # hyperscale servers: embodied
)


def main() -> None:
    verdicts: dict[str, dict[str, str]] = {}
    for workload_name, regime in PRODUCT_LINES:
        workload = workload_by_name(workload_name)
        recommendations = advise(workload, regime)
        rows = [
            [
                rec.mechanism,
                rec.category.value,
                f"{rec.verdict.ncf_fixed_work:.3f}",
                f"{rec.verdict.ncf_fixed_time:.3f}",
                f"{rec.perf_ratio:.2f}",
            ]
            for rec in recommendations
        ]
        print(
            format_table(
                ["mechanism", "verdict", "NCF_fw", "NCF_ft", "perf"],
                rows,
                title=f"== {workload_name} ({regime.name}) ==",
            )
        )
        print()
        for rec in recommendations:
            verdicts.setdefault(rec.mechanism, {})[workload_name] = rec.category.value

    flips = {
        mechanism: per_line
        for mechanism, per_line in verdicts.items()
        if len(set(per_line.values())) > 1
    }
    print("Mechanisms whose verdict depends on the product line:")
    for mechanism, per_line in flips.items():
        detail = ", ".join(f"{line}: {verdict}" for line, verdict in per_line.items())
        print(f"  - {mechanism}: {detail}")
    print(
        "\nReading: speculation, caching and acceleration are not good or\n"
        "bad per se - their sustainability is a property of the workload\n"
        "and the device's footprint split. The mechanisms that are robust\n"
        "across all lines (gating, low-complexity cores, DVFS) are the\n"
        "safe sustainability investments."
    )


if __name__ == "__main__":
    main()
