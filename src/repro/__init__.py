"""FOCAL: a first-order carbon model to assess processor sustainability.

A faithful, full-scope reproduction of Eeckhout, *FOCAL* (ASPLOS 2024).

The package is organized as the paper is:

* :mod:`repro.core` — design points, fixed-work/fixed-time scenarios,
  the NCF metric, strong/weak/less sustainability (§3-§4);
* :mod:`repro.wafer` — chips-per-wafer and yield models behind the
  embodied-footprint proxy (§3.1, Figure 1);
* :mod:`repro.technode` — Imec manufacturing data, Dennard and
  post-Dennard scaling, die shrinks (§6);
* :mod:`repro.amdahl` — Hill-Marty/Woo-Lee multicore laws (§5.1-§5.2);
* :mod:`repro.accel` — accelerators and dark silicon (§5.3-§5.4);
* :mod:`repro.cache` — the LLC study (§5.5);
* :mod:`repro.microarch` — InO/FSC/OoO cores (§5.6);
* :mod:`repro.speculation` — branch prediction and runahead (§5.7);
* :mod:`repro.dvfs` and :mod:`repro.gating` — frequency scaling, turbo
  boost and pipeline gating (§5.8-§5.9);
* :mod:`repro.act` — a simplified bottom-up ACT comparator (§3.5);
* :mod:`repro.dse` — sweeps, Pareto frontiers, break-evens,
  sensitivity, Monte-Carlo robustness;
* :mod:`repro.studies` — one driver per paper figure plus the
  Findings #1-#17 verification table;
* :mod:`repro.report` — series, tables, ASCII charts, exporters;
* :mod:`repro.cli` — the ``focal`` command.

Quick start::

    from repro import DesignPoint, UseScenario, ncf, classify

    fsc = DesignPoint("FSC", area=1.01, perf=1.64, power=1.01)
    ino = DesignPoint.baseline("InO")
    print(ncf(fsc, ino, UseScenario.FIXED_WORK, alpha=0.8))
    print(classify(fsc, ino, alpha=0.8).category)
"""

from .core import (
    BALANCED,
    EMBODIED_DOMINATED,
    OPERATIONAL_DOMINATED,
    STANDARD_WEIGHTS,
    CheckpointError,
    ConfigurationError,
    ConvergenceError,
    DesignPoint,
    DomainError,
    E2OWeight,
    Interval,
    NCFAssessment,
    NCFBand,
    ParetoPoint,
    ReproError,
    ResilienceError,
    RobustConclusion,
    Sustainability,
    UnknownStudyError,
    UseScenario,
    ValidationError,
    Verdict,
    WorkerPoolError,
    assess,
    classify,
    classify_pair,
    classify_values,
    ncf,
    ncf_band,
    ncf_from_ratios,
    pareto_designs,
    pareto_frontier,
    relative_footprint,
    robust_classification,
)
from .studies import all_findings, case_study, run_study, study_names

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core re-exports (the primary public API)
    "DesignPoint",
    "UseScenario",
    "E2OWeight",
    "EMBODIED_DOMINATED",
    "OPERATIONAL_DOMINATED",
    "BALANCED",
    "STANDARD_WEIGHTS",
    "ncf",
    "ncf_from_ratios",
    "ncf_band",
    "relative_footprint",
    "NCFBand",
    "NCFAssessment",
    "assess",
    "Sustainability",
    "Verdict",
    "classify",
    "classify_values",
    "classify_pair",
    "Interval",
    "RobustConclusion",
    "robust_classification",
    "ParetoPoint",
    "pareto_frontier",
    "pareto_designs",
    # errors
    "ReproError",
    "ValidationError",
    "DomainError",
    "ConvergenceError",
    "ConfigurationError",
    "UnknownStudyError",
    "ResilienceError",
    "CheckpointError",
    "WorkerPoolError",
    # studies
    "run_study",
    "study_names",
    "all_findings",
    "case_study",
]
