"""Hardware acceleration and dark silicon (paper §5.3–§5.4, Figure 5)."""

from .accelerator import (
    HAMEED_H264,
    AcceleratedSystem,
    Accelerator,
    breakeven_utilization,
)
from .dark_silicon import PAPER_DARK_SILICON, DarkSiliconSoC
from .soc import ScheduledAccelerator, SoC, reconfigurable_equivalent

__all__ = [
    "Accelerator",
    "AcceleratedSystem",
    "HAMEED_H264",
    "breakeven_utilization",
    "DarkSiliconSoC",
    "PAPER_DARK_SILICON",
    "SoC",
    "ScheduledAccelerator",
    "reconfigurable_equivalent",
]
