"""Hardware-acceleration sustainability model (paper §5.3, Figure 5a).

The paper's running example is Hameed et al.'s H.264 accelerator: +6.5 %
chip area, the *same* performance as the host out-of-order core, and
500x less energy for the work it runs. The question FOCAL asks: for
what fraction of time must the accelerator be used for the extra
embodied footprint to pay off?

This module implements a slightly more general model — the accelerator
may also speed the offloaded work up and may leak when idle — with the
paper's configuration as the default. With ``speedup = 1`` and no
leakage the model reduces exactly to

    NCF(t) = alpha (1 + a) + (1 - alpha) ((1 - t) + t / r)

with ``a`` the area overhead, ``r`` the energy advantage and ``t`` the
fraction of time on the accelerator; fixed-work and fixed-time coincide
because performance is unchanged (Figure 5 accordingly shows a single
curve per alpha regime).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.design import DesignPoint
from ..core.errors import ConvergenceError
from ..core.ncf import ncf
from ..core.quantities import (
    ensure_fraction,
    ensure_non_negative,
    ensure_positive,
)
from ..core.scenario import UseScenario

__all__ = ["Accelerator", "AcceleratedSystem", "HAMEED_H264"]


@dataclass(frozen=True, slots=True)
class Accelerator:
    """An on-chip fixed-function accelerator, relative to its host core.

    Parameters
    ----------
    area_overhead:
        Extra chip area as a fraction of the host core's area (0.065
        for the paper's H.264 example; 2.0 for the dark-silicon SoC).
    energy_advantage:
        How many times less energy the accelerator needs per unit of
        work compared to the host core (500 in the paper).
    speedup:
        Performance of the accelerator on the offloaded work relative
        to the host core (1.0 in the paper: "similar performance").
    idle_leakage:
        Accelerator leakage power, as a fraction of host-core active
        power, while the accelerator is *not* in use (0 in the paper).
    host_idle_leakage:
        Host-core leakage, as a fraction of its active power, while the
        accelerator *is* in use (0 in the paper: the core is gated).
    """

    area_overhead: float
    energy_advantage: float
    speedup: float = 1.0
    idle_leakage: float = 0.0
    host_idle_leakage: float = 0.0
    name: str = "accelerator"

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "area_overhead", ensure_non_negative(self.area_overhead, "area_overhead")
        )
        object.__setattr__(
            self,
            "energy_advantage",
            ensure_positive(self.energy_advantage, "energy_advantage"),
        )
        object.__setattr__(self, "speedup", ensure_positive(self.speedup, "speedup"))
        object.__setattr__(
            self, "idle_leakage", ensure_non_negative(self.idle_leakage, "idle_leakage")
        )
        object.__setattr__(
            self,
            "host_idle_leakage",
            ensure_non_negative(self.host_idle_leakage, "host_idle_leakage"),
        )

    @property
    def energy_per_work(self) -> float:
        """Accelerator energy per unit work, host core = 1."""
        return 1.0 / self.energy_advantage

    @property
    def active_power(self) -> float:
        """Accelerator power while active: (work/time) x (energy/work)."""
        return self.speedup * self.energy_per_work


#: The paper's example: Hameed et al.'s H.264 accelerator.
HAMEED_H264 = Accelerator(
    area_overhead=0.065, energy_advantage=500.0, name="H.264 (Hameed et al.)"
)


@dataclass(frozen=True, slots=True)
class AcceleratedSystem:
    """A host core plus one accelerator used a given fraction of time.

    ``utilization`` is the fraction of total execution *time* spent on
    the accelerator (the paper's x-axis). The host core is the
    normalization baseline: area = perf = power = 1.
    """

    accelerator: Accelerator
    utilization: float

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "utilization", ensure_fraction(self.utilization, "utilization")
        )

    # -- first-order quantities (host core = 1) -------------------------
    @property
    def area(self) -> float:
        return 1.0 + self.accelerator.area_overhead

    @property
    def perf(self) -> float:
        """Work per unit time: the core contributes ``1 - t``, the
        accelerator ``t * speedup``."""
        t = self.utilization
        return (1.0 - t) + t * self.accelerator.speedup

    @property
    def power(self) -> float:
        """Average power over the (unit) execution time."""
        t = self.utilization
        acc = self.accelerator
        core_power = (1.0 - t) * 1.0 + t * acc.host_idle_leakage
        accel_power = t * acc.active_power + (1.0 - t) * acc.idle_leakage
        return core_power + accel_power

    @property
    def energy(self) -> float:
        """Energy per unit work = power x time / work."""
        return self.power / self.perf

    def design_point(self, name: str | None = None) -> DesignPoint:
        return DesignPoint(
            name=name or f"{self.accelerator.name} @ t={self.utilization:g}",
            area=self.area,
            perf=self.perf,
            power=self.power,
        )

    def ncf(self, alpha: float, scenario: UseScenario = UseScenario.FIXED_WORK) -> float:
        """NCF versus the bare host core (the paper's Figure 5 y-axis)."""
        return ncf(self.design_point(), DesignPoint.baseline("host core"), scenario, alpha)


def breakeven_utilization(
    accelerator: Accelerator,
    alpha: float,
    scenario: UseScenario = UseScenario.FIXED_WORK,
    *,
    tol: float = 1e-10,
) -> float | None:
    """Minimum utilization at which adding the accelerator pays off.

    Returns the smallest ``t`` in [0, 1] with ``NCF(t) <= 1``, or
    ``None`` when even full-time use does not amortize the embodied
    overhead (the dark-silicon failure mode). NCF is monotonically
    non-increasing in ``t`` for any energy-advantaged accelerator, so a
    bisection on the boundary is exact.
    """
    ensure_fraction(alpha, "alpha")

    def value(t: float) -> float:
        return AcceleratedSystem(accelerator, t).ncf(alpha, scenario)

    if value(0.0) <= 1.0:
        return 0.0
    if value(1.0) > 1.0:
        return None
    lo, hi = 0.0, 1.0  # value(lo) > 1 >= value(hi)
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if value(mid) > 1.0:
            lo = mid
        else:
            hi = mid
        if hi - lo < tol:
            return hi
    raise ConvergenceError("breakeven_utilization bisection failed to converge")


__all__.append("breakeven_utilization")
