"""Dark silicon (paper §5.4, Figure 5b, Finding #7).

A modern SoC integrates tens of accelerators that cannot all be powered
simultaneously. The paper models this by assuming the accelerators
occupy two thirds of the chip (+200 % area over the core), each with
the same 500x energy advantage as §5.3's example and zero leakage when
off. The resulting NCF curve shows dark silicon is *not sustainable*:
~2.5x footprint increase when embodied emissions dominate, and a >50 %
utilization requirement when operational emissions dominate — which is
infeasible precisely because the silicon is dark (power/thermal limits
prevent concurrent use).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.quantities import ensure_fraction, ensure_positive
from ..core.scenario import UseScenario
from .accelerator import Accelerator, AcceleratedSystem, breakeven_utilization

__all__ = ["DarkSiliconSoC", "PAPER_DARK_SILICON"]


@dataclass(frozen=True, slots=True)
class DarkSiliconSoC:
    """An SoC whose accelerator estate is dark most of the time.

    Parameters
    ----------
    accelerator_area_share:
        Fraction of the *whole chip* occupied by accelerators (2/3 in
        the paper). The implied area overhead over the core alone is
        ``share / (1 - share)``.
    energy_advantage:
        Per-accelerator energy advantage when in use (500).
    max_concurrent_utilization:
        Upper bound on the achievable time-fraction of accelerator use
        imposed by the power/thermal budget; used to flag infeasible
        break-evens.
    """

    accelerator_area_share: float = 2.0 / 3.0
    energy_advantage: float = 500.0
    max_concurrent_utilization: float = 0.5

    def __post_init__(self) -> None:
        share = ensure_fraction(
            self.accelerator_area_share, "accelerator_area_share"
        )
        if share >= 1.0:
            from ..core.errors import ValidationError

            raise ValidationError(
                "accelerator_area_share must be < 1 (the core needs area too)"
            )
        object.__setattr__(self, "accelerator_area_share", share)
        object.__setattr__(
            self,
            "energy_advantage",
            ensure_positive(self.energy_advantage, "energy_advantage"),
        )
        object.__setattr__(
            self,
            "max_concurrent_utilization",
            ensure_fraction(
                self.max_concurrent_utilization, "max_concurrent_utilization"
            ),
        )

    @property
    def area_overhead(self) -> float:
        """Accelerator area as a multiple of the core area.

        Two thirds of the chip -> overhead = (2/3)/(1/3) = 2.0, the
        paper's "+200 % extra chip area"."""
        share = self.accelerator_area_share
        return share / (1.0 - share)

    def as_accelerator(self) -> Accelerator:
        """The aggregate accelerator estate as one accelerator model."""
        return Accelerator(
            area_overhead=self.area_overhead,
            energy_advantage=self.energy_advantage,
            name="dark-silicon estate",
        )

    def system(self, utilization: float) -> AcceleratedSystem:
        """SoC at a given aggregate accelerator time-utilization."""
        return AcceleratedSystem(self.as_accelerator(), utilization)

    def ncf(
        self,
        utilization: float,
        alpha: float,
        scenario: UseScenario = UseScenario.FIXED_WORK,
    ) -> float:
        """NCF versus the accelerator-free core (Figure 5b's y-axis)."""
        return self.system(utilization).ncf(alpha, scenario)

    def breakeven(
        self, alpha: float, scenario: UseScenario = UseScenario.FIXED_WORK
    ) -> float | None:
        """Break-even utilization, or None if unreachable even at 100 %."""
        return breakeven_utilization(self.as_accelerator(), alpha, scenario)

    def breakeven_feasible(
        self, alpha: float, scenario: UseScenario = UseScenario.FIXED_WORK
    ) -> bool:
        """Whether the break-even utilization fits the power budget.

        Finding #7's punchline: under the operational-dominated regime
        the break-even (~50 %) exceeds what dark silicon can deliver.
        """
        breakeven = self.breakeven(alpha, scenario)
        if breakeven is None:
            return False
        return breakeven <= self.max_concurrent_utilization


#: The paper's configuration for Figure 5(b).
PAPER_DARK_SILICON = DarkSiliconSoC()
