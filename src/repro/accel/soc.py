"""SoC composition: many accelerators, one host core.

Generalizes §5.3/§5.4 from one accelerator to an accelerator estate
with a per-accelerator utilization schedule, and quantifies the
paper's §5.4 discussion point that *reconfigurable* accelerators — one
fabric reused across applications — amortize embodied footprint better
than many fixed-function blocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..core.design import DesignPoint
from ..core.errors import ValidationError
from ..core.ncf import ncf
from ..core.quantities import ensure_fraction, ensure_positive
from ..core.scenario import UseScenario
from .accelerator import Accelerator

__all__ = ["ScheduledAccelerator", "SoC", "reconfigurable_equivalent"]


@dataclass(frozen=True, slots=True)
class ScheduledAccelerator:
    """An accelerator together with its time-utilization on the SoC."""

    accelerator: Accelerator
    utilization: float

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "utilization", ensure_fraction(self.utilization, "utilization")
        )


@dataclass(frozen=True, slots=True)
class SoC:
    """A host core plus a set of accelerators with a utilization schedule.

    The schedule's utilizations must sum to at most 1; the remaining
    time runs on the host core. All quantities are normalized to the
    host core alone (area = perf = power = 1), so :meth:`ncf` matches
    the Figure 5 convention.
    """

    schedule: tuple[ScheduledAccelerator, ...] = field(default_factory=tuple)
    name: str = "SoC"

    def __post_init__(self) -> None:
        total = sum(item.utilization for item in self.schedule)
        if total > 1.0 + 1e-12:
            raise ValidationError(
                f"accelerator utilizations sum to {total:g} > 1"
            )

    @classmethod
    def build(
        cls, pairs: Sequence[tuple[Accelerator, float]], name: str = "SoC"
    ) -> "SoC":
        """Build from ``(accelerator, utilization)`` pairs."""
        return cls(
            schedule=tuple(ScheduledAccelerator(acc, util) for acc, util in pairs),
            name=name,
        )

    # -- first-order quantities ----------------------------------------
    @property
    def core_time(self) -> float:
        """Fraction of time on the host core."""
        return 1.0 - sum(item.utilization for item in self.schedule)

    @property
    def area(self) -> float:
        return 1.0 + sum(item.accelerator.area_overhead for item in self.schedule)

    @property
    def perf(self) -> float:
        work = self.core_time
        for item in self.schedule:
            work += item.utilization * item.accelerator.speedup
        return work

    @property
    def power(self) -> float:
        power = self.core_time * 1.0
        for item in self.schedule:
            acc = item.accelerator
            power += item.utilization * acc.active_power
            power += (1.0 - item.utilization) * acc.idle_leakage
            power += item.utilization * acc.host_idle_leakage
        return power

    @property
    def energy(self) -> float:
        return self.power / ensure_positive(self.perf, "SoC perf")

    def design_point(self) -> DesignPoint:
        return DesignPoint(name=self.name, area=self.area, perf=self.perf, power=self.power)

    def ncf(self, alpha: float, scenario: UseScenario = UseScenario.FIXED_WORK) -> float:
        """NCF versus the bare host core."""
        return ncf(self.design_point(), DesignPoint.baseline("host core"), scenario, alpha)


def reconfigurable_equivalent(soc: SoC, *, area_premium: float = 1.0, name: str | None = None) -> SoC:
    """The reconfigurable-fabric alternative to a fixed-function SoC.

    Replaces the whole accelerator estate by a single fabric whose area
    equals the *largest* accelerator's area times ``area_premium``
    (reconfigurable logic is less dense, so a premium >= 1 is typical)
    and which serves every scheduled task with each task's original
    speedup/energy characteristics. This captures the §5.4 discussion:
    one block amortizes embodied footprint across all applications.
    """
    if not soc.schedule:
        raise ValidationError("reconfigurable_equivalent requires accelerators")
    ensure_positive(area_premium, "area_premium")
    fabric_area = area_premium * max(
        item.accelerator.area_overhead for item in soc.schedule
    )
    new_schedule = []
    for item in soc.schedule:
        acc = item.accelerator
        new_schedule.append(
            (
                Accelerator(
                    area_overhead=0.0,  # area accounted once, below
                    energy_advantage=acc.energy_advantage,
                    speedup=acc.speedup,
                    idle_leakage=0.0,
                    host_idle_leakage=acc.host_idle_leakage,
                    name=f"reconfig:{acc.name}",
                ),
                item.utilization,
            )
        )
    # Attach the fabric area to the first entry so SoC.area is correct.
    first_acc, first_util = new_schedule[0]
    new_schedule[0] = (
        Accelerator(
            area_overhead=fabric_area,
            energy_advantage=first_acc.energy_advantage,
            speedup=first_acc.speedup,
            idle_leakage=first_acc.idle_leakage,
            host_idle_leakage=first_acc.host_idle_leakage,
            name=first_acc.name,
        ),
        first_util,
    )
    return SoC.build(new_schedule, name=name or f"{soc.name} (reconfigurable)")
