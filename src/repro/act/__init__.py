"""Simplified bottom-up ACT-style model and the FOCAL-vs-ACT agreement
harness (paper §3.5)."""

from .compare import AgreementReport, compare_focal_vs_act, focal_design_from_spec
from .model import ActChipSpec, ActFootprint, ActModel
from .system import DeviceFootprintBreakdown, DeviceSpec, SystemActModel
from .params import (
    ACT_NODE_PARAMS,
    COAL_HEAVY_GRID,
    RENEWABLE_GRID,
    WORLD_AVERAGE_GRID,
    ActNodeParams,
    CarbonIntensity,
)

__all__ = [
    "ActChipSpec",
    "ActFootprint",
    "ActModel",
    "ActNodeParams",
    "ACT_NODE_PARAMS",
    "CarbonIntensity",
    "COAL_HEAVY_GRID",
    "WORLD_AVERAGE_GRID",
    "RENEWABLE_GRID",
    "DeviceSpec",
    "DeviceFootprintBreakdown",
    "SystemActModel",
    "AgreementReport",
    "compare_focal_vs_act",
    "focal_design_from_spec",
]
