"""FOCAL versus ACT: directional-agreement harness (paper §3.5).

FOCAL claims to be a *complement* to ACT: a relative first-order model
that should reach the same *directional* conclusions as a bottom-up
absolute model when the embodied-to-operational weight matches the
device's actual footprint split. This module checks that claim:

1. run ACT on two chip specs to get absolute totals;
2. derive the effective alpha (the baseline's embodied share per ACT);
3. run FOCAL's fixed-work NCF at that alpha;
4. compare the direction (and magnitude) of the two verdicts.

The agreement is exact when FOCAL's area proxy is proportional to ACT's
embodied footprint (same node, yield regime linear in area) and
approximate otherwise — which is precisely the first-order claim.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.design import DesignPoint
from ..core.ncf import ncf_from_ratios
from .model import ActChipSpec, ActFootprint, ActModel

__all__ = ["AgreementReport", "compare_focal_vs_act"]


@dataclass(frozen=True, slots=True)
class AgreementReport:
    """Result of one FOCAL-vs-ACT comparison.

    ``act_ratio`` is the ratio of ACT absolute totals (X / Y);
    ``focal_ncf`` is FOCAL's fixed-work NCF at the ACT-derived alpha.
    ``agree`` records whether both place the same design below 1.
    """

    design: str
    baseline: str
    effective_alpha: float
    act_ratio: float
    focal_ncf: float
    act_design: ActFootprint
    act_baseline: ActFootprint

    @property
    def agree(self) -> bool:
        return (self.act_ratio < 1.0) == (self.focal_ncf < 1.0) or (
            self.act_ratio == 1.0 and abs(self.focal_ncf - 1.0) < 1e-9
        )

    @property
    def relative_gap(self) -> float:
        """|FOCAL - ACT| / ACT — the paper's "non-negligible gap" axis."""
        return abs(self.focal_ncf - self.act_ratio) / self.act_ratio


def compare_focal_vs_act(
    design_spec: ActChipSpec,
    baseline_spec: ActChipSpec,
    model: ActModel | None = None,
) -> AgreementReport:
    """Compare FOCAL's relative verdict against ACT's absolute one.

    FOCAL's inputs are derived from the same specs (area ratio, power
    ratio; performance is not needed under fixed-time, and we use the
    fixed-time scenario because ACT's use phase integrates power over a
    fixed lifetime — exactly FOCAL's fixed-time assumption).
    """
    act = model or ActModel()
    fp_design = act.footprint(design_spec)
    fp_baseline = act.footprint(baseline_spec)

    effective_alpha = fp_baseline.embodied_share
    area_ratio = design_spec.die_area_mm2 / baseline_spec.die_area_mm2
    power_ratio = (
        design_spec.avg_power_w / baseline_spec.avg_power_w
        if baseline_spec.avg_power_w > 0
        else 1.0
    )
    focal_ncf = ncf_from_ratios(area_ratio, power_ratio, effective_alpha)

    return AgreementReport(
        design=design_spec.name,
        baseline=baseline_spec.name,
        effective_alpha=effective_alpha,
        act_ratio=fp_design.total_kg / fp_baseline.total_kg,
        focal_ncf=focal_ncf,
        act_design=fp_design,
        act_baseline=fp_baseline,
    )


def focal_design_from_spec(spec: ActChipSpec, perf: float = 1.0) -> DesignPoint:
    """Convenience: an ACT chip spec as a FOCAL design point."""
    return DesignPoint(
        name=spec.name, area=spec.die_area_mm2, perf=perf, power=max(spec.avg_power_w, 1e-12)
    )


__all__.append("focal_design_from_spec")
