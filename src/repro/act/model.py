"""A simplified bottom-up ACT-style carbon model (paper §3.5).

Estimates absolute lifetime carbon (kg CO2e) of a processor:

* **embodied**:
  ``(CI_fab * EPA + GPA + MPA) * die_area / yield + packaging``
  — fab energy carbon, direct gas emissions and material footprint,
  all per wafer-cm^2, divided by yield to charge scrapped dies to the
  good ones;
* **operational**:
  ``CI_use * avg_power_w * lifetime_hours / 1000``.

This is the data-driven counterpart FOCAL positions itself against:
absolute but uncertainty-laden, versus FOCAL's relative but robust
first-order proxies. :mod:`repro.act.compare` quantifies when the two
agree.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.quantities import ensure_non_negative, ensure_positive
from ..wafer.yield_models import MurphyYield, YieldModel
from .params import ACT_NODE_PARAMS, ActNodeParams, CarbonIntensity, WORLD_AVERAGE_GRID

__all__ = ["ActChipSpec", "ActFootprint", "ActModel"]


@dataclass(frozen=True, slots=True)
class ActChipSpec:
    """The inputs ACT needs for one chip."""

    name: str
    die_area_mm2: float
    avg_power_w: float
    node: str = "7nm"
    lifetime_hours: float = 3.0 * 365 * 24  # three-year lifetime

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "die_area_mm2", ensure_positive(self.die_area_mm2, "die_area_mm2")
        )
        object.__setattr__(
            self, "avg_power_w", ensure_non_negative(self.avg_power_w, "avg_power_w")
        )
        object.__setattr__(
            self,
            "lifetime_hours",
            ensure_positive(self.lifetime_hours, "lifetime_hours"),
        )
        if self.node not in ACT_NODE_PARAMS:
            from ..core.errors import ValidationError

            known = ", ".join(sorted(ACT_NODE_PARAMS))
            raise ValidationError(f"unknown node {self.node!r}; known: {known}")


@dataclass(frozen=True, slots=True)
class ActFootprint:
    """Absolute footprint breakdown for one chip (kg CO2e)."""

    name: str
    embodied_kg: float
    operational_kg: float

    @property
    def total_kg(self) -> float:
        return self.embodied_kg + self.operational_kg

    @property
    def embodied_share(self) -> float:
        """Embodied fraction of the total — ACT's empirical counterpart
        to FOCAL's alpha_E2O parameter."""
        return self.embodied_kg / self.total_kg if self.total_kg else 0.0


@dataclass(frozen=True, slots=True)
class ActModel:
    """The simplified ACT estimator.

    Parameters
    ----------
    fab_grid / use_grid:
        Electricity carbon intensity at the fab and during use.
    yield_model:
        Die-yield model charging scrapped dies to good ones.
    packaging_kg:
        Flat per-chip packaging footprint.
    """

    fab_grid: CarbonIntensity = WORLD_AVERAGE_GRID
    use_grid: CarbonIntensity = WORLD_AVERAGE_GRID
    yield_model: YieldModel = MurphyYield()
    packaging_kg: float = 0.15

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "packaging_kg", ensure_non_negative(self.packaging_kg, "packaging_kg")
        )

    def node_params(self, node: str) -> ActNodeParams:
        return ACT_NODE_PARAMS[node]

    def embodied_kg(self, spec: ActChipSpec) -> float:
        """Embodied carbon of one good chip."""
        params = self.node_params(spec.node)
        area_cm2 = spec.die_area_mm2 / 100.0
        per_area = (
            self.fab_grid.kg_per_kwh * params.energy_per_area_kwh
            + params.gas_per_area_kg
            + params.material_per_area_kg
        )
        die_yield = self.yield_model.die_yield(spec.die_area_mm2)
        return per_area * area_cm2 / die_yield + self.packaging_kg

    def operational_kg(self, spec: ActChipSpec) -> float:
        """Use-phase carbon over the chip's lifetime."""
        energy_kwh = spec.avg_power_w * spec.lifetime_hours / 1000.0
        return self.use_grid.kg_per_kwh * energy_kwh

    def footprint(self, spec: ActChipSpec) -> ActFootprint:
        """Full absolute footprint for one chip."""
        return ActFootprint(
            name=spec.name,
            embodied_kg=self.embodied_kg(spec),
            operational_kg=self.operational_kg(spec),
        )
