"""Representative parameters for the bottom-up ACT-style model.

ACT (Gupta et al., ISCA 2022) estimates a chip's *absolute* carbon
footprint bottom-up from fab data: per-area manufacturing energy (EPA),
per-area direct gas emissions (GPA), per-area material footprint (MPA),
the fab's electricity carbon intensity, yield, and the use-phase
electricity carbon intensity.

The constants below are *representative* values with the same structure
and magnitudes as ACT's public model (DESIGN.md documents this
substitution): per-wafer energy grows with newer nodes per the Imec
trend, gas emissions likewise, and carbon intensities span the
renewable-to-coal range. FOCAL's §3.5 comparison needs a structurally
faithful comparator, not Meta's exact constants — the point of the
experiment is directional agreement despite different data.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.quantities import ensure_non_negative, ensure_positive

__all__ = [
    "ActNodeParams",
    "ACT_NODE_PARAMS",
    "CarbonIntensity",
    "COAL_HEAVY_GRID",
    "WORLD_AVERAGE_GRID",
    "RENEWABLE_GRID",
]


@dataclass(frozen=True, slots=True)
class ActNodeParams:
    """Per-technology-node fab parameters (per cm^2 of wafer area).

    Units: EPA in kWh/cm^2, GPA and MPA in kg CO2e/cm^2.
    """

    node: str
    energy_per_area_kwh: float
    gas_per_area_kg: float
    material_per_area_kg: float

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "energy_per_area_kwh",
            ensure_positive(self.energy_per_area_kwh, "energy_per_area_kwh"),
        )
        object.__setattr__(
            self,
            "gas_per_area_kg",
            ensure_non_negative(self.gas_per_area_kg, "gas_per_area_kg"),
        )
        object.__setattr__(
            self,
            "material_per_area_kg",
            ensure_non_negative(self.material_per_area_kg, "material_per_area_kg"),
        )


#: Representative per-node fab parameters. Energy per area follows the
#: Imec ~25 %/node growth from a 28 nm anchor of ~0.9 kWh/cm^2; gases
#: grow ~19.5 %/node from ~0.12 kg/cm^2; materials held flat at
#: 0.5 kg/cm^2 (ACT treats them as node-insensitive to first order).
ACT_NODE_PARAMS: dict[str, ActNodeParams] = {
    "28nm": ActNodeParams("28nm", 0.90, 0.120, 0.500),
    "20nm": ActNodeParams("20nm", 1.13, 0.143, 0.500),
    "16nm": ActNodeParams("16nm", 1.41, 0.171, 0.500),
    "10nm": ActNodeParams("10nm", 1.77, 0.205, 0.500),
    "7nm": ActNodeParams("7nm", 2.21, 0.245, 0.500),
    "5nm": ActNodeParams("5nm", 2.77, 0.292, 0.500),
    "3nm": ActNodeParams("3nm", 3.47, 0.349, 0.500),
}


@dataclass(frozen=True, slots=True)
class CarbonIntensity:
    """Electricity carbon intensity in kg CO2e per kWh."""

    name: str
    kg_per_kwh: float

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "kg_per_kwh", ensure_non_negative(self.kg_per_kwh, "kg_per_kwh")
        )


COAL_HEAVY_GRID = CarbonIntensity("coal-heavy grid", 0.90)
WORLD_AVERAGE_GRID = CarbonIntensity("world-average grid", 0.48)
RENEWABLE_GRID = CarbonIntensity("renewable grid", 0.05)
