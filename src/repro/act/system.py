"""Full-device ACT-style estimation: chip + memory + storage + rest.

ACT's public model covers more than logic dies: DRAM and NAND embodied
footprints scale per GB, HDDs per TB, and the rest of the system
(board, PSU, enclosure) is a per-device constant. This module extends
:class:`~repro.act.model.ActModel` to whole devices, which

* provides realistic component breakdowns for the §3.6 validation-
  limits analysis (:class:`~repro.validation.lca.SystemLCA`), and
* lets lifetime studies (:mod:`repro.lifetime`) work at device rather
  than chip granularity.

The per-GB/per-TB constants are representative of public LCA ranges
(DESIGN.md documents the substitution policy).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.quantities import ensure_non_negative
from ..validation.lca import SystemLCA
from .model import ActChipSpec, ActModel

__all__ = ["DeviceSpec", "DeviceFootprintBreakdown", "SystemActModel"]

#: Representative embodied intensities (kg CO2e per unit).
DRAM_KG_PER_GB = 2.3
NAND_KG_PER_GB = 0.07
HDD_KG_PER_TB = 15.0
BOARD_AND_PSU_KG = 25.0
ENCLOSURE_KG = 10.0


@dataclass(frozen=True, slots=True)
class DeviceSpec:
    """A whole device: its processor plus commodity components."""

    chip: ActChipSpec
    dram_gb: float = 16.0
    nand_gb: float = 512.0
    hdd_tb: float = 0.0
    #: Average power of everything that is not the processor (W).
    rest_of_system_power_w: float = 20.0

    def __post_init__(self) -> None:
        for field_name in ("dram_gb", "nand_gb", "hdd_tb", "rest_of_system_power_w"):
            object.__setattr__(
                self,
                field_name,
                ensure_non_negative(getattr(self, field_name), field_name),
            )


@dataclass(frozen=True, slots=True)
class DeviceFootprintBreakdown:
    """Component-level totals (kg CO2e over the device's life)."""

    name: str
    chip_embodied: float
    chip_operational: float
    dram: float
    storage: float
    board: float
    enclosure: float
    rest_operational: float

    @property
    def chip_total(self) -> float:
        return self.chip_embodied + self.chip_operational

    @property
    def device_total(self) -> float:
        return (
            self.chip_total
            + self.dram
            + self.storage
            + self.board
            + self.enclosure
            + self.rest_operational
        )

    @property
    def chip_share(self) -> float:
        """The processor's share of the device total — what an LCA
        report hides and §3.6 needs."""
        total = self.device_total
        return self.chip_total / total if total else 0.0

    def as_system_lca(self) -> SystemLCA:
        """Expose the breakdown to the validation-limits analysis."""
        return SystemLCA(
            name=self.name,
            chip=self.chip_total,
            other_components={
                "memory": self.dram,
                "storage": self.storage,
                "board": self.board,
                "enclosure": self.enclosure,
                "use-phase (non-chip)": self.rest_operational,
            },
        )


@dataclass(frozen=True, slots=True)
class SystemActModel:
    """Whole-device estimator wrapping the chip-level ACT model."""

    chip_model: ActModel = ActModel()

    def breakdown(self, device: DeviceSpec) -> DeviceFootprintBreakdown:
        chip = device.chip
        rest_energy_kwh = (
            device.rest_of_system_power_w * chip.lifetime_hours / 1000.0
        )
        return DeviceFootprintBreakdown(
            name=chip.name,
            chip_embodied=self.chip_model.embodied_kg(chip),
            chip_operational=self.chip_model.operational_kg(chip),
            dram=device.dram_gb * DRAM_KG_PER_GB,
            storage=device.nand_gb * NAND_KG_PER_GB
            + device.hdd_tb * HDD_KG_PER_TB,
            board=BOARD_AND_PSU_KG,
            enclosure=ENCLOSURE_KG,
            rest_operational=self.chip_model.use_grid.kg_per_kwh * rest_energy_kwh,
        )
