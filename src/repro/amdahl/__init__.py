"""Multicore performance/power laws: Amdahl, Pollack, Hill–Marty and
the Woo–Lee energy extensions (paper §5.1–§5.2)."""

from .asymmetric import AsymmetricMulticore
from .batch import (
    asymmetric_energy,
    asymmetric_power,
    asymmetric_speedup,
    asymmetric_valid_mask,
    dynamic_energy,
    dynamic_power,
    dynamic_speedup,
    symmetric_energy,
    symmetric_power,
    symmetric_speedup,
)
from .dynamic import DynamicMulticore
from .pollack import (
    big_core_design,
    pollack_energy,
    pollack_performance,
    pollack_power,
)
from .symmetric import DEFAULT_LEAKAGE, SymmetricMulticore

__all__ = [
    "SymmetricMulticore",
    "AsymmetricMulticore",
    "DynamicMulticore",
    "DEFAULT_LEAKAGE",
    "pollack_performance",
    "pollack_power",
    "pollack_energy",
    "big_core_design",
    "symmetric_speedup",
    "symmetric_energy",
    "symmetric_power",
    "asymmetric_valid_mask",
    "asymmetric_speedup",
    "asymmetric_energy",
    "asymmetric_power",
    "dynamic_speedup",
    "dynamic_energy",
    "dynamic_power",
]
