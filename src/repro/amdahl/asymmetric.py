"""Asymmetric multicore: Hill–Marty + Woo–Lee (paper §5.2, Figure 4).

An asymmetric multicore of ``N`` BCEs integrates one big core of ``M``
BCEs (performance ``sqrt(M)`` by Pollack's rule, power ``M``) alongside
``N - M`` small one-BCE cores. The serial phase runs on the big core;
the parallel phase runs on the small cores while the big core idles.

* speedup (paper Eq. 4):

      S = 1 / ((1 - f) / sqrt(M) + f / (N - M))

* average power (paper Eq. 5): serial phase lasts
  ``(1 - f)/sqrt(M)`` and burns ``M + (N - M) gamma``; the parallel
  phase lasts ``f/(N - M)`` and burns ``M gamma + (N - M)``:

      P = [ (1-f)/sqrt(M) * (M + (N-M) g) + f/(N-M) * (M g + (N-M)) ] / T

* energy per unit work (paper Eq. 6 = P / S = the numerator above).

Note the paper's model runs the parallel phase on the small cores only
(the big core idles); a variant where the big core helps is implemented
in :mod:`repro.amdahl.dynamic`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.design import DesignPoint
from ..core.errors import DomainError
from ..core.quantities import ensure_fraction, ensure_int_at_least
from .symmetric import DEFAULT_LEAKAGE

__all__ = ["AsymmetricMulticore"]


@dataclass(frozen=True, slots=True)
class AsymmetricMulticore:
    """One ``big_core_bces``-BCE big core plus ``total_bces - big_core_bces``
    small one-BCE cores.

    The paper's Figure 4 uses ``big_core_bces = 4`` with
    ``total_bces`` in {8, 16, 32}.
    """

    total_bces: int
    big_core_bces: int
    parallel_fraction: float
    leakage: float = DEFAULT_LEAKAGE

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "total_bces", ensure_int_at_least(self.total_bces, 2, "total_bces")
        )
        object.__setattr__(
            self,
            "big_core_bces",
            ensure_int_at_least(self.big_core_bces, 1, "big_core_bces"),
        )
        if self.big_core_bces >= self.total_bces:
            raise DomainError(
                f"big core ({self.big_core_bces} BCEs) must leave at least one "
                f"small core on a {self.total_bces}-BCE chip"
            )
        object.__setattr__(
            self,
            "parallel_fraction",
            ensure_fraction(self.parallel_fraction, "parallel_fraction"),
        )
        object.__setattr__(self, "leakage", ensure_fraction(self.leakage, "leakage"))

    # -- structure ------------------------------------------------------
    @property
    def small_cores(self) -> int:
        """Number of one-BCE small cores (``N - M``)."""
        return self.total_bces - self.big_core_bces

    @property
    def area(self) -> float:
        """Chip area in BCEs."""
        return float(self.total_bces)

    @property
    def big_core_perf(self) -> float:
        """Big-core performance by Pollack's rule: ``sqrt(M)``."""
        return math.sqrt(self.big_core_bces)

    # -- timing ----------------------------------------------------------
    @property
    def serial_time(self) -> float:
        """Serial phase duration: ``(1 - f) / sqrt(M)``."""
        return (1.0 - self.parallel_fraction) / self.big_core_perf

    @property
    def parallel_time(self) -> float:
        """Parallel phase duration: ``f / (N - M)``."""
        return self.parallel_fraction / self.small_cores

    @property
    def speedup(self) -> float:
        """Hill–Marty asymmetric speedup (paper Eq. 4)."""
        return 1.0 / (self.serial_time + self.parallel_time)

    # -- power/energy (Woo & Lee) ----------------------------------------
    @property
    def serial_power(self) -> float:
        """Power during the serial phase: big core active, small idle."""
        return self.big_core_bces + self.small_cores * self.leakage

    @property
    def parallel_power(self) -> float:
        """Power during the parallel phase: small active, big idle."""
        return self.big_core_bces * self.leakage + self.small_cores

    @property
    def energy(self) -> float:
        """Energy per unit work (paper Eq. 6)."""
        return (
            self.serial_time * self.serial_power
            + self.parallel_time * self.parallel_power
        )

    @property
    def power(self) -> float:
        """Average power (paper Eq. 5) = energy x speedup."""
        return self.energy * self.speedup

    def design_point(self, name: str | None = None) -> DesignPoint:
        """This asymmetric multicore as a normalized design point."""
        return DesignPoint(
            name=name
            or (
                f"asym {self.total_bces}BCE (1x{self.big_core_bces}+"
                f"{self.small_cores}x1) f={self.parallel_fraction:g}"
            ),
            area=self.area,
            perf=self.speedup,
            power=self.power,
        )
