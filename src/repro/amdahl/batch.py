"""Columnar multicore kernels: array-in/array-out versions of the
Amdahl/Hill–Marty/Pollack laws (paper §5.1–§5.2).

Each function is the NumPy twin of a property on
:class:`~repro.amdahl.symmetric.SymmetricMulticore`,
:class:`~repro.amdahl.asymmetric.AsymmetricMulticore`,
:class:`~repro.amdahl.dynamic.DynamicMulticore` or a function in
:mod:`repro.amdahl.pollack`, with the same IEEE-754 operation order —
these laws use only ``+ - * / sqrt``, all correctly rounded and
identical between NumPy and libm, so the kernels are bit-exact with
the scalar substrate and fully SIMD-vectorized.

All arguments broadcast: sweep cores against a scalar ``f``, or a grid
of both, in one call. Validation mirrors the scalar constructors
(:func:`~repro.core.batch.ensure_int_at_least_array`,
:func:`~repro.core.batch.ensure_fraction_array`), so a bad corner is
rejected with the flat index of the first offender.
"""

from __future__ import annotations

import numpy as np

from ..core.batch import (
    ensure_fraction_array,
    ensure_int_at_least_array,
    ensure_positive_array,
)
from .symmetric import DEFAULT_LEAKAGE

__all__ = [
    "symmetric_speedup",
    "symmetric_energy",
    "symmetric_power",
    "asymmetric_valid_mask",
    "asymmetric_speedup",
    "asymmetric_energy",
    "asymmetric_power",
    "dynamic_speedup",
    "dynamic_energy",
    "dynamic_power",
    "pollack_performance_array",
    "pollack_power_array",
    "pollack_energy_array",
]


# ----------------------------------------------------------------------
# Symmetric multicore (Hill–Marty Eq. 1, Woo–Lee Eqs. 2–3)
# ----------------------------------------------------------------------
def symmetric_speedup(cores: object, parallel_fraction: object) -> np.ndarray:
    """Array twin of :attr:`SymmetricMulticore.speedup`."""
    n = ensure_int_at_least_array(cores, 1, "cores")
    f = ensure_fraction_array(parallel_fraction, "parallel_fraction")
    return 1.0 / ((1.0 - f) + f / n)


def symmetric_energy(
    cores: object,
    parallel_fraction: object,
    leakage: object = DEFAULT_LEAKAGE,
) -> np.ndarray:
    """Array twin of :attr:`SymmetricMulticore.energy`."""
    n = ensure_int_at_least_array(cores, 1, "cores")
    f = ensure_fraction_array(parallel_fraction, "parallel_fraction")
    g = ensure_fraction_array(leakage, "leakage")
    return 1.0 + (1.0 - f) * (n - 1.0) * g


def symmetric_power(
    cores: object,
    parallel_fraction: object,
    leakage: object = DEFAULT_LEAKAGE,
) -> np.ndarray:
    """Array twin of :attr:`SymmetricMulticore.power` (energy x speedup)."""
    return symmetric_energy(cores, parallel_fraction, leakage) * symmetric_speedup(
        cores, parallel_fraction
    )


# ----------------------------------------------------------------------
# Asymmetric multicore (paper Eqs. 4–6)
# ----------------------------------------------------------------------
def asymmetric_valid_mask(total_bces: object, big_core_bces: object) -> np.ndarray:
    """Boolean mask of (N, M) pairs a scalar constructor would accept.

    ``True`` exactly where ``AsymmetricMulticore(N, M, ...)`` succeeds;
    ``False`` where it raises ``DomainError`` because the big core
    leaves no small core (``M >= N``). The masking primitive that
    preserves scalar skip semantics in vector sweeps.
    """
    n = ensure_int_at_least_array(total_bces, 2, "total_bces")
    m = ensure_int_at_least_array(big_core_bces, 1, "big_core_bces")
    n, m = np.broadcast_arrays(n, m)
    return m < n


def _asymmetric_times(
    n: np.ndarray, m: np.ndarray, f: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    serial = (1.0 - f) / np.sqrt(m)
    parallel = f / (n - m)
    return serial, parallel


def asymmetric_speedup(
    total_bces: object, big_core_bces: object, parallel_fraction: object
) -> np.ndarray:
    """Array twin of :attr:`AsymmetricMulticore.speedup` (paper Eq. 4).

    Callers must mask invalid (N, M) corners first (see
    :func:`asymmetric_valid_mask`); this kernel assumes ``M < N``.
    """
    n = ensure_int_at_least_array(total_bces, 2, "total_bces")
    m = ensure_int_at_least_array(big_core_bces, 1, "big_core_bces")
    f = ensure_fraction_array(parallel_fraction, "parallel_fraction")
    serial, parallel = _asymmetric_times(n, m, f)
    return 1.0 / (serial + parallel)


def asymmetric_energy(
    total_bces: object,
    big_core_bces: object,
    parallel_fraction: object,
    leakage: object = DEFAULT_LEAKAGE,
) -> np.ndarray:
    """Array twin of :attr:`AsymmetricMulticore.energy` (paper Eq. 6)."""
    n = ensure_int_at_least_array(total_bces, 2, "total_bces")
    m = ensure_int_at_least_array(big_core_bces, 1, "big_core_bces")
    f = ensure_fraction_array(parallel_fraction, "parallel_fraction")
    g = ensure_fraction_array(leakage, "leakage")
    serial, parallel = _asymmetric_times(n, m, f)
    small = n - m
    serial_power = m + small * g
    parallel_power = m * g + small
    return serial * serial_power + parallel * parallel_power


def asymmetric_power(
    total_bces: object,
    big_core_bces: object,
    parallel_fraction: object,
    leakage: object = DEFAULT_LEAKAGE,
) -> np.ndarray:
    """Array twin of :attr:`AsymmetricMulticore.power` (paper Eq. 5)."""
    return asymmetric_energy(
        total_bces, big_core_bces, parallel_fraction, leakage
    ) * asymmetric_speedup(total_bces, big_core_bces, parallel_fraction)


# ----------------------------------------------------------------------
# Dynamic multicore (Hill–Marty's third organization)
# ----------------------------------------------------------------------
def dynamic_speedup(bces: object, parallel_fraction: object) -> np.ndarray:
    """Array twin of :attr:`DynamicMulticore.speedup`."""
    n = ensure_int_at_least_array(bces, 1, "bces")
    f = ensure_fraction_array(parallel_fraction, "parallel_fraction")
    serial = (1.0 - f) / np.sqrt(n)
    parallel = f / n
    return 1.0 / (serial + parallel)


def dynamic_power(bces: object, parallel_fraction: object) -> np.ndarray:
    """Array twin of :attr:`DynamicMulticore.power`: all BCEs busy, P = N."""
    n = ensure_int_at_least_array(bces, 1, "bces")
    f = ensure_fraction_array(parallel_fraction, "parallel_fraction")
    n, _ = np.broadcast_arrays(n, f)
    return n.astype(np.float64).copy()


def dynamic_energy(bces: object, parallel_fraction: object) -> np.ndarray:
    """Array twin of :attr:`DynamicMulticore.energy`: ``N / S``."""
    return dynamic_power(bces, parallel_fraction) / dynamic_speedup(
        bces, parallel_fraction
    )


# ----------------------------------------------------------------------
# Pollack's rule
# ----------------------------------------------------------------------
def pollack_performance_array(bces: object) -> np.ndarray:
    """Array twin of :func:`~repro.amdahl.pollack.pollack_performance`."""
    return np.sqrt(ensure_positive_array(bces, "bces"))


def pollack_power_array(bces: object) -> np.ndarray:
    """Array twin of :func:`~repro.amdahl.pollack.pollack_power`."""
    return ensure_positive_array(bces, "bces").copy()


def pollack_energy_array(bces: object) -> np.ndarray:
    """Array twin of :func:`~repro.amdahl.pollack.pollack_energy`."""
    return pollack_power_array(bces) / pollack_performance_array(bces)
