"""Dynamic multicore (Hill–Marty's third organization).

The paper's §5.1–§5.2 evaluate the symmetric and asymmetric
organizations; Hill & Marty's original article also analyzes a
*dynamic* multicore that fuses all ``N`` BCEs into one powerful
``sqrt(N)``-performance core for the serial phase and splits them into
``N`` base cores for the parallel phase. We include it as the natural
extension study (it upper-bounds both other organizations on
performance) together with a Woo–Lee-style power model:

* serial phase, duration ``(1 - f)/sqrt(N)``: all BCEs active as one
  big core, power ``N``;
* parallel phase, duration ``f/N``: ``N`` base cores active, power
  ``N``.

Since both phases burn ``N`` units, average power is exactly ``N`` and
energy is ``N / S``. Dynamic multicore therefore trades the best-in-
class speedup against the worst-in-class power draw — a textbook
weakly-sustainable mechanism, which the ablation benchmark
(`benchmarks/bench_ablation_dynamic.py`) quantifies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.design import DesignPoint
from ..core.quantities import ensure_fraction, ensure_int_at_least
from .symmetric import DEFAULT_LEAKAGE

__all__ = ["DynamicMulticore"]


@dataclass(frozen=True, slots=True)
class DynamicMulticore:
    """A dynamic (fusable) multicore of ``bces`` base-core equivalents."""

    bces: int
    parallel_fraction: float
    leakage: float = DEFAULT_LEAKAGE

    def __post_init__(self) -> None:
        object.__setattr__(self, "bces", ensure_int_at_least(self.bces, 1, "bces"))
        object.__setattr__(
            self,
            "parallel_fraction",
            ensure_fraction(self.parallel_fraction, "parallel_fraction"),
        )
        object.__setattr__(self, "leakage", ensure_fraction(self.leakage, "leakage"))

    @property
    def area(self) -> float:
        return float(self.bces)

    @property
    def serial_time(self) -> float:
        """Serial phase on the fused core: ``(1 - f) / sqrt(N)``."""
        return (1.0 - self.parallel_fraction) / math.sqrt(self.bces)

    @property
    def parallel_time(self) -> float:
        return self.parallel_fraction / self.bces

    @property
    def speedup(self) -> float:
        """Hill–Marty dynamic speedup: 1 / ((1-f)/sqrt(N) + f/N)."""
        return 1.0 / (self.serial_time + self.parallel_time)

    @property
    def power(self) -> float:
        """All BCEs are busy in both phases, so average power is N."""
        return float(self.bces)

    @property
    def energy(self) -> float:
        """Energy per unit work: ``N / S``."""
        return self.power / self.speedup

    def design_point(self, name: str | None = None) -> DesignPoint:
        return DesignPoint(
            name=name or f"dyn {self.bces}BCE f={self.parallel_fraction:g}",
            area=self.area,
            perf=self.speedup,
            power=self.power,
        )
