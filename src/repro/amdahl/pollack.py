"""Pollack's rule (paper §5.1).

Single-core performance grows with the square root of the resources
(area) invested: a core built from ``r`` base-core equivalents (BCEs)
delivers ``sqrt(r)`` the performance of a one-BCE core (Borkar,
DAC'07). The paper further assumes a core's power consumption is
proportional to its BCE count, so an ``r``-BCE core consumes ``r``
units of power and ``r / sqrt(r) = sqrt(r)`` units of energy per unit
work.
"""

from __future__ import annotations

import math

from ..core.design import DesignPoint
from ..core.quantities import ensure_positive

__all__ = [
    "pollack_performance",
    "pollack_power",
    "pollack_energy",
    "big_core_design",
]


def pollack_performance(bces: float) -> float:
    """Performance of a single core of *bces* BCEs: ``sqrt(bces)``."""
    return math.sqrt(ensure_positive(bces, "bces"))


def pollack_power(bces: float) -> float:
    """Power of a single core of *bces* BCEs (one unit per BCE)."""
    return ensure_positive(bces, "bces")


def pollack_energy(bces: float) -> float:
    """Energy per unit work of a *bces*-BCE core: power / performance
    = ``sqrt(bces)``."""
    return pollack_power(bces) / pollack_performance(bces)


def big_core_design(bces: float, name: str | None = None) -> DesignPoint:
    """A single big core of *bces* BCEs as a design point.

    Normalized to the one-BCE single core: area = bces,
    perf = sqrt(bces), power = bces. This is the "single-core" curve in
    the paper's Figure 3(d).
    """
    bces = ensure_positive(bces, "bces")
    return DesignPoint(
        name=name or f"single-core {bces:g} BCE",
        area=bces,
        perf=pollack_performance(bces),
        power=pollack_power(bces),
    )
