"""Symmetric multicore: Hill–Marty speedup + Woo–Lee power/energy
(paper §5.1, Figure 3).

A chip of ``N`` one-BCE cores running software with parallel fraction
``f``:

* speedup over a one-BCE single core (Hill & Marty, Eq. 1):

      S = 1 / ((1 - f) + f / N)

* average power (Woo & Lee, Eq. 2), with idle cores leaking ``gamma``
  units each (0 < gamma < 1; an active core consumes one unit):

      P = (1 + (1 - f) (N - 1) gamma) / ((1 - f) + f / N)

* energy per unit work (Eq. 3 = Eq. 2 / Eq. 1):

      E = 1 + (1 - f) (N - 1) gamma

All quantities are normalized to the one-BCE single core, which makes
:class:`SymmetricMulticore.design_point` directly chartable on the
paper's axes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.design import DesignPoint
from ..core.quantities import ensure_fraction, ensure_int_at_least

__all__ = ["SymmetricMulticore", "DEFAULT_LEAKAGE"]

#: The paper's leakage factor for an idle core (gamma).
DEFAULT_LEAKAGE = 0.2


@dataclass(frozen=True, slots=True)
class SymmetricMulticore:
    """A symmetric multicore of ``cores`` one-BCE cores.

    Parameters
    ----------
    cores:
        Number of cores (= BCEs), >= 1.
    parallel_fraction:
        Fraction ``f`` of sequential execution time that parallelizes,
        in [0, 1].
    leakage:
        Idle-core leakage power ``gamma`` as a fraction of active
        power, in [0, 1]. The paper uses 0.2.
    """

    cores: int
    parallel_fraction: float
    leakage: float = DEFAULT_LEAKAGE

    def __post_init__(self) -> None:
        object.__setattr__(self, "cores", ensure_int_at_least(self.cores, 1, "cores"))
        object.__setattr__(
            self,
            "parallel_fraction",
            ensure_fraction(self.parallel_fraction, "parallel_fraction"),
        )
        object.__setattr__(self, "leakage", ensure_fraction(self.leakage, "leakage"))

    # -- derived quantities (normalized to the one-BCE single core) ----
    @property
    def area(self) -> float:
        """Chip area in BCEs."""
        return float(self.cores)

    @property
    def serial_time(self) -> float:
        """Time spent in the serial phase (baseline total time = 1)."""
        return 1.0 - self.parallel_fraction

    @property
    def parallel_time(self) -> float:
        """Time spent in the parallel phase."""
        return self.parallel_fraction / self.cores

    @property
    def speedup(self) -> float:
        """Hill–Marty speedup (paper Eq. 1)."""
        return 1.0 / (self.serial_time + self.parallel_time)

    @property
    def energy(self) -> float:
        """Energy per unit work (paper Eq. 3)."""
        return 1.0 + (1.0 - self.parallel_fraction) * (self.cores - 1) * self.leakage

    @property
    def power(self) -> float:
        """Average power (paper Eq. 2) = energy x speedup."""
        return self.energy * self.speedup

    def design_point(self, name: str | None = None) -> DesignPoint:
        """This multicore as a normalized design point."""
        return DesignPoint(
            name=name
            or f"sym {self.cores}c f={self.parallel_fraction:g} g={self.leakage:g}",
            area=self.area,
            perf=self.speedup,
            power=self.power,
        )
