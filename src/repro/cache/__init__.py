"""Last-level-cache sustainability study (paper §5.5, Figure 6)."""

from .cacti import CACTI_65NM_LLC, CactiCacheModel
from .hierarchy import PAPER_LLC_WORKLOAD, CachedProcessor, MemoryBoundWorkload
from .llc_study import (
    PAPER_LLC_SIZES_MB,
    LLCPoint,
    classify_llc,
    llc_sweep,
)
from .missrate import SQRT2_RULE, MissRateModel

__all__ = [
    "CactiCacheModel",
    "CACTI_65NM_LLC",
    "MissRateModel",
    "SQRT2_RULE",
    "MemoryBoundWorkload",
    "PAPER_LLC_WORKLOAD",
    "CachedProcessor",
    "LLCPoint",
    "llc_sweep",
    "classify_llc",
    "PAPER_LLC_SIZES_MB",
]
