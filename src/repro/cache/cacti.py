"""Mini-CACTI: last-level-cache area and access-energy scaling.

The paper's §5.5 uses CACTI 5.1 results at 65 nm for LLCs of 1–16 MB:

* area grows by a factor **20.7x** from 1 MB to 16 MB;
* access energy grows from **0.55 nJ** (1 MB) to **2.9 nJ** (16 MB).

Only the anchors are quoted; intermediate sizes follow a power law
fitted through the anchors (``factor = size^p`` with ``p`` chosen so
the 16 MB anchor is hit exactly). A power law is the natural CACTI
first-order behaviour: slightly super-linear area (extra decode/wiring)
and sub-linear access energy per the usual ~sqrt banking trends.

This is the substitution documented in DESIGN.md: we do not run CACTI
(not available offline); the study's conclusions depend only on the
anchor values and monotone interpolation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.quantities import ensure_positive

__all__ = ["CactiCacheModel", "CACTI_65NM_LLC"]


@dataclass(frozen=True, slots=True)
class CactiCacheModel:
    """Power-law cache area/energy model through two anchor points.

    Parameters
    ----------
    base_size_mb:
        Anchor size (1 MB in the paper).
    base_access_energy_nj:
        Access energy at the anchor (0.55 nJ).
    anchor_size_mb / anchor_area_factor / anchor_access_energy_nj:
        Second anchor: at ``anchor_size_mb`` the area is
        ``anchor_area_factor`` times the base area and an access costs
        ``anchor_access_energy_nj``.
    """

    base_size_mb: float = 1.0
    base_access_energy_nj: float = 0.55
    anchor_size_mb: float = 16.0
    anchor_area_factor: float = 20.7
    anchor_access_energy_nj: float = 2.9

    def __post_init__(self) -> None:
        for field_name in (
            "base_size_mb",
            "base_access_energy_nj",
            "anchor_size_mb",
            "anchor_area_factor",
            "anchor_access_energy_nj",
        ):
            object.__setattr__(
                self, field_name, ensure_positive(getattr(self, field_name), field_name)
            )
        if self.anchor_size_mb <= self.base_size_mb:
            from ..core.errors import ValidationError

            raise ValidationError(
                "anchor_size_mb must exceed base_size_mb for the power-law fit"
            )

    @property
    def area_exponent(self) -> float:
        """p with area_factor(size) = (size/base)^p; ~1.093 for the
        paper's anchors (slightly super-linear)."""
        ratio = self.anchor_size_mb / self.base_size_mb
        return math.log(self.anchor_area_factor) / math.log(ratio)

    @property
    def energy_exponent(self) -> float:
        """q with access_energy(size) = base * (size/base)^q; ~0.60 for
        the paper's anchors (sub-linear, sqrt-like)."""
        ratio = self.anchor_size_mb / self.base_size_mb
        energy_ratio = self.anchor_access_energy_nj / self.base_access_energy_nj
        return math.log(energy_ratio) / math.log(ratio)

    def area_factor(self, size_mb: float) -> float:
        """Cache area relative to the base size."""
        size_mb = ensure_positive(size_mb, "size_mb")
        return (size_mb / self.base_size_mb) ** self.area_exponent

    def access_energy_nj(self, size_mb: float) -> float:
        """Energy per cache access in nJ."""
        size_mb = ensure_positive(size_mb, "size_mb")
        return (
            self.base_access_energy_nj
            * (size_mb / self.base_size_mb) ** self.energy_exponent
        )

    def access_energy_factor(self, size_mb: float) -> float:
        """Access energy relative to the base size."""
        return self.access_energy_nj(size_mb) / self.base_access_energy_nj


#: The paper's CACTI 5.1 @ 65 nm anchors.
CACTI_65NM_LLC = CactiCacheModel()
