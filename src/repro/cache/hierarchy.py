"""Workload + memory-hierarchy model for the LLC study (paper §5.5).

The paper assumes a memory-intensive workload that, with the baseline
1 MB LLC, spends 80 % of its execution *time* and 80 % of its *energy*
waiting on memory. Growing the LLC cuts misses per the sqrt rule, which
proportionally cuts both memory stall time and memory energy; the LLC
itself costs more area and more energy per access.

Execution time (baseline = 1):

    T(s) = (1 - stall_share) + stall_share * miss_ratio(s)

Energy (baseline = 1), split core / cache / memory:

    E(s) = core_share + cache_share * access_energy_factor(s)
                      + memory_share * miss_ratio(s)

The paper fixes ``memory_share = 0.8`` and leaves the core/cache split
of the remaining 0.2 unquantified; we default to cache_share = 0.05
(cache access energy a quarter of the non-memory energy), a parameter
exposed for sensitivity analysis. The study's qualitative conclusions
(Finding #8) are insensitive to this split — see
``benchmarks/bench_ablation_cache_split.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.design import DesignPoint
from ..core.errors import ValidationError
from ..core.quantities import ensure_fraction, ensure_positive
from .cacti import CACTI_65NM_LLC, CactiCacheModel
from .missrate import SQRT2_RULE, MissRateModel

__all__ = ["MemoryBoundWorkload", "CachedProcessor", "PAPER_LLC_WORKLOAD"]


@dataclass(frozen=True, slots=True)
class MemoryBoundWorkload:
    """Execution-time and energy decomposition at the baseline cache.

    Parameters
    ----------
    memory_time_share:
        Fraction of execution time stalled on memory at the base LLC
        (0.8 in the paper).
    memory_energy_share:
        Fraction of total energy spent in memory at the base LLC (0.8).
    cache_energy_share:
        Fraction of total energy spent in the LLC at the base size
        (default 0.05; must satisfy memory + cache <= 1).
    """

    memory_time_share: float = 0.8
    memory_energy_share: float = 0.8
    cache_energy_share: float = 0.05

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "memory_time_share",
            ensure_fraction(self.memory_time_share, "memory_time_share"),
        )
        object.__setattr__(
            self,
            "memory_energy_share",
            ensure_fraction(self.memory_energy_share, "memory_energy_share"),
        )
        object.__setattr__(
            self,
            "cache_energy_share",
            ensure_fraction(self.cache_energy_share, "cache_energy_share"),
        )
        if self.memory_energy_share + self.cache_energy_share > 1.0:
            raise ValidationError(
                "memory_energy_share + cache_energy_share must not exceed 1"
            )

    @property
    def core_energy_share(self) -> float:
        return 1.0 - self.memory_energy_share - self.cache_energy_share

    @property
    def core_time_share(self) -> float:
        return 1.0 - self.memory_time_share


#: The paper's workload: 80 % of time and energy in memory at 1 MB.
PAPER_LLC_WORKLOAD = MemoryBoundWorkload()


@dataclass(frozen=True, slots=True)
class CachedProcessor:
    """A core + LLC whose cache size is the design variable.

    Parameters
    ----------
    llc_size_mb:
        The LLC capacity under study.
    base_llc_size_mb:
        The baseline capacity everything is normalized to (1 MB).
    llc_area_share:
        LLC area as a fraction of the *core* area at the base size
        (0.25 in the paper: "the 1 MB LLC occupies 25 % of the core
        chip area").
    workload, cacti, missrate:
        The workload decomposition and the scaling models.
    """

    llc_size_mb: float
    base_llc_size_mb: float = 1.0
    llc_area_share: float = 0.25
    workload: MemoryBoundWorkload = PAPER_LLC_WORKLOAD
    cacti: CactiCacheModel = CACTI_65NM_LLC
    missrate: MissRateModel = SQRT2_RULE

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "llc_size_mb", ensure_positive(self.llc_size_mb, "llc_size_mb")
        )
        object.__setattr__(
            self,
            "base_llc_size_mb",
            ensure_positive(self.base_llc_size_mb, "base_llc_size_mb"),
        )
        object.__setattr__(
            self,
            "llc_area_share",
            ensure_positive(self.llc_area_share, "llc_area_share"),
        )

    # -- scaling factors relative to the base configuration -------------
    @property
    def miss_ratio(self) -> float:
        return self.missrate.miss_ratio(self.llc_size_mb, self.base_llc_size_mb)

    @property
    def cache_area_factor(self) -> float:
        return self.cacti.area_factor(self.llc_size_mb) / self.cacti.area_factor(
            self.base_llc_size_mb
        )

    @property
    def cache_energy_factor(self) -> float:
        return self.cacti.access_energy_factor(
            self.llc_size_mb
        ) / self.cacti.access_energy_factor(self.base_llc_size_mb)

    # -- first-order quantities (base configuration = 1) ----------------
    @property
    def area(self) -> float:
        """Chip area (core + LLC) relative to the base chip."""
        base_chip = 1.0 + self.llc_area_share
        chip = 1.0 + self.llc_area_share * self.cache_area_factor
        return chip / base_chip

    @property
    def exec_time(self) -> float:
        """Execution time relative to the base chip."""
        w = self.workload
        return w.core_time_share + w.memory_time_share * self.miss_ratio

    @property
    def perf(self) -> float:
        return 1.0 / self.exec_time

    @property
    def energy(self) -> float:
        """Energy per unit work relative to the base chip."""
        w = self.workload
        return (
            w.core_energy_share
            + w.cache_energy_share * self.cache_energy_factor
            + w.memory_energy_share * self.miss_ratio
        )

    @property
    def power(self) -> float:
        return self.energy / self.exec_time

    def design_point(self, name: str | None = None) -> DesignPoint:
        return DesignPoint(
            name=name or f"LLC {self.llc_size_mb:g}MB",
            area=self.area,
            perf=self.perf,
            power=self.power,
        )
