"""The LLC sizing study (paper §5.5, Figure 6, Finding #8).

Sweeps the LLC from 1 MB to 16 MB in powers of two and computes the
NCF of each size against the 1 MB baseline under both scenarios and
both alpha regimes — the four curves of Figure 6.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

from ..core.classify import Sustainability, classify_values
from ..core.design import DesignPoint
from ..core.ncf import ncf
from ..core.scenario import UseScenario
from .hierarchy import CachedProcessor

__all__ = ["LLCPoint", "llc_sweep", "classify_llc", "PAPER_LLC_SIZES_MB"]

#: The paper's sweep: 1 MB to 16 MB in powers of two.
PAPER_LLC_SIZES_MB: tuple[float, ...] = (1.0, 2.0, 4.0, 8.0, 16.0)


@dataclass(frozen=True, slots=True)
class LLCPoint:
    """One cache size with its chart coordinates."""

    size_mb: float
    perf: float
    ncf_fixed_work: float
    ncf_fixed_time: float

    @property
    def category(self) -> Sustainability:
        return classify_values(self.ncf_fixed_work, self.ncf_fixed_time)


def llc_sweep(
    alpha: float,
    sizes_mb: Sequence[float] = PAPER_LLC_SIZES_MB,
    *,
    template: CachedProcessor | None = None,
) -> list[LLCPoint]:
    """NCF versus performance for each LLC size at the given alpha.

    ``template`` carries the workload/model configuration; its
    ``llc_size_mb`` is overridden per sweep point. Every point is
    normalized to the first size in *sizes_mb* — pass the paper's list
    to normalize to 1 MB as Figure 6 does.
    """
    base = template or CachedProcessor(llc_size_mb=sizes_mb[0])
    baseline_proc = replace(base, llc_size_mb=sizes_mb[0])
    baseline: DesignPoint = baseline_proc.design_point()
    points = []
    for size in sizes_mb:
        proc = replace(base, llc_size_mb=size)
        design = proc.design_point()
        points.append(
            LLCPoint(
                size_mb=size,
                perf=design.perf_ratio(baseline),
                ncf_fixed_work=ncf(design, baseline, UseScenario.FIXED_WORK, alpha),
                ncf_fixed_time=ncf(design, baseline, UseScenario.FIXED_TIME, alpha),
            )
        )
    return points


def classify_llc(
    size_mb: float,
    alpha: float,
    *,
    template: CachedProcessor | None = None,
) -> Sustainability:
    """Sustainability category of growing the LLC from 1 MB to *size_mb*."""
    points = llc_sweep(alpha, (1.0, size_mb), template=template)
    return points[-1].category
