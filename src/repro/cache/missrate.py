"""Cache miss-rate scaling: the sqrt(2) rule (paper §5.5).

Hartstein et al. (JILP 2008) observe empirically that cache miss rate
scales with the inverse square root of capacity: doubling the cache
cuts the miss rate by sqrt(2). The paper adopts this rule and further
assumes memory stall time is proportional to miss rate.

The exponent is a parameter (default 0.5) so sensitivity studies can
probe friendlier or harsher workloads.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.quantities import ensure_in_range, ensure_positive

__all__ = ["MissRateModel", "SQRT2_RULE"]


@dataclass(frozen=True, slots=True)
class MissRateModel:
    """Power-law miss-rate model: ``miss(size) ∝ size^(-exponent)``."""

    exponent: float = 0.5

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "exponent", ensure_in_range(self.exponent, 0.0, 1.0, "exponent")
        )

    def miss_ratio(self, size_mb: float, base_size_mb: float = 1.0) -> float:
        """Miss rate relative to the base cache size (1.0 at base).

        ``miss_ratio(4, 1) == 0.5`` under the sqrt rule: a 4x cache
        halves the misses.
        """
        size = ensure_positive(size_mb, "size_mb")
        base = ensure_positive(base_size_mb, "base_size_mb")
        return (base / size) ** self.exponent

    def capacity_for_miss_ratio(self, target_ratio: float, base_size_mb: float = 1.0) -> float:
        """Inverse: the capacity needed to reach a target miss ratio."""
        target = ensure_positive(target_ratio, "target_ratio")
        base = ensure_positive(base_size_mb, "base_size_mb")
        if self.exponent == 0.0:
            from ..core.errors import DomainError

            raise DomainError("miss rate does not depend on capacity when exponent=0")
        return base * target ** (-1.0 / self.exponent)


#: Hartstein et al.'s empirical rule, as used by the paper.
SQRT2_RULE = MissRateModel(exponent=0.5)
