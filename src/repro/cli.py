"""Command-line interface: regenerate any paper figure or the findings
table from a terminal.

Examples
--------
::

    focal list
    focal figure figure3                  # ASCII charts for all panels
    focal figure figure6 --format csv
    focal figure figure9 --out fig9.json
    focal findings                        # the Findings #1-#17 table
    focal findings --failed-only
    focal sweep --max-cores 256 --trace trace.json --metrics run.prom
    focal sweep --max-cores 256 --store runs/store   # persistent reuse
    focal store ls runs/store             # stored fingerprints
    focal store gc runs/store --max-bytes 10000000
    focal trace show trace.json           # replay a traced run
    focal trace export trace.json --format chrome --out timeline.json
    focal profile trace.json              # bottleneck attribution
    focal profile --bench --workers 4     # trace + profile one sweep
    focal --log-level debug figure figure3

Every subcommand accepts the observability flags: ``--trace FILE``
records a run manifest + span tree, ``--metrics FILE`` exports the
metrics registry (``.prom``/``.txt`` → Prometheus text, otherwise
JSON-lines), and ``-v``/``--log-level`` raises the structured stderr
logging level. The flags are accepted both before and after the
subcommand name.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Sequence

from .obs import events as obs_events
from .obs import log as obs_log
from .obs import metrics as obs_metrics
from .obs import trace as obs_trace
from .obs.log import get_logger, kv
from .report.ascii_plot import render_panel
from .report.export import figure_to_csv, figure_to_json, figure_to_markdown, write_figure
from .report.table import format_mapping_rows
from .studies.findings import all_findings
from .studies.registry import run_study, study_names

__all__ = ["main", "build_parser"]


def _workers_arg(value: str) -> "int | str":
    """``--workers`` accepts a pool size or the literal ``auto``."""
    if value == "auto":
        return "auto"
    try:
        workers = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer or 'auto', got {value!r}"
        ) from None
    if workers < 0:
        raise argparse.ArgumentTypeError(f"workers must be >= 0, got {workers}")
    return workers


def _add_global_options(parser: argparse.ArgumentParser, *, suppress: bool) -> None:
    """The observability options every subcommand accepts.

    Added twice — on the root parser with real defaults and on each
    subparser with ``SUPPRESS`` defaults — so ``focal -v sweep`` and
    ``focal sweep -v`` both work: the subparser only overrides the
    root's value when the flag actually appears after the subcommand.
    """
    d = argparse.SUPPRESS if suppress else None
    group = parser.add_argument_group("observability")
    group.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=argparse.SUPPRESS if suppress else 0,
        help="increase log verbosity (-v info, -vv debug)",
    )
    group.add_argument(
        "--log-level",
        choices=obs_log.LEVELS,
        default=d,
        help="structured stderr log level (overrides -v)",
    )
    group.add_argument(
        "--trace",
        dest="trace_out",
        metavar="FILE",
        default=d,
        help="record a run manifest + span trace to FILE (JSON)",
    )
    group.add_argument(
        "--metrics",
        dest="metrics_out",
        metavar="FILE",
        default=d,
        help="export metrics to FILE (.prom/.txt Prometheus, else JSON-lines)",
    )


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="focal",
        description="FOCAL (ASPLOS'24) reproduction: figures and findings.",
    )
    _add_global_options(parser, suppress=False)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list reproducible figures")

    sub.add_parser("version", help="print package and toolchain versions")

    trace_cmd = sub.add_parser("trace", help="inspect recorded trace files")
    trace_sub = trace_cmd.add_subparsers(dest="trace_command", required=True)
    show = trace_sub.add_parser(
        "show", help="pretty-print a trace report written by --trace"
    )
    show.add_argument("file", help="trace report JSON file")
    export = trace_sub.add_parser(
        "export",
        help="convert a trace report into a timeline viewers can open "
        "(chrome://tracing, https://ui.perfetto.dev)",
    )
    export.add_argument("file", help="trace report JSON file")
    export.add_argument(
        "--format",
        choices=("chrome",),
        default="chrome",
        help="timeline format (chrome = Chrome Trace Event JSON)",
    )
    export.add_argument(
        "--out",
        help="output file (default: FILE with a .chrome.json suffix)",
    )

    profile = sub.add_parser(
        "profile",
        help="attribute a parallel sweep's wall-clock to compute / shm / "
        "dispatch / stragglers / parent-serial time",
    )
    profile.add_argument(
        "file",
        nargs="?",
        help="trace report JSON from a traced parallel sweep "
        "(omit with --bench)",
    )
    profile.add_argument(
        "--bench",
        action="store_true",
        help="trace and profile one parallel-columnar benchmark sweep "
        "(the engine benchmark's fixed-point workload) in-process",
    )
    profile.add_argument(
        "--workers", type=int, default=4, help="pool size for --bench"
    )
    profile.add_argument(
        "--iters",
        type=int,
        default=2500,
        help="fixed-point iterations per chunk for --bench",
    )
    profile.add_argument(
        "--cores", type=int, default=400, help="core-count axis top for --bench"
    )
    profile.add_argument(
        "--fractions",
        type=int,
        default=250,
        help="parallel-fraction axis resolution for --bench",
    )
    profile.add_argument(
        "--chunk-size", type=int, default=4096, help="chunk size for --bench"
    )

    fig = sub.add_parser("figure", help="regenerate one figure")
    fig.add_argument("name", help=f"one of: {', '.join(study_names())}")
    fig.add_argument(
        "--format",
        choices=("ascii", "csv", "json", "md", "html"),
        default="ascii",
        help="output format (default: ascii charts)",
    )
    fig.add_argument("--out", help="write to this file (suffix picks the format)")

    findings = sub.add_parser("findings", help="verify Findings #1-#17")
    findings.add_argument(
        "--failed-only", action="store_true", help="only print failing checks"
    )

    compare = sub.add_parser(
        "compare", help="classify an ad-hoc design pair (X vs Y)"
    )
    for side in ("x", "y"):
        compare.add_argument(
            f"--{side}",
            nargs=3,
            type=float,
            metavar=("AREA", "PERF", "POWER"),
            required=True,
            help=f"design {side.upper()}: area perf power",
        )
    compare.add_argument(
        "--alpha",
        type=float,
        default=None,
        help="single embodied-to-operational weight (default: both paper regimes)",
    )

    road = sub.add_parser(
        "roadmap", help="Moore's-Law roadmap: shrink vs constant-area policies"
    )
    road.add_argument("--generations", type=int, default=6)
    road.add_argument("--cores", type=int, default=4)
    road.add_argument("--parallel-fraction", type=float, default=0.75)

    sub.add_parser(
        "mechanisms",
        help="the paper's strong/weak/less categorization table (§5-§6)",
    )

    sweep = sub.add_parser(
        "sweep",
        help="batch-sweep the symmetric-multicore design space "
        "(vectorized engine; Figure 3's axes at any resolution)",
    )
    sweep.add_argument(
        "--max-cores", type=int, default=64, help="top of the BCE ladder (default 64)"
    )
    sweep.add_argument(
        "--fractions",
        type=float,
        nargs="+",
        default=[0.5, 0.9, 0.95, 0.99],
        help="parallel fractions to sweep",
    )
    sweep.add_argument(
        "--regime",
        choices=("embodied", "operational", "balanced"),
        default="embodied",
        help="embodied-to-operational weight regime (default: embodied)",
    )
    sweep.add_argument(
        "--workers",
        type=_workers_arg,
        default=0,
        metavar="N|auto",
        help=(
            "process-pool workers (0 = in-process, 'auto' = calibrate: "
            "time the first chunk and engage a pool only when the "
            "dispatch math wins); a cold sweep of a vector factory runs "
            "parallel-columnar: the grid resides in shared memory and "
            "chunk-aligned shards return results via shared memory"
        ),
    )
    sweep.add_argument(
        "--scheduler",
        choices=("steal", "static"),
        default="steal",
        help=(
            "shard schedule for worker pools: 'steal' (default) queues "
            "geometrically-shrinking shards that idle workers pick up, "
            "'static' pre-assigns equal spans"
        ),
    )
    sweep.add_argument(
        "--spill-dir",
        metavar="DIR",
        default=None,
        help=(
            "back the sweep's result block (and grid residency) with "
            "memory-mapped files under DIR instead of shared memory; "
            "without --spill-bytes every block spills"
        ),
    )
    sweep.add_argument(
        "--spill-bytes",
        type=int,
        default=None,
        metavar="BYTES",
        help=(
            "out-of-core threshold: blocks at or above BYTES are "
            "memmap-backed (under --spill-dir when given, else the "
            "system tmp dir); smaller blocks stay in RAM"
        ),
    )
    sweep.add_argument(
        "--chunk-size",
        type=int,
        default=1024,
        help="grid points evaluated per streamed chunk",
    )
    sweep.add_argument(
        "--pareto", action="store_true", help="also print the Pareto frontier"
    )
    sweep.add_argument(
        "--checkpoint",
        metavar="PATH",
        default=None,
        help="persist completed chunks to this file (atomic, checksummed) "
        "so a killed sweep can be resumed",
    )
    sweep.add_argument(
        "--resume",
        action="store_true",
        help="resume from --checkpoint: completed chunks are replayed "
        "without re-evaluation; results are bit-identical to an "
        "uninterrupted run",
    )
    sweep.add_argument(
        "--store",
        metavar="DIR",
        default=None,
        help="persistent result store: chunks whose fingerprint matches "
        "a previous run load from DIR instead of re-evaluating "
        "(bit-identical); new chunks are written back for next time",
    )
    sweep.add_argument(
        "--quarantine",
        metavar="PATH",
        default=None,
        help="poison-point ledger: grid points that deterministically "
        "crash workers are bisect-isolated, recorded here and skipped "
        "(exit code 4 reports a completed sweep with quarantined "
        "points); a later run consults the ledger and never re-crashes",
    )
    sweep.add_argument(
        "--salvage",
        action="store_true",
        help="when the worker pool is irrecoverable, keep the completed "
        "chunks and exit 3 with a failure report (and a resumable "
        "--checkpoint when one is given) instead of failing the sweep",
    )

    store_cmd = sub.add_parser(
        "store", help="inspect and maintain a persistent result store"
    )
    store_sub = store_cmd.add_subparsers(dest="store_command", required=True)
    store_ls = store_sub.add_parser(
        "ls", help="one row per stored fingerprint, oldest first"
    )
    store_stat = store_sub.add_parser(
        "stat", help="aggregate store totals (fingerprints, files, bytes)"
    )
    store_gc = store_sub.add_parser(
        "gc",
        help="collect garbage: temp litter, orphaned objects, corrupt "
        "entries; with --max-bytes also evict oldest fingerprints",
    )
    for store_parser in (store_ls, store_stat, store_gc):
        store_parser.add_argument("dir", help="store directory")
    store_gc.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        metavar="N",
        help="evict whole fingerprints oldest-first until the store "
        "fits N bytes",
    )

    advise = sub.add_parser(
        "advise", help="rank the paper's mechanisms for a workload class"
    )
    advise.add_argument(
        "workload",
        help="a roster workload (desktop, mobile, datacenter, "
        "hpc-strong-scaling, memory-intensive)",
    )
    advise.add_argument(
        "--regime",
        choices=("embodied", "operational"),
        default="embodied",
        help="which footprint dominates the device (default: embodied)",
    )

    # Observability flags ride on every subcommand (SUPPRESS defaults,
    # so they only override the root's values when actually given).
    for command_parser in sub.choices.values():
        _add_global_options(command_parser, suppress=True)
    _add_global_options(show, suppress=True)
    _add_global_options(export, suppress=True)
    for store_parser in (store_ls, store_stat, store_gc):
        _add_global_options(store_parser, suppress=True)
    return parser


def _cmd_list() -> int:
    for name in study_names():
        print(name)
    return 0


def _cmd_version() -> int:
    import os
    import platform

    import numpy

    from . import __version__

    print(
        f"focal {__version__} "
        f"(python {platform.python_version()}, numpy {numpy.__version__})"
    )
    print(
        f"platform: {platform.platform()} "
        f"[{platform.machine() or 'unknown'}, {os.cpu_count() or 1} cpus]"
    )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.trace_command == "show":
        from .obs.show import render_report_file

        print(render_report_file(args.file))
        return 0
    if args.trace_command == "export":
        from pathlib import Path

        from .obs.chrome import report_to_chrome
        from .obs.show import load_report

        report = load_report(args.file)
        source = Path(args.file)
        out = Path(args.out) if args.out else source.with_suffix(".chrome.json")
        out.write_text(report_to_chrome(report) + "\n")
        print(f"wrote {out}")
        return 0
    raise AssertionError(
        f"unhandled trace command {args.trace_command!r}"
    )  # pragma: no cover


def _cmd_profile(args: argparse.Namespace) -> int:
    from .core.errors import ConfigurationError
    from .obs.profile import profile_report, render_profile

    if args.bench:
        report = _profile_bench_report(args)
    elif args.file:
        from .obs.show import load_report

        report = load_report(args.file)
    else:
        raise ConfigurationError(
            "focal profile needs a trace report FILE (from a run with "
            "--trace and --workers N) or --bench to record one now"
        )
    print(render_profile(profile_report(report)))
    return 0


def _profile_bench_report(args: argparse.Namespace) -> dict:
    """Run one traced parallel-columnar sweep and return its report.

    The workload is the engine benchmark's iterative fixed-point
    factory at the benchmark's default operating point (overridable via
    ``--cores/--fractions/--iters/--workers/--chunk-size``), so
    ``focal profile --bench`` explains the same run the recorded
    ``BENCH_dse.json`` speedups come from.

    When the command already runs under ``--trace``, the sweep lands in
    that session (and in its report file); otherwise a private
    observability session is armed for the sweep and reset afterwards.
    """
    from .core.design import DesignPoint
    from .core.scenario import EMBODIED_DOMINATED
    from .dse.batch import BatchExplorer
    from .dse.factories import IterativeFixedPointFactory
    from .dse.grid import ParameterGrid, linear_range
    from .obs.manifest import build_manifest, build_report
    from .resilience import DEFAULT_POLICY

    tracer = obs_trace.get_tracer()
    private_session = not tracer.enabled
    if private_session:
        obs_trace.reset()
        obs_metrics.reset()
        obs_events.reset()
        obs_trace.enable()
        obs_metrics.enable()
        obs_events.enable()
        tracer = obs_trace.get_tracer()
    try:
        grid = ParameterGrid(
            {
                "cores": [float(c) for c in range(1, args.cores + 1)],
                "f": linear_range(0.50, 0.99, args.fractions),
            }
        )
        explorer = BatchExplorer(
            factory=IterativeFixedPointFactory(iters=args.iters),
            baseline=DesignPoint.baseline("1-BCE single core"),
            weight=EMBODIED_DOMINATED,
            chunk_size=args.chunk_size,
            workers=args.workers,
            resilience=DEFAULT_POLICY if args.workers else None,
        )
        start_s = time.perf_counter()
        sweep = explorer.explore_arrays(grid)
        duration_s = time.perf_counter() - start_s
        print(
            f"benchmark sweep: {len(sweep)} designs in {duration_s:.3f} s "
            f"({args.workers} workers, chunk {args.chunk_size})\n",
            file=sys.stderr,
        )
        manifest = build_manifest(
            ["profile", "--bench"],
            command="profile",
            tracer=tracer,
            duration_s=duration_s,
        )
        return build_report(
            manifest,
            tracer=tracer,
            registry=obs_metrics.get_registry(),
            events=obs_events.get_log(),
        )
    finally:
        if private_session:
            obs_trace.reset()
            obs_metrics.reset()
            obs_events.reset()


def _cmd_figure(name: str, fmt: str, out: str | None) -> int:
    figure = run_study(name)
    if out:
        path = write_figure(figure, out)
        print(f"wrote {path}")
        return 0
    if fmt == "csv":
        print(figure_to_csv(figure), end="")
    elif fmt == "json":
        print(figure_to_json(figure))
    elif fmt == "md":
        print(figure_to_markdown(figure))
    elif fmt == "html":
        from .report.svg import figure_to_html

        print(figure_to_html(figure))
    else:
        print(f"== {figure.figure_id}: {figure.caption}")
        for note in figure.notes:
            print(f"   note: {note}")
        for panel in figure.panels:
            print()
            print(render_panel(panel))
    return 0


def _cmd_findings(failed_only: bool) -> int:
    checks = all_findings()
    shown = [c for c in checks if not (failed_only and c.passed)]
    failed = [c for c in checks if not c.passed]
    if shown:
        rows = [check.as_dict() for check in shown]
        print(
            format_mapping_rows(
                rows,
                columns=["finding", "claim", "paper", "computed", "passed"],
                title="FOCAL findings verification",
            )
        )
    print(f"\n{len(checks) - len(failed)}/{len(checks)} checks pass")
    return 1 if failed else 0


def _cmd_compare(x: list[float], y: list[float], alpha: float | None) -> int:
    from .core.classify import classify
    from .core.design import DesignPoint
    from .core.scenario import STANDARD_WEIGHTS

    design_x = DesignPoint("X", area=x[0], perf=x[1], power=x[2])
    design_y = DesignPoint("Y", area=y[0], perf=y[1], power=y[2])
    alphas = (
        [(f"alpha={alpha:g}", alpha)]
        if alpha is not None
        else [(w.name, w.alpha) for w in STANDARD_WEIGHTS]
    )
    rows = []
    for label, value in alphas:
        verdict = classify(design_x, design_y, value)
        rows.append(
            {
                "regime": label,
                "alpha": value,
                "NCF_fw": verdict.ncf_fixed_work,
                "NCF_ft": verdict.ncf_fixed_time,
                "verdict": verdict.category.value,
            }
        )
    print(
        format_mapping_rows(
            rows,
            title=(
                f"X(area={x[0]:g}, perf={x[1]:g}, power={x[2]:g}) vs "
                f"Y(area={y[0]:g}, perf={y[1]:g}, power={y[2]:g})"
            ),
        )
    )
    return 0


def _cmd_roadmap(generations: int, cores: int, parallel_fraction: float) -> int:
    from .core.scenario import UseScenario
    from .technode.roadmap import RoadmapPolicy, roadmap

    for policy in RoadmapPolicy:
        points = roadmap(
            policy,
            generations,
            start_cores=cores,
            parallel_fraction=parallel_fraction,
        )
        rows = [
            {
                "gen": p.generation,
                "cores": p.cores,
                "embodied": p.embodied,
                "perf": p.perf,
                "power": p.power,
                "NCF_fw(0.5)": p.ncf(UseScenario.FIXED_WORK, 0.5),
                "NCF_ft(0.5)": p.ncf(UseScenario.FIXED_TIME, 0.5),
            }
            for p in points
        ]
        print(format_mapping_rows(rows, title=f"policy: {policy.value}"))
        print()
    return 0


def _cmd_mechanisms() -> int:
    from .studies.mechanisms import mechanism_catalogue

    entries = mechanism_catalogue()
    rows = [entry.as_dict() for entry in entries]
    print(
        format_mapping_rows(
            rows,
            columns=["mechanism", "section", "regime", "ncf_fw", "ncf_ft", "computed", "match"],
            title="Archetypal mechanisms: strong/weak/less categorization (paper §5-§6)",
        )
    )
    mismatches = [e for e in entries if not e.matches_paper]
    print(f"\n{len(entries) - len(mismatches)}/{len(entries)} categories match the paper")
    return 1 if mismatches else 0


def _cmd_sweep(
    max_cores: int,
    fractions: list[float],
    regime: str,
    workers: "int | str",
    chunk_size: int,
    pareto: bool,
    checkpoint: str | None = None,
    resume: bool = False,
    store: str | None = None,
    quarantine: str | None = None,
    salvage: bool = False,
    scheduler: str = "steal",
    spill_dir: str | None = None,
    spill_bytes: int | None = None,
) -> int:
    import dataclasses

    from .core.design import DesignPoint
    from .core.scenario import BALANCED, EMBODIED_DOMINATED, OPERATIONAL_DOMINATED
    from .dse.batch import BatchExplorer
    from .dse.factories import SymmetricMulticoreFactory
    from .dse.grid import ParameterGrid, geometric_range
    from .dse.store import ResultStore
    from .resilience import DEFAULT_POLICY

    weight = {
        "embodied": EMBODIED_DOMINATED,
        "operational": OPERATIONAL_DOMINATED,
        "balanced": BALANCED,
    }[regime]
    grid = ParameterGrid(
        {"cores": geometric_range(1, max_cores), "f": list(fractions)}
    )
    # A vector factory (frozen dataclass, picklable for --workers):
    # cold sweeps run columnar (parallel-columnar with --workers, grid
    # shards dispatched as columns), warm re-sweeps hit the cache.
    # Worker runs are supervised: crashed or hung workers are retried,
    # the pool is respawned, and as a last resort evaluation degrades
    # in-process — the sweep finishes either way.
    policy = None
    if workers:
        policy = DEFAULT_POLICY
        if salvage:
            # Salvage replaces degradation: an irrecoverable pool hands
            # back the completed prefix instead of finishing in-process.
            policy = dataclasses.replace(
                DEFAULT_POLICY, salvage=True, degrade_in_process=False
            )
    explorer = BatchExplorer(
        factory=SymmetricMulticoreFactory(),
        baseline=DesignPoint.baseline("1-BCE single core"),
        weight=weight,
        chunk_size=chunk_size,
        workers=workers,
        resilience=policy,
        scheduler=scheduler,
        spill_dir=spill_dir,
        spill_bytes=spill_bytes,
    )
    result_store = ResultStore(store) if store else None
    sweep = explorer.explore_arrays(
        grid,
        checkpoint=checkpoint,
        resume=resume,
        store=result_store,
        quarantine=quarantine,
    )
    rows = [
        {"category": category.value, "points": count}
        for category, count in sweep.category_counts().items()
    ]
    print(
        format_mapping_rows(
            rows,
            title=(
                f"{len(sweep)} designs (cores <= {max_cores}, "
                f"f in {{{', '.join(f'{f:g}' for f in fractions)}}}) "
                f"vs 1-BCE single core under {weight.name}"
            ),
        )
    )
    stats = explorer.cache.stats()
    print(
        f"\ncache: {stats.size} entries, {stats.hits} hits / "
        f"{stats.misses} misses (hit ratio {stats.hit_ratio:.1%})"
    )
    if explorer.last_sweep is not None:
        print(explorer.last_sweep.summary())
    if result_store is not None:
        s = result_store.stats()
        print(
            f"store: {s.memory_hits} memory hits / {s.disk_hits} disk hits "
            f"/ {s.misses} misses, {s.objects_written} objects written "
            f"({s.bytes_written} bytes) in {store}"
        )
    supervision = explorer.last_supervision
    if supervision is not None and supervision.summary():
        print(supervision.summary())
    if sweep.quarantined:
        print(
            f"quarantine: {len(sweep.quarantined)} poison point(s) "
            f"excluded"
            + (f", ledger at {quarantine}" if quarantine else "")
        )
    if sweep.failure is not None:
        print(sweep.failure.summary())
    if pareto:
        from .core.pareto import ParetoPoint, pareto_frontier

        frontier = pareto_frontier(
            [
                ParetoPoint(name=design.name, perf=float(perf), footprint=float(fw))
                for design, perf, fw in zip(
                    sweep.designs, sweep.perf, sweep.ncf_fixed_work
                )
            ]
        )
        print()
        print(
            format_mapping_rows(
                [
                    {"design": p.name, "perf": p.perf, "NCF_fw": p.footprint}
                    for p in frontier
                ],
                title="Pareto frontier (max perf, min fixed-work NCF)",
            )
        )
    # Exit-code contract (see ``main``): a salvaged partial result
    # outranks quarantined points — the caller must know the sweep is
    # incomplete before caring which points were excluded.
    if sweep.failure is not None:
        return 3
    if sweep.quarantined:
        return 4
    return 0


def _cmd_store(args: argparse.Namespace) -> int:
    import datetime

    from .dse.store import ResultStore

    store = ResultStore(args.dir)
    if args.store_command == "ls":
        rows = store.ls()
        if not rows:
            print(f"empty store: {args.dir}")
            return 0
        print(
            format_mapping_rows(
                [
                    {
                        "kind": row["kind"],
                        "fingerprint": row["fingerprint"],
                        "what": row["what"],
                        "entries": row["entries"],
                        "files": row["files"],
                        "bytes": row["bytes"],
                        "last_used": datetime.datetime.fromtimestamp(
                            row["last_used"]
                        ).strftime("%Y-%m-%d %H:%M:%S"),
                    }
                    for row in rows
                ],
                title=f"result store {args.dir} (oldest first)",
            )
        )
        return 0
    if args.store_command == "stat":
        info = store.stat()
        for key in (
            "root",
            "fingerprints",
            "sweep_fingerprints",
            "mc_fingerprints",
            "entries",
            "files",
            "bytes",
        ):
            print(f"{key}: {info[key]}")
        return 0
    if args.store_command == "gc":
        report = store.gc(max_bytes=args.max_bytes)
        print(
            f"gc {args.dir}: removed {report['removed_tmp']} temp files, "
            f"{report['removed_orphans']} orphaned objects, "
            f"{report['removed_corrupt']} corrupt entries"
        )
        if report["evicted_fingerprints"]:
            print(
                "evicted (oldest first): "
                + ", ".join(report["evicted_fingerprints"])
            )
        print(f"freed {report['freed_bytes']} bytes, {report['bytes']} remain")
        return 0
    raise AssertionError(
        f"unhandled store command {args.store_command!r}"
    )  # pragma: no cover


def _cmd_advise(workload_name: str, regime: str) -> int:
    from .core.scenario import EMBODIED_DOMINATED, OPERATIONAL_DOMINATED
    from .workloads.advisor import advise
    from .workloads.profiles import workload_by_name

    workload = workload_by_name(workload_name)
    weight = EMBODIED_DOMINATED if regime == "embodied" else OPERATIONAL_DOMINATED
    rows = [
        {
            "mechanism": rec.mechanism,
            "verdict": rec.category.value,
            "NCF_fw": rec.verdict.ncf_fixed_work,
            "NCF_ft": rec.verdict.ncf_fixed_time,
            "perf": rec.perf_ratio,
        }
        for rec in advise(workload, weight)
    ]
    print(
        format_mapping_rows(
            rows,
            title=(
                f"{workload.name} (f={workload.parallel_fraction:g}, "
                f"mem={workload.memory_time_share:g}, "
                f"accel={workload.accelerator_utilization:g}) under "
                f"{weight.name}"
            ),
        )
    )
    return 0


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "list":
        return _cmd_list()
    if args.command == "version":
        return _cmd_version()
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "figure":
        return _cmd_figure(args.name, args.format, args.out)
    if args.command == "findings":
        return _cmd_findings(args.failed_only)
    if args.command == "compare":
        return _cmd_compare(args.x, args.y, args.alpha)
    if args.command == "roadmap":
        return _cmd_roadmap(args.generations, args.cores, args.parallel_fraction)
    if args.command == "sweep":
        return _cmd_sweep(
            args.max_cores,
            args.fractions,
            args.regime,
            args.workers,
            args.chunk_size,
            args.pareto,
            args.checkpoint,
            args.resume,
            args.store,
            args.quarantine,
            args.salvage,
            args.scheduler,
            args.spill_dir,
            args.spill_bytes,
        )
    if args.command == "store":
        return _cmd_store(args)
    if args.command == "advise":
        return _cmd_advise(args.workload, args.regime)
    if args.command == "mechanisms":
        return _cmd_mechanisms()
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


def _resolve_log_level(args: argparse.Namespace) -> str:
    explicit = getattr(args, "log_level", None)
    if explicit:
        return explicit
    verbose = getattr(args, "verbose", 0) or 0
    if verbose >= 2:
        return "debug"
    if verbose == 1:
        return "info"
    return "warning"


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    When ``--trace``/``--metrics`` are given, the whole command runs
    under a ``cli:<command>`` root span with the global tracer and
    metrics registry enabled; on the way out (success or failure) the
    run manifest + trace report and/or the metrics export are written
    and the global observability state is reset, so in-process callers
    (tests, notebooks) never leak spans between runs.

    Exit-code contract:

    * ``0`` — the command completed cleanly.
    * ``2`` — a model/configuration failure (any :class:`~repro.core.
      errors.ReproError`): one-line ``error: ...`` on stderr, full
      traceback only at ``--log-level debug``.
    * ``3`` — ``focal sweep --salvage`` returned a *partial* result:
      the completed chunks were kept and a failure report printed; a
      ``--checkpoint`` written by such a run resumes bit-exactly.
    * ``4`` — ``focal sweep`` completed, but the quarantine ledger
      excluded poison points; all surviving results are byte-identical
      to a clean run over the surviving grid.
    * ``130`` — ``Ctrl-C``, the shell convention for SIGINT.

    A salvaged run (3) outranks quarantined points (4): incompleteness
    matters more than which points were excluded.
    """
    from .core.errors import ReproError

    args = build_parser().parse_args(argv)
    level = _resolve_log_level(args)
    obs_log.configure(level)
    log = get_logger()
    trace_out = getattr(args, "trace_out", None)
    metrics_out = getattr(args, "metrics_out", None)
    observing = bool(trace_out or metrics_out)
    if observing:
        obs_trace.reset()
        obs_metrics.reset()
        obs_events.reset()
        if trace_out:
            obs_trace.enable()
            obs_events.enable()
        obs_metrics.enable()
    tracer = obs_trace.get_tracer()
    log.debug(kv("cli.start", command=args.command))
    start_s = time.perf_counter()
    try:
        with tracer.span(f"cli:{args.command}", command=args.command):
            code = _dispatch(args)
    except ReproError as exc:
        if level == "debug":
            import traceback

            traceback.print_exc(file=sys.stderr)
        print(f"error: {exc}", file=sys.stderr)
        log.debug(kv("cli.error", command=args.command, error=str(exc)))
        code = 2
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        code = 130
    finally:
        if observing:
            duration_s = time.perf_counter() - start_s
            _write_observability(args, argv, tracer, trace_out, metrics_out, duration_s)
            obs_trace.reset()
            obs_metrics.reset()
            obs_events.reset()
    log.debug(kv("cli.done", command=args.command, exit_code=code))
    return code


def _write_observability(
    args: argparse.Namespace,
    argv: Sequence[str] | None,
    tracer: obs_trace.Tracer,
    trace_out: str | None,
    metrics_out: str | None,
    duration_s: float,
) -> None:
    from .obs.manifest import build_manifest
    from .report.export import write_metrics, write_trace

    registry = obs_metrics.get_registry()
    if trace_out:
        manifest = build_manifest(
            list(argv) if argv is not None else sys.argv[1:],
            command=args.command,
            seed=getattr(args, "seed", None),
            tracer=tracer,
            duration_s=duration_s,
        )
        path = write_trace(
            trace_out,
            manifest=manifest,
            tracer=tracer,
            registry=registry,
            events=obs_events.get_log(),
        )
        print(f"wrote trace {path}", file=sys.stderr)
    if metrics_out:
        path = write_metrics(registry, metrics_out)
        print(f"wrote metrics {path}", file=sys.stderr)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
