"""FOCAL's core: design points, scenarios, the NCF metric, and the
strong/weak/less sustainability classification (paper §3–§4)."""

from .batch import (
    CATEGORIES,
    categories_from_codes,
    category_counts,
    classify_arrays,
    ncf_values,
)
from .classify import (
    NEUTRAL_ABS_TOL,
    NEUTRAL_REL_TOL,
    Sustainability,
    Verdict,
    classify,
    classify_assessment,
    classify_pair,
    classify_values,
)
from .design import DesignPoint
from .errors import (
    CheckpointError,
    ConfigurationError,
    ConvergenceError,
    DomainError,
    ReproError,
    ResilienceError,
    UnknownStudyError,
    ValidationError,
    WorkerPoolError,
)
from .metrics import (
    ClassicMetric,
    Disagreement,
    disagreement,
    metric_ratio,
    metric_value,
)
from .mix import time_weighted_mix
from .ncf import (
    NCFAssessment,
    NCFBand,
    assess,
    ncf,
    ncf_band,
    ncf_from_ratios,
    relative_footprint,
)
from .pareto import ParetoPoint, pareto_designs, pareto_frontier
from .scenario import (
    BALANCED,
    EMBODIED_DOMINATED,
    OPERATIONAL_DOMINATED,
    STANDARD_WEIGHTS,
    E2OWeight,
    UseScenario,
)
from .uncertainty import Interval, RobustConclusion, robust_classification

__all__ = [
    # design
    "DesignPoint",
    # scenario
    "UseScenario",
    "E2OWeight",
    "EMBODIED_DOMINATED",
    "OPERATIONAL_DOMINATED",
    "BALANCED",
    "STANDARD_WEIGHTS",
    # ncf
    "ncf",
    "ncf_from_ratios",
    "ncf_band",
    "relative_footprint",
    "NCFBand",
    "NCFAssessment",
    "assess",
    # classification
    "Sustainability",
    "Verdict",
    "classify",
    "classify_values",
    "classify_assessment",
    "classify_pair",
    "NEUTRAL_REL_TOL",
    "NEUTRAL_ABS_TOL",
    # vectorized batch kernels
    "CATEGORIES",
    "ncf_values",
    "classify_arrays",
    "category_counts",
    "categories_from_codes",
    # uncertainty
    "Interval",
    "RobustConclusion",
    "robust_classification",
    # pareto
    "ParetoPoint",
    "pareto_frontier",
    "pareto_designs",
    # classical metrics
    "ClassicMetric",
    "metric_value",
    "metric_ratio",
    "Disagreement",
    "disagreement",
    # workload mixes
    "time_weighted_mix",
    # errors
    "ReproError",
    "ValidationError",
    "DomainError",
    "ConvergenceError",
    "ConfigurationError",
    "UnknownStudyError",
    "ResilienceError",
    "CheckpointError",
    "WorkerPoolError",
]
