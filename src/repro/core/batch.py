"""Vectorized batch kernels for NCF evaluation and classification.

Every figure and finding in FOCAL is a sweep: the design-space explorer
maps a factory over a cartesian grid and the Monte-Carlo module
classifies tens of thousands of samples per design pair. This module
provides the NumPy kernels those hot paths run on:

* :func:`ncf_values` — the affine NCF combination over whole arrays of
  footprint ratios and alphas;
* :func:`classify_arrays` — the strong/weak/less/neutral verdict for
  whole arrays of NCF pairs, including the neutral-boundary tolerance;
* :func:`category_counts` — the category histogram via ``np.bincount``.

The kernels are bit-exact with their scalar counterparts
(:func:`repro.core.ncf.ncf_from_ratios` and
:func:`repro.core.classify.classify_values`): both operate on IEEE-754
doubles with the same operation order and the same boundary-tolerance
arithmetic, so a vectorized sweep produces byte-identical NCF values and
identical verdicts to the scalar loop it replaces.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from .classify import NEUTRAL_ABS_TOL, NEUTRAL_REL_TOL, Sustainability
from .errors import ValidationError

__all__ = [
    "CATEGORIES",
    "ncf_values",
    "classify_arrays",
    "category_counts",
    "categories_from_codes",
    "ensure_positive_array",
    "ensure_non_negative_array",
    "ensure_fraction_array",
    "ensure_int_at_least_array",
    "exact_exp",
    "exact_expm1",
    "exact_pow",
]

#: Category for each code returned by :func:`classify_arrays`. The order
#: is load-bearing: ``np.bincount`` over codes counts in this order.
CATEGORIES: tuple[Sustainability, ...] = (
    Sustainability.STRONG,
    Sustainability.WEAK,
    Sustainability.LESS,
    Sustainability.NEUTRAL,
)

_STRONG, _WEAK, _LESS, _NEUTRAL = range(len(CATEGORIES))


def _ratio_array(values: object, name: str) -> np.ndarray:
    """Array-wise :func:`~repro.core.quantities.ensure_positive`."""
    arr = np.asarray(values, dtype=np.float64)
    bad = ~(np.isfinite(arr) & (arr > 0.0))
    if bad.any():
        index = int(np.argmax(bad.ravel()))
        raise ValidationError(
            f"{name} must be > 0 and finite, got {arr.ravel()[index]!r} "
            f"(flat index {index})"
        )
    return arr


def _alpha_array(values: object) -> np.ndarray:
    """Array-wise :func:`~repro.core.quantities.ensure_fraction`."""
    arr = np.asarray(values, dtype=np.float64)
    bad = ~(np.isfinite(arr) & (arr >= 0.0) & (arr <= 1.0))
    if bad.any():
        index = int(np.argmax(bad.ravel()))
        raise ValidationError(
            f"alphas must lie in [0, 1], got {arr.ravel()[index]!r} "
            f"(flat index {index})"
        )
    return arr


def ncf_values(
    area_ratios: object,
    op_ratios: object,
    alphas: object,
) -> np.ndarray:
    """Vectorized :func:`~repro.core.ncf.ncf_from_ratios`.

    Computes ``alpha * area + (1 - alpha) * op`` elementwise with NumPy
    broadcasting: any argument may be a scalar or an array (a scalar
    alpha sweeps one weight over many designs; an alpha array sweeps the
    uncertainty band over one design).

    Inputs are validated array-wise with the same rules as the scalar
    path (ratios strictly positive and finite, alphas in ``[0, 1]``) and
    the arithmetic is bit-exact with the scalar implementation.
    """
    area = _ratio_array(area_ratios, "area_ratios")
    op = _ratio_array(op_ratios, "op_ratios")
    alpha = _alpha_array(alphas)
    return alpha * area + (1.0 - alpha) * op


def _boundary_signs(values: np.ndarray, rel_tol: float, abs_tol: float) -> np.ndarray:
    """Per-element sign vs the NCF = 1 boundary: -1 below, 0 on, +1 above.

    Mirrors ``close(value, 1.0)`` from :mod:`repro.core.quantities`,
    i.e. ``math.isclose``: on-boundary means
    ``|v - 1| <= max(rel_tol * max(|v|, 1), abs_tol)``.
    """
    tolerance = np.maximum(rel_tol * np.maximum(np.abs(values), 1.0), abs_tol)
    signs = np.where(values < 1.0, -1, 1).astype(np.int8)
    signs[np.abs(values - 1.0) <= tolerance] = 0
    return signs


def classify_arrays(
    ncf_fw: object,
    ncf_ft: object,
    *,
    rel_tol: float = NEUTRAL_REL_TOL,
    abs_tol: float = NEUTRAL_ABS_TOL,
) -> np.ndarray:
    """Vectorized :func:`~repro.core.classify.classify_values`.

    Returns an ``int8`` array of category codes indexing
    :data:`CATEGORIES`; decode with :func:`categories_from_codes` or
    histogram with :func:`category_counts`. Values within the tolerance
    of 1 are neutral on that axis, exactly as in the scalar path.
    """
    fw_arr, ft_arr = np.broadcast_arrays(
        np.asarray(ncf_fw, dtype=np.float64),
        np.asarray(ncf_ft, dtype=np.float64),
    )
    for name, arr in (("ncf_fw", fw_arr), ("ncf_ft", ft_arr)):
        bad = ~np.isfinite(arr)
        if bad.any():
            index, value = _first_bad(arr, bad)
            raise ValidationError(
                f"{name} values must be finite, got {value!r} (flat index "
                f"{index}); NaN/Inf NCFs cannot be classified"
            )
    fw = _boundary_signs(fw_arr, rel_tol, abs_tol)
    ft = _boundary_signs(ft_arr, rel_tol, abs_tol)
    return np.select(
        [
            (fw == 0) & (ft == 0),
            (fw <= 0) & (ft <= 0),
            (fw >= 0) & (ft >= 0),
        ],
        [_NEUTRAL, _STRONG, _LESS],
        default=_WEAK,
    ).astype(np.int8)


def category_counts(codes: object) -> dict[Sustainability, int]:
    """Histogram of :func:`classify_arrays` codes via ``np.bincount``.

    Every category appears as a key, including zero-count ones.
    """
    counts = np.bincount(
        np.asarray(codes, dtype=np.int64).ravel(), minlength=len(CATEGORIES)
    )
    if len(counts) > len(CATEGORIES):
        raise ValidationError(
            f"category codes must lie in [0, {len(CATEGORIES) - 1}]"
        )
    return {category: int(counts[code]) for code, category in enumerate(CATEGORIES)}


def categories_from_codes(codes: object) -> list[Sustainability]:
    """Decode :func:`classify_arrays` codes back to categories."""
    return [CATEGORIES[int(code)] for code in np.asarray(codes).ravel()]


# ----------------------------------------------------------------------
# Array-wise quantity validation
#
# The columnar substrate kernels (repro.wafer.batch, repro.amdahl.batch,
# repro.dvfs.batch) enforce the same rules as the scalar helpers in
# repro.core.quantities, but over whole arrays with one vectorized
# check. Error messages name the parameter and the flat index of the
# first offending element, so a bad sweep corner is as diagnosable as a
# bad scalar call.
# ----------------------------------------------------------------------
def _as_float64(values: object, name: str) -> np.ndarray:
    try:
        arr = np.asarray(values, dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise ValidationError(
            f"{name} must be an array of real numbers, got {values!r}"
        ) from exc
    return arr


def _first_bad(arr: np.ndarray, bad: np.ndarray) -> tuple[int, float]:
    index = int(np.argmax(bad.ravel()))
    return index, arr.ravel()[index]


def ensure_positive_array(values: object, name: str) -> np.ndarray:
    """Array-wise :func:`~repro.core.quantities.ensure_positive`."""
    arr = _as_float64(values, name)
    bad = ~(np.isfinite(arr) & (arr > 0.0))
    if bad.any():
        index, value = _first_bad(arr, bad)
        raise ValidationError(
            f"{name} must be > 0 and finite, got {value!r} (flat index {index})"
        )
    return arr


def ensure_non_negative_array(values: object, name: str) -> np.ndarray:
    """Array-wise :func:`~repro.core.quantities.ensure_non_negative`."""
    arr = _as_float64(values, name)
    bad = ~(np.isfinite(arr) & (arr >= 0.0))
    if bad.any():
        index, value = _first_bad(arr, bad)
        raise ValidationError(
            f"{name} must be >= 0 and finite, got {value!r} (flat index {index})"
        )
    return arr


def ensure_fraction_array(values: object, name: str) -> np.ndarray:
    """Array-wise :func:`~repro.core.quantities.ensure_fraction`."""
    arr = _as_float64(values, name)
    bad = ~(np.isfinite(arr) & (arr >= 0.0) & (arr <= 1.0))
    if bad.any():
        index, value = _first_bad(arr, bad)
        raise ValidationError(
            f"{name} must lie in [0, 1], got {value!r} (flat index {index})"
        )
    return arr


def ensure_int_at_least_array(values: object, low: int, name: str) -> np.ndarray:
    """Array-wise :func:`~repro.core.quantities.ensure_int_at_least`.

    Returns the values as ``float64`` (every element exactly integral),
    which is what the downstream arithmetic kernels consume.
    """
    raw = np.asarray(values)
    if raw.dtype == np.bool_:
        raise ValidationError(f"{name} must be integers, got booleans")
    arr = _as_float64(raw, name)
    bad = ~(np.isfinite(arr) & (arr == np.floor(arr)) & (arr >= low))
    if bad.any():
        index, value = _first_bad(arr, bad)
        raise ValidationError(
            f"{name} must be an integer >= {low}, got {value!r} "
            f"(flat index {index})"
        )
    return arr


# ----------------------------------------------------------------------
# Exact elementwise transcendentals
#
# NumPy's SIMD exp/expm1 (and its array power loops for exponents other
# than 1 and 2) are faithfully rounded but not bit-identical to the
# libm calls the scalar substrate makes — they drift by an ulp on a few
# percent of inputs. The columnar kernels promise *bit-exact* agreement
# with their scalar counterparts, so the handful of transcendental
# sites route through these helpers, which apply the exact same
# ``math``/``float.__pow__`` operation per element. Everything around
# them (+, -, *, /, sqrt, **2 — all correctly rounded and identical in
# NumPy and libm) stays fully vectorized.
# ----------------------------------------------------------------------
def exact_exp(values: np.ndarray) -> np.ndarray:
    """Elementwise ``math.exp``, bit-exact with the scalar substrate."""
    arr = np.asarray(values, dtype=np.float64)
    flat = arr.ravel()
    out = np.fromiter((math.exp(v) for v in flat), np.float64, count=flat.size)
    return out.reshape(arr.shape)


def exact_expm1(values: np.ndarray) -> np.ndarray:
    """Elementwise ``math.expm1``, bit-exact with the scalar substrate."""
    arr = np.asarray(values, dtype=np.float64)
    flat = arr.ravel()
    out = np.fromiter((math.expm1(v) for v in flat), np.float64, count=flat.size)
    return out.reshape(arr.shape)


def exact_pow(values: np.ndarray, exponent: int) -> np.ndarray:
    """Elementwise ``value ** exponent``, bit-exact with scalar Python.

    Exponents 0 and 1 are exact by the IEEE-754 pow special cases; any
    other integer exponent goes through ``float.__pow__`` per element,
    the operation the scalar substrate performs. (Even ``** 2`` must:
    libm's ``pow(x, 2)`` is not bit-identical to ``x * x`` for every
    ``x``, and NumPy's array power loop differs from both.)
    """
    arr = np.asarray(values, dtype=np.float64)
    if exponent == 0:
        return np.ones_like(arr)
    if exponent == 1:
        return arr.copy()
    flat = arr.ravel()
    out = np.fromiter(
        (float(v) ** exponent for v in flat), np.float64, count=flat.size
    )
    return out.reshape(arr.shape)
