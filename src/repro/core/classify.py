"""Strong / weak / less sustainability classification (paper §4).

FOCAL's fixed-work versus fixed-time distinction lets it classify a
design choice ``X`` (relative to ``Y``):

* **strongly sustainable** — lower footprint under *both* scenarios
  (``NCF_fw < 1`` and ``NCF_ft < 1``): sustainable under all
  circumstances, even under the rebound effect of increased usage;
* **weakly sustainable** — lower footprint under exactly one scenario:
  sustainable under specific circumstances only;
* **less sustainable** — higher footprint under both scenarios
  (``NCF_fw > 1`` and ``NCF_ft > 1``).

Boundary cases (an NCF equal to 1 within tolerance) are reported as
*neutral* on that axis; the aggregate classification treats a neutral
axis as "not worse", so e.g. ``NCF_fw < 1`` with ``NCF_ft == 1``
classifies as strongly sustainable — matching the paper's reading of
Finding #10 where FSC's fixed-time NCF is "only barely" above 1 and FSC
is called *close to* strongly sustainable.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Mapping

from .design import DesignPoint
from .errors import ValidationError
from .ncf import NCFAssessment, assess, ncf
from .quantities import ABS_TOL, REL_TOL, close
from .scenario import E2OWeight, UseScenario

__all__ = [
    "Sustainability",
    "Verdict",
    "NEUTRAL_REL_TOL",
    "NEUTRAL_ABS_TOL",
    "classify_values",
    "classify",
    "classify_assessment",
]

#: Relative tolerance for the NCF = 1 neutral boundary. The scalar
#: (:func:`classify_values`) and vectorized
#: (:func:`repro.core.batch.classify_arrays`) paths both use these
#: constants, so verdicts stay identical across the two engines.
NEUTRAL_REL_TOL = REL_TOL

#: Absolute tolerance for the NCF = 1 neutral boundary.
NEUTRAL_ABS_TOL = ABS_TOL


class Sustainability(enum.Enum):
    """The paper's three-way sustainability categorization."""

    STRONG = "strongly sustainable"
    WEAK = "weakly sustainable"
    LESS = "less sustainable"
    #: Both scenarios sit exactly on the NCF = 1 boundary.
    NEUTRAL = "neutral"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def classify_values(
    ncf_fixed_work: float,
    ncf_fixed_time: float,
    *,
    rel_tol: float = NEUTRAL_REL_TOL,
) -> Sustainability:
    """Classify from the two NCF values directly.

    Values within *rel_tol* of 1 are treated as neutral on that axis.
    Non-finite values are rejected: a NaN or infinite NCF has no
    position relative to the boundary, so classifying it silently
    would fabricate a verdict.
    """
    for name, value in (
        ("ncf_fixed_work", ncf_fixed_work),
        ("ncf_fixed_time", ncf_fixed_time),
    ):
        if not math.isfinite(value):
            raise ValidationError(
                f"{name} must be finite, got {value!r}; NaN/Inf NCFs "
                "cannot be classified"
            )

    def sign(value: float) -> int:
        if close(value, 1.0, rel_tol=rel_tol, abs_tol=NEUTRAL_ABS_TOL):
            return 0
        return -1 if value < 1.0 else 1

    fw, ft = sign(ncf_fixed_work), sign(ncf_fixed_time)
    if fw == 0 and ft == 0:
        return Sustainability.NEUTRAL
    if fw <= 0 and ft <= 0:
        return Sustainability.STRONG
    if fw >= 0 and ft >= 0:
        return Sustainability.LESS
    return Sustainability.WEAK


@dataclass(frozen=True, slots=True)
class Verdict:
    """A classification together with the evidence behind it."""

    design: str
    baseline: str
    alpha: float
    ncf_fixed_work: float
    ncf_fixed_time: float
    category: Sustainability

    @property
    def is_strong(self) -> bool:
        return self.category is Sustainability.STRONG

    @property
    def is_weak(self) -> bool:
        return self.category is Sustainability.WEAK

    @property
    def is_less(self) -> bool:
        return self.category is Sustainability.LESS

    def as_dict(self) -> Mapping[str, object]:
        return {
            "design": self.design,
            "baseline": self.baseline,
            "alpha": self.alpha,
            "ncf_fw": self.ncf_fixed_work,
            "ncf_ft": self.ncf_fixed_time,
            "category": self.category.value,
        }

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.design} vs {self.baseline} @ alpha={self.alpha:g}: "
            f"NCF_fw={self.ncf_fixed_work:.3f}, NCF_ft={self.ncf_fixed_time:.3f} "
            f"-> {self.category.value}"
        )


def classify(
    design: DesignPoint,
    baseline: DesignPoint,
    alpha: float,
    *,
    rel_tol: float = NEUTRAL_REL_TOL,
) -> Verdict:
    """Classify *design* against *baseline* at a single alpha."""
    fw = ncf(design, baseline, UseScenario.FIXED_WORK, alpha)
    ft = ncf(design, baseline, UseScenario.FIXED_TIME, alpha)
    return Verdict(
        design=design.name,
        baseline=baseline.name,
        alpha=alpha,
        ncf_fixed_work=fw,
        ncf_fixed_time=ft,
        category=classify_values(fw, ft, rel_tol=rel_tol),
    )


def classify_assessment(assessment: NCFAssessment, *, rel_tol: float = NEUTRAL_REL_TOL) -> Sustainability:
    """Classify from a pre-computed :class:`~repro.core.ncf.NCFAssessment`."""
    return classify_values(
        assessment.fixed_work.nominal,
        assessment.fixed_time.nominal,
        rel_tol=rel_tol,
    )


def classify_pair(
    design: DesignPoint,
    baseline: DesignPoint,
    weight: E2OWeight,
    *,
    rel_tol: float = NEUTRAL_REL_TOL,
) -> tuple[Verdict, NCFAssessment]:
    """Classification plus the full banded assessment in one call."""
    assessment = assess(design, baseline, weight)
    verdict = classify(design, baseline, weight.alpha, rel_tol=rel_tol)
    return verdict, assessment


__all__.append("classify_pair")
