"""Design points: the unit of comparison in FOCAL.

FOCAL assesses a processor design through exactly four first-order
quantities (paper §3):

* **area** — chip die area, the proxy for the embodied footprint;
* **performance** — work per unit time (used to convert between the two
  operational proxies and to place designs on the x-axis of every
  figure);
* **power** — average power while executing, the operational proxy
  under the *fixed-time* scenario;
* **energy** — energy per unit of work, the operational proxy under the
  *fixed-work* scenario.

Power, performance and energy are linked by the identity

    energy = power / performance

(energy per unit work equals average power times time per unit work).
:class:`DesignPoint` enforces this identity by storing two of the three
and deriving the third, so a design can never be self-inconsistent.

All quantities are *relative*: FOCAL only ever compares designs, so the
absolute unit is irrelevant as long as the same unit is used across the
designs being compared. By convention the studies in this repository
normalize to a named baseline design (e.g. the one-BCE single core in
Figures 3 and 4).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping

from .errors import ValidationError
from .quantities import ensure_positive

__all__ = ["DesignPoint"]


@dataclass(frozen=True, slots=True)
class DesignPoint:
    """A processor design reduced to FOCAL's four first-order quantities.

    Construct either directly (``DesignPoint(name, area, perf, power)``)
    or via :meth:`from_energy` when the energy per unit work is the
    natural given. The ``energy`` property is always consistent with
    ``power / perf``.

    Parameters
    ----------
    name:
        Human-readable label used in tables and plots.
    area:
        Chip area in arbitrary (but consistent) units; > 0.
    perf:
        Performance (work per unit time) in arbitrary units; > 0.
    power:
        Average power while executing, in arbitrary units; > 0.
    """

    name: str
    area: float
    perf: float
    power: float

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("DesignPoint.name must be a non-empty string")
        object.__setattr__(self, "area", ensure_positive(self.area, "area"))
        object.__setattr__(self, "perf", ensure_positive(self.perf, "perf"))
        object.__setattr__(self, "power", ensure_positive(self.power, "power"))

    # ------------------------------------------------------------------
    # Alternative constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_energy(cls, name: str, area: float, perf: float, energy: float) -> "DesignPoint":
        """Build a design point from energy per unit work instead of power."""
        energy = ensure_positive(energy, "energy")
        perf = ensure_positive(perf, "perf")
        return cls(name=name, area=area, perf=perf, power=energy * perf)

    @classmethod
    def baseline(cls, name: str = "baseline") -> "DesignPoint":
        """The unit design: area = perf = power = energy = 1."""
        return cls(name=name, area=1.0, perf=1.0, power=1.0)

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def energy(self) -> float:
        """Energy consumed per unit of work (``power / perf``)."""
        return self.power / self.perf

    @property
    def edp(self) -> float:
        """Energy-delay product per unit of work (a classical efficiency
        metric, provided for cross-checking FOCAL against conventional
        optimization targets)."""
        return self.energy / self.perf

    # ------------------------------------------------------------------
    # Ratios against another design (the building blocks of NCF)
    # ------------------------------------------------------------------
    def area_ratio(self, other: "DesignPoint") -> float:
        """``A_self / A_other`` — the normalized embodied footprint."""
        return self.area / other.area

    def energy_ratio(self, other: "DesignPoint") -> float:
        """``E_self / E_other`` — the fixed-work operational proxy ratio."""
        return self.energy / other.energy

    def power_ratio(self, other: "DesignPoint") -> float:
        """``P_self / P_other`` — the fixed-time operational proxy ratio."""
        return self.power / other.power

    def perf_ratio(self, other: "DesignPoint") -> float:
        """``perf_self / perf_other`` — normalized performance."""
        return self.perf / other.perf

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def normalized_to(self, baseline: "DesignPoint") -> "DesignPoint":
        """Return this design re-expressed in units of *baseline*.

        The result has area/perf/power equal to the respective ratios,
        which makes chart series directly comparable to the paper's
        normalized axes.
        """
        return DesignPoint(
            name=self.name,
            area=self.area_ratio(baseline),
            perf=self.perf_ratio(baseline),
            power=self.power_ratio(baseline),
        )

    def renamed(self, name: str) -> "DesignPoint":
        """Return a copy of this design with a different label."""
        return replace(self, name=name)

    def scaled(
        self,
        *,
        area: float = 1.0,
        perf: float = 1.0,
        power: float = 1.0,
    ) -> "DesignPoint":
        """Return a copy with the given multiplicative factors applied.

        Useful for what-if analyses (e.g. "the same core with 10 % more
        area"). Factors must be positive.
        """
        return DesignPoint(
            name=self.name,
            area=self.area * ensure_positive(area, "area factor"),
            perf=self.perf * ensure_positive(perf, "perf factor"),
            power=self.power * ensure_positive(power, "power factor"),
        )

    def as_dict(self) -> Mapping[str, float | str]:
        """Serialize to a plain mapping (used by CSV/JSON export)."""
        return {
            "name": self.name,
            "area": self.area,
            "perf": self.perf,
            "power": self.power,
            "energy": self.energy,
        }
