"""Exception hierarchy for the FOCAL reproduction.

All errors raised by this library derive from :class:`ReproError`, so
callers can catch a single base class. Specific subclasses communicate
*why* an input or operation was rejected, which matters in a modeling
library where silent garbage-in/garbage-out would corrupt conclusions.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ValidationError",
    "DomainError",
    "QuarantinedPoint",
    "ConvergenceError",
    "ConfigurationError",
    "UnknownStudyError",
    "ResilienceError",
    "CheckpointError",
    "WorkerPoolError",
]


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class ValidationError(ReproError, ValueError):
    """An input value violates a model precondition.

    Raised at construction time of model objects (e.g. a negative chip
    area, a parallel fraction outside ``[0, 1]``), so that invalid
    designs can never enter a study.
    """


class DomainError(ReproError, ValueError):
    """A function was evaluated outside its mathematical domain.

    Distinguished from :class:`ValidationError` in that the *object* is
    valid but the requested *operation* is not (e.g. asking for the
    speedup of an asymmetric multicore whose big core consumes the whole
    chip, leaving no small cores for the parallel phase).
    """


class QuarantinedPoint(DomainError):
    """A design point isolated by failure containment, not evaluated.

    Subclasses :class:`DomainError` so the sweep engine treats a
    quarantined point exactly like an invalid corner of the design
    space — it is excluded from the result arrays and memoized — while
    remaining distinguishable for reporting (quarantined points are
    surfaced in ``BatchSweepResult.quarantined``, ``SweepEngineStats``
    and the quarantine ledger; see
    :mod:`repro.resilience.containment`).
    """


class ConvergenceError(ReproError, RuntimeError):
    """An iterative solver (bisection, fixed point) failed to converge."""


class ConfigurationError(ReproError, ValueError):
    """A study or sweep was configured inconsistently."""


class UnknownStudyError(ReproError, KeyError):
    """A study name was not found in the study registry."""


class ResilienceError(ReproError, RuntimeError):
    """The resilient execution layer could not complete an operation.

    Base class for failures of the supervision/checkpoint machinery
    itself (as opposed to model errors); see
    :mod:`repro.resilience`.
    """


class CheckpointError(ResilienceError):
    """A checkpoint file is unusable for the requested resume.

    Raised when a checkpoint's fingerprint does not match the run being
    resumed (different grid, chunk size, baseline, sampler, ...) or when
    strict loading encounters a missing/corrupt file. A *corrupt* file
    under non-strict loading is not an error: the run restarts cold.
    """


class WorkerPoolError(ResilienceError):
    """The supervised worker pool exhausted every recovery path.

    Only raised when retries are exhausted *and* in-process degradation
    is disabled by policy; with the default policy the pool degrades
    instead of raising.
    """
