"""Classical efficiency metrics, for contrast with NCF.

The paper's §3.4 argues that what sets sustainability apart is the
*holistic* treatment of area, energy and power — computer architects
optimize those individually all the time, just not with the goal of
minimizing environmental impact. This module implements the
conventional yardsticks so studies can show exactly where they agree
and disagree with the NCF verdict:

* energy-delay product (EDP) and ED^2P;
* performance per watt;
* performance per area (silicon efficiency);
* a generic ``metric_ratio`` plus :func:`disagreement` which finds
  design pairs that a classical metric endorses but NCF condemns (or
  vice versa) — the quantitative version of "energy-efficient is not
  the same as sustainable".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .classify import Sustainability, classify
from .design import DesignPoint

__all__ = [
    "ClassicMetric",
    "metric_value",
    "metric_ratio",
    "Disagreement",
    "disagreement",
]


class ClassicMetric(enum.Enum):
    """Conventional optimization targets (lower-is-better except the
    perf-per-X family, handled uniformly by :func:`metric_ratio`)."""

    EDP = "energy-delay product"
    ED2P = "energy-delay-squared product"
    PERF_PER_WATT = "performance per watt"
    PERF_PER_AREA = "performance per area"
    ENERGY = "energy per work"

    @property
    def higher_is_better(self) -> bool:
        return self in (ClassicMetric.PERF_PER_WATT, ClassicMetric.PERF_PER_AREA)


def metric_value(design: DesignPoint, metric: ClassicMetric) -> float:
    """The raw metric value for one design."""
    if metric is ClassicMetric.EDP:
        return design.energy / design.perf
    if metric is ClassicMetric.ED2P:
        return design.energy / design.perf**2
    if metric is ClassicMetric.PERF_PER_WATT:
        return design.perf / design.power
    if metric is ClassicMetric.PERF_PER_AREA:
        return design.perf / design.area
    if metric is ClassicMetric.ENERGY:
        return design.energy
    raise AssertionError(f"unhandled metric {metric}")  # pragma: no cover


def metric_ratio(
    design: DesignPoint, baseline: DesignPoint, metric: ClassicMetric
) -> float:
    """Goodness ratio normalized so that > 1 always means *better*.

    For lower-is-better metrics the ratio is inverted, making the
    output directly comparable across metrics (and to 1/NCF).
    """
    ratio = metric_value(design, metric) / metric_value(baseline, metric)
    return ratio if metric.higher_is_better else 1.0 / ratio


@dataclass(frozen=True, slots=True)
class Disagreement:
    """A case where a classical metric and FOCAL point different ways."""

    metric: ClassicMetric
    metric_says_better: bool
    focal_category: Sustainability

    @property
    def conflicting(self) -> bool:
        """True when the metric endorses a less-sustainable design or
        rejects a strongly sustainable one."""
        if self.metric_says_better and self.focal_category is Sustainability.LESS:
            return True
        if not self.metric_says_better and self.focal_category is Sustainability.STRONG:
            return True
        return False


def disagreement(
    design: DesignPoint,
    baseline: DesignPoint,
    metric: ClassicMetric,
    alpha: float,
) -> Disagreement:
    """Compare one classical metric's verdict with FOCAL's.

    The canonical conflict is turbo boosting under EDP at high clock
    gains: EDP can look neutral-to-good while every NCF is above 1.
    """
    return Disagreement(
        metric=metric,
        metric_says_better=metric_ratio(design, baseline, metric) > 1.0,
        focal_category=classify(design, baseline, alpha).category,
    )
