"""Workload mixes: time-weighted composition of design behaviour.

A real device does not run one workload; it spends shares of its
lifetime in different phases (§3.2's examples already hint at this:
decode video, idle, serve requests). If a design exhibits behaviour
``(perf_i, power_i)`` during phase *i* and the phases occupy time
shares ``t_i`` (summing to 1), the lifetime-aggregate behaviour is

* average power  = sum_i t_i * power_i        (time-weighted)
* throughput     = sum_i t_i * perf_i         (work per unit time)
* energy per work = average power / throughput

which is exactly a :class:`~repro.core.design.DesignPoint` again — so
mixes compose with every FOCAL tool (NCF, classification, rebound,
DSE) with no special cases. The chip's area is that of the design, not
of a phase; all phase design points must therefore share one area.
"""

from __future__ import annotations

from typing import Sequence

from .design import DesignPoint
from .errors import ValidationError
from .quantities import ensure_fraction

__all__ = ["time_weighted_mix"]


def time_weighted_mix(
    phases: Sequence[tuple[DesignPoint, float]],
    *,
    name: str | None = None,
    share_tolerance: float = 1e-9,
) -> DesignPoint:
    """Compose phase behaviours into one lifetime design point.

    Parameters
    ----------
    phases:
        ``(behaviour, time_share)`` pairs. Shares must sum to 1 within
        *share_tolerance*; every behaviour must report the same chip
        area (it is the same chip in every phase).
    name:
        Label for the mix (defaults to joining the phase names).

    Example: a mobile SoC that decodes video 30 % of the time (on its
    accelerator profile) and idles 70 %::

        mix = time_weighted_mix([(decode, 0.3), (idle, 0.7)])
    """
    if not phases:
        raise ValidationError("time_weighted_mix requires at least one phase")
    total_share = 0.0
    area = phases[0][0].area
    for design, share in phases:
        ensure_fraction(share, f"share of {design.name!r}")
        total_share += share
        if abs(design.area - area) > 1e-9 * max(1.0, area):
            raise ValidationError(
                f"phase {design.name!r} has area {design.area:g} but the mix's "
                f"chip has area {area:g}; phases must describe one chip"
            )
    if abs(total_share - 1.0) > share_tolerance:
        raise ValidationError(
            f"phase shares must sum to 1, got {total_share:g}"
        )
    avg_power = sum(share * design.power for design, share in phases)
    throughput = sum(share * design.perf for design, share in phases)
    return DesignPoint(
        name=name or " + ".join(f"{s:.0%} {d.name}" for d, s in phases),
        area=area,
        perf=throughput,
        power=avg_power,
    )
