"""The Normalized Carbon Footprint (NCF) metric (paper §3.4).

When comparing design ``X`` against design ``Y`` FOCAL computes

* fixed-work:  ``NCF_fw,alpha(X, Y) = alpha * A_X/A_Y + (1-alpha) * E_X/E_Y``
* fixed-time:  ``NCF_ft,alpha(X, Y) = alpha * A_X/A_Y + (1-alpha) * P_X/P_Y``

with ``A`` chip area, ``E`` energy per unit work, ``P`` average power,
and ``alpha`` the embodied-to-operational weight. NCF < 1 means ``X``
incurs a lower footprint than ``Y``; NCF > 1 a higher footprint.

Two usage patterns appear in the paper and both are supported here:

1. **Pairwise NCF** (:func:`ncf`): directly compare two designs.
2. **Chart NCF** (:func:`ncf` with a common baseline): every figure
   normalizes all designs to one reference design (e.g. the one-BCE
   single core) and plots the resulting NCF values. The paper's in-text
   percentage comparisons ("reduces the footprint by 30 %") are *ratios
   of chart NCF values*; :func:`relative_footprint` computes exactly
   that. Note that because NCF is an affine combination, a ratio of
   chart NCFs is not in general equal to the pairwise NCF of the two
   designs — the paper consistently uses the former, and so do the
   studies in this repository.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from .design import DesignPoint
from .errors import ValidationError
from .quantities import ensure_fraction, ensure_positive
from .scenario import E2OWeight, UseScenario

__all__ = [
    "ncf",
    "ncf_from_ratios",
    "ncf_band",
    "relative_footprint",
    "NCFBand",
    "NCFAssessment",
    "assess",
]


def ncf_from_ratios(
    area_ratio: float,
    operational_ratio: float,
    alpha: float,
) -> float:
    """NCF from pre-computed footprint ratios.

    ``area_ratio`` is ``A_X / A_Y``; ``operational_ratio`` is
    ``E_X / E_Y`` (fixed-work) or ``P_X / P_Y`` (fixed-time).
    """
    alpha = ensure_fraction(alpha, "alpha")
    area_ratio = ensure_positive(area_ratio, "area_ratio")
    operational_ratio = ensure_positive(operational_ratio, "operational_ratio")
    return alpha * area_ratio + (1.0 - alpha) * operational_ratio


def ncf(
    design: DesignPoint,
    baseline: DesignPoint,
    scenario: UseScenario,
    alpha: float,
) -> float:
    """The NCF of *design* compared against *baseline*.

    Parameters
    ----------
    design, baseline:
        The two designs to compare (``X`` and ``Y`` in the paper).
    scenario:
        Fixed-work (energy proxy) or fixed-time (power proxy).
    alpha:
        The embodied-to-operational weight in ``[0, 1]``.
    """
    return ncf_from_ratios(
        design.area_ratio(baseline),
        scenario.operational_ratio(design, baseline),
        alpha,
    )


@dataclass(frozen=True, slots=True)
class NCFBand:
    """An NCF value with its uncertainty band over the alpha range.

    ``low``/``high`` bound the NCF across ``alpha in [weight.low,
    weight.high]``; because NCF is affine in alpha, the extrema are
    attained at the band edges.
    """

    nominal: float
    low: float
    high: float

    def __post_init__(self) -> None:
        if not (self.low <= self.nominal <= self.high):
            raise ValidationError(
                f"NCFBand must satisfy low <= nominal <= high, got "
                f"({self.low!r}, {self.nominal!r}, {self.high!r})"
            )

    @property
    def width(self) -> float:
        """Total width of the uncertainty band."""
        return self.high - self.low

    def below_one(self) -> bool:
        """True iff the entire band lies below 1 (robustly sustainable)."""
        return self.high < 1.0

    def above_one(self) -> bool:
        """True iff the entire band lies above 1 (robustly unsustainable)."""
        return self.low > 1.0

    def straddles_one(self) -> bool:
        """True iff the band contains 1 (inconclusive under uncertainty)."""
        return self.low <= 1.0 <= self.high

    def as_dict(self) -> Mapping[str, float]:
        return {"nominal": self.nominal, "low": self.low, "high": self.high}


def ncf_band(
    design: DesignPoint,
    baseline: DesignPoint,
    scenario: UseScenario,
    weight: E2OWeight,
) -> NCFBand:
    """NCF with error bars across the weight's alpha band.

    Because NCF is affine in alpha the band is computed exactly from
    the two edge alphas; no sampling is needed.
    """
    nominal = ncf(design, baseline, scenario, weight.alpha)
    at_low = ncf(design, baseline, scenario, weight.low)
    at_high = ncf(design, baseline, scenario, weight.high)
    return NCFBand(
        nominal=nominal,
        low=min(at_low, at_high),
        high=max(at_low, at_high),
    )


def relative_footprint(
    design_x: DesignPoint,
    design_y: DesignPoint,
    baseline: DesignPoint,
    scenario: UseScenario,
    alpha: float,
) -> float:
    """Ratio of chart NCF values: ``NCF(X vs base) / NCF(Y vs base)``.

    This is the quantity behind every in-text percentage in the paper's
    §5 figures ("16 BCEs reduces the footprint by 30 % versus 32
    BCEs"). A value below 1 means *design_x* sits lower on the chart
    than *design_y*.
    """
    num = ncf(design_x, baseline, scenario, alpha)
    den = ncf(design_y, baseline, scenario, alpha)
    return num / den


@dataclass(frozen=True, slots=True)
class NCFAssessment:
    """NCF of one comparison under both scenarios with error bands.

    This is the full information FOCAL produces for a design pair under
    one embodied-to-operational regime; §4's sustainability
    classification is a function of this object.
    """

    design: str
    baseline: str
    weight: E2OWeight
    fixed_work: NCFBand
    fixed_time: NCFBand

    def as_dict(self) -> Mapping[str, object]:
        return {
            "design": self.design,
            "baseline": self.baseline,
            "weight": self.weight.name,
            "alpha": self.weight.alpha,
            "ncf_fw": self.fixed_work.nominal,
            "ncf_fw_low": self.fixed_work.low,
            "ncf_fw_high": self.fixed_work.high,
            "ncf_ft": self.fixed_time.nominal,
            "ncf_ft_low": self.fixed_time.low,
            "ncf_ft_high": self.fixed_time.high,
        }


def assess(
    design: DesignPoint,
    baseline: DesignPoint,
    weight: E2OWeight,
) -> NCFAssessment:
    """Compute the NCF of *design* vs *baseline* under both scenarios."""
    return NCFAssessment(
        design=design.name,
        baseline=baseline.name,
        weight=weight,
        fixed_work=ncf_band(design, baseline, UseScenario.FIXED_WORK, weight),
        fixed_time=ncf_band(design, baseline, UseScenario.FIXED_TIME, weight),
    )
