"""Pareto analysis over the performance-versus-footprint plane.

Every figure in the paper is a scatter of designs in the
(normalized performance, normalized carbon footprint) plane, where
"towards the bottom-right is optimal" (paper §5.6). This module finds
the Pareto-optimal subset of such a scatter: designs for which no other
design has both higher (or equal) performance and lower (or equal)
footprint with at least one strict improvement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from .design import DesignPoint
from .errors import ValidationError
from .ncf import ncf
from .scenario import UseScenario

__all__ = ["ParetoPoint", "pareto_frontier", "pareto_designs"]


@dataclass(frozen=True, slots=True)
class ParetoPoint:
    """A labelled point in the performance/footprint plane."""

    name: str
    perf: float
    footprint: float

    def dominates(self, other: "ParetoPoint") -> bool:
        """True iff this point is at least as good on both axes and
        strictly better on at least one (higher perf, lower footprint)."""
        at_least_as_good = self.perf >= other.perf and self.footprint <= other.footprint
        strictly_better = self.perf > other.perf or self.footprint < other.footprint
        return at_least_as_good and strictly_better


def pareto_frontier(points: Sequence[ParetoPoint]) -> list[ParetoPoint]:
    """Return the non-dominated subset, sorted by increasing performance.

    Duplicate coordinates are kept once (the first occurrence wins), so
    the frontier never contains two points with identical axes.
    """
    if not points:
        raise ValidationError("pareto_frontier requires at least one point")
    # Sort by perf descending, footprint ascending; a single sweep then
    # finds the frontier in O(n log n).
    ordered = sorted(points, key=lambda p: (-p.perf, p.footprint))
    frontier: list[ParetoPoint] = []
    best_footprint = float("inf")
    seen_coords: set[tuple[float, float]] = set()
    for point in ordered:
        if point.footprint < best_footprint:
            coords = (point.perf, point.footprint)
            if coords not in seen_coords:
                frontier.append(point)
                seen_coords.add(coords)
            best_footprint = point.footprint
    frontier.sort(key=lambda p: p.perf)
    return frontier


def pareto_designs(
    designs: Sequence[DesignPoint],
    baseline: DesignPoint,
    scenario: UseScenario,
    alpha: float,
    *,
    key: Callable[[DesignPoint], str] | None = None,
) -> list[ParetoPoint]:
    """Pareto frontier of *designs* in the NCF-versus-performance plane.

    All designs are normalized to *baseline* exactly as the paper's
    figures do. The returned frontier is sorted by performance.
    """
    if not designs:
        raise ValidationError("pareto_designs requires at least one design")
    label = key or (lambda d: d.name)
    points = [
        ParetoPoint(
            name=label(design),
            perf=design.perf_ratio(baseline),
            footprint=ncf(design, baseline, scenario, alpha),
        )
        for design in designs
    ]
    return pareto_frontier(points)
