"""Validated scalar quantities used throughout the model.

FOCAL is a first-order model: every quantity is a dimensionless ratio or
a simple physical scalar. This module centralizes the validation rules
so that the rest of the library can assume its inputs are sane.

The helpers raise :class:`~repro.core.errors.ValidationError` with a
message naming the offending parameter, which makes mis-configured
sweeps easy to diagnose.
"""

from __future__ import annotations

import math
from typing import Iterable

from .errors import ValidationError

__all__ = [
    "ensure_finite",
    "ensure_positive",
    "ensure_non_negative",
    "ensure_fraction",
    "ensure_open_fraction",
    "ensure_in_range",
    "ensure_at_least",
    "ensure_int_at_least",
    "ensure_monotone_increasing",
    "close",
]

#: Default relative tolerance for :func:`close`. First-order model
#: comparisons never need more than ~9 significant digits.
REL_TOL = 1e-9

#: Default absolute tolerance for :func:`close`, guarding comparisons
#: against zero. Shared by the scalar and vectorized classification
#: boundaries (:mod:`repro.core.classify`, :mod:`repro.core.batch`).
ABS_TOL = 1e-12


def ensure_finite(value: float, name: str) -> float:
    """Return *value* if it is a finite real number; raise otherwise."""
    try:
        value = float(value)
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"{name} must be a real number, got {value!r}") from exc
    if not math.isfinite(value):
        raise ValidationError(f"{name} must be finite, got {value!r}")
    return value


def ensure_positive(value: float, name: str) -> float:
    """Return *value* if it is finite and strictly positive."""
    value = ensure_finite(value, name)
    if value <= 0.0:
        raise ValidationError(f"{name} must be > 0, got {value!r}")
    return value


def ensure_non_negative(value: float, name: str) -> float:
    """Return *value* if it is finite and >= 0."""
    value = ensure_finite(value, name)
    if value < 0.0:
        raise ValidationError(f"{name} must be >= 0, got {value!r}")
    return value


def ensure_fraction(value: float, name: str) -> float:
    """Return *value* if it lies in the closed interval ``[0, 1]``."""
    value = ensure_finite(value, name)
    if not 0.0 <= value <= 1.0:
        raise ValidationError(f"{name} must lie in [0, 1], got {value!r}")
    return value


def ensure_open_fraction(value: float, name: str) -> float:
    """Return *value* if it lies in the open interval ``(0, 1)``."""
    value = ensure_finite(value, name)
    if not 0.0 < value < 1.0:
        raise ValidationError(f"{name} must lie in (0, 1), got {value!r}")
    return value


def ensure_in_range(value: float, low: float, high: float, name: str) -> float:
    """Return *value* if it lies in the closed interval ``[low, high]``."""
    value = ensure_finite(value, name)
    if not low <= value <= high:
        raise ValidationError(f"{name} must lie in [{low}, {high}], got {value!r}")
    return value


def ensure_at_least(value: float, low: float, name: str) -> float:
    """Return *value* if it is finite and >= *low*."""
    value = ensure_finite(value, name)
    if value < low:
        raise ValidationError(f"{name} must be >= {low}, got {value!r}")
    return value


def ensure_int_at_least(value: int, low: int, name: str) -> int:
    """Return *value* if it is an integer >= *low*.

    Accepts floats that are exactly integral (convenient for sweeps that
    produce ``numpy`` scalars) but rejects anything fractional.
    """
    if isinstance(value, bool):
        raise ValidationError(f"{name} must be an integer, got a bool")
    if isinstance(value, float):
        if not value.is_integer():
            raise ValidationError(f"{name} must be an integer, got {value!r}")
        value = int(value)
    try:
        ivalue = int(value)
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"{name} must be an integer, got {value!r}") from exc
    if ivalue != value:
        raise ValidationError(f"{name} must be an integer, got {value!r}")
    if ivalue < low:
        raise ValidationError(f"{name} must be >= {low}, got {ivalue}")
    return ivalue


def ensure_monotone_increasing(values: Iterable[float], name: str) -> list[float]:
    """Return *values* as a list if strictly increasing; raise otherwise."""
    out = [ensure_finite(v, name) for v in values]
    for left, right in zip(out, out[1:]):
        if right <= left:
            raise ValidationError(
                f"{name} must be strictly increasing, got {left!r} before {right!r}"
            )
    return out


def close(a: float, b: float, rel_tol: float = REL_TOL, abs_tol: float = ABS_TOL) -> bool:
    """Tolerant float comparison used by classification boundaries."""
    return math.isclose(a, b, rel_tol=rel_tol, abs_tol=abs_tol)
