"""Use-case scenarios and the embodied-to-operational weight.

FOCAL anticipates two lifetime use cases (paper §3.2, Figure 2):

* **fixed-work** — the device performs a fixed amount of work over its
  lifetime; the operational-footprint proxy is *energy* per unit work.
  Examples: strong-scaling HPC workloads, a video decoder handling a
  fixed number of frames.
* **fixed-time** — a more efficient device performs *more* work within
  the same lifetime (the rebound effect of increased usage); because
  time is constant, the operational proxy is *power*. Examples:
  weak-scaling HPC, always-on network interfaces, datacenters that fill
  freed-up capacity with new applications.

The relative importance of embodied versus operational emissions is the
**embodied-to-operational weight** ``alpha_E2O`` (paper §3.3). Based on
Gupta et al. (HPCA'21) the paper studies two regimes, each with an
uncertainty band to absorb modeling error:

* embodied-dominated: ``alpha = 0.8 ± 0.1`` (mobile devices, hyperscale
  datacenter servers);
* operational-dominated: ``alpha = 0.2 ± 0.1`` (always-connected
  devices).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator

from .design import DesignPoint
from .errors import ValidationError
from .quantities import ensure_fraction, ensure_non_negative

__all__ = [
    "UseScenario",
    "E2OWeight",
    "EMBODIED_DOMINATED",
    "OPERATIONAL_DOMINATED",
    "BALANCED",
    "STANDARD_WEIGHTS",
]


class UseScenario(enum.Enum):
    """The two lifetime use cases FOCAL distinguishes."""

    FIXED_WORK = "fixed-work"
    FIXED_TIME = "fixed-time"

    @property
    def operational_proxy(self) -> str:
        """Name of the operational-footprint proxy under this scenario."""
        return "energy" if self is UseScenario.FIXED_WORK else "power"

    def operational_ratio(self, design: DesignPoint, baseline: DesignPoint) -> float:
        """The normalized operational footprint of *design* vs *baseline*.

        Energy ratio under fixed-work, power ratio under fixed-time.
        """
        if self is UseScenario.FIXED_WORK:
            return design.energy_ratio(baseline)
        return design.power_ratio(baseline)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True, slots=True)
class E2OWeight:
    """The embodied-to-operational weight ``alpha_E2O`` with its band.

    ``alpha`` is the nominal weight of the (normalized) embodied
    footprint in the NCF sum; ``1 - alpha`` weighs the operational
    footprint. ``spread`` is the half-width of the uncertainty band the
    paper sweeps to absorb data uncertainty (0.1 for both standard
    regimes); the band is clipped to ``[0, 1]``.
    """

    name: str
    alpha: float
    spread: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("E2OWeight.name must be a non-empty string")
        object.__setattr__(self, "alpha", ensure_fraction(self.alpha, "alpha"))
        object.__setattr__(self, "spread", ensure_non_negative(self.spread, "spread"))

    @property
    def low(self) -> float:
        """Lower end of the uncertainty band (clipped to 0)."""
        return max(0.0, self.alpha - self.spread)

    @property
    def high(self) -> float:
        """Upper end of the uncertainty band (clipped to 1)."""
        return min(1.0, self.alpha + self.spread)

    @property
    def band(self) -> tuple[float, float]:
        """The ``(low, high)`` uncertainty band."""
        return (self.low, self.high)

    def alphas(self, samples: int = 3) -> Iterator[float]:
        """Yield *samples* evenly spaced alphas across the band.

        With the default three samples this yields ``low``, ``alpha``
        (when the band is symmetric) and ``high`` — exactly the error
        bars the paper reports.
        """
        if samples < 1:
            raise ValidationError(f"samples must be >= 1, got {samples}")
        if samples == 1 or self.spread == 0.0:
            yield self.alpha
            return
        lo, hi = self.band
        step = (hi - lo) / (samples - 1)
        for i in range(samples):
            yield lo + i * step

    def with_alpha(self, alpha: float) -> "E2OWeight":
        """A copy of this weight re-centred on *alpha* (same spread)."""
        return E2OWeight(name=self.name, alpha=alpha, spread=self.spread)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.spread:
            return f"{self.name} (alpha={self.alpha:g}±{self.spread:g})"
        return f"{self.name} (alpha={self.alpha:g})"


#: The paper's embodied-dominated regime: mobile and hyperscale devices.
EMBODIED_DOMINATED = E2OWeight(name="embodied-dominated", alpha=0.8, spread=0.1)

#: The paper's operational-dominated regime: always-connected devices.
OPERATIONAL_DOMINATED = E2OWeight(name="operational-dominated", alpha=0.2, spread=0.1)

#: A 50/50 weighting, useful for sensitivity studies.
BALANCED = E2OWeight(name="balanced", alpha=0.5, spread=0.0)

#: The two regimes every figure in the paper reports.
STANDARD_WEIGHTS: tuple[E2OWeight, E2OWeight] = (
    EMBODIED_DOMINATED,
    OPERATIONAL_DOMINATED,
)
