"""Uncertainty handling: intervals and robust conclusions (paper §3.5).

FOCAL's answer to inherent data uncertainty is to evaluate conclusions
over *ranges* of the embodied-to-operational weight and over both use
scenarios: "if we are reaching similar conclusions across a range of
scenarios and weights, we can be confident that the conclusions hold
true despite the unknowns."

This module provides:

* :class:`Interval` — closed-interval arithmetic for propagating
  parameter bands through first-order expressions;
* :func:`robust_classification` — classify a design pair at every alpha
  across a weight band (and optionally several bands) and report
  whether the verdict is unanimous;
* :class:`RobustConclusion` — the structured result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from .classify import Sustainability, Verdict, classify
from .design import DesignPoint
from .errors import ValidationError
from .quantities import ensure_finite
from .scenario import E2OWeight

__all__ = [
    "Interval",
    "RobustConclusion",
    "robust_classification",
]


@dataclass(frozen=True, slots=True)
class Interval:
    """A closed real interval ``[low, high]`` with exact arithmetic.

    Only the operations needed by first-order carbon expressions are
    implemented: addition, subtraction, multiplication, division by an
    interval not containing zero, and scalar mixing. Scalars are
    promoted automatically.
    """

    low: float
    high: float

    def __post_init__(self) -> None:
        low = ensure_finite(self.low, "low")
        high = ensure_finite(self.high, "high")
        if low > high:
            raise ValidationError(f"Interval requires low <= high, got [{low}, {high}]")
        object.__setattr__(self, "low", low)
        object.__setattr__(self, "high", high)

    # -- constructors ---------------------------------------------------
    @classmethod
    def point(cls, value: float) -> "Interval":
        """The degenerate interval ``[value, value]``."""
        return cls(value, value)

    @classmethod
    def from_center(cls, center: float, spread: float) -> "Interval":
        """``[center - spread, center + spread]``."""
        if spread < 0:
            raise ValidationError(f"spread must be >= 0, got {spread}")
        return cls(center - spread, center + spread)

    @classmethod
    def _coerce(cls, value: "Interval | float") -> "Interval":
        return value if isinstance(value, Interval) else cls.point(float(value))

    # -- properties -----------------------------------------------------
    @property
    def width(self) -> float:
        return self.high - self.low

    @property
    def midpoint(self) -> float:
        return 0.5 * (self.low + self.high)

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high

    def entirely_below(self, threshold: float) -> bool:
        return self.high < threshold

    def entirely_above(self, threshold: float) -> bool:
        return self.low > threshold

    # -- arithmetic -----------------------------------------------------
    def __add__(self, other: "Interval | float") -> "Interval":
        o = Interval._coerce(other)
        return Interval(self.low + o.low, self.high + o.high)

    __radd__ = __add__

    def __neg__(self) -> "Interval":
        return Interval(-self.high, -self.low)

    def __sub__(self, other: "Interval | float") -> "Interval":
        return self + (-Interval._coerce(other))

    def __rsub__(self, other: "Interval | float") -> "Interval":
        return Interval._coerce(other) + (-self)

    def __mul__(self, other: "Interval | float") -> "Interval":
        o = Interval._coerce(other)
        products = (
            self.low * o.low,
            self.low * o.high,
            self.high * o.low,
            self.high * o.high,
        )
        return Interval(min(products), max(products))

    __rmul__ = __mul__

    def __truediv__(self, other: "Interval | float") -> "Interval":
        o = Interval._coerce(other)
        if o.contains(0.0):
            raise ValidationError(f"cannot divide by interval containing zero: {o}")
        return self * Interval(1.0 / o.high, 1.0 / o.low)

    def __rtruediv__(self, other: "Interval | float") -> "Interval":
        return Interval._coerce(other) / self

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.low:g}, {self.high:g}]"


@dataclass(frozen=True, slots=True)
class RobustConclusion:
    """Result of classifying a design pair across alpha ranges.

    ``unanimous`` is True when every sampled alpha (across every
    supplied weight band) yields the same sustainability category — the
    paper's criterion for a conclusion that "holds true despite the
    unknowns". When verdicts differ, ``categories`` lists the distinct
    categories observed, signalling that "we need to be more cautious".
    """

    design: str
    baseline: str
    verdicts: tuple[Verdict, ...]

    @property
    def categories(self) -> tuple[Sustainability, ...]:
        seen: list[Sustainability] = []
        for verdict in self.verdicts:
            if verdict.category not in seen:
                seen.append(verdict.category)
        return tuple(seen)

    @property
    def unanimous(self) -> bool:
        return len(self.categories) == 1

    @property
    def consensus(self) -> Sustainability | None:
        """The single category, or ``None`` when verdicts disagree."""
        cats = self.categories
        return cats[0] if len(cats) == 1 else None


def robust_classification(
    design: DesignPoint,
    baseline: DesignPoint,
    weights: Sequence[E2OWeight] | Iterable[E2OWeight],
    *,
    samples_per_band: int = 3,
    rel_tol: float = 1e-9,
) -> RobustConclusion:
    """Classify *design* vs *baseline* across one or more alpha bands.

    Each weight band is sampled at *samples_per_band* evenly spaced
    alphas (its edges are always included for ``samples_per_band >= 2``
    because NCF is affine in alpha, the edges are the extremes).
    """
    verdicts: list[Verdict] = []
    for weight in weights:
        for alpha in weight.alphas(samples_per_band):
            verdicts.append(classify(design, baseline, alpha, rel_tol=rel_tol))
    if not verdicts:
        raise ValidationError("robust_classification requires at least one weight")
    return RobustConclusion(
        design=design.name,
        baseline=baseline.name,
        verdicts=tuple(verdicts),
    )
