"""Design-space exploration: grids, sweeps, Pareto frontiers,
break-even solving, sensitivity and Monte-Carlo robustness.

Two sweep engines share one semantics: :class:`Explorer` is the scalar
reference path, :class:`BatchExplorer` the vectorized production path
(chunked streaming, optional process-pool factory evaluation, memoized
factories, array-at-once NCF/classification kernels).
"""

from .batch import (
    BatchExplorer,
    BatchSweepResult,
    DesignArrays,
    FactoryCache,
    SweepEngineStats,
    VectorFactory,
    is_vector_factory,
    params_key,
)
from .breakeven import bisect_crossing, crossing_or_none
from .explorer import ExplorationResult, Explorer
from .factories import (
    AsymmetricMulticoreFactory,
    DVFSOperatingPointFactory,
    SymmetricMulticoreFactory,
)
from .grid import ParameterGrid, geometric_range, linear_range
from .montecarlo import (
    CategoryProbabilities,
    sample_measurement_noise,
    sample_verdicts,
)
from .optimizer import max_perf_subject_to_ncf, min_ncf_subject_to_perf
from .sensitivity import SensitivityEntry, cached_metric, tornado
from .store import ResultStore, StoreStats

__all__ = [
    "ParameterGrid",
    "geometric_range",
    "linear_range",
    "Explorer",
    "ExplorationResult",
    "BatchExplorer",
    "BatchSweepResult",
    "FactoryCache",
    "params_key",
    "DesignArrays",
    "VectorFactory",
    "is_vector_factory",
    "SweepEngineStats",
    "SymmetricMulticoreFactory",
    "AsymmetricMulticoreFactory",
    "DVFSOperatingPointFactory",
    "bisect_crossing",
    "crossing_or_none",
    "SensitivityEntry",
    "tornado",
    "cached_metric",
    "CategoryProbabilities",
    "sample_verdicts",
    "sample_measurement_noise",
    "max_perf_subject_to_ncf",
    "min_ncf_subject_to_perf",
    "ResultStore",
    "StoreStats",
]
