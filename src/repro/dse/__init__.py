"""Design-space exploration: grids, sweeps, Pareto frontiers,
break-even solving, sensitivity and Monte-Carlo robustness."""

from .breakeven import bisect_crossing, crossing_or_none
from .explorer import ExplorationResult, Explorer
from .grid import ParameterGrid, geometric_range, linear_range
from .montecarlo import (
    CategoryProbabilities,
    sample_measurement_noise,
    sample_verdicts,
)
from .optimizer import max_perf_subject_to_ncf, min_ncf_subject_to_perf
from .sensitivity import SensitivityEntry, tornado

__all__ = [
    "ParameterGrid",
    "geometric_range",
    "linear_range",
    "Explorer",
    "ExplorationResult",
    "bisect_crossing",
    "crossing_or_none",
    "SensitivityEntry",
    "tornado",
    "CategoryProbabilities",
    "sample_verdicts",
    "sample_measurement_noise",
    "max_perf_subject_to_ncf",
    "min_ncf_subject_to_perf",
]
