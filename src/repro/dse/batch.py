"""The vectorized batch-evaluation engine for design-space sweeps.

:class:`~repro.dse.explorer.Explorer` evaluates one grid point at a
time; every NCF and every verdict is a scalar Python call. This module
provides the production path for large sweeps:

* :class:`BatchExplorer` streams grid points in chunks, evaluates the
  design factory (serially or over a ``ProcessPoolExecutor``), collects
  the area/energy/power ratios into arrays, and computes all NCFs,
  classifications and category histograms in single vectorized passes
  over :mod:`repro.core.batch` kernels;
* :class:`FactoryCache` memoizes factory evaluations on parameter
  tuples, so ``subgrid`` and tornado re-sweeps never re-evaluate a
  design (invalid corners — ``DomainError`` — are memoized too);
* :class:`BatchSweepResult` holds the sweep as arrays and converts back
  to the scalar :class:`~repro.dse.explorer.ExplorationResult` objects
  on demand.

``BatchExplorer.explore`` is byte-identical to ``Explorer.explore``:
same point ordering, same skip semantics for invalid corners, and
bit-exact NCF values (the kernels perform the same IEEE-754 operations
as the scalar path).
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from itertools import product
from typing import Callable, Iterable, Iterator, Mapping, Sequence

import numpy as np

from ..core.batch import (
    CATEGORIES,
    categories_from_codes,
    category_counts,
    classify_arrays,
    ncf_values,
)
from ..core.classify import Sustainability
from ..core.design import DesignPoint
from ..core.errors import ConfigurationError, DomainError, ValidationError
from ..core.scenario import E2OWeight
from ..obs import metrics as _metrics
from ..obs import trace as _trace
from .explorer import DesignFactory, ExplorationResult
from .grid import ParameterGrid

__all__ = [
    "params_key",
    "CacheStats",
    "FactoryCache",
    "BatchSweepResult",
    "BatchExplorer",
]


def params_key(params: Mapping[str, object]) -> tuple:
    """Hashable cache key for one grid point: sorted ``(name, value)``
    pairs, so dict insertion order never splits the cache. Plain tuple
    sort is safe — axis names are unique, so values never compare."""
    return tuple(sorted(params.items()))


@dataclass(frozen=True)
class CacheStats:
    """One consistent snapshot of a :class:`FactoryCache`'s counters."""

    hits: int
    misses: int
    size: int

    @property
    def lookups(self) -> int:
        """Total lookups observed (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        """Hits over lookups; 0.0 before any lookup happened."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict[str, object]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_ratio": self.hit_ratio,
            "size": self.size,
        }


class FactoryCache:
    """Memoizes a design factory on parameter tuples.

    A sweep engine re-visits grid points constantly — ``subgrid`` pins,
    tornado re-sweeps, chart re-draws — and factories are pure functions
    of their parameters, so each distinct point needs evaluating exactly
    once. ``DomainError`` outcomes (invalid corners the explorer skips)
    are memoized as well.

    The cache is shareable: hand the same instance to several
    :class:`BatchExplorer` objects sweeping the same factory.
    Effectiveness is reported through :meth:`stats` (hits, misses, hit
    ratio, size); every path that bumps the counters goes through the
    single :meth:`record` choke point.
    """

    def __init__(self, factory: DesignFactory) -> None:
        self.factory = factory
        self._entries: dict[tuple, DesignPoint | DomainError] = {}
        self._hits = 0
        self._misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hits(self) -> int:
        """Lookups served from memo (read-only; see :meth:`record`)."""
        return self._hits

    @property
    def misses(self) -> int:
        """Lookups that ran the factory (read-only)."""
        return self._misses

    def record(self, *, hits: int = 0, misses: int = 0) -> None:
        """Bump the counters — the one place they change, so batched
        hot loops and single-point lookups can't drift apart."""
        self._hits += hits
        self._misses += misses

    def stats(self) -> CacheStats:
        """Snapshot of hits, misses, hit ratio and entry count."""
        return CacheStats(hits=self._hits, misses=self._misses, size=len(self._entries))

    def reset(self) -> None:
        """Zero the hit/miss counters (keeps memoized entries)."""
        self._hits = 0
        self._misses = 0

    def clear(self) -> None:
        """Drop all memoized evaluations (keeps hit/miss counters)."""
        self._entries.clear()

    def lookup(self, key: tuple) -> DesignPoint | DomainError | None:
        """The memoized outcome for *key*, or ``None`` when unseen."""
        return self._entries.get(key)

    def store(self, key: tuple, outcome: DesignPoint | DomainError) -> None:
        """Memoize a factory *outcome* (a design or a ``DomainError``)."""
        self._entries[key] = outcome

    def evaluate(self, params: Mapping[str, object]) -> DesignPoint | DomainError:
        """Evaluate (or recall) one point; returns rather than raises
        the ``DomainError`` so batch paths can branch without except."""
        key = params_key(params)
        outcome = self._entries.get(key)
        if outcome is not None:
            self.record(hits=1)
            return outcome
        self.record(misses=1)
        try:
            outcome = self.factory(params)
        except DomainError as exc:
            outcome = exc
        self._entries[key] = outcome
        return outcome

    def __call__(self, params: Mapping[str, object]) -> DesignPoint:
        """Drop-in memoized factory: raises the memoized ``DomainError``
        for invalid corners, exactly like the wrapped factory."""
        outcome = self.evaluate(params)
        if isinstance(outcome, DomainError):
            raise outcome
        return outcome


def _pool_evaluate(job: tuple[DesignFactory, Mapping[str, object]]):
    """Worker-side factory call; ``DomainError`` travels back as a value."""
    factory, params = job
    try:
        return factory(params)
    except DomainError as exc:
        return exc


def _chunked(
    points: Iterable[Mapping[str, object]], size: int
) -> Iterator[list[Mapping[str, object]]]:
    chunk: list[Mapping[str, object]] = []
    for point in points:
        chunk.append(point)
        if len(chunk) >= size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


@dataclass(frozen=True)
class BatchSweepResult:
    """A whole sweep held as arrays (valid points only, grid order)."""

    params: tuple[Mapping[str, object], ...]
    designs: tuple[DesignPoint, ...]
    perf: np.ndarray
    ncf_fixed_work: np.ndarray
    ncf_fixed_time: np.ndarray
    codes: np.ndarray

    def __len__(self) -> int:
        return len(self.params)

    @property
    def categories(self) -> list[Sustainability]:
        """Per-point sustainability categories, grid order."""
        return categories_from_codes(self.codes)

    def category_counts(self, *, include_empty: bool = False) -> dict[Sustainability, int]:
        """Category histogram (``np.bincount`` over the codes).

        With the default ``include_empty=False`` only observed
        categories appear — the same mapping
        :meth:`Explorer.count_categories` builds.
        """
        counts = category_counts(self.codes)
        if include_empty:
            return counts
        return {category: n for category, n in counts.items() if n}

    def results(self) -> list[ExplorationResult]:
        """The sweep as scalar :class:`ExplorationResult` objects,
        byte-identical to what ``Explorer.explore`` returns."""
        return [
            ExplorationResult(
                params=params,
                design=design,
                perf=float(perf),
                ncf_fixed_work=float(fw),
                ncf_fixed_time=float(ft),
            )
            for params, design, perf, fw, ft in zip(
                self.params, self.designs, self.perf,
                self.ncf_fixed_work, self.ncf_fixed_time,
            )
        ]


@dataclass(frozen=True)
class BatchExplorer:
    """Sweep a design factory over a grid with vectorized evaluation.

    Parameters
    ----------
    factory, baseline, weight:
        As in :class:`~repro.dse.explorer.Explorer`.
    chunk_size:
        Grid points are streamed in chunks of this size, bounding
        memory on huge grids.
    workers:
        When > 0, factory evaluation of uncached points fans out over a
        ``ProcessPoolExecutor`` with this many workers. Factories must
        then be picklable (module-level functions); the pool only pays
        off when a single factory call is expensive relative to ~1 ms
        of IPC per chunk.
    cache:
        A :class:`FactoryCache` to (re)use; by default a private one is
        created, so repeated sweeps — ``subgrid`` pins, tornado runs —
        never re-evaluate a design.
    """

    factory: DesignFactory
    baseline: DesignPoint
    weight: E2OWeight
    chunk_size: int = 1024
    workers: int = 0
    cache: FactoryCache = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.chunk_size < 1:
            raise ValidationError(
                f"chunk_size must be >= 1, got {self.chunk_size}"
            )
        if self.workers < 0:
            raise ValidationError(f"workers must be >= 0, got {self.workers}")
        if self.cache is None:
            object.__setattr__(self, "cache", FactoryCache(self.factory))

    # ------------------------------------------------------------------
    # Factory evaluation (cached, optionally parallel)
    # ------------------------------------------------------------------
    def _evaluate_chunk(
        self,
        chunk: Sequence[Mapping[str, object]],
        pool: ProcessPoolExecutor | None,
    ) -> list[DesignPoint | DomainError]:
        cache = self.cache
        if pool is None:
            # Hot loop: grid points share one axis set, so the sorted
            # key order is computed once per chunk and the per-point
            # work is a tuple build plus one dict probe. Counters are
            # accumulated locally and flushed once through record().
            names = sorted(chunk[0])
            entries = cache._entries
            factory = self.factory
            outcomes: list[DesignPoint | DomainError] = []
            hits = 0
            misses = 0
            for params in chunk:
                key = tuple([(name, params[name]) for name in names])
                outcome = entries.get(key)
                if outcome is None:
                    misses += 1
                    try:
                        outcome = factory(params)
                    except DomainError as exc:
                        outcome = exc
                    entries[key] = outcome
                else:
                    hits += 1
                outcomes.append(outcome)
            cache.record(hits=hits, misses=misses)
            return outcomes
        keys = [params_key(params) for params in chunk]
        outcomes: list[DesignPoint | DomainError | None] = []
        pending: list[int] = []
        for index, key in enumerate(keys):
            outcome = cache.lookup(key)
            if outcome is None:
                pending.append(index)
            outcomes.append(outcome)
        cache.record(hits=len(chunk) - len(pending), misses=len(pending))
        if pending:
            jobs = [(self.factory, chunk[index]) for index in pending]
            for index, outcome in zip(pending, pool.map(_pool_evaluate, jobs)):
                cache.store(keys[index], outcome)
                outcomes[index] = outcome
        return outcomes  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Sweeps
    # ------------------------------------------------------------------
    def explore_arrays(self, grid: ParameterGrid) -> BatchSweepResult:
        """Sweep *grid* and return the results as arrays.

        Invalid corners (factories raising ``DomainError``) are dropped,
        exactly like ``Explorer.explore``; an all-invalid sweep raises
        :class:`~repro.core.errors.ConfigurationError`.
        """
        tracer = _trace.get_tracer()
        registry = _metrics.get_registry()
        observing = tracer.enabled or registry.enabled
        params_list: list[Mapping[str, object]] = []
        designs: list[DesignPoint] = []
        pool: ProcessPoolExecutor | None = None
        with tracer.span(
            "sweep",
            grid_points=len(grid),
            chunk_size=self.chunk_size,
            workers=self.workers,
        ) as sweep_span:
            start_s = time.perf_counter() if observing else 0.0
            try:
                if self.workers:
                    pool = ProcessPoolExecutor(max_workers=self.workers)
                for index, chunk in enumerate(_chunked(iter(grid), self.chunk_size)):
                    with tracer.span("chunk", index=index) as chunk_span:
                        if observing:
                            chunk_start = time.perf_counter()
                            before = self.cache.stats()
                        outcomes = self._evaluate_chunk(chunk, pool)
                        valid = 0
                        for params, outcome in zip(chunk, outcomes):
                            if isinstance(outcome, DomainError):
                                continue
                            params_list.append(params)
                            designs.append(outcome)
                            valid += 1
                        if observing:
                            self._observe_chunk(
                                registry,
                                chunk_span,
                                points=len(chunk),
                                valid=valid,
                                seconds=time.perf_counter() - chunk_start,
                                before=before,
                            )
            finally:
                if pool is not None:
                    pool.shutdown()
            if not designs:
                raise ConfigurationError(
                    "exploration produced no valid design points"
                )
            with tracer.span("classify", points=len(designs)):
                perf, ncf_fw, ncf_ft = self._ncf_arrays(designs)
                codes = classify_arrays(ncf_fw, ncf_ft)
            if observing:
                self._observe_sweep(
                    registry,
                    sweep_span,
                    points=len(params_list),
                    seconds=time.perf_counter() - start_s,
                )
        return BatchSweepResult(
            params=tuple(params_list),
            designs=tuple(designs),
            perf=perf,
            ncf_fixed_work=ncf_fw,
            ncf_fixed_time=ncf_ft,
            codes=codes,
        )

    def _observe_chunk(
        self,
        registry: _metrics.MetricsRegistry,
        chunk_span,
        *,
        points: int,
        valid: int,
        seconds: float,
        before: CacheStats,
    ) -> None:
        """Per-chunk telemetry (only called while observing): timing,
        throughput, cache effectiveness and worker fan-out."""
        after = self.cache.stats()
        evaluated = after.misses - before.misses
        cached = after.hits - before.hits
        if chunk_span is not _trace.NULL_SPAN:
            chunk_span.set(
                points=points,
                valid=valid,
                invalid=points - valid,
                evaluated=evaluated,
                cached=cached,
                evals_per_s=points / seconds if seconds > 0 else float("inf"),
            )
            if self.workers:
                # Fan-out share: the fraction of this chunk that went
                # to the worker pool rather than the memo.
                chunk_span.set(
                    pool_points=evaluated,
                    worker_utilization=evaluated / points if points else 0.0,
                )
        if registry.enabled:
            registry.counter(
                "focal_evaluations_total", "factory evaluations (cache misses)"
            ).inc(evaluated)
            registry.counter(
                "focal_cache_hits_total", "factory cache hits"
            ).inc(cached)
            registry.histogram(
                "focal_chunk_seconds", "wall time per evaluated chunk"
            ).observe(seconds)

    def _observe_sweep(
        self,
        registry: _metrics.MetricsRegistry,
        sweep_span,
        *,
        points: int,
        seconds: float,
    ) -> None:
        """Sweep-level telemetry: cache hit ratio and throughput."""
        stats = self.cache.stats()
        if sweep_span is not _trace.NULL_SPAN:
            sweep_span.set(
                valid_points=points,
                seconds=seconds,
                evals_per_s=points / seconds if seconds > 0 else float("inf"),
                cache_hits=stats.hits,
                cache_misses=stats.misses,
                cache_hit_ratio=stats.hit_ratio,
                cache_size=stats.size,
            )
        if registry.enabled:
            registry.gauge(
                "focal_cache_hit_ratio", "factory cache hits / lookups"
            ).set(stats.hit_ratio)
            registry.gauge(
                "focal_sweep_evals_per_s", "valid grid points per second, last sweep"
            ).set(points / seconds if seconds > 0 else 0.0)

    def _ncf_arrays(
        self, designs: Sequence[DesignPoint]
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Perf ratios and both NCF arrays for *designs* vs the baseline.

        Same IEEE-754 operations, in the same order, as the scalar
        ratio properties on DesignPoint — the values are bit-exact.
        """
        area = np.array([design.area for design in designs], dtype=np.float64)
        perf = np.array([design.perf for design in designs], dtype=np.float64)
        power = np.array([design.power for design in designs], dtype=np.float64)
        base = self.baseline
        area_ratio = area / base.area
        energy_ratio = (power / perf) / base.energy
        power_ratio = power / base.power
        alpha = self.weight.alpha
        return (
            perf / base.perf,
            ncf_values(area_ratio, energy_ratio, alpha),
            ncf_values(area_ratio, power_ratio, alpha),
        )

    def explore(self, grid: ParameterGrid) -> list[ExplorationResult]:
        """Drop-in replacement for ``Explorer.explore`` (same ordering,
        same skips, bit-exact values) on the vectorized engine."""
        return self.explore_arrays(grid).results()

    def count_categories(self, grid: ParameterGrid) -> dict[Sustainability, int]:
        """Sweep *grid* and histogram the verdicts in one lean pass.

        The aggregate-only fast path: identical counts to
        ``Explorer.count_categories(Explorer.explore(grid))``, but
        per-point params/result objects are never materialized — cache
        keys are built straight from the cartesian product, so a warm
        re-sweep is a dict probe and a few vector ops per chunk.
        """
        if self.workers:
            return self.explore_arrays(grid).category_counts()
        tracer = _trace.get_tracer()
        registry = _metrics.get_registry()
        observing = tracer.enabled or registry.enabled
        with tracer.span("sweep.count", grid_points=len(grid)) as sweep_span:
            start_s = time.perf_counter() if observing else 0.0
            designs = self._designs_only(grid)
            if not designs:
                raise ConfigurationError(
                    "exploration produced no valid design points"
                )
            _, ncf_fw, ncf_ft = self._ncf_arrays(designs)
            counts = category_counts(classify_arrays(ncf_fw, ncf_ft))
            if observing:
                self._observe_sweep(
                    registry,
                    sweep_span,
                    points=len(designs),
                    seconds=time.perf_counter() - start_s,
                )
        return {category: n for category, n in counts.items() if n}

    def _designs_only(self, grid: ParameterGrid) -> list[DesignPoint]:
        """Evaluate every grid point, skipping params materialization
        for cached points (the dominant cost of a warm re-sweep).

        Deliberately uninstrumented inside the loop — the caller
        observes at sweep granularity, so a disabled-observability run
        pays nothing per point.
        """
        cache = self.cache
        entries = cache._entries
        factory = self.factory
        names = list(grid.axes)
        slots = sorted(range(len(names)), key=names.__getitem__)
        designs: list[DesignPoint] = []
        hits = 0
        misses = 0
        for combo in product(*(grid.axes[name] for name in names)):
            key = tuple([(names[i], combo[i]) for i in slots])
            outcome = entries.get(key)
            if outcome is None:
                misses += 1
                try:
                    outcome = factory(dict(zip(names, combo)))
                except DomainError as exc:
                    outcome = exc
                entries[key] = outcome
            else:
                hits += 1
            if not isinstance(outcome, DomainError):
                designs.append(outcome)
        cache.record(hits=hits, misses=misses)
        return designs
