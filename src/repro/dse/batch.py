"""The vectorized batch-evaluation engine for design-space sweeps.

:class:`~repro.dse.explorer.Explorer` evaluates one grid point at a
time; every NCF and every verdict is a scalar Python call. This module
provides the production path for large sweeps:

* :class:`BatchExplorer` streams grid points in chunks, evaluates the
  design factory (serially or over a ``ProcessPoolExecutor``), collects
  the area/energy/power ratios into arrays, and computes all NCFs,
  classifications and category histograms in single vectorized passes
  over :mod:`repro.core.batch` kernels;
* :class:`FactoryCache` memoizes factory evaluations on parameter
  tuples, so ``subgrid`` and tornado re-sweeps never re-evaluate a
  design (invalid corners — ``DomainError`` — are memoized too);
* :class:`VectorFactory` is the columnar protocol for the *cold* path:
  a factory that additionally maps a whole grid chunk (one NumPy
  column per axis) to :class:`DesignArrays` in a few vectorized
  passes. A cold sweep of such a factory never evaluates the scalar
  substrate point-by-point (see :mod:`repro.dse.factories` for the
  stock implementations); warm sweeps keep the scalar + cache path,
  which is already a dict probe per point;
* with ``workers > 0`` a cold vector-factory sweep runs
  **parallel-columnar**: the grid is sharded into contiguous,
  chunk-aligned spans, each span ships to a worker as axis *columns*
  (one job per span, never per point), workers run ``batch_arrays``
  over their shard and write the result columns into one
  ``multiprocessing.shared_memory`` block (compact pickled arrays when
  shared memory is unavailable — see :mod:`repro.dse.parallel`). The
  factory ships once per pool via an initializer; no DesignPoint ever
  crosses the process boundary. The parent then materializes points,
  re-evaluates invalid rows scalar to capture genuine ``DomainError``
  objects, and fills the cache — byte-identical to ``workers=0``;
* :class:`BatchSweepResult` holds the sweep as arrays and converts back
  to the scalar :class:`~repro.dse.explorer.ExplorationResult` objects
  on demand.

``BatchExplorer.explore`` is byte-identical to ``Explorer.explore``:
same point ordering, same skip semantics for invalid corners, and
bit-exact NCF values (the kernels perform the same IEEE-754 operations
as the scalar path).

Resilience (:mod:`repro.resilience`) is layered on without touching the
numbers: handing the explorer a
:class:`~repro.resilience.policy.RetryPolicy` routes worker dispatch
through a :class:`~repro.resilience.supervisor.SupervisedPool` (crash
recovery, chunk timeouts, bounded retry, in-process degradation), and
``explore_arrays(..., checkpoint=..., resume=True)`` persists
chunk-granular progress through an atomic, checksummed
:class:`~repro.resilience.checkpoint.CheckpointStore` so a killed sweep
resumes bit-exactly — same result arrays, same cache contents — from
the last completed chunk.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from itertools import product
from typing import (
    Callable,
    Iterable,
    Iterator,
    Mapping,
    Protocol,
    Sequence,
    runtime_checkable,
)

import numpy as np

from ..core.batch import (
    CATEGORIES,
    categories_from_codes,
    category_counts,
    classify_arrays,
    ncf_values,
)
from ..core.classify import Sustainability
from ..core.design import DesignPoint
from ..core.errors import (
    CheckpointError,
    ConfigurationError,
    DomainError,
    QuarantinedPoint,
    ValidationError,
)
from ..core.scenario import E2OWeight
from ..obs import events as _events
from ..obs import metrics as _metrics
from ..obs import trace as _trace
from ..obs.log import get_logger, kv
from ..resilience.checkpoint import (
    CheckpointStore,
    decode_outcomes,
    describe_factory,
    encode_outcomes,
    sweep_fingerprint,
)
from ..resilience.containment import (
    INCOMPLETE,
    BisectOutcome,
    FailureReport,
    HeartbeatMonitor,
    QuarantineLedger,
    QuarantineSession,
)
from ..resilience.policy import RetryPolicy, SupervisionStats
from ..resilience.supervisor import SupervisedPool
from . import parallel as _parallel
from .explorer import DesignFactory, ExplorationResult
from .grid import ParameterGrid
from .store import ChunkProbe, ResultStore, SweepStoreSession

__all__ = [
    "params_key",
    "params_keys",
    "CacheStats",
    "FactoryCache",
    "DesignArrays",
    "VectorFactory",
    "is_vector_factory",
    "SweepEngineStats",
    "BatchSweepResult",
    "BatchExplorer",
]


def params_key(params: Mapping[str, object]) -> tuple:
    """Hashable cache key for one grid point: sorted ``(name, value)``
    pairs, so dict insertion order never splits the cache. Plain tuple
    sort is safe — axis names are unique, so values never compare."""
    return tuple(sorted(params.items()))


def params_keys(chunk: Sequence[Mapping[str, object]]) -> list[tuple]:
    """:func:`params_key` for every point of one grid chunk.

    Chunks of one grid share a single axis set, so the sorted name
    order is computed once for the whole chunk — the only difference
    from mapping :func:`params_key` over the points, and one the
    test suite pins down: the keys are identical, so the scalar,
    columnar and restore paths can never drift apart on key shape.
    """
    names = sorted(chunk[0])
    return [
        tuple([(name, params[name]) for name in names]) for params in chunk
    ]


@dataclass(frozen=True)
class CacheStats:
    """One consistent snapshot of a :class:`FactoryCache`'s counters."""

    hits: int
    misses: int
    size: int

    @property
    def lookups(self) -> int:
        """Total lookups observed (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        """Hits over lookups; 0.0 before any lookup happened."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict[str, object]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_ratio": self.hit_ratio,
            "size": self.size,
        }


class FactoryCache:
    """Memoizes a design factory on parameter tuples.

    A sweep engine re-visits grid points constantly — ``subgrid`` pins,
    tornado re-sweeps, chart re-draws — and factories are pure functions
    of their parameters, so each distinct point needs evaluating exactly
    once. ``DomainError`` outcomes (invalid corners the explorer skips)
    are memoized as well.

    The cache is shareable: hand the same instance to several
    :class:`BatchExplorer` objects sweeping the same factory.
    Effectiveness is reported through :meth:`stats` (hits, misses, hit
    ratio, size); every path that bumps the counters goes through the
    single :meth:`record` choke point.
    """

    def __init__(self, factory: DesignFactory) -> None:
        self.factory = factory
        self._entries: dict[tuple, DesignPoint | DomainError] = {}
        self._hits = 0
        self._misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hits(self) -> int:
        """Lookups served from memo (read-only; see :meth:`record`)."""
        return self._hits

    @property
    def misses(self) -> int:
        """Lookups that ran the factory (read-only)."""
        return self._misses

    def record(self, *, hits: int = 0, misses: int = 0) -> None:
        """Bump the counters — the one place they change, so batched
        hot loops and single-point lookups can't drift apart."""
        self._hits += hits
        self._misses += misses

    def stats(self) -> CacheStats:
        """Snapshot of hits, misses, hit ratio and entry count."""
        return CacheStats(hits=self._hits, misses=self._misses, size=len(self._entries))

    def reset(self) -> None:
        """Zero the hit/miss counters (keeps memoized entries)."""
        self._hits = 0
        self._misses = 0

    def clear(self) -> None:
        """Drop all memoized evaluations (keeps hit/miss counters)."""
        self._entries.clear()

    def lookup(self, key: tuple) -> DesignPoint | DomainError | None:
        """The memoized outcome for *key*, or ``None`` when unseen."""
        return self._entries.get(key)

    def store(self, key: tuple, outcome: DesignPoint | DomainError) -> None:
        """Memoize a factory *outcome* (a design or a ``DomainError``)."""
        self._entries[key] = outcome

    def store_many(
        self,
        keys: Sequence[tuple],
        outcomes: Sequence[DesignPoint | DomainError],
        *,
        hits: int = 0,
        misses: int = 0,
    ) -> None:
        """Bulk-memoize a chunk's outcomes under its :func:`params_key`
        keys, bumping the counters once.

        The public API the batched paths (columnar, parallel-columnar,
        checkpoint restore) store through, so they share key
        construction with the scalar path instead of poking
        ``_entries`` with hand-rolled tuples.
        """
        if len(keys) != len(outcomes):
            raise ValidationError(
                f"store_many got {len(keys)} keys for {len(outcomes)} outcomes"
            )
        entries = self._entries
        for key, outcome in zip(keys, outcomes):
            entries[key] = outcome
        self.record(hits=hits, misses=misses)

    def evaluate(self, params: Mapping[str, object]) -> DesignPoint | DomainError:
        """Evaluate (or recall) one point; returns rather than raises
        the ``DomainError`` so batch paths can branch without except."""
        key = params_key(params)
        outcome = self._entries.get(key)
        if outcome is not None:
            self.record(hits=1)
            return outcome
        self.record(misses=1)
        try:
            outcome = self.factory(params)
        except DomainError as exc:
            outcome = exc
        self._entries[key] = outcome
        return outcome

    def __call__(self, params: Mapping[str, object]) -> DesignPoint:
        """Drop-in memoized factory: raises the memoized ``DomainError``
        for invalid corners, exactly like the wrapped factory."""
        outcome = self.evaluate(params)
        if isinstance(outcome, DomainError):
            raise outcome
        return outcome


class _SalvageAbort(Exception):
    """Internal: the supervisor salvaged an irrecoverable pool — stop
    the chunk loop, keep the completed prefix, report the failure."""


def _scalar_job_params(job: Mapping[str, object]) -> Mapping[str, object]:
    """Quarantine ``describe`` hook for the scalar pool path, where a
    job *is* its grid-point parameter dict."""
    return job


def _chunked(
    points: Iterable[Mapping[str, object]], size: int
) -> Iterator[list[Mapping[str, object]]]:
    chunk: list[Mapping[str, object]] = []
    for point in points:
        chunk.append(point)
        if len(chunk) >= size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


@dataclass
class _StoreUse:
    """Per-sweep tally of what the persistent store contributed.

    ``memo_points``/``fresh_points`` are *not* here — those fall out of
    the cache-counter deltas (store- and checkpoint-served points bump
    neither counter, exactly like checkpoint restore always worked).
    """

    full_chunks: int = 0
    delta_chunks: int = 0
    memory_points: int = 0
    disk_points: int = 0


class _ParallelPlan:
    """Execution state of one parallel-columnar sweep.

    Holds the collected grid chunks, the shared result block, the
    worker pool and the chunk-aligned shard spans still to evaluate
    (chunks restored from a checkpoint — and chunks the persistent
    store holds any rows of — are excluded: their rows of the block
    are never written or read). The kernel-phase timing fields feed
    the ``focal_parallel_*`` gauges.
    """

    def __init__(
        self,
        chunks: list[Sequence[Mapping[str, object]]],
        chunk_size: int,
        block: "_parallel.ColumnarBlock",
        pool,
        spans: list[tuple[int, int]],
        spill_dir: str | None = None,
        planned: set[int] | None = None,
        arena: "_parallel.GridArena | None" = None,
        scheduler: str = "steal",
    ) -> None:
        self.chunks = chunks
        self.chunk_size = chunk_size
        self.block = block
        self.pool = pool
        self.spans = spans
        #: Chunk indices whose block rows the kernel phase fills —
        #: only these may be read back via :meth:`chunk_arrays`.
        self.planned = planned if planned is not None else set(range(len(chunks)))
        #: Chunk indices covered by shards the supervisor salvaged as
        #: INCOMPLETE — their block rows were never written and the
        #: chunk loop must stop (salvage) when it reaches them.
        self.failed: set[int] = set()
        #: Crash-spill directory for worker events (None when telemetry
        #: is off) — collected and removed when the sweep winds down.
        self.spill_dir = spill_dir
        #: The published input-grid columns (None when the axes cannot
        #: be hosted — jobs then carry their columns by value).
        self.arena = arena
        self.scheduler = scheduler
        #: Captured at setup — the segments are released before stats
        #: are cut.
        self.shm_bytes = block.nbytes + (arena.nbytes if arena else 0)
        self.spill_nbytes = block.spill_nbytes + (
            arena.spill_nbytes if arena else 0
        )
        self.kernel_wall = 0.0
        self.busy = 0.0

    @property
    def shard_points(self) -> int:
        """The largest dispatched span, in grid points."""
        return max((hi - lo for lo, hi in self.spans), default=0)

    @property
    def tail_shard_points(self) -> int:
        """The smallest dispatched span, in grid points."""
        return min((hi - lo for lo, hi in self.spans), default=0)

    def points(self, lo: int, hi: int) -> list[Mapping[str, object]]:
        """The grid-point dicts of span ``[lo, hi)`` (chunk-aligned)."""
        first = lo // self.chunk_size
        last = -(-hi // self.chunk_size)
        return [
            params for chunk in self.chunks[first:last] for params in chunk
        ]

    def chunk_arrays(self, index: int) -> DesignArrays:
        """Chunk *index*'s kernel columns, copied out of the block (so
        the shared segment can be unlinked before results are dropped)."""
        lo = index * self.chunk_size
        hi = lo + len(self.chunks[index])
        return DesignArrays(*self.block.rows(lo, hi))

    def release(self) -> None:
        self.block.release()
        if self.arena is not None:
            self.arena.release()


@dataclass(frozen=True)
class DesignArrays:
    """One grid chunk evaluated as columns instead of objects.

    ``area``/``perf``/``power`` hold the would-be
    :class:`~repro.core.design.DesignPoint` fields for each row of the
    chunk; ``valid`` marks rows the scalar factory would return for
    (``False`` rows are the corners it would reject with
    :class:`~repro.core.errors.DomainError`, and their area/perf/power
    values are placeholders that must never be read).
    """

    area: np.ndarray
    perf: np.ndarray
    power: np.ndarray
    valid: np.ndarray

    def __post_init__(self) -> None:
        area = np.asarray(self.area, dtype=np.float64)
        perf = np.asarray(self.perf, dtype=np.float64)
        power = np.asarray(self.power, dtype=np.float64)
        valid = np.asarray(self.valid, dtype=bool)
        if area.ndim != 1 or {perf.shape, power.shape, valid.shape} != {area.shape}:
            raise ValidationError(
                "DesignArrays columns must be 1-D arrays of one common "
                f"length, got shapes area={area.shape}, perf={perf.shape}, "
                f"power={power.shape}, valid={valid.shape}"
            )
        object.__setattr__(self, "area", area)
        object.__setattr__(self, "perf", perf)
        object.__setattr__(self, "power", power)
        object.__setattr__(self, "valid", valid)

    def __len__(self) -> int:
        return int(self.area.shape[0])


@runtime_checkable
class VectorFactory(Protocol):
    """A design factory that can also evaluate whole chunks columnar.

    A vector factory is first of all an ordinary
    :data:`~repro.dse.explorer.DesignFactory` — ``factory(params)``
    returns one :class:`~repro.core.design.DesignPoint` or raises
    :class:`~repro.core.errors.DomainError`. On top of that it maps a
    whole parameter-grid chunk, presented as one NumPy column per axis,
    to :class:`DesignArrays` in a handful of vectorized passes.

    The contract that makes the fast path safe to take silently:

    * ``batch_arrays`` must be **bit-exact** with the scalar call — for
      every valid row, the columns equal the scalar design's
      area/perf/power fields to the last bit (build on the
      ``repro.*.batch`` kernels, which guarantee this);
    * ``valid`` must be ``True`` exactly where the scalar call returns
      instead of raising ``DomainError`` (skip semantics);
    * optionally, a ``design_points(chunk, arrays)`` method may
      materialize the named :class:`DesignPoint` objects for a chunk
      (``None`` for invalid rows); without it the engine falls back to
      the scalar call per point when point objects are required.
    """

    def __call__(self, params: Mapping[str, object]) -> DesignPoint: ...

    def batch_arrays(self, columns: Mapping[str, np.ndarray]) -> DesignArrays: ...


def is_vector_factory(factory: object) -> bool:
    """Whether *factory* implements the :class:`VectorFactory` protocol."""
    return isinstance(factory, VectorFactory)


#: The two engine modes that run the columnar kernels.
COLUMNAR_MODES = ("columnar", "parallel-columnar")

# ``workers="auto"`` calibration knobs. The heuristic projects the
# serial sweep time from one in-process chunk and engages the pool only
# when dispatch can win by a clear margin — the cost model is
# deliberately pessimistic about the pool (spawn cost per worker,
# margin over break-even), so a wrong guess errs toward the serial
# columnar path, which is never slower than itself.
#: Projected serial seconds below which a pool can never pay off.
AUTO_MIN_SERIAL_S = 0.5
#: Assumed process spawn + initializer cost per worker, seconds.
AUTO_SPAWN_S = 0.06
#: The projected parallel time must beat serial by this factor.
AUTO_MARGIN = 1.3
#: Auto never picks more workers than this (diminishing returns).
AUTO_MAX_WORKERS = 8


@dataclass(frozen=True)
class SweepEngineStats:
    """How the engine executed the last sweep (one immutable snapshot).

    ``mode`` names the execution path the engine resolved to:
    ``"parallel-columnar"`` (cold vector factory, worker pool, shard
    dispatch), ``"columnar"`` (cold vector factory, single process),
    ``"scalar-pool"`` (per-point factory calls over a worker pool) or
    ``"scalar"`` (per-point calls in-process). ``fallback_points``
    counts grid points that were evaluated through the scalar factory
    *although* the factory is vector-capable (warm cache, or rows
    needing point materialization) — the ``focal_vector_fallback_total``
    metric mirrors it. The ``shards``/``shard_points``/``shm_bytes``/
    ``worker_utilization`` fields are populated by parallel-columnar
    sweeps only and feed the ``focal_parallel_*`` gauges.
    """

    mode: str
    grid_points: int
    valid_points: int
    vector_points: int
    fallback_points: int
    seconds: float
    workers: int = 0
    shards: int = 0
    shard_points: int = 0
    shm_bytes: int = 0
    worker_utilization: float = 0.0
    #: Shard scheduling of a parallel-columnar sweep ("steal" or
    #: "static"; "" otherwise), the smallest dispatched shard in grid
    #: points (the steal tail), and spill-file bytes backing the
    #: sweep's segments (0 unless out-of-core).
    scheduler: str = ""
    tail_shard_points: int = 0
    spill_bytes: int = 0
    #: True when ``workers="auto"`` resolved this sweep's worker count
    #: (``workers`` then records the calibrated choice).
    auto_workers: bool = False
    #: Point provenance: memo_points came from the FactoryCache,
    #: fresh_points actually ran the factory/kernels this sweep, and
    #: the store_* fields (persistent-store sweeps only; store_used
    #: marks them meaningful) split the rest by store tier.
    memo_points: int = 0
    fresh_points: int = 0
    store_used: bool = False
    store_chunks: int = 0
    delta_chunks: int = 0
    store_memory_points: int = 0
    store_disk_points: int = 0
    #: Failure containment: grid points excluded by quarantine this
    #: sweep (pre-filtered known poison plus freshly bisected), and
    #: whether the sweep ended as a salvaged partial result.
    quarantined_points: int = 0
    salvaged: bool = False

    @property
    def evals_per_s(self) -> float:
        """Grid points evaluated per second (0.0 for an untimed sweep)."""
        return self.grid_points / self.seconds if self.seconds > 0 else 0.0

    @property
    def store_points(self) -> int:
        """Points adopted from the persistent store (either tier)."""
        return self.store_memory_points + self.store_disk_points

    @property
    def store_reuse_ratio(self) -> float:
        """Store-served points over grid points (0.0 without a store)."""
        return self.store_points / self.grid_points if self.grid_points else 0.0

    def summary(self) -> str:
        """One human line for CLI output."""
        line = (
            f"engine: {self.mode} path, {self.grid_points} pts in "
            f"{self.seconds:.3f} s ({self.evals_per_s:,.0f} evals/s)"
        )
        if self.auto_workers:
            line += (
                f", workers auto->{self.workers}"
                if self.workers
                else ", workers auto->serial"
            )
        if self.shards:
            sched = f", {self.scheduler}" if self.scheduler else ""
            line += (
                f", {self.shards} shards (<= {self.shard_points} pts{sched}) "
                f"x {self.workers} workers, "
                f"{self.worker_utilization:.0%} kernel utilization"
            )
        if self.spill_bytes:
            line += f", {self.spill_bytes / 1e6:.1f} MB spilled"
        if self.fallback_points:
            line += f", {self.fallback_points} scalar-fallback pts"
        if self.store_used:
            line += (
                f", store reuse: {self.store_reuse_ratio * 100:.1f}% "
                f"({self.store_memory_points} pts memory / "
                f"{self.store_disk_points} pts disk / "
                f"{self.fresh_points} fresh)"
            )
            if self.delta_chunks:
                line += f", {self.delta_chunks} stitched delta chunks"
        if self.quarantined_points:
            line += f", {self.quarantined_points} quarantined pts"
        if self.salvaged:
            line += ", salvaged partial result"
        return line

    def as_dict(self) -> dict[str, object]:
        payload: dict[str, object] = {
            "mode": self.mode,
            "grid_points": self.grid_points,
            "valid_points": self.valid_points,
            "vector_points": self.vector_points,
            "fallback_points": self.fallback_points,
            "seconds": self.seconds,
            "evals_per_s": self.evals_per_s,
            "memo_points": self.memo_points,
            "fresh_points": self.fresh_points,
        }
        if self.auto_workers:
            payload["auto_workers"] = True
            payload["workers"] = self.workers
        if self.shards:
            payload.update(
                workers=self.workers,
                shards=self.shards,
                shard_points=self.shard_points,
                shm_bytes=self.shm_bytes,
                worker_utilization=self.worker_utilization,
                scheduler=self.scheduler,
                tail_shard_points=self.tail_shard_points,
            )
        if self.spill_bytes:
            payload["spill_bytes"] = self.spill_bytes
        if self.store_used:
            payload.update(
                store_chunks=self.store_chunks,
                delta_chunks=self.delta_chunks,
                store_points=self.store_points,
                store_memory_points=self.store_memory_points,
                store_disk_points=self.store_disk_points,
                store_reuse_ratio=self.store_reuse_ratio,
            )
        if self.quarantined_points:
            payload["quarantined_points"] = self.quarantined_points
        if self.salvaged:
            payload["salvaged"] = True
        return payload


@dataclass(frozen=True)
class BatchSweepResult:
    """A whole sweep held as arrays (valid points only, grid order).

    ``quarantined`` lists the grid points failure containment excluded
    (always reported, never silent), and ``failure`` is the
    :class:`~repro.resilience.containment.FailureReport` of a salvaged
    partial run (``None`` for a run that completed).
    """

    params: tuple[Mapping[str, object], ...]
    designs: tuple[DesignPoint, ...]
    perf: np.ndarray
    ncf_fixed_work: np.ndarray
    ncf_fixed_time: np.ndarray
    codes: np.ndarray
    quarantined: tuple[Mapping[str, object], ...] = ()
    failure: "FailureReport | None" = None

    def __len__(self) -> int:
        return len(self.params)

    @property
    def complete(self) -> bool:
        """Whether the sweep covered every non-quarantined point."""
        return self.failure is None

    @property
    def categories(self) -> list[Sustainability]:
        """Per-point sustainability categories, grid order."""
        return categories_from_codes(self.codes)

    def category_counts(self, *, include_empty: bool = False) -> dict[Sustainability, int]:
        """Category histogram (``np.bincount`` over the codes).

        With the default ``include_empty=False`` only observed
        categories appear — the same mapping
        :meth:`Explorer.count_categories` builds.
        """
        counts = category_counts(self.codes)
        if include_empty:
            return counts
        return {category: n for category, n in counts.items() if n}

    def results(self) -> list[ExplorationResult]:
        """The sweep as scalar :class:`ExplorationResult` objects,
        byte-identical to what ``Explorer.explore`` returns."""
        return [
            ExplorationResult(
                params=params,
                design=design,
                perf=float(perf),
                ncf_fixed_work=float(fw),
                ncf_fixed_time=float(ft),
            )
            for params, design, perf, fw, ft in zip(
                self.params, self.designs, self.perf,
                self.ncf_fixed_work, self.ncf_fixed_time,
            )
        ]


@dataclass(frozen=True)
class BatchExplorer:
    """Sweep a design factory over a grid with vectorized evaluation.

    Parameters
    ----------
    factory, baseline, weight:
        As in :class:`~repro.dse.explorer.Explorer`.
    chunk_size:
        Grid points are streamed in chunks of this size, bounding
        memory on huge grids.
    workers:
        When > 0, factory evaluation of uncached points fans out over a
        ``ProcessPoolExecutor`` with this many workers. Factories must
        then be picklable (module-level functions); the pool only pays
        off when a single factory call is expensive relative to ~1 ms
        of IPC per chunk. The string ``"auto"`` calibrates instead of
        guessing: the first chunk is timed in-process and the pool
        engages only when the projected serial time is large enough
        for dispatch to win (otherwise the sweep runs the columnar
        ``workers=0`` path — never slower than serial by construction).
        The calibration chunk's arrays are reused, so auto costs no
        extra kernel work on the sweep it serves.
    scheduler:
        Shard scheduling for the parallel-columnar path. ``"steal"``
        (the default) plans geometrically shrinking chunk-aligned
        shards and submits one executor future each, so idle workers
        pull the next shard off the shared call queue the moment they
        finish one; ``"static"`` keeps the legacy fixed
        shards-per-worker spans.
    spill_dir, spill_bytes:
        Out-of-core policy. When ``spill_bytes`` is set, any shared
        sweep segment (result block, resident grid columns) at or above
        that many bytes is backed by a ``numpy.memmap``-style file
        instead of shared memory; a bare ``spill_dir`` (threshold
        unset) spills every segment. Files land under ``spill_dir``
        (a temp dir when only the threshold is given) and are removed
        when the sweep winds down. Results are byte-identical to the
        in-RAM path.
    cache:
        A :class:`FactoryCache` to (re)use; by default a private one is
        created, so repeated sweeps — ``subgrid`` pins, tornado runs —
        never re-evaluate a design.
    resilience:
        A :class:`~repro.resilience.policy.RetryPolicy` to supervise
        worker dispatch with (crash recovery, per-chunk timeouts,
        bounded retry with backoff, in-process degradation). ``None``
        (the default) keeps the bare ``ProcessPoolExecutor`` path.
        Supervision never changes results — it only re-executes pure
        factory calls that failed to come back.
    """

    factory: DesignFactory
    baseline: DesignPoint
    weight: E2OWeight
    chunk_size: int = 1024
    workers: int | str = 0
    cache: FactoryCache = field(default=None)  # type: ignore[assignment]
    resilience: RetryPolicy | None = None
    scheduler: str = "steal"
    spill_dir: str | os.PathLike | None = None
    spill_bytes: int | None = None
    #: Engine execution snapshot of the most recent sweep (set by
    #: explore_arrays/count_categories; None before the first sweep).
    last_sweep: SweepEngineStats | None = field(
        default=None, init=False, compare=False, repr=False
    )
    #: Supervision counters of the most recent supervised sweep (None
    #: before the first sweep or when resilience is disabled).
    last_supervision: SupervisionStats | None = field(
        default=None, init=False, compare=False, repr=False
    )
    #: Worker count the current/most recent sweep resolved to (equals
    #: ``workers`` unless ``workers="auto"`` calibrated a choice).
    _active_workers: int | None = field(
        default=None, init=False, compare=False, repr=False
    )
    #: Calibration leftovers of an auto sweep: ``(points, arrays)`` of
    #: the first chunk, reused so calibration costs no extra kernels.
    _cal: "tuple[int, DesignArrays] | None" = field(
        default=None, init=False, compare=False, repr=False
    )

    def __post_init__(self) -> None:
        if self.chunk_size < 1:
            raise ValidationError(
                f"chunk_size must be >= 1, got {self.chunk_size}"
            )
        if isinstance(self.workers, str):
            if self.workers != "auto":
                raise ValidationError(
                    f"workers must be an int >= 0 or 'auto', got "
                    f"{self.workers!r}"
                )
        elif self.workers < 0:
            raise ValidationError(f"workers must be >= 0, got {self.workers}")
        if self.scheduler not in ("steal", "static"):
            raise ValidationError(
                f"scheduler must be 'steal' or 'static', got "
                f"{self.scheduler!r}"
            )
        if self.spill_bytes is not None and self.spill_bytes < 0:
            raise ValidationError(
                f"spill_bytes must be >= 0, got {self.spill_bytes}"
            )
        if self.cache is None:
            object.__setattr__(self, "cache", FactoryCache(self.factory))

    # ------------------------------------------------------------------
    # Worker-count resolution (the ``workers="auto"`` calibration)
    # ------------------------------------------------------------------
    @property
    def _pool_workers(self) -> int:
        """The worker count in effect: the resolved choice during a
        sweep, else the configured int (0 while ``"auto"`` is
        unresolved — the conservative reading)."""
        if self._active_workers is not None:
            return self._active_workers
        return self.workers if isinstance(self.workers, int) else 0

    @staticmethod
    def _cpu_count() -> int:
        try:
            return len(os.sched_getaffinity(0))
        except (AttributeError, OSError):  # pragma: no cover - non-Linux
            return os.cpu_count() or 1

    @staticmethod
    def _auto_decision(serial_est_s: float, cpus: int) -> int:
        """Workers the calibration picks for a projected serial time."""
        if cpus < 2 or serial_est_s < AUTO_MIN_SERIAL_S:
            return 0
        candidate = min(cpus, AUTO_MAX_WORKERS)
        parallel_est = serial_est_s / candidate + AUTO_SPAWN_S * candidate
        return candidate if serial_est_s > AUTO_MARGIN * parallel_est else 0

    def _activate_workers(self, grid: ParameterGrid) -> int:
        """Resolve ``workers`` for this sweep, calibrating ``"auto"``.

        Auto on a cold :class:`VectorFactory` times the first chunk's
        ``batch_arrays`` in-process and projects the serial sweep time;
        the pool engages only when dispatch can win by a margin, so the
        auto path is never slower than ``workers=0`` (when it declines,
        it *is* the ``workers=0`` path, and the calibration arrays are
        reused for the first chunk). A warm cache or a scalar-only
        factory resolves to 0 — the memoized scalar path is already a
        dict probe per point.
        """
        object.__setattr__(self, "_cal", None)
        if self.workers != "auto":
            object.__setattr__(self, "_active_workers", self.workers)
            return self.workers
        resolved = 0
        if len(self.cache) == 0 and is_vector_factory(self.factory):
            chunk = next(_chunked(iter(grid), self.chunk_size), [])
            if not chunk:
                object.__setattr__(self, "_active_workers", 0)
                return 0
            columns = self._chunk_columns(chunk)
            begin = time.perf_counter()
            arrays = self.factory.batch_arrays(columns)
            elapsed = time.perf_counter() - begin
            if len(arrays) != len(chunk):
                raise ConfigurationError(
                    f"batch_arrays returned {len(arrays)} rows for a "
                    f"{len(chunk)}-point chunk"
                )
            serial_est = elapsed / max(1, len(chunk)) * len(grid)
            resolved = self._auto_decision(serial_est, self._cpu_count())
            object.__setattr__(self, "_cal", (len(chunk), arrays))
        object.__setattr__(self, "_active_workers", resolved)
        return resolved

    def _take_cal_arrays(self, chunk_len: int) -> "DesignArrays | None":
        """The calibration chunk's arrays, if they cover exactly this
        first chunk (consumed — reuse is single-shot)."""
        cal = self._cal
        object.__setattr__(self, "_cal", None)
        if cal is not None and cal[0] == chunk_len:
            return cal[1]
        return None

    # ------------------------------------------------------------------
    # Factory evaluation (cached, optionally parallel)
    # ------------------------------------------------------------------
    def _evaluate_chunk(
        self,
        chunk: Sequence[Mapping[str, object]],
        pool: ProcessPoolExecutor | SupervisedPool | None,
    ) -> list[DesignPoint | DomainError]:
        cache = self.cache
        if pool is None:
            # Hot loop: keys come pre-built by params_keys (one name
            # sort per chunk) and the per-point work is one dict probe.
            # Counters are accumulated locally and flushed once through
            # record().
            entries = cache._entries
            factory = self.factory
            outcomes: list[DesignPoint | DomainError] = []
            hits = 0
            misses = 0
            for key, params in zip(params_keys(chunk), chunk):
                outcome = entries.get(key)
                if outcome is None:
                    misses += 1
                    try:
                        outcome = factory(params)
                    except DomainError as exc:
                        outcome = exc
                    entries[key] = outcome
                else:
                    hits += 1
                outcomes.append(outcome)
            cache.record(hits=hits, misses=misses)
            return outcomes
        keys = params_keys(chunk)
        outcomes: list[DesignPoint | DomainError | None] = []
        pending: list[int] = []
        for index, key in enumerate(keys):
            outcome = cache.lookup(key)
            if outcome is None:
                pending.append(index)
            outcomes.append(outcome)
        cache.record(hits=len(chunk) - len(pending), misses=len(pending))
        if pending:
            # The factory itself shipped once, at pool creation, via the
            # worker initializer — each job carries only its param dict.
            jobs = [chunk[index] for index in pending]
            if isinstance(pool, SupervisedPool):
                evaluated: Iterable = pool.run(
                    _parallel.pool_evaluate, jobs, describe=_scalar_job_params
                )
            else:
                evaluated = pool.map(_parallel.pool_evaluate, jobs)
            incomplete = 0
            for index, outcome in zip(pending, evaluated):
                if outcome is INCOMPLETE:
                    # Salvaged slot: never cache a sentinel; the chunk
                    # as a whole is unfinished and aborts the sweep.
                    incomplete += 1
                    continue
                cache.store(keys[index], outcome)
                outcomes[index] = outcome
            if incomplete:
                raise _SalvageAbort(
                    f"worker pool never completed {incomplete} point(s) "
                    "of this chunk"
                )
        return outcomes  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Columnar (VectorFactory) evaluation
    # ------------------------------------------------------------------
    def _resolve_mode(self) -> str:
        """The execution mode this sweep will run under.

        The columnar kernels engage only on a genuinely cold sweep: a
        vector-capable factory and an empty cache (a warm cache means
        the memoized scalar path is already a dict probe per point,
        which the columnar path cannot beat). With workers the cold
        columnar sweep runs *parallel*-columnar — grid shards dispatch
        to the pool as columns (:mod:`repro.dse.parallel`) — and the
        non-columnar pool path is ``scalar-pool``. Decided once at
        sweep start.
        """
        if len(self.cache) == 0 and is_vector_factory(self.factory):
            return "parallel-columnar" if self._pool_workers else "columnar"
        return "scalar-pool" if self._pool_workers else "scalar"

    @staticmethod
    def _chunk_columns(
        chunk: Sequence[Mapping[str, object]],
    ) -> dict[str, np.ndarray]:
        """One NumPy column per axis for a chunk of grid-point dicts."""
        return {
            name: np.asarray([params[name] for params in chunk])
            for name in chunk[0]
        }

    def _vector_chunk(
        self, chunk: Sequence[Mapping[str, object]]
    ) -> list[DesignPoint | DomainError]:
        """Evaluate a cold chunk through the factory's columnar path.

        ``batch_arrays`` computes every row's area/perf/power in a few
        vectorized passes; materialization and memoization are shared
        with the parallel path (:meth:`_outcomes_from_arrays`).
        """
        arrays = self.factory.batch_arrays(self._chunk_columns(chunk))
        if len(arrays) != len(chunk):
            raise ConfigurationError(
                f"batch_arrays returned {len(arrays)} rows for a "
                f"{len(chunk)}-point chunk"
            )
        return self._outcomes_from_arrays(chunk, arrays)

    def _outcomes_from_arrays(
        self,
        chunk: Sequence[Mapping[str, object]],
        arrays: DesignArrays,
        qsession: "QuarantineSession | None" = None,
    ) -> list[DesignPoint | DomainError]:
        """Materialize one chunk's outcomes from its kernel columns.

        ``design_points`` (when the factory provides it) builds the
        named DesignPoints from the columns. Rows it leaves
        unmaterialized — and every invalid row — fall back to one
        scalar call, which for invalid corners captures the genuine
        ``DomainError``. Outcomes are memoized exactly like the scalar
        path, so a subsequent warm sweep is byte-identical either way.

        Rows the quarantine session knows as poison (including rows the
        supervisor just bisect-quarantined, whose block rows were never
        written) get their :class:`QuarantinedPoint` marker instead of
        the scalar fallback — re-running a poison point in the *parent*
        process would crash the sweep itself.
        """
        factory = self.factory
        builder = getattr(factory, "design_points", None)
        valid = arrays.valid
        points: list | None = None
        if builder is not None:
            if valid.all():
                points = list(builder(chunk, arrays))
            else:
                # Builders may assume every row holds a constructible
                # design (an all-valid factory never sees holes), but
                # quarantined/never-written block rows are zeros — build
                # from the valid subset only and scatter back. The
                # conversions stay elementwise, so this is bit-exact.
                rows = np.flatnonzero(valid)
                sub = DesignArrays(
                    area=arrays.area[rows],
                    perf=arrays.perf[rows],
                    power=arrays.power[rows],
                    valid=valid[rows],
                )
                built = list(builder([chunk[r] for r in rows], sub))
                points = [None] * len(chunk)
                for r, point in zip(rows, built):
                    points[r] = point
        outcomes: list[DesignPoint | DomainError] = []
        for row, params in enumerate(chunk):
            outcome = points[row] if points is not None and valid[row] else None
            if outcome is None and qsession is not None:
                outcome = qsession.marker(params)
            if outcome is None:
                try:
                    outcome = factory(params)
                except DomainError as exc:
                    outcome = exc
            outcomes.append(outcome)
        self.cache.store_many(params_keys(chunk), outcomes, misses=len(chunk))
        return outcomes

    # ------------------------------------------------------------------
    # Parallel-columnar dispatch
    # ------------------------------------------------------------------
    def _make_pool(
        self,
        initializer: Callable,
        initargs: tuple,
        parent_block: "_parallel.ColumnarBlock | None" = None,
        capture: bool = False,
        quarantine: "QuarantineSession | None" = None,
        parent_grid: "_parallel.GridArena | None" = None,
        scratch_dir: "str | None" = None,
    ) -> "ProcessPoolExecutor | SupervisedPool":
        """A worker pool whose *initializer* ships per-pool state once.

        The parent mirrors the worker state first (its own factory and
        its own block/arena objects, never a second shm attachment), so
        SupervisedPool in-process degradation — and thread-pool
        executors injected by tests — evaluate exactly what the worker
        processes would. With *capture* the parent's own event buffer
        is armed too (no spill — the parent cannot crash out from under
        itself), so degraded in-process shards leave the same timeline
        events a worker would. *scratch_dir* (out-of-core sweeps) roots
        the heartbeat watchdog's files under the sweep's spill dir.
        """
        _parallel.set_worker_state(self.factory, parent_block, parent_grid)
        _events.init_worker(capture, None)
        if self.resilience is not None:
            monitor = None
            if (
                scratch_dir is not None
                and self.resilience.heartbeat_timeout_s is not None
            ):
                monitor = HeartbeatMonitor(base_dir=scratch_dir)
            return SupervisedPool(
                self._pool_workers,
                self.resilience,
                initializer=initializer,
                initargs=initargs,
                quarantine=quarantine,
                monitor=monitor,
            )
        return ProcessPoolExecutor(
            max_workers=self._pool_workers,
            initializer=initializer,
            initargs=initargs,
        )

    def _grid_columns(self, grid: ParameterGrid) -> dict[str, np.ndarray]:
        """One full-grid NumPy column per axis, by stride arithmetic.

        Grid iteration is row-major over the cartesian product, so
        point ``i`` takes value ``axis[(i // stride) % len(axis)]``
        where an axis's stride is the product of the later axes' sizes
        — the same construction :meth:`_count_columnar` relies on.
        """
        names = list(grid.axes)
        values = [np.asarray(grid.axes[name]) for name in names]
        sizes = [v.shape[0] for v in values]
        strides = [1] * len(names)
        for axis in range(len(names) - 2, -1, -1):
            strides[axis] = strides[axis + 1] * sizes[axis + 1]
        rows = np.arange(len(grid))
        return {
            name: axis_values[(rows // stride) % size]
            for name, axis_values, stride, size in zip(
                names, values, strides, sizes
            )
        }

    def _parallel_setup(
        self,
        chunks: list[Sequence[Mapping[str, object]]],
        restored: int,
        probes: "dict[int, ChunkProbe] | None" = None,
        qsession: "QuarantineSession | None" = None,
        blocked: "set[int] | None" = None,
        grid: "ParameterGrid | None" = None,
    ) -> _ParallelPlan:
        """Allocate the sweep's shared block, publish the input grid
        columns, plan the shard spans over the still-pending chunks,
        and spawn the pool.

        The first *restored* chunks came from a checkpoint, and chunks
        whose *probe* found any stored rows are resolved in the parent
        (adopted whole or stitched) — neither is dispatched, and their
        block rows are never written or read. Chunks in *blocked*
        contain points the quarantine ledger already knows as poison;
        they are excluded too (dispatching one would deterministically
        crash a worker) and evaluate in the parent with their poison
        rows pre-filtered. That keeps resume and store reuse bit-exact
        and free of redundant kernel work. A sweep with no pending
        chunk gets no pool at all.

        When ``workers="auto"`` calibrated on the first chunk and that
        chunk is still pending, its arrays are written into the block
        up front and the chunk is dropped from the dispatch spans —
        calibration cost no extra kernel work.
        """
        total = sum(len(chunk) for chunk in chunks)
        spill_kw = dict(spill_dir=self.spill_dir, spill_bytes=self.spill_bytes)
        block = _parallel.ColumnarBlock.allocate(total, **spill_kw)
        pending: set[int] = set()
        for index in range(restored, len(chunks)):
            if blocked and index in blocked:
                continue
            probe = probes.get(index) if probes else None
            if probe is None or not probe.hit_points:
                pending.add(index)
        planned = set(pending)
        if chunks and 0 in pending:
            cal = self._take_cal_arrays(len(chunks[0]))
            if cal is not None:
                # Prefill the calibration chunk: its rows read back via
                # chunk_arrays like any dispatched chunk's would.
                block.write(
                    0, len(chunks[0]), cal.area, cal.perf, cal.power, cal.valid
                )
                pending.discard(0)
        runs: list[tuple[int, int]] = []
        for index in sorted(pending):
            lo = index * self.chunk_size
            hi = lo + len(chunks[index])
            if runs and runs[-1][1] == lo:
                runs[-1] = (runs[-1][0], hi)
            else:
                runs.append((lo, hi))
        planner = (
            _parallel.plan_steal_runs
            if self.scheduler == "steal"
            else _parallel.plan_shard_runs
        )
        spans = planner(runs, self.chunk_size, self._pool_workers)
        arena = None
        if spans and grid is not None:
            arena = _parallel.GridArena.publish(
                self._grid_columns(grid), **spill_kw
            )
        pool = None
        capture = _events.get_log().enabled
        scratch = (
            os.fspath(self.spill_dir) if self.spill_dir is not None else None
        )
        spill = (
            _events.make_spill_dir(base=scratch) if capture and spans else None
        )
        if spans:
            grid_descriptor = (
                (arena.name, arena.layout, arena.total)
                if arena is not None
                else None
            )
            pool = self._make_pool(
                _parallel.init_columnar_worker,
                (self.factory, block.name, total, capture, spill, grid_descriptor),
                parent_block=block,
                capture=capture,
                quarantine=qsession,
                parent_grid=arena,
                scratch_dir=scratch,
            )
        return _ParallelPlan(
            chunks,
            self.chunk_size,
            block,
            pool,
            spans,
            spill_dir=spill,
            planned=planned,
            arena=arena,
            scheduler=self.scheduler,
        )

    def _parallel_kernels(
        self, plan: _ParallelPlan, tracer: _trace.Tracer
    ) -> None:
        """The kernel phase: run ``batch_arrays`` over every pending
        shard span on the pool and land the result columns in the block.

        One job per span — ``(start, stop, axis columns)`` out, compact
        numeric arrays (or an already-written shm acknowledgement) back.
        Shard writes are idempotent, so supervised retry/respawn/
        degradation re-runs are safe. Busy seconds accumulate for the
        worker-utilization gauge and, per worker, into the
        ``focal_worker_busy_seconds`` histogram; worker events riding
        the replies merge into the global event log.
        """
        if not plan.spans:
            return
        registry = _metrics.get_registry()
        log = _events.get_log()
        if plan.arena is not None:
            # Resident grid: a job is three integers; workers slice
            # their columns from the published arena locally.
            jobs = [(lo, hi, seq) for seq, (lo, hi) in enumerate(plan.spans)]
        else:
            jobs = [
                (lo, hi, self._chunk_columns(plan.points(lo, hi)))
                for lo, hi in plan.spans
            ]
        with tracer.span(
            "kernels",
            shards=len(jobs),
            shard_points=plan.shard_points,
            workers=self._pool_workers,
            shm_bytes=plan.shm_bytes,
            scheduler=plan.scheduler,
            grid_resident=plan.arena is not None,
            spill_bytes=plan.spill_nbytes,
        ):
            begin = time.perf_counter()
            if isinstance(plan.pool, SupervisedPool):
                replies: Iterable = plan.pool.run(
                    _parallel.eval_shard,
                    jobs,
                    splitter=_parallel.split_shard_job,
                    describe=_parallel.shard_job_point,
                    schedule="queue" if plan.scheduler == "steal" else "batch",
                )
            else:
                replies = plan.pool.map(_parallel.eval_shard, jobs)
            for job, reply in zip(jobs, replies):
                if reply is INCOMPLETE or reply is None:
                    # Salvaged shard: its block rows were never written;
                    # the chunk loop stops when it reaches them.
                    first = job[0] // self.chunk_size
                    last = -(-job[1] // self.chunk_size)
                    plan.failed.update(range(first, last))
                    continue
                if isinstance(reply, QuarantinedPoint):
                    # A single-row shard isolated as poison: its block
                    # row stays unwritten (valid=False) and the marker
                    # is re-derived from the quarantine session during
                    # materialization.
                    continue
                subreplies = (
                    reply.replies if isinstance(reply, BisectOutcome) else (reply,)
                )
                for lo, hi, busy, pid, arrays, events in subreplies:
                    plan.busy += busy
                    if arrays is not None:
                        plan.block.write(lo, hi, *arrays)
                    if events:
                        log.extend(events)
                    if registry.enabled:
                        registry.histogram(
                            "focal_worker_busy_seconds",
                            "kernel busy seconds per shard, by worker process",
                            labels={"worker": str(pid)},
                        ).observe(busy)
            plan.kernel_wall = time.perf_counter() - begin

    # ------------------------------------------------------------------
    # Sweeps
    # ------------------------------------------------------------------
    def explore_arrays(
        self,
        grid: ParameterGrid,
        *,
        checkpoint: "CheckpointStore | str | os.PathLike | None" = None,
        resume: bool = False,
        store: "ResultStore | str | os.PathLike | None" = None,
        quarantine: "QuarantineLedger | str | os.PathLike | None" = None,
    ) -> BatchSweepResult:
        """Sweep *grid* and return the results as arrays.

        Invalid corners (factories raising ``DomainError``) are dropped,
        exactly like ``Explorer.explore``; an all-invalid sweep raises
        :class:`~repro.core.errors.ConfigurationError`.

        A cold sweep of a :class:`VectorFactory` runs columnar: each
        chunk's area/perf/power come from ``batch_arrays`` instead of
        per-point factory calls. Output (ordering, skips, values, cache
        contents) is byte-identical either way.

        With *checkpoint* set, every completed chunk is atomically
        persisted to that path; with *resume*, completed chunks found
        there are replayed into the cache without re-evaluating the
        factory, and the sweep continues from the first unfinished
        chunk. Resume is bit-exact: result arrays and cache entries
        match an uninterrupted run. A checkpoint written by a different
        run configuration raises
        :class:`~repro.core.errors.CheckpointError`; a corrupt or
        truncated file is discarded and the sweep restarts cold.

        With *store* set (a :class:`~repro.dse.store.ResultStore` or a
        directory path), every evaluated chunk is persisted to the
        fingerprint-keyed result store and every chunk is first probed
        against it: fully stored chunks are adopted byte-identically
        without touching the factory, partially stored chunks evaluate
        only their missing rows and stitch (a **delta sweep** — only
        points no earlier sweep of this factory computed run fresh).
        The store composes with checkpoint/resume, workers and
        resilience; store-served chunks are excluded from parallel
        shard planning exactly like restored checkpoint chunks, and a
        corrupt store file only means recomputation, never a wrong
        answer.

        With *quarantine* set (a :class:`~repro.resilience.containment.
        QuarantineLedger` or a path), points the ledger already records
        as poison are skipped up front — their chunks evaluate only the
        healthy rows — and, under a supervised pool, a chunk that
        exhausts its retry budget is bisected down to the minimal
        crashing point set, which is recorded in the ledger and
        excluded (reported in ``BatchSweepResult.quarantined``, never
        silently dropped). Under ``RetryPolicy(salvage=True,
        degrade_in_process=False)`` an irrecoverable pool ends the
        sweep early with the completed prefix and a
        :class:`~repro.resilience.containment.FailureReport` in
        ``BatchSweepResult.failure`` instead of raising.
        """
        tracer = _trace.get_tracer()
        registry = _metrics.get_registry()
        observing = tracer.enabled or registry.enabled
        workers = self._activate_workers(grid)
        mode = self._resolve_mode()
        ckpt = CheckpointStore.coerce(checkpoint)
        if resume and ckpt is None:
            raise ConfigurationError(
                "resume=True requires a checkpoint path to resume from"
            )
        result_store = ResultStore.coerce(store)
        session: SweepStoreSession | None = None
        use: _StoreUse | None = None
        if result_store is not None:
            session = result_store.sweep_session(self.factory)
            use = _StoreUse()
        qledger = QuarantineLedger.coerce(quarantine)
        qsession: QuarantineSession | None = None
        if qledger is not None:
            qsession = qledger.session(describe_factory(self.factory))
        fingerprint: dict | None = None
        restored_chunks: list = []
        if ckpt is not None:
            fingerprint = sweep_fingerprint(
                axes=grid.axes,
                chunk_size=self.chunk_size,
                baseline=self.baseline,
                alpha=self.weight.alpha,
                factory=self.factory,
            )
            if resume:
                state = ckpt.load_or_restart(
                    kind="sweep", fingerprint=fingerprint
                )
                if state is not None:
                    restored_chunks = list(state.get("chunks", []))
        saved_chunks: list[list] = []
        params_list: list[Mapping[str, object]] = []
        designs: list[DesignPoint] = []
        pool: ProcessPoolExecutor | SupervisedPool | None = None
        plan: "_ParallelPlan | None" = None
        probes: dict[int, ChunkProbe] = {}
        with tracer.span(
            "sweep",
            grid_points=len(grid),
            chunk_size=self.chunk_size,
            workers=workers,
            mode=mode,
        ) as sweep_span:
            start_s = time.perf_counter()
            cache_before = self.cache.stats()
            failure: FailureReport | None = None
            quarantined_params: list[Mapping[str, object]] = []
            chunks_done = 0
            points_done = 0
            try:
                if mode == "parallel-columnar":
                    chunks = list(_chunked(iter(grid), self.chunk_size))
                    if session is not None:
                        # Probe up front: chunks the store can serve (in
                        # full or in part) must never reach the pool.
                        for index in range(len(restored_chunks), len(chunks)):
                            probes[index] = session.probe(chunks[index])
                    blocked: set[int] | None = None
                    if qsession is not None and qsession.known_count:
                        # Chunks holding known poison points must never
                        # reach the pool either — dispatching one would
                        # deterministically crash a worker again.
                        blocked = {
                            index
                            for index, chunk in enumerate(chunks)
                            if any(
                                qsession.known(params) is not None
                                for params in chunk
                            )
                        }
                    plan = self._parallel_setup(
                        chunks,
                        len(restored_chunks),
                        probes,
                        qsession,
                        blocked,
                        grid=grid,
                    )
                    pool = plan.pool
                    self._parallel_kernels(plan, tracer)
                    chunk_stream: Iterable = enumerate(plan.chunks)
                else:
                    if workers:
                        pool = self._make_pool(
                            _parallel.init_factory_worker,
                            (self.factory,),
                            quarantine=qsession,
                        )
                    chunk_stream = enumerate(
                        _chunked(iter(grid), self.chunk_size)
                    )
                for index, chunk in chunk_stream:
                    restored = index < len(restored_chunks)
                    if plan is not None and index in plan.failed:
                        raise _SalvageAbort(
                            f"the shard covering chunk {index} was never "
                            "completed by the worker pool"
                        )
                    with tracer.span(
                        "chunk", index=index, mode=mode, restored=restored
                    ) as chunk_span:
                        if observing:
                            chunk_start = time.perf_counter()
                            before = self.cache.stats()
                        if restored:
                            outcomes = self._restore_chunk(
                                chunk, restored_chunks[index], ckpt
                            )
                            saved_chunks.append(restored_chunks[index])
                            if session is not None:
                                # Resumed work is stored too: the next
                                # process should not recompute it.
                                session.put(chunk, outcomes)
                        else:
                            outcomes = None
                            if (
                                qsession is not None
                                and qsession.known_count
                                and not (plan is not None and index in plan.planned)
                                and any(
                                    qsession.known(params) is not None
                                    for params in chunk
                                )
                            ):
                                outcomes = self._quarantined_chunk(
                                    chunk, qsession, pool, mode
                                )
                            if outcomes is None:
                                probe = probes.pop(index, None)
                                if probe is None and session is not None:
                                    probe = session.probe(chunk)
                                outcomes = self._resolve_chunk(
                                    chunk, index, probe, plan, pool, mode,
                                    session, use, qsession,
                                )
                        valid = 0
                        for params, outcome in zip(chunk, outcomes):
                            if isinstance(outcome, QuarantinedPoint):
                                quarantined_params.append(params)
                                continue
                            if isinstance(outcome, DomainError):
                                continue
                            params_list.append(params)
                            designs.append(outcome)
                            valid += 1
                        if ckpt is not None and not restored:
                            saved_chunks.append(encode_outcomes(outcomes))
                            try:
                                ckpt.save(
                                    kind="sweep",
                                    fingerprint=fingerprint,
                                    state={"chunks": saved_chunks},
                                )
                            except CheckpointError as exc:
                                # A dead checkpoint must not kill a live
                                # sweep: continue without checkpointing.
                                get_logger().warning(
                                    kv(
                                        "checkpoint.disabled",
                                        path=str(ckpt.path),
                                        error=str(exc),
                                    )
                                )
                                ckpt = None
                        chunks_done += 1
                        points_done += len(chunk)
                        if observing:
                            self._observe_chunk(
                                registry,
                                chunk_span,
                                points=len(chunk),
                                valid=valid,
                                seconds=time.perf_counter() - chunk_start,
                                before=before,
                            )
            except _SalvageAbort as exc:
                failure = FailureReport(
                    reason=(
                        "irrecoverable worker pool; completed prefix "
                        "salvaged"
                    ),
                    error=str(exc),
                    completed_chunks=chunks_done,
                    total_chunks=-(-len(grid) // self.chunk_size),
                    completed_points=points_done,
                    pending_points=len(grid) - points_done,
                    checkpoint=str(ckpt.path) if ckpt is not None else None,
                )
                _events.record("sweep.salvage", track="supervisor")
                _metrics.get_registry().counter(
                    "focal_salvage_runs_total",
                    "sweeps salvaged as partial results",
                ).inc()
                get_logger().warning(
                    kv("sweep.salvage", **failure.as_dict())
                )
            finally:
                if session is not None:
                    session.flush()
                if pool is not None:
                    pool.shutdown(cancel_futures=True)
                if plan is not None:
                    plan.release()
                    if plan.spill_dir is not None:
                        # The crash transport: anything a dead worker
                        # flushed but never got to reply with.
                        _events.get_log().collect_spill(plan.spill_dir)
                        _events.cleanup_spill_dir(plan.spill_dir)
                if workers:
                    _parallel.clear_worker_state()
            self._record_supervision(pool, sweep_span)
            if not designs and failure is None:
                raise ConfigurationError(
                    "exploration produced no valid design points"
                )
            with tracer.span("classify", points=len(designs)):
                perf, ncf_fw, ncf_ft = self._ncf_arrays(designs)
                codes = classify_arrays(ncf_fw, ncf_ft)
            cache_after = self.cache.stats()
            stats = self._engine_stats(
                mode=mode,
                grid_points=len(grid),
                valid_points=len(params_list),
                seconds=time.perf_counter() - start_s,
                plan=plan,
                use=use,
                memo_points=cache_after.hits - cache_before.hits,
                fresh_points=cache_after.misses - cache_before.misses,
                quarantined_points=len(quarantined_params),
                salvaged=failure is not None,
            )
            if observing:
                self._observe_sweep(registry, sweep_span, stats)
        return BatchSweepResult(
            params=tuple(params_list),
            designs=tuple(designs),
            perf=perf,
            ncf_fixed_work=ncf_fw,
            ncf_fixed_time=ncf_ft,
            codes=codes,
            quarantined=tuple(quarantined_params),
            failure=failure,
        )

    def _restore_chunk(
        self,
        chunk: Sequence[Mapping[str, object]],
        rows: Sequence[Sequence],
        store: CheckpointStore,
    ) -> list[DesignPoint | DomainError]:
        """Replay one checkpointed chunk without touching the factory.

        Decoded outcomes are written into the cache under the same keys
        an evaluated chunk would use, so later duplicate points (and the
        post-sweep cache contents) match an uninterrupted run bit for
        bit. Counters are not bumped — restored points were neither
        hits nor fresh evaluations of *this* run.
        """
        if len(rows) != len(chunk):
            raise CheckpointError(
                f"checkpoint {store.path} records {len(rows)} outcomes "
                f"for a {len(chunk)}-point chunk; the file does not "
                "match this grid"
            )
        outcomes = decode_outcomes(rows)
        self.cache.store_many(params_keys(chunk), outcomes)
        return outcomes

    def _resolve_chunk(
        self,
        chunk: Sequence[Mapping[str, object]],
        index: int,
        probe: "ChunkProbe | None",
        plan: "_ParallelPlan | None",
        pool,
        mode: str,
        session: "SweepStoreSession | None",
        use: "_StoreUse | None",
        qsession: "QuarantineSession | None" = None,
    ) -> list[DesignPoint | DomainError]:
        """Evaluate one non-restored chunk, adopting stored rows.

        A complete store hit replays the decoded outcomes into the
        cache without bumping its counters — exactly like checkpoint
        restore, so "fresh evaluations" stays measurable as the cache
        miss delta. A partial hit evaluates only the missing rows
        through the mode-appropriate path and stitches. A full miss
        takes the unmodified fast paths. Every chunk that ran any
        evaluation is written back to the store.
        """
        if probe is not None and probe.complete:
            outcomes = probe.outcomes
            self.cache.store_many(params_keys(chunk), outcomes)
            use.full_chunks += 1
            use.memory_points += probe.memory_points
            use.disk_points += probe.disk_points
            return outcomes
        if probe is None or not probe.hit_points:
            if plan is not None and index in plan.planned:
                outcomes = self._outcomes_from_arrays(
                    chunk, plan.chunk_arrays(index), qsession
                )
            elif mode in COLUMNAR_MODES:
                cal = self._take_cal_arrays(len(chunk)) if index == 0 else None
                if cal is not None:
                    # workers="auto" declined the pool; the calibration
                    # already ran this chunk's kernels — reuse, don't
                    # recompute.
                    outcomes = self._outcomes_from_arrays(chunk, cal)
                else:
                    outcomes = self._vector_chunk(chunk)
            else:
                outcomes = self._evaluate_chunk(chunk, pool)
            if session is not None:
                session.put(chunk, outcomes, probe)
            return outcomes
        # Delta stitch: only the rows no earlier sweep stored run fresh.
        # The columnar kernels are elementwise, so evaluating the
        # missing subset as its own (smaller) chunk is bit-exact.
        sub = [chunk[row] for row in probe.missing]
        if mode in COLUMNAR_MODES:
            sub_outcomes = self._vector_chunk(sub)
        else:
            sub_outcomes = self._evaluate_chunk(sub, pool)
        outcomes = probe.outcomes
        for row, outcome in zip(probe.missing, sub_outcomes):
            outcomes[row] = outcome
        keys = params_keys(chunk)
        missing = set(probe.missing)
        self.cache.store_many(
            [key for row, key in enumerate(keys) if row not in missing],
            [out for row, out in enumerate(outcomes) if row not in missing],
        )
        use.delta_chunks += 1
        use.memory_points += probe.memory_points
        use.disk_points += probe.disk_points
        session.put(chunk, outcomes, probe)
        return outcomes

    def _quarantined_chunk(
        self,
        chunk: Sequence[Mapping[str, object]],
        qsession: QuarantineSession,
        pool,
        mode: str,
    ) -> list[DesignPoint | DomainError]:
        """Evaluate a chunk that contains ledger-known poison points.

        Known-poison rows are replaced by their quarantine markers
        without ever reaching a factory (re-dispatching one would crash
        a worker deterministically); the clean remainder runs through
        the mode-appropriate path as its own smaller chunk, which is
        bit-exact because the columnar kernels are elementwise.
        """
        markers: dict[int, QuarantinedPoint] = {}
        clean: list[Mapping[str, object]] = []
        for row, params in enumerate(chunk):
            marker = qsession.marker(params)
            if marker is not None:
                markers[row] = marker
            else:
                clean.append(params)
        clean_outcomes: list = []
        if clean:
            if mode in COLUMNAR_MODES:
                clean_outcomes = self._vector_chunk(clean)
            else:
                clean_outcomes = self._evaluate_chunk(clean, pool)
        outcomes: list[DesignPoint | DomainError] = []
        fresh = iter(clean_outcomes)
        for row in range(len(chunk)):
            outcomes.append(markers[row] if row in markers else next(fresh))
        keys = params_keys(chunk)
        self.cache.store_many(
            [keys[row] for row in markers], list(markers.values())
        )
        return outcomes

    def _record_supervision(
        self, pool: "ProcessPoolExecutor | SupervisedPool | None", sweep_span
    ) -> None:
        """Publish the sweep's supervision counters (supervised runs
        only): :attr:`last_supervision` always, span attributes when a
        recovery action actually happened."""
        if not isinstance(pool, SupervisedPool):
            return
        stats = pool.stats
        object.__setattr__(self, "last_supervision", stats)
        acted = (
            stats.faults
            or stats.quarantined
            or stats.watchdog_reaps
            or stats.salvaged
        )
        if sweep_span is not _trace.NULL_SPAN and acted:
            sweep_span.set(
                retries=stats.retries,
                worker_crashes=stats.crashes,
                chunk_timeouts=stats.timeouts,
                transient_errors=stats.transient_errors,
                pool_respawns=stats.respawns,
                degraded_batches=stats.degraded_batches,
                pool_degraded=stats.pool_degraded,
                quarantined=stats.quarantined,
                watchdog_reaps=stats.watchdog_reaps,
                salvaged_batches=stats.salvaged,
            )

    def _observe_chunk(
        self,
        registry: _metrics.MetricsRegistry,
        chunk_span,
        *,
        points: int,
        valid: int,
        seconds: float,
        before: CacheStats,
    ) -> None:
        """Per-chunk telemetry (only called while observing): timing,
        throughput, cache effectiveness and worker fan-out."""
        after = self.cache.stats()
        evaluated = after.misses - before.misses
        cached = after.hits - before.hits
        if chunk_span is not _trace.NULL_SPAN:
            chunk_span.set(
                points=points,
                valid=valid,
                invalid=points - valid,
                evaluated=evaluated,
                cached=cached,
                evals_per_s=points / seconds if seconds > 0 else float("inf"),
            )
            if self._pool_workers:
                # Fan-out share: the fraction of this chunk that went
                # to the worker pool rather than the memo.
                chunk_span.set(
                    pool_points=evaluated,
                    worker_utilization=evaluated / points if points else 0.0,
                )
        if registry.enabled:
            registry.counter(
                "focal_evaluations_total", "factory evaluations (cache misses)"
            ).inc(evaluated)
            registry.counter(
                "focal_cache_hits_total", "factory cache hits"
            ).inc(cached)
            registry.histogram(
                "focal_chunk_seconds", "wall time per evaluated chunk"
            ).observe(seconds)

    def _engine_stats(
        self,
        *,
        mode: str,
        grid_points: int,
        valid_points: int,
        seconds: float,
        plan: "_ParallelPlan | None" = None,
        use: "_StoreUse | None" = None,
        memo_points: int = 0,
        fresh_points: int = 0,
        quarantined_points: int = 0,
        salvaged: bool = False,
    ) -> SweepEngineStats:
        """Snapshot how the sweep executed and publish it as
        :attr:`last_sweep` (recorded unconditionally — the CLI summary
        line must not require observability to be enabled)."""
        vector = mode in COLUMNAR_MODES
        fallback = (
            grid_points if not vector and is_vector_factory(self.factory) else 0
        )
        extras: dict[str, object] = {}
        if self.workers == "auto":
            extras["auto_workers"] = True
            extras["workers"] = self._pool_workers
        if plan is not None and plan.spans:
            wall = plan.kernel_wall * self._pool_workers
            extras.update(
                workers=self._pool_workers,
                shards=len(plan.spans),
                shard_points=plan.shard_points,
                shm_bytes=plan.shm_bytes,
                worker_utilization=(
                    min(1.0, plan.busy / wall) if wall > 0 else 0.0
                ),
                scheduler=plan.scheduler,
                tail_shard_points=plan.tail_shard_points,
            )
        if plan is not None and plan.spill_nbytes:
            extras["spill_bytes"] = plan.spill_nbytes
        if use is not None:
            extras.update(
                store_used=True,
                store_chunks=use.full_chunks,
                delta_chunks=use.delta_chunks,
                store_memory_points=use.memory_points,
                store_disk_points=use.disk_points,
            )
        stats = SweepEngineStats(
            mode=mode,
            grid_points=grid_points,
            valid_points=valid_points,
            vector_points=grid_points if vector else 0,
            fallback_points=fallback,
            seconds=seconds,
            memo_points=memo_points,
            fresh_points=fresh_points,
            quarantined_points=quarantined_points,
            salvaged=salvaged,
            **extras,  # type: ignore[arg-type]
        )
        object.__setattr__(self, "last_sweep", stats)
        return stats

    def _observe_sweep(
        self,
        registry: _metrics.MetricsRegistry,
        sweep_span,
        engine: SweepEngineStats,
    ) -> None:
        """Sweep-level telemetry: cache effectiveness, throughput and
        the vector/scalar execution split."""
        points = engine.valid_points
        seconds = engine.seconds
        stats = self.cache.stats()
        if sweep_span is not _trace.NULL_SPAN:
            sweep_span.set(
                valid_points=points,
                seconds=seconds,
                evals_per_s=points / seconds if seconds > 0 else float("inf"),
                cache_hits=stats.hits,
                cache_misses=stats.misses,
                cache_hit_ratio=stats.hit_ratio,
                cache_size=stats.size,
            )
            if engine.mode in COLUMNAR_MODES:
                sweep_span.set(vector_evals_per_s=engine.evals_per_s)
            if engine.quarantined_points or engine.salvaged:
                sweep_span.set(
                    quarantined_points=engine.quarantined_points,
                    salvaged=engine.salvaged,
                )
            if engine.store_used:
                sweep_span.set(
                    store_chunks=engine.store_chunks,
                    delta_chunks=engine.delta_chunks,
                    store_points=engine.store_points,
                    store_memory_points=engine.store_memory_points,
                    store_disk_points=engine.store_disk_points,
                    store_reuse_ratio=engine.store_reuse_ratio,
                    memo_points=engine.memo_points,
                    fresh_points=engine.fresh_points,
                )
        if registry.enabled:
            registry.gauge(
                "focal_cache_hit_ratio", "factory cache hits / lookups"
            ).set(stats.hit_ratio)
            registry.gauge(
                "focal_sweep_evals_per_s", "valid grid points per second, last sweep"
            ).set(points / seconds if seconds > 0 else 0.0)
            if engine.vector_points:
                registry.counter(
                    "focal_vector_evaluations_total",
                    "grid points evaluated through the columnar path",
                ).inc(engine.vector_points)
                registry.gauge(
                    "focal_vector_evals_per_s",
                    "columnar grid points per second, last vector sweep",
                ).set(engine.evals_per_s)
            if engine.fallback_points:
                registry.counter(
                    "focal_vector_fallback_total",
                    "points a vector-capable factory evaluated scalar "
                    "(warm cache)",
                ).inc(engine.fallback_points)
            if engine.shards:
                registry.counter(
                    "focal_parallel_shards_total",
                    "column shards dispatched to worker pools",
                ).inc(engine.shards)
                registry.gauge(
                    "focal_parallel_shard_points",
                    "largest shard of the last parallel-columnar sweep, "
                    "in grid points",
                ).set(engine.shard_points)
                registry.gauge(
                    "focal_parallel_shm_bytes",
                    "shared-memory bytes backing the last parallel-columnar "
                    "sweep (0 = pickle-array fallback)",
                ).set(engine.shm_bytes)
                registry.gauge(
                    "focal_parallel_worker_utilization",
                    "worker busy seconds / (kernel wall x workers), "
                    "last parallel-columnar sweep",
                ).set(engine.worker_utilization)
                if engine.scheduler == "steal":
                    registry.counter(
                        "focal_steal_shards_total",
                        "shards dispatched through the work-stealing "
                        "queue scheduler",
                    ).inc(engine.shards)
                    registry.gauge(
                        "focal_steal_tail_shard_points",
                        "smallest (tail) shard of the last work-stealing "
                        "sweep, in grid points",
                    ).set(engine.tail_shard_points)
            registry.gauge(
                "focal_spill_bytes",
                "spill-file bytes backing the last sweep's shared "
                "segments (0 = fully in-RAM)",
            ).set(engine.spill_bytes)
            if engine.store_used:
                registry.counter(
                    "focal_store_sweep_points_total",
                    "grid points adopted from the persistent result store",
                ).inc(engine.store_points)
                if engine.delta_chunks:
                    registry.counter(
                        "focal_store_delta_chunks_total",
                        "partially stored chunks stitched by delta sweeps",
                    ).inc(engine.delta_chunks)
                registry.gauge(
                    "focal_store_reuse_ratio",
                    "store-served points / grid points, last store-backed "
                    "sweep",
                ).set(engine.store_reuse_ratio)

    def _ncf_arrays(
        self, designs: Sequence[DesignPoint]
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Perf ratios and both NCF arrays for *designs* vs the baseline.

        Same IEEE-754 operations, in the same order, as the scalar
        ratio properties on DesignPoint — the values are bit-exact.
        """
        area = np.array([design.area for design in designs], dtype=np.float64)
        perf = np.array([design.perf for design in designs], dtype=np.float64)
        power = np.array([design.power for design in designs], dtype=np.float64)
        return self._ncf_from_columns(area, perf, power)

    def _ncf_from_columns(
        self, area: np.ndarray, perf: np.ndarray, power: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The ratio/NCF arithmetic shared by the object and columnar
        paths — one definition, so they cannot drift apart."""
        base = self.baseline
        area_ratio = area / base.area
        energy_ratio = (power / perf) / base.energy
        power_ratio = power / base.power
        alpha = self.weight.alpha
        return (
            perf / base.perf,
            ncf_values(area_ratio, energy_ratio, alpha),
            ncf_values(area_ratio, power_ratio, alpha),
        )

    def explore(
        self,
        grid: ParameterGrid,
        *,
        checkpoint: "CheckpointStore | str | os.PathLike | None" = None,
        resume: bool = False,
        store: "ResultStore | str | os.PathLike | None" = None,
        quarantine: "QuarantineLedger | str | os.PathLike | None" = None,
    ) -> list[ExplorationResult]:
        """Drop-in replacement for ``Explorer.explore`` (same ordering,
        same skips, bit-exact values) on the vectorized engine.
        ``checkpoint``/``resume``/``store``/``quarantine`` behave as in
        :meth:`explore_arrays`."""
        return self.explore_arrays(
            grid,
            checkpoint=checkpoint,
            resume=resume,
            store=store,
            quarantine=quarantine,
        ).results()

    def count_categories(self, grid: ParameterGrid) -> dict[Sustainability, int]:
        """Sweep *grid* and histogram the verdicts in one lean pass.

        The aggregate-only fast path: identical counts to
        ``Explorer.count_categories(Explorer.explore(grid))``, but
        per-point params/result objects are never materialized — cache
        keys are built straight from the cartesian product, so a warm
        re-sweep is a dict probe and a few vector ops per chunk.

        On a cold sweep of a :class:`VectorFactory` this goes fully
        columnar: axis columns are built from the grid's cartesian
        structure by stride arithmetic, chunks flow through
        ``batch_arrays``, and verdicts accumulate via ``np.bincount`` —
        no per-point dicts, DesignPoints or cache writes at all (the
        cache stays cold; use :meth:`explore_arrays` to warm it).
        """
        if self._activate_workers(grid):
            return self.explore_arrays(grid).category_counts()
        tracer = _trace.get_tracer()
        registry = _metrics.get_registry()
        observing = tracer.enabled or registry.enabled
        mode = self._resolve_mode()
        use_vector = mode == "columnar"
        with tracer.span(
            "sweep.count", grid_points=len(grid), mode=mode
        ) as sweep_span:
            start_s = time.perf_counter()
            cache_before = self.cache.stats()
            if use_vector:
                codes_hist, valid = self._count_columnar(grid, tracer)
            else:
                designs = self._designs_only(grid)
                valid = len(designs)
                codes_hist = np.zeros(len(CATEGORIES), dtype=np.int64)
                if designs:
                    _, ncf_fw, ncf_ft = self._ncf_arrays(designs)
                    codes_hist = np.bincount(
                        classify_arrays(ncf_fw, ncf_ft), minlength=len(CATEGORIES)
                    )
            if not valid:
                raise ConfigurationError(
                    "exploration produced no valid design points"
                )
            counts = {
                category: int(codes_hist[code])
                for code, category in enumerate(CATEGORIES)
            }
            cache_after = self.cache.stats()
            stats = self._engine_stats(
                mode=mode,
                grid_points=len(grid),
                valid_points=valid,
                seconds=time.perf_counter() - start_s,
                memo_points=cache_after.hits - cache_before.hits,
                fresh_points=cache_after.misses - cache_before.misses,
            )
            if observing:
                self._observe_sweep(registry, sweep_span, stats)
        return {category: n for category, n in counts.items() if n}

    def _count_columnar(
        self, grid: ParameterGrid, tracer: _trace.Tracer
    ) -> tuple[np.ndarray, int]:
        """The pure columnar cold count: per-category histogram and
        valid-point total, with no per-point Python objects.

        Axis columns for each chunk are computed straight from the
        cartesian structure: grid iteration is row-major, so point
        ``i`` takes value ``axis[(i // stride) % len(axis)]`` where an
        axis's stride is the product of the later axes' sizes.
        """
        factory = self.factory
        names = list(grid.axes)
        values = [np.asarray(grid.axes[name]) for name in names]
        sizes = [v.shape[0] for v in values]
        strides = [1] * len(names)
        for axis in range(len(names) - 2, -1, -1):
            strides[axis] = strides[axis + 1] * sizes[axis + 1]
        total = len(grid)
        histogram = np.zeros(len(CATEGORIES), dtype=np.int64)
        valid_total = 0
        for index, start in enumerate(range(0, total, self.chunk_size)):
            with tracer.span("chunk", index=index, mode="columnar") as chunk_span:
                rows = np.arange(start, min(start + self.chunk_size, total))
                columns = {
                    name: axis_values[(rows // stride) % size]
                    for name, axis_values, stride, size in zip(
                        names, values, strides, sizes
                    )
                }
                arrays = factory.batch_arrays(columns)
                if len(arrays) != rows.shape[0]:
                    raise ConfigurationError(
                        f"batch_arrays returned {len(arrays)} rows for a "
                        f"{rows.shape[0]}-point chunk"
                    )
                mask = arrays.valid
                area, perf, power = arrays.area, arrays.perf, arrays.power
                if not mask.all():
                    area, perf, power = area[mask], perf[mask], power[mask]
                if chunk_span is not _trace.NULL_SPAN:
                    chunk_span.set(points=rows.shape[0], valid=int(area.shape[0]))
                if not area.shape[0]:
                    continue
                _, ncf_fw, ncf_ft = self._ncf_from_columns(area, perf, power)
                histogram += np.bincount(
                    classify_arrays(ncf_fw, ncf_ft), minlength=len(CATEGORIES)
                )
                valid_total += int(area.shape[0])
        return histogram, valid_total

    def _designs_only(self, grid: ParameterGrid) -> list[DesignPoint]:
        """Evaluate every grid point, skipping params materialization
        for cached points (the dominant cost of a warm re-sweep).

        Deliberately uninstrumented inside the loop — the caller
        observes at sweep granularity, so a disabled-observability run
        pays nothing per point.
        """
        cache = self.cache
        entries = cache._entries
        factory = self.factory
        names = list(grid.axes)
        slots = sorted(range(len(names)), key=names.__getitem__)
        designs: list[DesignPoint] = []
        hits = 0
        misses = 0
        for combo in product(*(grid.axes[name] for name in names)):
            key = tuple([(names[i], combo[i]) for i in slots])
            outcome = entries.get(key)
            if outcome is None:
                misses += 1
                try:
                    outcome = factory(dict(zip(names, combo)))
                except DomainError as exc:
                    outcome = exc
                entries[key] = outcome
            else:
                hits += 1
            if not isinstance(outcome, DomainError):
                designs.append(outcome)
        cache.record(hits=hits, misses=misses)
        return designs
