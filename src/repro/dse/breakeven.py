"""Generic break-even (crossover) solving.

Many of the paper's findings are crossover statements: "the accelerator
needs to be used for more than 30 % of the time", "the branch predictor
must stay below ~2 % of core area", "dark silicon breaks even above
50 % utilization". This module provides a robust bisection for the
``f(x) = target`` crossing of a monotone scalar function, used by the
findings verifiers and available for user studies.
"""

from __future__ import annotations

from typing import Callable

from ..core.errors import ConvergenceError, DomainError
from ..core.quantities import ensure_finite

__all__ = ["bisect_crossing", "crossing_or_none"]


def bisect_crossing(
    func: Callable[[float], float],
    lo: float,
    hi: float,
    target: float = 1.0,
    *,
    tol: float = 1e-10,
    max_iter: int = 200,
) -> float:
    """Find ``x`` in ``[lo, hi]`` with ``func(x) == target``.

    Requires ``func(lo) - target`` and ``func(hi) - target`` to have
    opposite (or zero) signs; *func* need not be monotone but the
    returned crossing is then just *a* crossing, not necessarily the
    first. Raises :class:`~repro.core.errors.DomainError` when the
    bracket does not straddle the target.
    """
    lo = ensure_finite(lo, "lo")
    hi = ensure_finite(hi, "hi")
    if lo > hi:
        raise DomainError(f"bisect_crossing requires lo <= hi, got ({lo}, {hi})")
    f_lo = func(lo) - target
    f_hi = func(hi) - target
    if f_lo == 0.0:
        return lo
    if f_hi == 0.0:
        return hi
    if f_lo * f_hi > 0.0:
        raise DomainError(
            f"no crossing of target {target} in [{lo}, {hi}]: "
            f"f(lo)-t={f_lo:g}, f(hi)-t={f_hi:g}"
        )
    for _ in range(max_iter):
        mid = 0.5 * (lo + hi)
        f_mid = func(mid) - target
        if f_mid == 0.0 or (hi - lo) < tol:
            return mid
        if f_lo * f_mid < 0.0:
            hi = mid
        else:
            lo, f_lo = mid, f_mid
    raise ConvergenceError(
        f"bisection did not reach tolerance {tol} within {max_iter} iterations"
    )


def crossing_or_none(
    func: Callable[[float], float],
    lo: float,
    hi: float,
    target: float = 1.0,
    *,
    tol: float = 1e-10,
) -> float | None:
    """Like :func:`bisect_crossing` but returns ``None`` when the
    bracket never crosses the target (instead of raising)."""
    try:
        return bisect_crossing(func, lo, hi, target, tol=tol)
    except DomainError:
        return None
