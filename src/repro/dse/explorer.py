"""The design-space explorer.

Maps a factory (parameters -> :class:`~repro.core.design.DesignPoint`)
over a :class:`~repro.dse.grid.ParameterGrid`, evaluates NCF under the
requested scenarios/weights against a baseline, and returns structured
results ready for Pareto filtering, classification counting, or export.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Callable, Mapping, Sequence

from ..core.classify import Sustainability, classify_values
from ..core.design import DesignPoint
from ..core.errors import ConfigurationError
from ..core.ncf import ncf
from ..core.pareto import ParetoPoint, pareto_frontier
from ..core.scenario import E2OWeight, UseScenario
from .grid import ParameterGrid

__all__ = ["ExplorationResult", "Explorer"]

DesignFactory = Callable[[Mapping[str, object]], DesignPoint]


@dataclass(frozen=True)
class ExplorationResult:
    """One evaluated grid point."""

    params: Mapping[str, object]
    design: DesignPoint
    perf: float
    ncf_fixed_work: float
    ncf_fixed_time: float

    @cached_property
    def category(self) -> Sustainability:
        """Sustainability verdict; classified once, then memoized
        (``count_categories`` and ``as_dict`` both re-read it)."""
        return classify_values(self.ncf_fixed_work, self.ncf_fixed_time)

    def as_dict(self) -> dict[str, object]:
        row: dict[str, object] = dict(self.params)
        row.update(
            design=self.design.name,
            perf=self.perf,
            ncf_fw=self.ncf_fixed_work,
            ncf_ft=self.ncf_fixed_time,
            category=self.category.value,
        )
        return row


@dataclass(frozen=True)
class Explorer:
    """Sweep a design factory over a grid against a baseline design."""

    factory: DesignFactory
    baseline: DesignPoint
    weight: E2OWeight

    def explore(self, grid: ParameterGrid) -> list[ExplorationResult]:
        """Evaluate every grid point; factories may raise
        :class:`~repro.core.errors.DomainError` to skip invalid corners
        (e.g. a big core consuming the whole chip), which are dropped."""
        from ..obs.trace import NULL_SPAN, span

        with span("explore.scalar", grid_points=len(grid)) as sp:
            results = self._explore(grid)
            if sp is not NULL_SPAN:
                sp.set(valid_points=len(results))
        return results

    def _explore(self, grid: ParameterGrid) -> list[ExplorationResult]:
        from ..core.errors import DomainError

        results: list[ExplorationResult] = []
        for params in grid:
            try:
                design = self.factory(params)
            except DomainError:
                continue
            results.append(
                ExplorationResult(
                    params=params,
                    design=design,
                    perf=design.perf_ratio(self.baseline),
                    ncf_fixed_work=ncf(
                        design, self.baseline, UseScenario.FIXED_WORK, self.weight.alpha
                    ),
                    ncf_fixed_time=ncf(
                        design, self.baseline, UseScenario.FIXED_TIME, self.weight.alpha
                    ),
                )
            )
        if not results:
            raise ConfigurationError("exploration produced no valid design points")
        return results

    def pareto(
        self,
        results: Sequence[ExplorationResult],
        scenario: UseScenario = UseScenario.FIXED_WORK,
    ) -> list[ParetoPoint]:
        """Pareto frontier (max perf, min NCF) of exploration results."""
        points = [
            ParetoPoint(
                name=result.design.name,
                perf=result.perf,
                footprint=(
                    result.ncf_fixed_work
                    if scenario is UseScenario.FIXED_WORK
                    else result.ncf_fixed_time
                ),
            )
            for result in results
        ]
        return pareto_frontier(points)

    @staticmethod
    def count_categories(
        results: Sequence[ExplorationResult],
    ) -> dict[Sustainability, int]:
        """Histogram of sustainability categories across the sweep."""
        counts: dict[Sustainability, int] = {}
        for result in results:
            counts[result.category] = counts.get(result.category, 0) + 1
        return counts
