"""Stock vector factories for the paper's sweep studies.

Each factory here is a :class:`~repro.dse.batch.VectorFactory`: called
with one grid point it behaves exactly like the plain scalar factories
the studies always used (same DesignPoint names, same ``DomainError``
corners), and handed a whole chunk of axis columns it evaluates the
columnar substrate kernels (:mod:`repro.amdahl.batch`,
:mod:`repro.dvfs.batch`) instead — bit-exact, in a handful of
vectorized passes.

All factories are frozen dataclasses, hence picklable: the same
instance works with ``BatchExplorer(workers=N)`` process pools (where
it is evaluated scalar) and with the columnar cold path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..amdahl.asymmetric import AsymmetricMulticore
from ..amdahl.batch import (
    asymmetric_power,
    asymmetric_speedup,
    symmetric_power,
    symmetric_speedup,
)
from ..amdahl.symmetric import DEFAULT_LEAKAGE, SymmetricMulticore
from ..core.batch import ensure_fraction_array, ensure_int_at_least_array
from ..core.design import DesignPoint
from ..dvfs.batch import scale_design_arrays
from ..dvfs.operating_point import DVFSConfig, scale_design
from .batch import DesignArrays

__all__ = [
    "SymmetricMulticoreFactory",
    "AsymmetricMulticoreFactory",
    "DVFSOperatingPointFactory",
    "IterativeFixedPointFactory",
]


@dataclass(frozen=True)
class SymmetricMulticoreFactory:
    """Vector factory for the symmetric-multicore design space
    (Figure 3's axes: core count x parallel fraction).

    Grid axes: ``cores_param`` (int >= 1) and ``fraction_param``
    (in [0, 1]). Every grid point is valid.
    """

    leakage: float = DEFAULT_LEAKAGE
    cores_param: str = "cores"
    fraction_param: str = "f"

    def __call__(self, params: Mapping[str, object]) -> DesignPoint:
        return SymmetricMulticore(
            cores=params[self.cores_param],  # type: ignore[arg-type]
            parallel_fraction=params[self.fraction_param],  # type: ignore[arg-type]
            leakage=self.leakage,
        ).design_point()

    def batch_arrays(self, columns: Mapping[str, np.ndarray]) -> DesignArrays:
        cores = ensure_int_at_least_array(columns[self.cores_param], 1, "cores")
        fractions = ensure_fraction_array(
            columns[self.fraction_param], "parallel_fraction"
        )
        cores, fractions = np.broadcast_arrays(cores, fractions)
        return DesignArrays(
            area=cores,
            perf=symmetric_speedup(cores, fractions),
            power=symmetric_power(cores, fractions, self.leakage),
            valid=np.ones(cores.shape, dtype=bool),
        )

    def design_points(
        self, chunk: Sequence[Mapping[str, object]], arrays: DesignArrays
    ) -> list[DesignPoint | None]:
        # int()/float() mirror the conversions the scalar constructor's
        # validators apply before the name is formatted, so the labels
        # match even for numpy-typed grid axes.
        leakage = float(self.leakage)
        return [
            DesignPoint(
                name=(
                    f"sym {int(params[self.cores_param])}c "  # type: ignore[call-overload]
                    f"f={float(params[self.fraction_param]):g} g={leakage:g}"  # type: ignore[arg-type]
                ),
                area=float(area),
                perf=float(perf),
                power=float(power),
            )
            for params, area, perf, power in zip(
                chunk, arrays.area, arrays.perf, arrays.power
            )
        ]


@dataclass(frozen=True)
class AsymmetricMulticoreFactory:
    """Vector factory for the asymmetric-multicore design space
    (Figure 4's axes: total BCEs x big-core BCEs x parallel fraction).

    Grid axes: ``total_param`` (N >= 2), ``big_param`` (M >= 1) and
    ``fraction_param``. ``big_core_bces``/``parallel_fraction`` pin M
    or f instead when the grid has no such axis. Corners with
    ``M >= N`` (the big core leaves no small core) are the invalid
    rows: masked in ``batch_arrays``, ``DomainError`` in scalar calls —
    the explorer skips them identically on both paths.
    """

    leakage: float = DEFAULT_LEAKAGE
    total_param: str = "n"
    big_param: str = "m"
    fraction_param: str = "f"
    big_core_bces: int | None = None
    parallel_fraction: float | None = None

    def _value(self, params: Mapping[str, object], key: str, fixed) -> object:
        return params[key] if key in params else fixed

    def __call__(self, params: Mapping[str, object]) -> DesignPoint:
        return AsymmetricMulticore(
            total_bces=params[self.total_param],  # type: ignore[arg-type]
            big_core_bces=self._value(  # type: ignore[arg-type]
                params, self.big_param, self.big_core_bces
            ),
            parallel_fraction=self._value(  # type: ignore[arg-type]
                params, self.fraction_param, self.parallel_fraction
            ),
            leakage=self.leakage,
        ).design_point()

    def _columns(
        self, columns: Mapping[str, np.ndarray]
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        total = ensure_int_at_least_array(
            columns[self.total_param], 2, "total_bces"
        )
        big = ensure_int_at_least_array(
            columns.get(self.big_param, self.big_core_bces), 1, "big_core_bces"
        )
        fraction = ensure_fraction_array(
            columns.get(self.fraction_param, self.parallel_fraction),
            "parallel_fraction",
        )
        return np.broadcast_arrays(total, big, fraction)

    def batch_arrays(self, columns: Mapping[str, np.ndarray]) -> DesignArrays:
        total, big, fraction = self._columns(columns)
        valid = big < total
        perf = np.ones(total.shape)
        power = np.ones(total.shape)
        if valid.any():
            n, m, f = total[valid], big[valid], fraction[valid]
            perf[valid] = asymmetric_speedup(n, m, f)
            power[valid] = asymmetric_power(n, m, f, self.leakage)
        return DesignArrays(area=total, perf=perf, power=power, valid=valid)

    def design_points(
        self, chunk: Sequence[Mapping[str, object]], arrays: DesignArrays
    ) -> list[DesignPoint | None]:
        points: list[DesignPoint | None] = []
        for params, area, perf, power, valid in zip(
            chunk, arrays.area, arrays.perf, arrays.power, arrays.valid
        ):
            if not valid:
                points.append(None)
                continue
            total = int(self._value(params, self.total_param, None))  # type: ignore[call-overload]
            big = int(self._value(params, self.big_param, self.big_core_bces))  # type: ignore[call-overload]
            fraction = float(
                self._value(params, self.fraction_param, self.parallel_fraction)  # type: ignore[arg-type]
            )
            points.append(
                DesignPoint(
                    name=(
                        f"asym {total}BCE (1x{big}+"
                        f"{total - big}x1) f={fraction:g}"
                    ),
                    area=float(area),
                    perf=float(perf),
                    power=float(power),
                )
            )
        return points


@dataclass(frozen=True)
class DVFSOperatingPointFactory:
    """Vector factory sweeping one design across frequency multipliers
    (paper §5.8: Findings #14/#15, the power-capped case study).

    Grid axis: ``multiplier_param`` (> 0). Every point is valid.
    """

    design: DesignPoint
    config: DVFSConfig = DVFSConfig()
    include_regulator_area: bool = True
    multiplier_param: str = "s"

    def __call__(self, params: Mapping[str, object]) -> DesignPoint:
        return scale_design(
            self.design,
            params[self.multiplier_param],  # type: ignore[arg-type]
            self.config,
            include_regulator_area=self.include_regulator_area,
        )

    def batch_arrays(self, columns: Mapping[str, np.ndarray]) -> DesignArrays:
        areas, perfs, powers = scale_design_arrays(
            self.design,
            columns[self.multiplier_param],
            self.config,
            include_regulator_area=self.include_regulator_area,
        )
        return DesignArrays(
            area=areas,
            perf=perfs,
            power=powers,
            valid=np.ones(areas.shape, dtype=bool),
        )

    def design_points(
        self, chunk: Sequence[Mapping[str, object]], arrays: DesignArrays
    ) -> list[DesignPoint | None]:
        base_name = self.design.name
        return [
            DesignPoint(
                name=f"{base_name} @ {float(params[self.multiplier_param]):g}x",  # type: ignore[arg-type]
                area=float(area),
                perf=float(perf),
                power=float(power),
            )
            for params, area, perf, power in zip(
                chunk, arrays.area, arrays.perf, arrays.power
            )
        ]


@dataclass(frozen=True)
class IterativeFixedPointFactory:
    """A vector factory whose kernel is expensive on purpose.

    The stock factories finish a 100k-point grid in milliseconds, so
    timing them under a worker pool only measures dispatch overhead.
    This one runs a damped fixed-point iteration per point (an
    Amdahl-flavoured relaxation that converges to the usual speedup
    and power surfaces), making the kernel phase dominate the sweep —
    the regime the parallel-columnar mode exists for. All arithmetic
    is elementwise float64, so results are bit-identical no matter how
    the grid is sharded across workers.

    The engine benchmark (``benchmarks/bench_dse_engine.py``) and the
    ``focal profile --bench`` bottleneck profiler both sweep this
    factory, so the profiler's attribution is measured on exactly the
    operating point the benchmark gates.

    Grid axes: ``cores`` and ``f``. Every point is valid.
    """

    iters: int = 2500
    damping: float = 0.5

    def __call__(self, params: Mapping[str, object]) -> DesignPoint:
        arrays = self.batch_arrays(
            {key: np.asarray([value]) for key, value in params.items()}
        )
        return self.design_points([params], arrays)[0]

    def batch_arrays(self, columns: Mapping[str, np.ndarray]) -> DesignArrays:
        cores = np.asarray(columns["cores"], dtype=np.float64)
        fractions = np.asarray(columns["f"], dtype=np.float64)
        cores, fractions = np.broadcast_arrays(cores, fractions)
        amdahl = 1.0 / ((1.0 - fractions) + fractions / cores)
        perf = np.ones_like(amdahl)
        power = np.full_like(amdahl, 0.3)
        for _ in range(self.iters):
            perf = perf + self.damping * (np.sqrt(amdahl * perf) - perf)
            power = power + self.damping * (
                (0.3 + 0.7 * fractions * power / amdahl) - power
            )
        return DesignArrays(
            area=cores,
            perf=perf,
            power=power,
            valid=np.ones(cores.shape, dtype=bool),
        )

    def design_points(
        self, chunk: Sequence[Mapping[str, object]], arrays: DesignArrays
    ) -> list[DesignPoint | None]:
        return [
            DesignPoint(
                name=f"fxp {int(params['cores'])}c f={float(params['f']):g}",  # type: ignore[call-overload, arg-type]
                area=float(area),
                perf=float(perf),
                power=float(power),
            )
            for params, area, perf, power in zip(
                chunk, arrays.area, arrays.perf, arrays.power
            )
        ]
