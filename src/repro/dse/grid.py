"""Parameter grids for design-space exploration.

A :class:`ParameterGrid` is a small, explicit cartesian product over
named parameter ranges — the shape of every sweep in the paper
(BCE counts x parallel fractions, cache sizes, utilizations, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Iterator, Mapping, Sequence

from ..core.errors import ConfigurationError

__all__ = ["ParameterGrid", "geometric_range", "linear_range"]


def geometric_range(start: float, stop: float, factor: float = 2.0) -> list[float]:
    """Values from *start* to *stop* inclusive, multiplying by *factor*.

    ``geometric_range(1, 32)`` gives the paper's BCE ladder
    ``[1, 2, 4, 8, 16, 32]``.
    """
    if start <= 0 or stop < start:
        raise ConfigurationError(
            f"geometric_range requires 0 < start <= stop, got ({start}, {stop})"
        )
    if factor <= 1.0:
        raise ConfigurationError(f"factor must exceed 1, got {factor}")
    # Each rung is start * factor**i rather than a running product:
    # repeated `value *= factor` accumulates one rounding error per
    # rung, which on long ladders drifts rungs off-grid and makes the
    # stop-inclusion tolerance flaky.
    limit = stop * (1.0 + 1e-12)
    values: list[float] = []
    rung = 0
    while True:
        value = float(start) * factor**rung
        if value > limit:
            break
        values.append(value)
        rung += 1
    return values


def linear_range(start: float, stop: float, steps: int) -> list[float]:
    """*steps* evenly spaced values from *start* to *stop* inclusive."""
    if steps < 1:
        raise ConfigurationError(f"steps must be >= 1, got {steps}")
    if steps == 1:
        return [float(start)]
    stride = (stop - start) / (steps - 1)
    return [start + i * stride for i in range(steps)]


@dataclass(frozen=True)
class ParameterGrid:
    """A named cartesian product of parameter values.

    Iterating yields mappings from parameter name to value, in
    row-major order of the declaration.
    """

    axes: Mapping[str, Sequence[object]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.axes:
            raise ConfigurationError("ParameterGrid requires at least one axis")
        for name, values in self.axes.items():
            if not values:
                raise ConfigurationError(f"axis {name!r} has no values")

    def __len__(self) -> int:
        size = 1
        for values in self.axes.values():
            size *= len(values)
        return size

    def __iter__(self) -> Iterator[dict[str, object]]:
        names = list(self.axes)
        for combo in product(*(self.axes[name] for name in names)):
            yield dict(zip(names, combo))

    def subgrid(self, **fixed: object) -> "ParameterGrid":
        """Pin one or more axes to single values.

        Unknown axis names raise; this catches typos in sweep configs.
        """
        for name in fixed:
            if name not in self.axes:
                raise ConfigurationError(
                    f"unknown axis {name!r}; axes: {sorted(self.axes)}"
                )
        new_axes: dict[str, Sequence[object]] = {}
        for name, values in self.axes.items():
            if name in fixed:
                if fixed[name] not in values:
                    raise ConfigurationError(
                        f"value {fixed[name]!r} not in axis {name!r}"
                    )
                new_axes[name] = [fixed[name]]
            else:
                new_axes[name] = values
        return ParameterGrid(new_axes)
