"""Monte-Carlo robustness of sustainability verdicts.

Samples the embodied-to-operational weight (and optionally any other
uncertain ratio) from simple distributions and reports the probability
of each sustainability category — a stochastic complement to the exact
interval analysis in :mod:`repro.core.uncertainty`.

Both samplers accept ``checkpoint``/``resume``: samples are then drawn
in chunks of ``checkpoint_every``, each completed chunk persisting the
classified codes plus the RNG state to an atomic
:class:`~repro.resilience.checkpoint.CheckpointStore` file. Resume
restores the codes and the generator state and continues drawing —
NumPy ``Generator`` streams are split-invariant, so the chunked,
killed-and-resumed run produces byte-identical probabilities to an
uninterrupted one.

Both samplers also accept ``store``: a persistent
:class:`~repro.dse.store.ResultStore` that keeps classified rng-stream
*segments* keyed by the sampler fingerprint (minus the sample total)
plus the segment's ``(start, count)`` position. A re-run of the same
configuration — even asking for *more* samples — replays the stored
prefix byte-identically (each segment carries the post-segment
generator state, which is the only way to continue a data-dependent
draw like the lognormal ziggurat) and only draws what the store has
never seen. Segments are cut at ``checkpoint_every`` boundaries, so a
reader with a different ``checkpoint_every`` conservatively recomputes
rather than risking a misaligned splice.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..core.batch import category_counts, classify_arrays
from ..core.classify import Sustainability
from ..core.design import DesignPoint
from ..core.errors import CheckpointError, ConfigurationError, ValidationError
from ..core.scenario import E2OWeight
from ..obs import events as _events
from ..obs import metrics as _metrics
from ..obs import trace as _trace
from ..obs.log import get_logger, kv
from ..resilience.checkpoint import CheckpointStore
from ..resilience.policy import RetryPolicy
from ..resilience.supervisor import SupervisedPool
from . import parallel as _parallel
from .store import ResultStore

__all__ = [
    "CategoryProbabilities",
    "sample_verdicts",
    "sample_measurement_noise",
    "CONVERGENCE_CHECKPOINTS",
]

#: How many running-mix checkpoints a traced sampler records (the
#: sample range is split into this many equal prefixes).
CONVERGENCE_CHECKPOINTS = 10


@dataclass(frozen=True, slots=True)
class CategoryProbabilities:
    """Empirical probability of each sustainability category."""

    samples: int
    strong: float
    weak: float
    less: float
    neutral: float

    @property
    def most_likely(self) -> Sustainability:
        best = max(
            (
                (self.strong, Sustainability.STRONG),
                (self.weak, Sustainability.WEAK),
                (self.less, Sustainability.LESS),
                (self.neutral, Sustainability.NEUTRAL),
            ),
            key=lambda pair: pair[0],
        )
        return best[1]


def _classified_probabilities(
    ncf_fw: np.ndarray, ncf_ft: np.ndarray, samples: int
) -> CategoryProbabilities:
    """Classify whole sample arrays at once and normalize the histogram.

    One vectorized pass (:func:`~repro.core.batch.classify_arrays` +
    ``np.bincount``) replaces the former per-sample Python loop; the
    verdicts are identical because the kernel shares the scalar path's
    boundary-tolerance arithmetic.
    """
    return _probabilities_from_codes(classify_arrays(ncf_fw, ncf_ft), samples)


def _probabilities_from_codes(
    codes: np.ndarray, samples: int
) -> CategoryProbabilities:
    counts = category_counts(codes)
    return CategoryProbabilities(
        samples=samples,
        strong=counts[Sustainability.STRONG] / samples,
        weak=counts[Sustainability.WEAK] / samples,
        less=counts[Sustainability.LESS] / samples,
        neutral=counts[Sustainability.NEUTRAL] / samples,
    )


def _running_mix(
    codes: np.ndarray, checkpoints: int = CONVERGENCE_CHECKPOINTS
) -> list[dict[str, object]]:
    """The running category mix at evenly spaced sample prefixes.

    Convergence telemetry for traced runs: each row holds the empirical
    category probabilities over the first *k* samples, so a trace shows
    whether 100k samples were 10x too many or not nearly enough. Pure
    observation — the final verdict probabilities are untouched.
    """
    samples = int(codes.size)
    checkpoints = max(1, min(checkpoints, samples))
    marks = sorted({round(samples * (i + 1) / checkpoints) for i in range(checkpoints)})
    rows: list[dict[str, object]] = []
    for k in marks:
        prefix = _probabilities_from_codes(codes[:k], k)
        rows.append(
            {
                "samples": k,
                "strong": prefix.strong,
                "weak": prefix.weak,
                "less": prefix.less,
                "neutral": prefix.neutral,
            }
        )
    return rows


def _observed_classify(
    ncf_fw: np.ndarray,
    ncf_ft: np.ndarray,
    samples: int,
    sampler: str,
    start_s: float,
    span_,
    registry: _metrics.MetricsRegistry,
) -> CategoryProbabilities:
    """Classify and, when observing, record throughput + convergence."""
    return _observed_from_codes(
        classify_arrays(ncf_fw, ncf_ft), samples, sampler, start_s, span_, registry
    )


def _observed_from_codes(
    codes: np.ndarray,
    samples: int,
    sampler: str,
    start_s: float,
    span_,
    registry: _metrics.MetricsRegistry,
) -> CategoryProbabilities:
    """Histogram pre-classified codes; record throughput + convergence."""
    result = _probabilities_from_codes(codes, samples)
    seconds = time.perf_counter() - start_s
    if span_ is not _trace.NULL_SPAN:
        span_.set(
            seconds=seconds,
            samples_per_s=samples / seconds if seconds > 0 else float("inf"),
            most_likely=result.most_likely.value,
            convergence=_running_mix(codes),
        )
    if registry.enabled:
        labels = {"sampler": sampler}
        registry.counter(
            "focal_mc_samples_total", "Monte-Carlo samples classified", labels
        ).inc(samples)
        registry.gauge(
            "focal_mc_samples_per_s", "samples per second, last sampler call", labels
        ).set(samples / seconds if seconds > 0 else 0.0)
    return result


def _point_fields(point: DesignPoint) -> dict:
    """A design point as bit-exact JSON-able fields (for fingerprints)."""
    return {
        "name": point.name,
        "area": point.area.hex(),
        "perf": point.perf.hex(),
        "power": point.power.hex(),
    }


#: Smallest sample span the guided scheduler will dispatch — keeps the
#: shrinking tail from degenerating into single-sample futures.
_MC_MIN_SPAN = 64


def _mc_spans(count: int, workers: int) -> list[tuple[int, int]]:
    """Contiguous ``[lo, hi)`` spans splitting *count* samples across a
    pool with guided (geometric) sizing — the same policy the sweep
    engine's work-stealing planner uses: early spans are big (low
    dispatch overhead while every worker is busy), later spans shrink
    so the tail rebalances across whichever workers free up first.

    Safe for both samplers at any partition: verdict shards position
    their generators per span with ``advance``, and noise shards
    receive parent-drawn noise slices, so the concatenated codes are
    byte-identical to the serial draw regardless of span geometry.
    """
    spans: list[tuple[int, int]] = []
    lo = 0
    while lo < count:
        remaining = count - lo
        take = max(
            _MC_MIN_SPAN,
            remaining // (max(1, workers) * _parallel.STEAL_FACTOR),
        )
        hi = min(count, lo + take)
        spans.append((lo, hi))
        lo = hi
    return spans


def _verdict_shard(job: tuple) -> np.ndarray:
    """Worker-side draw+classify for one ``sample_verdicts`` shard.

    The shard's generator is positioned on the run's single logical
    stream with ``bit_generator.advance`` — each uniform double
    consumes exactly one PCG64 state step, so a shard starting at
    sample *start* advances by *start* and then draws its own span.
    The concatenated shard codes are byte-identical to one sequential
    draw. (A degenerate band, ``hi == lo``, consumes no states at all.)
    """
    seed, start, count, lo, hi, area, energy, power = job
    buf = _events.get_buffer()
    t0 = buf.now() if buf.enabled else 0.0
    if hi > lo:
        rng = np.random.default_rng(seed)
        rng.bit_generator.advance(start)
        alphas = rng.uniform(lo, hi, size=count)
    else:
        alphas = np.full(count, lo)
    ncf_fw = alphas * area + (1.0 - alphas) * energy
    ncf_ft = alphas * area + (1.0 - alphas) * power
    codes = classify_arrays(ncf_fw, ncf_ft)
    if buf.enabled:
        # Spill-only transport: the reply stays a bare codes array so
        # checkpointed streams remain bit-exact at any worker count.
        buf.add(
            "mc.shard",
            start=t0,
            dur_s=buf.now() - t0,
            sampler="sample_verdicts",
            samples=count,
        )
        buf.drain()
    return codes


def _noise_shard(job: tuple) -> np.ndarray:
    """Worker-side classify for one ``sample_measurement_noise`` shard.

    Lognormal draws go through the ziggurat algorithm, whose state
    consumption is data-dependent — ``advance`` cannot position a
    shard on the stream. The parent therefore draws the noise
    sequentially (bit-identical to the serial path by construction)
    and ships each shard's noise columns here for the NCF + classify
    arithmetic.
    """
    noise, alpha, area_ratio, energy_ratio, power_ratio = job
    buf = _events.get_buffer()
    t0 = buf.now() if buf.enabled else 0.0
    area = area_ratio * noise[:, 0]
    energy = energy_ratio * noise[:, 1]
    power = power_ratio * noise[:, 2]
    ncf_fw = alpha * area + (1.0 - alpha) * energy
    ncf_ft = alpha * area + (1.0 - alpha) * power
    codes = classify_arrays(ncf_fw, ncf_ft)
    if buf.enabled:
        buf.add(
            "mc.shard",
            start=t0,
            dur_s=buf.now() - t0,
            sampler="sample_measurement_noise",
            samples=int(noise.shape[0]),
        )
        buf.drain()
    return codes


def _mc_pool(
    workers: int, resilience: RetryPolicy | None = None
) -> tuple["ProcessPoolExecutor | SupervisedPool | None", str | None]:
    """A sampler worker pool plus its event spill directory.

    ``(None, None)`` for serial runs. When the global event log is
    collecting, workers are armed through the pool initializer and
    their ``mc.shard`` events travel exclusively via the spill files —
    the reply arrays are untouched, keeping checkpoint streams
    bit-exact at any worker count.

    With a *resilience* policy the pool is a
    :class:`~repro.resilience.supervisor.SupervisedPool`: crashed or
    hung shard draws walk the same retry/respawn/degrade ladder sweeps
    use, and because shard jobs carry their own stream positions the
    recovered codes are byte-identical to the unfaulted run.
    """
    if not workers:
        return None, None
    capture = _events.get_log().enabled
    spill = _events.make_spill_dir() if capture else None
    if resilience is not None:
        return (
            SupervisedPool(
                workers,
                resilience,
                initializer=_events.init_worker,
                initargs=(capture, spill),
            ),
            spill,
        )
    pool = ProcessPoolExecutor(
        max_workers=workers,
        initializer=_events.init_worker,
        initargs=(capture, spill),
    )
    return pool, spill


def _mc_map(pool, fn: Callable, jobs: list) -> list:
    """Shard fan-out on either pool flavour, preserving job order.

    Supervised pools dispatch one shard per future (``schedule="queue"``)
    so the executor's shared call queue doubles as the steal queue: an
    idle worker picks up the next pending shard the moment it finishes
    its own, matching the sweep engine's work-stealing scheduler.
    """
    if isinstance(pool, SupervisedPool):
        return pool.run(fn, jobs, schedule="queue")
    return list(pool.map(fn, jobs))


def _mc_wind_down(
    pool: "ProcessPoolExecutor | SupervisedPool | None", spill: str | None
) -> None:
    """Reap the sampler pool, then harvest and remove its spill files."""
    if pool is not None:
        pool.shutdown(cancel_futures=True)
    if spill is not None:
        _events.get_log().collect_spill(spill)
        _events.cleanup_spill_dir(spill)


def _checkpointed_codes(
    draw: Callable[[np.random.Generator, int, int], np.ndarray],
    *,
    samples: int,
    seed: int,
    checkpoint: "CheckpointStore | str | os.PathLike | None",
    resume: bool,
    checkpoint_every: int,
    fingerprint: dict,
    store: "ResultStore | str | os.PathLike | None" = None,
) -> tuple[np.ndarray, int]:
    """Draw+classify *samples* codes, chunk-checkpointing the stream.

    ``draw(rng, start, n)`` consumes exactly the generator variates an
    uninterrupted run would for samples ``[start, start + n)`` and
    returns their classification codes (*start* lets parallel draws
    position independent generators on the stream). Without a
    checkpoint or store the whole range is one draw; otherwise the
    stream advances ``checkpoint_every`` samples at a time, persisting
    codes + RNG state after each chunk. Either way the concatenated
    codes are identical — NumPy ``Generator`` streams do not depend on
    how the draw is split.

    With a persistent *store*, each segment is first looked up by
    ``(fingerprint minus samples, start, count)``: a hit adopts the
    stored codes and jumps the generator to the stored post-segment
    state instead of drawing; a miss draws and persists the segment.
    Returns ``(codes, store_samples)`` — the second element counts
    samples replayed from the store.
    """
    if checkpoint_every < 1:
        raise ValidationError(
            f"checkpoint_every must be >= 1, got {checkpoint_every}"
        )
    ckpt = CheckpointStore.coerce(checkpoint)
    if resume and ckpt is None:
        raise ConfigurationError(
            "resume=True requires a checkpoint path to resume from"
        )
    result_store = ResultStore.coerce(store)
    segment_fp: dict | None = None
    if result_store is not None:
        # The sample total is deliberately dropped: segments of a
        # 10k-sample run are a bit-exact prefix of a 100k-sample run of
        # the same configuration, so the longer run reuses them.
        segment_fp = {
            key: value for key, value in fingerprint.items() if key != "samples"
        }
        segment_fp["checkpoint_every"] = checkpoint_every
    rng = np.random.default_rng(seed)
    done: list[np.ndarray] = []
    drawn = 0
    reused = 0
    if ckpt is not None and resume:
        state = ckpt.load_or_restart(kind="montecarlo", fingerprint=fingerprint)
        if state is not None:
            codes = state.get("codes")
            rng_state = state.get("rng_state")
            if not isinstance(codes, list) or len(codes) > samples:
                raise CheckpointError(
                    f"checkpoint {ckpt.path} records "
                    f"{len(codes) if isinstance(codes, list) else '?'} codes "
                    f"for a {samples}-sample run"
                )
            if codes:
                done.append(np.asarray(codes, dtype=np.int8))
                drawn = len(codes)
                rng.bit_generator.state = rng_state
    step = (
        samples if ckpt is None and result_store is None else checkpoint_every
    )
    while drawn < samples:
        count = min(step, samples - drawn)
        segment = (
            result_store.load_segment(segment_fp, drawn, count)
            if result_store is not None
            else None
        )
        if segment is not None:
            codes_arr, rng_state = segment
            rng.bit_generator.state = rng_state
            reused += count
        else:
            codes_arr = draw(rng, drawn, count)
            if result_store is not None:
                result_store.save_segment(
                    segment_fp, drawn, count, codes_arr,
                    rng.bit_generator.state,
                )
        done.append(codes_arr)
        drawn += count
        if ckpt is not None:
            try:
                ckpt.save(
                    kind="montecarlo",
                    fingerprint=fingerprint,
                    state={
                        "codes": np.concatenate(done).tolist(),
                        "rng_state": rng.bit_generator.state,
                    },
                )
            except CheckpointError as exc:
                # A dead checkpoint must not kill a live draw: keep
                # sampling without persistence.
                get_logger().warning(
                    kv(
                        "checkpoint.disabled",
                        path=str(ckpt.path),
                        error=str(exc),
                    )
                )
                ckpt = None
    return (done[0] if len(done) == 1 else np.concatenate(done)), reused


def sample_verdicts(
    design: DesignPoint,
    baseline: DesignPoint,
    weight: E2OWeight,
    *,
    samples: int = 10_000,
    seed: int = 0,
    workers: int = 0,
    checkpoint: "CheckpointStore | str | os.PathLike | None" = None,
    resume: bool = False,
    checkpoint_every: int = 4096,
    store: "ResultStore | str | os.PathLike | None" = None,
    resilience: RetryPolicy | None = None,
) -> CategoryProbabilities:
    """Sample alpha uniformly over the weight band and classify.

    For a fixed design pair the verdict only depends on alpha through
    the two NCF values, so this directly measures how often the
    conclusion would flip within the uncertainty band.

    With ``workers > 0`` the draw fans out over a process pool in
    contiguous sample spans: each shard positions an independent
    generator on the run's single logical stream via
    ``bit_generator.advance`` (uniform doubles consume one PCG64 state
    each), so the concatenated codes — and hence the probabilities —
    are byte-identical to the serial run. ``workers`` is deliberately
    absent from the checkpoint fingerprint: a checkpoint written at any
    worker count resumes at any other.

    ``checkpoint``/``resume``/``checkpoint_every`` enable crash-safe
    chunked sampling, and ``store`` persistent cross-run segment reuse
    (see the module docs); results are bit-identical with or without
    them. A ``resilience`` policy supervises the shard pool (crash
    retry, heartbeat watchdog, respawn) — recovered draws stay
    byte-identical because every shard job carries its own stream
    position.
    """
    if samples < 1:
        raise ValidationError(f"samples must be >= 1, got {samples}")
    if workers < 0:
        raise ValidationError(f"workers must be >= 0, got {workers}")
    registry = _metrics.get_registry()
    with _trace.span(
        "mc.sample_verdicts",
        samples=samples,
        seed=seed,
        workers=workers,
        design=design.name,
        baseline=baseline.name,
        weight=weight.name,
    ) as sp:
        start_s = time.perf_counter()
        lo, hi = weight.band
        area = design.area_ratio(baseline)
        energy = design.energy_ratio(baseline)
        power = design.power_ratio(baseline)
        pool, spill = _mc_pool(workers, resilience)

        def draw(rng: np.random.Generator, start: int, count: int) -> np.ndarray:
            if pool is not None and count > 1:
                jobs = [
                    (seed, start + span_lo, span_hi - span_lo,
                     lo, hi, area, energy, power)
                    for span_lo, span_hi in _mc_spans(count, workers)
                ]
                parts = _mc_map(pool, _verdict_shard, jobs)
                # Keep the parent's generator exactly where a serial
                # draw would have left it (checkpoint states match).
                if hi > lo:
                    rng.bit_generator.advance(count)
                return np.concatenate(parts)
            alphas = (
                rng.uniform(lo, hi, size=count)
                if hi > lo
                else np.full(count, lo)
            )
            ncf_fw = alphas * area + (1.0 - alphas) * energy
            ncf_ft = alphas * area + (1.0 - alphas) * power
            return classify_arrays(ncf_fw, ncf_ft)

        try:
            codes, store_samples = _checkpointed_codes(
                draw,
                samples=samples,
                seed=seed,
                checkpoint=checkpoint,
                resume=resume,
                checkpoint_every=checkpoint_every,
                fingerprint={
                    "sampler": "sample_verdicts",
                    "design": _point_fields(design),
                    "baseline": _point_fields(baseline),
                    "band": [float(lo).hex(), float(hi).hex()],
                    "samples": samples,
                    "seed": seed,
                },
                store=store,
            )
        finally:
            _mc_wind_down(pool, spill)
        if store is not None and sp is not _trace.NULL_SPAN:
            sp.set(store_samples=store_samples)
        return _observed_from_codes(
            codes, samples, "sample_verdicts", start_s, sp, registry
        )


def sample_measurement_noise(
    design: DesignPoint,
    baseline: DesignPoint,
    alpha: float,
    *,
    relative_sigma: float = 0.1,
    samples: int = 10_000,
    seed: int = 0,
    workers: int = 0,
    checkpoint: "CheckpointStore | str | os.PathLike | None" = None,
    resume: bool = False,
    checkpoint_every: int = 4096,
    store: "ResultStore | str | os.PathLike | None" = None,
    resilience: RetryPolicy | None = None,
) -> CategoryProbabilities:
    """Verdict robustness to *measurement* uncertainty (paper §2).

    The paper's whole premise is that inputs are uncertain: area,
    energy and power figures come from McPAT runs, vendor claims and
    annotated die shots. This samples lognormal multiplicative noise of
    the given relative sigma on each of the design's three ratios
    (independently) at a fixed alpha, and reports how often the
    sustainability verdict survives.

    With ``workers > 0`` the NCF + classification arithmetic fans out
    over a process pool in contiguous sample spans. The lognormal draw
    itself stays sequential in the parent — ziggurat sampling consumes
    a data-dependent number of generator states, so shards cannot be
    positioned on the stream with ``advance`` the way
    :func:`sample_verdicts` shards are. Results and checkpoint states
    are byte-identical at any worker count, and ``workers`` is absent
    from the checkpoint fingerprint.

    ``checkpoint``/``resume``/``checkpoint_every`` enable crash-safe
    chunked sampling, and ``store`` persistent cross-run segment reuse
    (the stored post-segment generator state is what makes this work
    for the ziggurat's data-dependent stream consumption — see the
    module docs); results are bit-identical with or without them. A
    ``resilience`` policy supervises the shard pool exactly as in
    :func:`sample_verdicts`.
    """
    if samples < 1:
        raise ValidationError(f"samples must be >= 1, got {samples}")
    if relative_sigma < 0.0:
        raise ValidationError(f"relative_sigma must be >= 0, got {relative_sigma}")
    if workers < 0:
        raise ValidationError(f"workers must be >= 0, got {workers}")
    registry = _metrics.get_registry()
    with _trace.span(
        "mc.sample_measurement_noise",
        samples=samples,
        seed=seed,
        workers=workers,
        design=design.name,
        baseline=baseline.name,
        alpha=alpha,
        relative_sigma=relative_sigma,
    ) as sp:
        start_s = time.perf_counter()
        # Lognormal with median 1: exp(N(0, sigma_log)). For small sigma the
        # log-sigma approximates the relative sigma.
        sigma_log = np.log1p(relative_sigma)
        area_ratio = design.area_ratio(baseline)
        energy_ratio = design.energy_ratio(baseline)
        power_ratio = design.power_ratio(baseline)
        pool, spill = _mc_pool(workers, resilience)

        def draw(rng: np.random.Generator, start: int, count: int) -> np.ndarray:
            noise = rng.lognormal(mean=0.0, sigma=sigma_log, size=(count, 3))
            if pool is not None and count > 1:
                jobs = [
                    (noise[span_lo:span_hi], alpha,
                     area_ratio, energy_ratio, power_ratio)
                    for span_lo, span_hi in _mc_spans(count, workers)
                ]
                return np.concatenate(_mc_map(pool, _noise_shard, jobs))
            area = area_ratio * noise[:, 0]
            energy = energy_ratio * noise[:, 1]
            power = power_ratio * noise[:, 2]
            ncf_fw = alpha * area + (1.0 - alpha) * energy
            ncf_ft = alpha * area + (1.0 - alpha) * power
            return classify_arrays(ncf_fw, ncf_ft)

        try:
            codes, store_samples = _checkpointed_codes(
                draw,
                samples=samples,
                seed=seed,
                checkpoint=checkpoint,
                resume=resume,
                checkpoint_every=checkpoint_every,
                fingerprint={
                    "sampler": "sample_measurement_noise",
                    "design": _point_fields(design),
                    "baseline": _point_fields(baseline),
                    "alpha": float(alpha).hex(),
                    "relative_sigma": float(relative_sigma).hex(),
                    "samples": samples,
                    "seed": seed,
                },
                store=store,
            )
        finally:
            _mc_wind_down(pool, spill)
        if store is not None and sp is not _trace.NULL_SPAN:
            sp.set(store_samples=store_samples)
        return _observed_from_codes(
            codes, samples, "sample_measurement_noise", start_s, sp, registry
        )
