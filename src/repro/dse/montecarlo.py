"""Monte-Carlo robustness of sustainability verdicts.

Samples the embodied-to-operational weight (and optionally any other
uncertain ratio) from simple distributions and reports the probability
of each sustainability category — a stochastic complement to the exact
interval analysis in :mod:`repro.core.uncertainty`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.batch import category_counts, classify_arrays
from ..core.classify import Sustainability
from ..core.design import DesignPoint
from ..core.errors import ValidationError
from ..core.scenario import E2OWeight

__all__ = ["CategoryProbabilities", "sample_verdicts", "sample_measurement_noise"]


@dataclass(frozen=True, slots=True)
class CategoryProbabilities:
    """Empirical probability of each sustainability category."""

    samples: int
    strong: float
    weak: float
    less: float
    neutral: float

    @property
    def most_likely(self) -> Sustainability:
        best = max(
            (
                (self.strong, Sustainability.STRONG),
                (self.weak, Sustainability.WEAK),
                (self.less, Sustainability.LESS),
                (self.neutral, Sustainability.NEUTRAL),
            ),
            key=lambda pair: pair[0],
        )
        return best[1]


def _classified_probabilities(
    ncf_fw: np.ndarray, ncf_ft: np.ndarray, samples: int
) -> CategoryProbabilities:
    """Classify whole sample arrays at once and normalize the histogram.

    One vectorized pass (:func:`~repro.core.batch.classify_arrays` +
    ``np.bincount``) replaces the former per-sample Python loop; the
    verdicts are identical because the kernel shares the scalar path's
    boundary-tolerance arithmetic.
    """
    counts = category_counts(classify_arrays(ncf_fw, ncf_ft))
    return CategoryProbabilities(
        samples=samples,
        strong=counts[Sustainability.STRONG] / samples,
        weak=counts[Sustainability.WEAK] / samples,
        less=counts[Sustainability.LESS] / samples,
        neutral=counts[Sustainability.NEUTRAL] / samples,
    )


def sample_verdicts(
    design: DesignPoint,
    baseline: DesignPoint,
    weight: E2OWeight,
    *,
    samples: int = 10_000,
    seed: int = 0,
) -> CategoryProbabilities:
    """Sample alpha uniformly over the weight band and classify.

    For a fixed design pair the verdict only depends on alpha through
    the two NCF values, so this directly measures how often the
    conclusion would flip within the uncertainty band.
    """
    if samples < 1:
        raise ValidationError(f"samples must be >= 1, got {samples}")
    rng = np.random.default_rng(seed)
    lo, hi = weight.band
    alphas = rng.uniform(lo, hi, size=samples) if hi > lo else np.full(samples, lo)

    area = design.area_ratio(baseline)
    energy = design.energy_ratio(baseline)
    power = design.power_ratio(baseline)
    ncf_fw = alphas * area + (1.0 - alphas) * energy
    ncf_ft = alphas * area + (1.0 - alphas) * power
    return _classified_probabilities(ncf_fw, ncf_ft, samples)


def sample_measurement_noise(
    design: DesignPoint,
    baseline: DesignPoint,
    alpha: float,
    *,
    relative_sigma: float = 0.1,
    samples: int = 10_000,
    seed: int = 0,
) -> CategoryProbabilities:
    """Verdict robustness to *measurement* uncertainty (paper §2).

    The paper's whole premise is that inputs are uncertain: area,
    energy and power figures come from McPAT runs, vendor claims and
    annotated die shots. This samples lognormal multiplicative noise of
    the given relative sigma on each of the design's three ratios
    (independently) at a fixed alpha, and reports how often the
    sustainability verdict survives.
    """
    if samples < 1:
        raise ValidationError(f"samples must be >= 1, got {samples}")
    if relative_sigma < 0.0:
        raise ValidationError(f"relative_sigma must be >= 0, got {relative_sigma}")
    rng = np.random.default_rng(seed)
    # Lognormal with median 1: exp(N(0, sigma_log)). For small sigma the
    # log-sigma approximates the relative sigma.
    sigma_log = np.log1p(relative_sigma)
    noise = rng.lognormal(mean=0.0, sigma=sigma_log, size=(samples, 3))

    area = design.area_ratio(baseline) * noise[:, 0]
    energy = design.energy_ratio(baseline) * noise[:, 1]
    power = design.power_ratio(baseline) * noise[:, 2]
    ncf_fw = alpha * area + (1.0 - alpha) * energy
    ncf_ft = alpha * area + (1.0 - alpha) * power
    return _classified_probabilities(ncf_fw, ncf_ft, samples)
