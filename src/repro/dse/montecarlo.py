"""Monte-Carlo robustness of sustainability verdicts.

Samples the embodied-to-operational weight (and optionally any other
uncertain ratio) from simple distributions and reports the probability
of each sustainability category — a stochastic complement to the exact
interval analysis in :mod:`repro.core.uncertainty`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..core.batch import category_counts, classify_arrays
from ..core.classify import Sustainability
from ..core.design import DesignPoint
from ..core.errors import ValidationError
from ..core.scenario import E2OWeight
from ..obs import metrics as _metrics
from ..obs import trace as _trace

__all__ = [
    "CategoryProbabilities",
    "sample_verdicts",
    "sample_measurement_noise",
    "CONVERGENCE_CHECKPOINTS",
]

#: How many running-mix checkpoints a traced sampler records (the
#: sample range is split into this many equal prefixes).
CONVERGENCE_CHECKPOINTS = 10


@dataclass(frozen=True, slots=True)
class CategoryProbabilities:
    """Empirical probability of each sustainability category."""

    samples: int
    strong: float
    weak: float
    less: float
    neutral: float

    @property
    def most_likely(self) -> Sustainability:
        best = max(
            (
                (self.strong, Sustainability.STRONG),
                (self.weak, Sustainability.WEAK),
                (self.less, Sustainability.LESS),
                (self.neutral, Sustainability.NEUTRAL),
            ),
            key=lambda pair: pair[0],
        )
        return best[1]


def _classified_probabilities(
    ncf_fw: np.ndarray, ncf_ft: np.ndarray, samples: int
) -> CategoryProbabilities:
    """Classify whole sample arrays at once and normalize the histogram.

    One vectorized pass (:func:`~repro.core.batch.classify_arrays` +
    ``np.bincount``) replaces the former per-sample Python loop; the
    verdicts are identical because the kernel shares the scalar path's
    boundary-tolerance arithmetic.
    """
    return _probabilities_from_codes(classify_arrays(ncf_fw, ncf_ft), samples)


def _probabilities_from_codes(
    codes: np.ndarray, samples: int
) -> CategoryProbabilities:
    counts = category_counts(codes)
    return CategoryProbabilities(
        samples=samples,
        strong=counts[Sustainability.STRONG] / samples,
        weak=counts[Sustainability.WEAK] / samples,
        less=counts[Sustainability.LESS] / samples,
        neutral=counts[Sustainability.NEUTRAL] / samples,
    )


def _running_mix(
    codes: np.ndarray, checkpoints: int = CONVERGENCE_CHECKPOINTS
) -> list[dict[str, object]]:
    """The running category mix at evenly spaced sample prefixes.

    Convergence telemetry for traced runs: each row holds the empirical
    category probabilities over the first *k* samples, so a trace shows
    whether 100k samples were 10x too many or not nearly enough. Pure
    observation — the final verdict probabilities are untouched.
    """
    samples = int(codes.size)
    checkpoints = max(1, min(checkpoints, samples))
    marks = sorted({round(samples * (i + 1) / checkpoints) for i in range(checkpoints)})
    rows: list[dict[str, object]] = []
    for k in marks:
        prefix = _probabilities_from_codes(codes[:k], k)
        rows.append(
            {
                "samples": k,
                "strong": prefix.strong,
                "weak": prefix.weak,
                "less": prefix.less,
                "neutral": prefix.neutral,
            }
        )
    return rows


def _observed_classify(
    ncf_fw: np.ndarray,
    ncf_ft: np.ndarray,
    samples: int,
    sampler: str,
    start_s: float,
    span_,
    registry: _metrics.MetricsRegistry,
) -> CategoryProbabilities:
    """Classify and, when observing, record throughput + convergence."""
    codes = classify_arrays(ncf_fw, ncf_ft)
    result = _probabilities_from_codes(codes, samples)
    seconds = time.perf_counter() - start_s
    if span_ is not _trace.NULL_SPAN:
        span_.set(
            seconds=seconds,
            samples_per_s=samples / seconds if seconds > 0 else float("inf"),
            most_likely=result.most_likely.value,
            convergence=_running_mix(codes),
        )
    if registry.enabled:
        labels = {"sampler": sampler}
        registry.counter(
            "focal_mc_samples_total", "Monte-Carlo samples classified", labels
        ).inc(samples)
        registry.gauge(
            "focal_mc_samples_per_s", "samples per second, last sampler call", labels
        ).set(samples / seconds if seconds > 0 else 0.0)
    return result


def sample_verdicts(
    design: DesignPoint,
    baseline: DesignPoint,
    weight: E2OWeight,
    *,
    samples: int = 10_000,
    seed: int = 0,
) -> CategoryProbabilities:
    """Sample alpha uniformly over the weight band and classify.

    For a fixed design pair the verdict only depends on alpha through
    the two NCF values, so this directly measures how often the
    conclusion would flip within the uncertainty band.
    """
    if samples < 1:
        raise ValidationError(f"samples must be >= 1, got {samples}")
    registry = _metrics.get_registry()
    with _trace.span(
        "mc.sample_verdicts",
        samples=samples,
        seed=seed,
        design=design.name,
        baseline=baseline.name,
        weight=weight.name,
    ) as sp:
        start_s = time.perf_counter()
        rng = np.random.default_rng(seed)
        lo, hi = weight.band
        alphas = rng.uniform(lo, hi, size=samples) if hi > lo else np.full(samples, lo)

        area = design.area_ratio(baseline)
        energy = design.energy_ratio(baseline)
        power = design.power_ratio(baseline)
        ncf_fw = alphas * area + (1.0 - alphas) * energy
        ncf_ft = alphas * area + (1.0 - alphas) * power
        return _observed_classify(
            ncf_fw, ncf_ft, samples, "sample_verdicts", start_s, sp, registry
        )


def sample_measurement_noise(
    design: DesignPoint,
    baseline: DesignPoint,
    alpha: float,
    *,
    relative_sigma: float = 0.1,
    samples: int = 10_000,
    seed: int = 0,
) -> CategoryProbabilities:
    """Verdict robustness to *measurement* uncertainty (paper §2).

    The paper's whole premise is that inputs are uncertain: area,
    energy and power figures come from McPAT runs, vendor claims and
    annotated die shots. This samples lognormal multiplicative noise of
    the given relative sigma on each of the design's three ratios
    (independently) at a fixed alpha, and reports how often the
    sustainability verdict survives.
    """
    if samples < 1:
        raise ValidationError(f"samples must be >= 1, got {samples}")
    if relative_sigma < 0.0:
        raise ValidationError(f"relative_sigma must be >= 0, got {relative_sigma}")
    registry = _metrics.get_registry()
    with _trace.span(
        "mc.sample_measurement_noise",
        samples=samples,
        seed=seed,
        design=design.name,
        baseline=baseline.name,
        alpha=alpha,
        relative_sigma=relative_sigma,
    ) as sp:
        start_s = time.perf_counter()
        rng = np.random.default_rng(seed)
        # Lognormal with median 1: exp(N(0, sigma_log)). For small sigma the
        # log-sigma approximates the relative sigma.
        sigma_log = np.log1p(relative_sigma)
        noise = rng.lognormal(mean=0.0, sigma=sigma_log, size=(samples, 3))

        area = design.area_ratio(baseline) * noise[:, 0]
        energy = design.energy_ratio(baseline) * noise[:, 1]
        power = design.power_ratio(baseline) * noise[:, 2]
        ncf_fw = alpha * area + (1.0 - alpha) * energy
        ncf_ft = alpha * area + (1.0 - alpha) * power
        return _observed_classify(
            ncf_fw, ncf_ft, samples, "sample_measurement_noise", start_s, sp, registry
        )
