"""Constrained selection over exploration results.

Two dual queries architects actually ask, phrased over the output of
:class:`~repro.dse.explorer.Explorer`:

* :func:`max_perf_subject_to_ncf` — the fastest design whose footprint
  does not exceed a cap (e.g. "at least carbon-neutral vs today":
  NCF <= 1);
* :func:`min_ncf_subject_to_perf` — the greenest design that still
  meets a performance floor.

Both respect the scenario choice and return ``None`` when the
constraint is infeasible over the swept space, rather than silently
relaxing it.
"""

from __future__ import annotations

from typing import Sequence

from ..core.errors import ConfigurationError
from ..core.scenario import UseScenario
from .explorer import ExplorationResult

__all__ = ["max_perf_subject_to_ncf", "min_ncf_subject_to_perf"]


def _ncf_of(result: ExplorationResult, scenario: UseScenario) -> float:
    return (
        result.ncf_fixed_work
        if scenario is UseScenario.FIXED_WORK
        else result.ncf_fixed_time
    )


def max_perf_subject_to_ncf(
    results: Sequence[ExplorationResult],
    ncf_cap: float = 1.0,
    scenario: UseScenario = UseScenario.FIXED_WORK,
    *,
    require_both_scenarios: bool = False,
) -> ExplorationResult | None:
    """Fastest design with NCF <= *ncf_cap*; ``None`` if infeasible.

    With ``require_both_scenarios`` the cap must hold under fixed-work
    *and* fixed-time — i.e. the design must be (at least) as strongly
    sustainable as the cap demands.
    """
    if not results:
        raise ConfigurationError("no exploration results to select from")
    if ncf_cap <= 0.0:
        raise ConfigurationError(f"ncf_cap must be > 0, got {ncf_cap}")
    feasible = [
        r
        for r in results
        if (
            (r.ncf_fixed_work <= ncf_cap and r.ncf_fixed_time <= ncf_cap)
            if require_both_scenarios
            else _ncf_of(r, scenario) <= ncf_cap
        )
    ]
    if not feasible:
        return None
    return max(feasible, key=lambda r: r.perf)


def min_ncf_subject_to_perf(
    results: Sequence[ExplorationResult],
    perf_floor: float,
    scenario: UseScenario = UseScenario.FIXED_WORK,
) -> ExplorationResult | None:
    """Greenest design with perf >= *perf_floor*; ``None`` if infeasible."""
    if not results:
        raise ConfigurationError("no exploration results to select from")
    if perf_floor <= 0.0:
        raise ConfigurationError(f"perf_floor must be > 0, got {perf_floor}")
    feasible = [r for r in results if r.perf >= perf_floor]
    if not feasible:
        return None
    return min(feasible, key=lambda r: _ncf_of(r, scenario))
