"""Shared-memory shard dispatch for the parallel columnar sweep path.

The two fast paths of :class:`~repro.dse.batch.BatchExplorer` used to
cancel each other out: the columnar kernels engaged only with
``workers == 0``, while the pool path shipped per-point pickled
``(factory, params)`` jobs and pickled whole DesignPoint objects back.
This module provides the plumbing that composes them:

* :class:`ColumnarBlock` — one flat buffer holding the sweep's
  area/perf/power/valid columns for *every* grid point, backed by a
  ``multiprocessing.shared_memory`` segment when the platform provides
  one, by an mmapped spill file when the sweep opts into out-of-core
  operation (``spill_dir=`` / spill threshold), and by private process
  memory otherwise (the pickle-array fallback);
* :class:`GridArena` — the sweep's *input* grid columns published once
  into a read-only sibling segment, so a shard job shrinks to
  ``(lo, hi, seq)`` and workers slice the resident columns locally
  instead of unpickling their slice from every task message;
* :func:`plan_shards` / :func:`plan_steal_runs` — contiguous,
  chunk-aligned ``[lo, hi)`` spans of the grid: the former statically
  sized (a few per worker), the latter geometrically shrinking toward
  the tail so one future per shard on the executor's shared call queue
  behaves like a work-stealing scheduler — idle workers pull the next
  shard, and stragglers can at most hold one tail-sized shard;
* worker-side state and entry points — the factory (and the shared
  segments) ship **once per pool** through :func:`init_factory_worker`
  / :func:`init_columnar_worker`; per-job payloads are parameter dicts
  (scalar pool path), ``(lo, hi, seq)`` index triples (resident grid),
  or axis columns (the no-shm fallback), and results come back as
  writes into the shared block (or compact numeric arrays when shared
  memory is unavailable). No ``DesignPoint`` ever crosses the process
  boundary.

Everything here is byte-neutral: the kernels run unchanged, the parent
re-reads the same float64/bool columns the single-process path would
have produced, and invalid rows are still re-evaluated scalar in the
parent to capture genuine ``DomainError`` objects.

The parent process mirrors the worker initialization via
:func:`set_worker_state` so :class:`~repro.resilience.supervisor.
SupervisedPool` degradation (jobs re-run in-process) evaluates the same
module-level functions the workers do.
"""

from __future__ import annotations

import mmap
import os
import tempfile
import time
from typing import Callable, Mapping

import numpy as np

from ..core.errors import ConfigurationError, DomainError
from ..obs import events as _events
from ..resilience import containment as _containment

__all__ = [
    "ColumnarBlock",
    "GridArena",
    "plan_shards",
    "plan_shard_runs",
    "plan_steal_runs",
    "live_blocks",
    "set_worker_state",
    "clear_worker_state",
    "init_factory_worker",
    "init_columnar_worker",
    "pool_evaluate",
    "eval_shard",
    "split_shard_job",
    "shard_job_point",
]

#: Bytes per grid point in a :class:`ColumnarBlock`:
#: three float64 result columns plus one bool validity flag.
BYTES_PER_POINT = 3 * 8 + 1

#: How many shards each worker is offered by the *static* planner: a few
#: per worker, so a slow shard (or a respawned worker) rebalances
#: instead of stalling the pool.
SHARDS_PER_WORKER = 4

#: Guided-scheduling divisor for :func:`plan_steal_runs`: each shard
#: takes ``remaining_chunks // (workers * STEAL_FACTOR)`` chunks, so
#: early shards are large (low dispatch overhead) and tail shards
#: shrink geometrically down to one chunk (a straggler can only hold
#: the queue for one chunk's worth of work).
STEAL_FACTOR = 2

#: Handle prefix distinguishing mmapped spill files from raw
#: shared-memory segment names in ``ColumnarBlock.name`` / ``attach``.
FILE_PREFIX = "file:"

#: Handles (shm segment names and ``file:`` spill paths) this process
#: created and has not yet unlinked — the leak detector the
#: interrupt-hygiene tests assert on.
_LIVE_NAMES: set[str] = set()

#: Per-process worker state, installed once per pool by the initializers
#: (and mirrored in the parent for in-process degradation).
_STATE: dict = {}


def live_blocks() -> frozenset[str]:
    """Segment handles created here and not yet unlinked (shm names
    plus ``file:`` spill paths)."""
    return frozenset(_LIVE_NAMES)


class _FileMap:
    """An mmapped spill file with the same surface as ``SharedMemory``.

    Exposes ``name`` (a ``file:``-prefixed handle), ``size``, ``buf``,
    ``close()`` and ``unlink()``, so :class:`ColumnarBlock` and
    :class:`GridArena` treat the out-of-core backing exactly like a
    shared-memory segment. Both sides map the file ``MAP_SHARED``, so
    worker writes are visible to the parent through the page cache
    without any explicit flush.
    """

    def __init__(self, path: str, size: int, create: bool) -> None:
        self.path = path
        self.name = FILE_PREFIX + path
        self.size = size
        if create:
            with open(path, "wb") as handle:
                handle.truncate(size)
        self._file = open(path, "r+b")
        try:
            self._mmap = mmap.mmap(self._file.fileno(), size)
        except Exception:
            self._file.close()
            raise
        self.buf: memoryview | None = memoryview(self._mmap)

    def close(self) -> None:
        buf, self.buf = self.buf, None
        if buf is not None:
            buf.release()
        self._mmap.close()
        self._file.close()

    def unlink(self) -> None:
        try:
            os.unlink(self.path)
        except FileNotFoundError:
            raise
        except OSError:  # pragma: no cover - spill dir torn down first
            pass


def _spill_path(spill_dir: str | os.PathLike | None, tag: str) -> str:
    if spill_dir is not None:
        os.makedirs(spill_dir, exist_ok=True)
    fd, path = tempfile.mkstemp(
        prefix=f"focal-{tag}-", suffix=".bin", dir=spill_dir
    )
    os.close(fd)
    return path


def _should_spill(
    nbytes: int,
    spill_dir: str | os.PathLike | None,
    spill_bytes: int | None,
) -> bool:
    """Whether a segment of *nbytes* goes out-of-core.

    A ``spill_bytes`` threshold spills any segment at or above it; a
    bare ``spill_dir`` (no threshold) opts every segment into the
    memmap backing.
    """
    if spill_bytes is not None:
        return nbytes >= spill_bytes
    return spill_dir is not None


def _create_segment(
    nbytes: int,
    tag: str,
    spill_dir: str | os.PathLike | None,
    spill_bytes: int | None,
):
    """A new shared segment: spill file when configured, else shm.

    Returns ``None`` when neither backing is available — callers fall
    back to private memory (block) or per-job columns (grid).
    """
    if _should_spill(nbytes, spill_dir, spill_bytes):
        try:
            return _FileMap(_spill_path(spill_dir, tag), nbytes, create=True)
        except Exception:
            pass
    try:
        from multiprocessing import shared_memory

        return shared_memory.SharedMemory(create=True, size=nbytes)
    except Exception:
        return None


def _attach_segment(handle: str, nbytes: int):
    """Attach to a parent-created segment by its handle.

    On Python < 3.13 shm attachment re-registers the segment with the
    ``resource_tracker`` (python/cpython#82300). Pool workers are
    children of the sweep's parent and share its tracker process, where
    registrations collapse into one set entry — so the re-register is
    harmless, and explicitly unregistering here would be wrong: it
    would strip the *parent's* registration and make its ``unlink``
    complain about an unknown name.
    """
    if handle.startswith(FILE_PREFIX):
        return _FileMap(handle[len(FILE_PREFIX) :], nbytes, create=False)
    from multiprocessing import shared_memory

    return shared_memory.SharedMemory(name=handle)


class ColumnarBlock:
    """The sweep's result columns over one flat buffer.

    Layout over ``total`` points: ``area``/``perf``/``power`` as
    consecutive float64 columns, then ``valid`` as a bool column. The
    buffer is a shared-memory segment when available (workers write
    their shard rows directly), an mmapped spill file when the sweep
    opts into out-of-core operation, and private memory otherwise
    (workers return arrays by pickle and the parent writes them).
    """

    def __init__(self, total: int, shm, owner: bool) -> None:
        self.total = total
        self._shm = shm
        self._owner = owner
        if shm is not None:
            buf = shm.buf
        else:
            self._local = bytearray(max(1, total * BYTES_PER_POINT))
            buf = memoryview(self._local)
        self.area = np.frombuffer(buf, dtype=np.float64, count=total, offset=0)
        self.perf = np.frombuffer(
            buf, dtype=np.float64, count=total, offset=8 * total
        )
        self.power = np.frombuffer(
            buf, dtype=np.float64, count=total, offset=16 * total
        )
        self.valid = np.frombuffer(
            buf, dtype=np.bool_, count=total, offset=24 * total
        )

    @classmethod
    def allocate(
        cls,
        total: int,
        *,
        spill_dir: str | os.PathLike | None = None,
        spill_bytes: int | None = None,
    ) -> "ColumnarBlock":
        """A new block: spill file when the out-of-core policy selects
        one, else shared memory when the platform allows.

        Any failure to create a shared segment (no /dev/shm, size
        limits, sandboxing) silently selects the private-memory
        fallback — the sweep then pays pickling for result columns,
        nothing else changes.
        """
        shm = _create_segment(
            max(1, total * BYTES_PER_POINT), "block", spill_dir, spill_bytes
        )
        if shm is None:
            return cls(total, None, owner=True)
        _LIVE_NAMES.add(shm.name)
        return cls(total, shm, owner=True)

    @classmethod
    def attach(cls, name: str, total: int) -> "ColumnarBlock":
        """Attach to the parent's segment (worker-side)."""
        return cls(
            total,
            _attach_segment(name, max(1, total * BYTES_PER_POINT)),
            owner=False,
        )

    @property
    def name(self) -> str | None:
        """Segment handle (``None`` for the private-memory fallback):
        a raw shm name, or a ``file:``-prefixed spill path."""
        return self._shm.name if self._shm is not None else None

    @property
    def backing(self) -> str:
        """``"shm"``, ``"file"`` or ``"local"``."""
        if self._shm is None:
            return "local"
        return "file" if isinstance(self._shm, _FileMap) else "shm"

    @property
    def nbytes(self) -> int:
        """Shared-memory bytes backing the block (0 otherwise)."""
        return self._shm.size if self.backing == "shm" else 0

    @property
    def spill_nbytes(self) -> int:
        """Spill-file bytes backing the block (0 unless out-of-core)."""
        return self._shm.size if self.backing == "file" else 0

    def write(
        self,
        start: int,
        stop: int,
        area: np.ndarray,
        perf: np.ndarray,
        power: np.ndarray,
        valid: np.ndarray,
    ) -> None:
        """Fill rows ``[start, stop)`` — idempotent, so re-dispatched
        shards (retry, respawn, degradation) may write twice."""
        self.area[start:stop] = area
        self.perf[start:stop] = perf
        self.power[start:stop] = power
        self.valid[start:stop] = valid

    def rows(
        self, start: int, stop: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Copies of rows ``[start, stop)`` — copies, not views, so the
        segment can be unlinked while results are still referenced."""
        return (
            np.array(self.area[start:stop]),
            np.array(self.perf[start:stop]),
            np.array(self.power[start:stop]),
            np.array(self.valid[start:stop]),
        )

    def release(self) -> None:
        """Drop the buffer views, close the mapping and (as the owner)
        unlink the segment. Safe to call more than once."""
        shm, self._shm = self._shm, None
        self.area = self.perf = self.power = self.valid = None  # type: ignore[assignment]
        if shm is None:
            return
        try:
            shm.close()
        except BufferError:  # pragma: no cover - stray exported view
            pass
        if self._owner:
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            _LIVE_NAMES.discard(shm.name)


#: Axis dtypes a :class:`GridArena` can host: bool, signed/unsigned
#: integer, float. Anything else (strings, objects) keeps the legacy
#: column-shipping job payloads.
_ARENA_KINDS = "biuf"


def _arena_layout(
    columns: Mapping[str, np.ndarray],
) -> tuple[list[tuple[str, str, int]], int] | None:
    """Pack axis columns into ``(name, dtype, offset)`` triples plus the
    total byte size, or ``None`` when a column cannot be hosted."""
    layout: list[tuple[str, str, int]] = []
    offset = 0
    for name, col in columns.items():
        arr = np.asarray(col)
        if arr.ndim != 1 or arr.dtype.kind not in _ARENA_KINDS:
            return None
        offset = -(-offset // 16) * 16  # 16-byte align every column
        layout.append((name, arr.dtype.str, offset))
        offset += arr.nbytes
    return layout, max(1, offset)


class GridArena:
    """The sweep's *input* grid columns, resident in one shared segment.

    Published once per sweep by the parent; workers attach through the
    pool initializer and slice ``[lo, hi)`` locally, so a shard job is
    three integers instead of a pickled column dict. Views handed out
    by :meth:`columns` are read-only — a factory scribbling on its
    inputs would otherwise corrupt every other shard's rows.
    """

    def __init__(
        self,
        segment,
        layout: list[tuple[str, str, int]],
        total: int,
        owner: bool,
    ) -> None:
        self._seg = segment
        self._owner = owner
        self.layout = layout
        self.total = total
        self._cols: dict[str, np.ndarray] = {}
        for name, dtype, offset in layout:
            view = np.frombuffer(
                segment.buf, dtype=np.dtype(dtype), count=total, offset=offset
            )
            self._cols[name] = view

    @classmethod
    def publish(
        cls,
        columns: Mapping[str, np.ndarray],
        *,
        spill_dir: str | os.PathLike | None = None,
        spill_bytes: int | None = None,
    ) -> "GridArena | None":
        """Copy *columns* into a new shared segment, or ``None`` when
        the columns cannot be hosted (non-numeric axes) or no shared
        backing is available — the sweep then ships columns per job."""
        if not columns:
            return None
        packed = _arena_layout(columns)
        if packed is None:
            return None
        layout, nbytes = packed
        total = len(next(iter(columns.values()))) if columns else 0
        segment = _create_segment(nbytes, "grid", spill_dir, spill_bytes)
        if segment is None:
            return None
        _LIVE_NAMES.add(segment.name)
        arena = cls(segment, layout, total, owner=True)
        for name, col in columns.items():
            arena._cols[name][:] = np.asarray(col)
        return arena

    @classmethod
    def attach(
        cls, handle: str, layout: list[tuple[str, str, int]], total: int
    ) -> "GridArena":
        """Attach to the parent's published grid (worker-side)."""
        _, _, last_offset = layout[-1]
        last_size = total * np.dtype(layout[-1][1]).itemsize
        return cls(
            _attach_segment(handle, max(1, last_offset + last_size)),
            layout,
            total,
            owner=False,
        )

    @property
    def name(self) -> str:
        return self._seg.name

    @property
    def backing(self) -> str:
        return "file" if isinstance(self._seg, _FileMap) else "shm"

    @property
    def nbytes(self) -> int:
        """Shared-memory bytes backing the arena (0 when spilled)."""
        return self._seg.size if self.backing == "shm" else 0

    @property
    def spill_nbytes(self) -> int:
        """Spill-file bytes backing the arena (0 unless out-of-core)."""
        return self._seg.size if self.backing == "file" else 0

    def columns(self, lo: int, hi: int) -> dict[str, np.ndarray]:
        """Read-only views of rows ``[lo, hi)`` of every axis column."""
        out: dict[str, np.ndarray] = {}
        for name, view in self._cols.items():
            sliced = view[lo:hi]
            sliced.flags.writeable = False
            out[name] = sliced
        return out

    def release(self) -> None:
        """Drop the views, close the mapping and (as the owner) unlink
        the segment. Safe to call more than once."""
        seg, self._seg = self._seg, None
        self._cols = {}
        if seg is None:
            return
        try:
            seg.close()
        except BufferError:  # pragma: no cover - stray exported view
            pass
        if self._owner:
            try:
                seg.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            _LIVE_NAMES.discard(seg.name)


def plan_shards(
    total: int, start: int, chunk_size: int, workers: int
) -> list[tuple[int, int]]:
    """Contiguous ``[lo, hi)`` spans covering ``[start, total)``.

    Spans are aligned to ``chunk_size`` boundaries (a checkpoint chunk
    never straddles two shards) and sized to roughly
    :data:`SHARDS_PER_WORKER` shards per worker, so one slow shard
    rebalances across the pool instead of serializing it.
    """
    if start >= total:
        return []
    return plan_shard_runs([(start, total)], chunk_size, workers)


def plan_shard_runs(
    runs: list[tuple[int, int]], chunk_size: int, workers: int
) -> list[tuple[int, int]]:
    """Statically sized shard spans over arbitrary pending point *runs*.

    Checkpoint resume skips a prefix, but a persistent result store can
    satisfy *any* subset of chunks — what remains to evaluate is a list
    of contiguous ``[lo, hi)`` point runs. Each run is split into
    chunk-aligned spans exactly like :func:`plan_shards` would split
    the whole grid, with the shard width budgeted over the total
    pending work so the :data:`SHARDS_PER_WORKER` balance holds across
    runs (a span never straddles two runs — the gap between them is
    already-known work whose block rows must stay untouched).
    """
    pending_chunks = sum(-(-(hi - lo) // chunk_size) for lo, hi in runs if hi > lo)
    if not pending_chunks:
        return []
    per_shard = max(
        1, -(-pending_chunks // (max(1, workers) * SHARDS_PER_WORKER))
    )
    span = per_shard * chunk_size
    return [
        (lo, min(lo + span, hi))
        for run_lo, hi in runs
        if hi > run_lo
        for lo in range(run_lo, hi, span)
    ]


def plan_steal_runs(
    runs: list[tuple[int, int]], chunk_size: int, workers: int
) -> list[tuple[int, int]]:
    """Guided shard spans for the work-stealing scheduler.

    Same coverage contract as :func:`plan_shard_runs` (chunk-aligned,
    never straddling a run), but sized geometrically: each successive
    shard takes ``remaining_chunks // (workers * STEAL_FACTOR)`` chunks
    (never less than one). Early shards are large — few task messages
    while every worker is busy anyway — and tail shards shrink toward
    single chunks, so when the queue drains, no worker can be left
    holding more than one chunk of work while the others idle. One
    executor future per span turns the pool's shared call queue into
    the steal queue: whichever worker goes idle first pulls the next
    span.
    """
    pending: list[tuple[int, int, int]] = []
    remaining = 0
    for lo, hi in runs:
        if hi > lo:
            chunks = -(-(hi - lo) // chunk_size)
            pending.append((lo, hi, chunks))
            remaining += chunks
    divisor = max(1, workers) * STEAL_FACTOR
    spans: list[tuple[int, int]] = []
    for lo, hi, chunks in pending:
        cursor = lo
        left = chunks
        while left > 0:
            take = min(left, max(1, remaining // divisor))
            span_hi = min(cursor + take * chunk_size, hi)
            spans.append((cursor, span_hi))
            cursor = span_hi
            left -= take
            remaining -= take
    return spans


# ----------------------------------------------------------------------
# Worker-side state and entry points
# ----------------------------------------------------------------------
def set_worker_state(
    factory: Callable,
    block: ColumnarBlock | None,
    grid: GridArena | None = None,
) -> None:
    """Install this process's sweep state (factory + shared segments).

    Called by the pool initializers in each worker and by the parent
    before dispatch, so in-process degradation and thread-pool
    executors evaluate exactly what worker processes would.
    """
    _STATE["factory"] = factory
    _STATE["block"] = block
    _STATE["grid"] = grid


def clear_worker_state() -> None:
    """Drop the sweep state (parent-side, after the pool is gone)."""
    _STATE.clear()
    _events.get_buffer().disable()


def init_factory_worker(
    factory: Callable, capture: bool = False, spill_dir: str | None = None
) -> None:
    """Pool initializer for the scalar path: the factory ships once per
    worker process, not once per job."""
    _events.init_worker(capture, spill_dir)
    set_worker_state(factory, None)


def init_columnar_worker(
    factory: Callable,
    shm_name: str | None,
    total: int,
    capture: bool = False,
    spill_dir: str | None = None,
    grid: tuple[str, list[tuple[str, str, int]], int] | None = None,
) -> None:
    """Pool initializer for the columnar path: factory plus one
    attachment each to the parent's result block and published grid
    arena (when it has them). *grid* is a ``(handle, layout, total)``
    descriptor — three small values, shipped once per worker.

    With *capture* the worker's event buffer is armed first, so the
    shared-memory attach itself lands on the timeline (``worker.init``).
    """
    _events.init_worker(capture, spill_dir)
    buf = _events.get_buffer()
    t0 = buf.now()
    block = ColumnarBlock.attach(shm_name, total) if shm_name else None
    arena = GridArena.attach(*grid) if grid is not None else None
    buf.add(
        "worker.init",
        start=t0,
        dur_s=buf.now() - t0,
        attach_s=buf.now() - t0,
        shm=bool(shm_name),
        grid=arena is not None,
    )
    set_worker_state(factory, block, arena)


def pool_evaluate(params: Mapping[str, object]):
    """Worker-side scalar factory call on the pool-shipped factory;
    ``DomainError`` travels back as a value, like the cache stores it."""
    _containment.beat()
    try:
        return _STATE["factory"](params)
    except DomainError as exc:
        return exc


def _shard_columns(job) -> tuple[int, int, Mapping[str, np.ndarray], int | None]:
    """Resolve a shard job to its columns.

    A job is ``(start, stop, payload)`` where the payload is either the
    column dict itself (legacy / no-arena fallback) or the shard's
    sequence number, in which case the columns are sliced from the
    process-resident :class:`GridArena`.
    """
    start, stop, payload = job
    if isinstance(payload, Mapping):
        return start, stop, payload, None
    arena = _STATE.get("grid")
    if arena is None:
        raise ConfigurationError(
            "resident shard job dispatched to a worker without a grid arena"
        )
    return start, stop, arena.columns(start, stop), payload


def eval_shard(job):
    """Run the vector kernel over one shard's columns.

    ``job`` is ``(start, stop, seq)`` when the grid is resident in a
    :class:`GridArena` (workers slice their columns locally) or
    ``(start, stop, columns)`` in the fallback. The factory's
    ``batch_arrays`` output lands in the shared block's rows
    ``[start, stop)`` when a block is attached; otherwise the columns
    are returned by value. Either way the reply is
    ``(start, stop, busy_seconds, worker_pid, arrays-or-None,
    events-or-None)`` — compact numbers, never DesignPoint objects.

    When this worker's event buffer is armed (pool initializer with
    ``capture=True``) the shard leaves a ``heartbeat`` instant plus
    ``shard``/``factory.compute``/``shm.write`` duration events, drained
    into the reply so the parent can merge them without extra IPC.
    """
    _containment.beat()
    start, stop, columns, seq = _shard_columns(job)
    factory = _STATE["factory"]
    buf = _events.get_buffer()
    capture = buf.enabled
    if capture:
        t0 = buf.now()
        buf.add("heartbeat", start=t0, lo=start, hi=stop)
    begin = time.perf_counter()
    arrays = factory.batch_arrays(columns)
    busy = time.perf_counter() - begin
    if len(arrays) != stop - start:
        raise ConfigurationError(
            f"batch_arrays returned {len(arrays)} rows for a "
            f"{stop - start}-point shard"
        )
    block = _STATE.get("block")
    if block is None:
        if capture:
            end = buf.now()
            buf.add("factory.compute", start=end - busy, dur_s=busy)
            buf.add(
                "shard",
                start=t0,
                dur_s=end - t0,
                lo=start,
                hi=stop,
                seq=seq,
                points=stop - start,
                compute_s=busy,
                shm_s=0.0,
            )
        return (
            start,
            stop,
            busy,
            os.getpid(),
            (arrays.area, arrays.perf, arrays.power, arrays.valid),
            buf.drain() if capture else None,
        )
    shm_begin = time.perf_counter()
    block.write(start, stop, arrays.area, arrays.perf, arrays.power, arrays.valid)
    shm_s = time.perf_counter() - shm_begin
    if capture:
        end = buf.now()
        buf.add("factory.compute", start=end - shm_s - busy, dur_s=busy)
        buf.add("shm.write", start=end - shm_s, dur_s=shm_s)
        buf.add(
            "shard",
            start=t0,
            dur_s=end - t0,
            lo=start,
            hi=stop,
            seq=seq,
            points=stop - start,
            compute_s=busy,
            shm_s=shm_s,
        )
    return (start, stop, busy, os.getpid(), None, buf.drain() if capture else None)


def split_shard_job(job):
    """Halve one shard job for quarantine bisection, or ``None``.

    ``job`` is the tuple :func:`eval_shard` takes. Resident-grid jobs
    split by index arithmetic alone; fallback jobs slice the same
    column arrays, so bisection probes evaluate exactly the rows the
    original shard would have. A single-row shard is atomic (returns
    ``None``) — that row *is* the candidate poison point.
    """
    start, stop, payload = job
    if stop - start <= 1:
        return None
    mid = start + (stop - start) // 2
    if not isinstance(payload, Mapping):
        return ((start, mid, payload), (mid, stop, payload))
    cut = mid - start
    left = {name: np.asarray(col)[:cut] for name, col in payload.items()}
    right = {name: np.asarray(col)[cut:] for name, col in payload.items()}
    return ((start, mid, left), (mid, stop, right))


def shard_job_point(job):
    """The grid-point parameters of a single-row shard job (for the
    quarantine ledger), or ``None`` for a multi-row shard."""
    start, stop, payload = job
    if stop - start != 1:
        return None
    if not isinstance(payload, Mapping):
        payload = _STATE["grid"].columns(start, stop)
    return {name: np.asarray(col)[0].item() for name, col in payload.items()}
