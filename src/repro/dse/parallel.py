"""Shared-memory shard dispatch for the parallel columnar sweep path.

The two fast paths of :class:`~repro.dse.batch.BatchExplorer` used to
cancel each other out: the columnar kernels engaged only with
``workers == 0``, while the pool path shipped per-point pickled
``(factory, params)`` jobs and pickled whole DesignPoint objects back.
This module provides the plumbing that composes them:

* :class:`ColumnarBlock` — one flat buffer holding the sweep's
  area/perf/power/valid columns for *every* grid point, backed by a
  ``multiprocessing.shared_memory`` segment when the platform provides
  one and by private process memory otherwise (the pickle-array
  fallback);
* :func:`plan_shards` — contiguous, chunk-aligned ``[lo, hi)`` spans of
  the grid, a few per worker so stragglers rebalance;
* worker-side state and entry points — the factory (and the shared
  block) ship **once per pool** through :func:`init_factory_worker` /
  :func:`init_columnar_worker`; per-job payloads are only parameter
  dicts (scalar pool path) or axis columns (columnar path), and results
  come back as writes into the shared block (or compact numeric arrays
  when shared memory is unavailable). No ``DesignPoint`` ever crosses
  the process boundary.

Everything here is byte-neutral: the kernels run unchanged, the parent
re-reads the same float64/bool columns the single-process path would
have produced, and invalid rows are still re-evaluated scalar in the
parent to capture genuine ``DomainError`` objects.

The parent process mirrors the worker initialization via
:func:`set_worker_state` so :class:`~repro.resilience.supervisor.
SupervisedPool` degradation (jobs re-run in-process) evaluates the same
module-level functions the workers do.
"""

from __future__ import annotations

import os
import time
from typing import Callable, Mapping

import numpy as np

from ..core.errors import ConfigurationError, DomainError
from ..obs import events as _events
from ..resilience import containment as _containment

__all__ = [
    "ColumnarBlock",
    "plan_shards",
    "plan_shard_runs",
    "live_blocks",
    "set_worker_state",
    "clear_worker_state",
    "init_factory_worker",
    "init_columnar_worker",
    "pool_evaluate",
    "eval_shard",
    "split_shard_job",
    "shard_job_point",
]

#: Bytes per grid point in a :class:`ColumnarBlock`:
#: three float64 result columns plus one bool validity flag.
BYTES_PER_POINT = 3 * 8 + 1

#: How many shards each worker is offered: a few per worker, so a slow
#: shard (or a respawned worker) rebalances instead of stalling the pool.
SHARDS_PER_WORKER = 4

#: Names of shared-memory segments this process created and has not yet
#: unlinked — the leak detector the interrupt-hygiene tests assert on.
_LIVE_NAMES: set[str] = set()

#: Per-process worker state, installed once per pool by the initializers
#: (and mirrored in the parent for in-process degradation).
_STATE: dict = {}


def live_blocks() -> frozenset[str]:
    """Shared-memory segment names created here and not yet unlinked."""
    return frozenset(_LIVE_NAMES)


class ColumnarBlock:
    """The sweep's result columns over one flat buffer.

    Layout over ``total`` points: ``area``/``perf``/``power`` as
    consecutive float64 columns, then ``valid`` as a bool column. The
    buffer is a shared-memory segment when available (workers write
    their shard rows directly) and private memory otherwise (workers
    return arrays by pickle and the parent writes them).
    """

    def __init__(self, total: int, shm, owner: bool) -> None:
        self.total = total
        self._shm = shm
        self._owner = owner
        if shm is not None:
            buf = shm.buf
        else:
            self._local = bytearray(max(1, total * BYTES_PER_POINT))
            buf = memoryview(self._local)
        self.area = np.frombuffer(buf, dtype=np.float64, count=total, offset=0)
        self.perf = np.frombuffer(
            buf, dtype=np.float64, count=total, offset=8 * total
        )
        self.power = np.frombuffer(
            buf, dtype=np.float64, count=total, offset=16 * total
        )
        self.valid = np.frombuffer(
            buf, dtype=np.bool_, count=total, offset=24 * total
        )

    @classmethod
    def allocate(cls, total: int) -> "ColumnarBlock":
        """A new block, shared-memory backed when the platform allows.

        Any failure to create the segment (no /dev/shm, size limits,
        sandboxing) silently selects the private-memory fallback — the
        sweep then pays pickling for result columns, nothing else
        changes.
        """
        try:
            from multiprocessing import shared_memory

            shm = shared_memory.SharedMemory(
                create=True, size=max(1, total * BYTES_PER_POINT)
            )
        except Exception:
            return cls(total, None, owner=True)
        _LIVE_NAMES.add(shm.name)
        return cls(total, shm, owner=True)

    @classmethod
    def attach(cls, name: str, total: int) -> "ColumnarBlock":
        """Attach to the parent's segment (worker-side).

        On Python < 3.13 attachment re-registers the segment with the
        ``resource_tracker`` (python/cpython#82300). Pool workers are
        children of the sweep's parent and share its tracker process,
        where registrations collapse into one set entry — so the
        re-register is harmless, and explicitly unregistering here
        would be wrong: it would strip the *parent's* registration and
        make its ``unlink`` complain about an unknown name.
        """
        from multiprocessing import shared_memory

        return cls(total, shared_memory.SharedMemory(name=name), owner=False)

    @property
    def name(self) -> str | None:
        """Segment name (``None`` for the private-memory fallback)."""
        return self._shm.name if self._shm is not None else None

    @property
    def nbytes(self) -> int:
        """Shared-memory bytes backing the block (0 for the fallback)."""
        return self._shm.size if self._shm is not None else 0

    def write(
        self,
        start: int,
        stop: int,
        area: np.ndarray,
        perf: np.ndarray,
        power: np.ndarray,
        valid: np.ndarray,
    ) -> None:
        """Fill rows ``[start, stop)`` — idempotent, so re-dispatched
        shards (retry, respawn, degradation) may write twice."""
        self.area[start:stop] = area
        self.perf[start:stop] = perf
        self.power[start:stop] = power
        self.valid[start:stop] = valid

    def rows(
        self, start: int, stop: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Copies of rows ``[start, stop)`` — copies, not views, so the
        segment can be unlinked while results are still referenced."""
        return (
            np.array(self.area[start:stop]),
            np.array(self.perf[start:stop]),
            np.array(self.power[start:stop]),
            np.array(self.valid[start:stop]),
        )

    def release(self) -> None:
        """Drop the buffer views, close the mapping and (as the owner)
        unlink the segment. Safe to call more than once."""
        shm, self._shm = self._shm, None
        self.area = self.perf = self.power = self.valid = None  # type: ignore[assignment]
        if shm is None:
            return
        try:
            shm.close()
        except BufferError:  # pragma: no cover - stray exported view
            pass
        if self._owner:
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            _LIVE_NAMES.discard(shm.name)


def plan_shards(
    total: int, start: int, chunk_size: int, workers: int
) -> list[tuple[int, int]]:
    """Contiguous ``[lo, hi)`` spans covering ``[start, total)``.

    Spans are aligned to ``chunk_size`` boundaries (a checkpoint chunk
    never straddles two shards) and sized to roughly
    :data:`SHARDS_PER_WORKER` shards per worker, so one slow shard
    rebalances across the pool instead of serializing it.
    """
    if start >= total:
        return []
    return plan_shard_runs([(start, total)], chunk_size, workers)


def plan_shard_runs(
    runs: list[tuple[int, int]], chunk_size: int, workers: int
) -> list[tuple[int, int]]:
    """Shard spans over arbitrary pending point *runs*, not just a
    suffix of the grid.

    Checkpoint resume skips a prefix, but a persistent result store can
    satisfy *any* subset of chunks — what remains to evaluate is a list
    of contiguous ``[lo, hi)`` point runs. Each run is split into
    chunk-aligned spans exactly like :func:`plan_shards` would split
    the whole grid, with the shard width budgeted over the total
    pending work so the :data:`SHARDS_PER_WORKER` balance holds across
    runs (a span never straddles two runs — the gap between them is
    already-known work whose block rows must stay untouched).
    """
    pending_chunks = sum(-(-(hi - lo) // chunk_size) for lo, hi in runs if hi > lo)
    if not pending_chunks:
        return []
    per_shard = max(
        1, -(-pending_chunks // (max(1, workers) * SHARDS_PER_WORKER))
    )
    span = per_shard * chunk_size
    return [
        (lo, min(lo + span, hi))
        for run_lo, hi in runs
        if hi > run_lo
        for lo in range(run_lo, hi, span)
    ]


# ----------------------------------------------------------------------
# Worker-side state and entry points
# ----------------------------------------------------------------------
def set_worker_state(factory: Callable, block: ColumnarBlock | None) -> None:
    """Install this process's sweep state (factory + optional block).

    Called by the pool initializers in each worker and by the parent
    before dispatch, so in-process degradation and thread-pool
    executors evaluate exactly what worker processes would.
    """
    _STATE["factory"] = factory
    _STATE["block"] = block


def clear_worker_state() -> None:
    """Drop the sweep state (parent-side, after the pool is gone)."""
    _STATE.clear()
    _events.get_buffer().disable()


def init_factory_worker(
    factory: Callable, capture: bool = False, spill_dir: str | None = None
) -> None:
    """Pool initializer for the scalar path: the factory ships once per
    worker process, not once per job."""
    _events.init_worker(capture, spill_dir)
    set_worker_state(factory, None)


def init_columnar_worker(
    factory: Callable,
    shm_name: str | None,
    total: int,
    capture: bool = False,
    spill_dir: str | None = None,
) -> None:
    """Pool initializer for the columnar path: factory plus one
    attachment to the parent's shared block (when it has one).

    With *capture* the worker's event buffer is armed first, so the
    shared-memory attach itself lands on the timeline (``worker.init``).
    """
    _events.init_worker(capture, spill_dir)
    buf = _events.get_buffer()
    t0 = buf.now()
    block = ColumnarBlock.attach(shm_name, total) if shm_name else None
    buf.add(
        "worker.init",
        start=t0,
        dur_s=buf.now() - t0,
        attach_s=buf.now() - t0,
        shm=bool(shm_name),
    )
    set_worker_state(factory, block)


def pool_evaluate(params: Mapping[str, object]):
    """Worker-side scalar factory call on the pool-shipped factory;
    ``DomainError`` travels back as a value, like the cache stores it."""
    _containment.beat()
    try:
        return _STATE["factory"](params)
    except DomainError as exc:
        return exc


def eval_shard(job: tuple[int, int, Mapping[str, np.ndarray]]):
    """Run the vector kernel over one shard's columns.

    ``job`` is ``(start, stop, columns)``. The factory's
    ``batch_arrays`` output lands in the shared block's rows
    ``[start, stop)`` when a block is attached; otherwise the columns
    are returned by value. Either way the reply is
    ``(start, stop, busy_seconds, worker_pid, arrays-or-None,
    events-or-None)`` — compact numbers, never DesignPoint objects.

    When this worker's event buffer is armed (pool initializer with
    ``capture=True``) the shard leaves a ``heartbeat`` instant plus
    ``shard``/``factory.compute``/``shm.write`` duration events, drained
    into the reply so the parent can merge them without extra IPC.
    """
    start, stop, columns = job
    _containment.beat()
    factory = _STATE["factory"]
    buf = _events.get_buffer()
    capture = buf.enabled
    if capture:
        t0 = buf.now()
        buf.add("heartbeat", start=t0, lo=start, hi=stop)
    begin = time.perf_counter()
    arrays = factory.batch_arrays(columns)
    busy = time.perf_counter() - begin
    if len(arrays) != stop - start:
        raise ConfigurationError(
            f"batch_arrays returned {len(arrays)} rows for a "
            f"{stop - start}-point shard"
        )
    block = _STATE.get("block")
    if block is None:
        if capture:
            end = buf.now()
            buf.add("factory.compute", start=end - busy, dur_s=busy)
            buf.add(
                "shard",
                start=t0,
                dur_s=end - t0,
                lo=start,
                hi=stop,
                points=stop - start,
                compute_s=busy,
                shm_s=0.0,
            )
        return (
            start,
            stop,
            busy,
            os.getpid(),
            (arrays.area, arrays.perf, arrays.power, arrays.valid),
            buf.drain() if capture else None,
        )
    shm_begin = time.perf_counter()
    block.write(start, stop, arrays.area, arrays.perf, arrays.power, arrays.valid)
    shm_s = time.perf_counter() - shm_begin
    if capture:
        end = buf.now()
        buf.add("factory.compute", start=end - shm_s - busy, dur_s=busy)
        buf.add("shm.write", start=end - shm_s, dur_s=shm_s)
        buf.add(
            "shard",
            start=t0,
            dur_s=end - t0,
            lo=start,
            hi=stop,
            points=stop - start,
            compute_s=busy,
            shm_s=shm_s,
        )
    return (start, stop, busy, os.getpid(), None, buf.drain() if capture else None)


def split_shard_job(job):
    """Halve one shard job for quarantine bisection, or ``None``.

    ``job`` is the ``(start, stop, columns)`` tuple :func:`eval_shard`
    takes; the halves slice the same column arrays, so bisection probes
    evaluate exactly the rows the original shard would have. A
    single-row shard is atomic (returns ``None``) — that row *is* the
    candidate poison point.
    """
    start, stop, columns = job
    if stop - start <= 1:
        return None
    mid = start + (stop - start) // 2
    cut = mid - start
    left = {name: np.asarray(col)[:cut] for name, col in columns.items()}
    right = {name: np.asarray(col)[cut:] for name, col in columns.items()}
    return ((start, mid, left), (mid, stop, right))


def shard_job_point(job):
    """The grid-point parameters of a single-row shard job (for the
    quarantine ledger), or ``None`` for a multi-row shard."""
    start, stop, columns = job
    if stop - start != 1:
        return None
    return {name: np.asarray(col)[0].item() for name, col in columns.items()}
