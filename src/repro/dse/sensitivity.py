"""One-at-a-time sensitivity (tornado) analysis.

FOCAL's answer to data uncertainty is sweeping parameters; a tornado
analysis ranks which parameter's uncertainty moves a metric the most.
Used by the examples and the ablation benchmarks (e.g. how sensitive
Finding #8 is to the unquantified core/cache energy split).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, MutableMapping

from ..core.errors import ConfigurationError
from .batch import params_key

__all__ = ["SensitivityEntry", "tornado", "cached_metric"]

Metric = Callable[[Mapping[str, float]], float]


def cached_metric(
    metric: Metric,
    cache: MutableMapping[tuple, float] | None = None,
) -> Metric:
    """Memoize *metric* on its parameter mapping.

    Uses the same parameter-tuple key scheme as
    :class:`~repro.dse.batch.FactoryCache`, so repeated tornado runs
    (e.g. re-ranking after narrowing one range) never re-evaluate a
    design. Pass an explicit *cache* mapping to share it across calls.
    """
    store: MutableMapping[tuple, float] = {} if cache is None else cache

    def evaluate(params: Mapping[str, float]) -> float:
        key = params_key(params)
        try:
            return store[key]
        except KeyError:
            store[key] = value = metric(params)
            return value

    return evaluate


@dataclass(frozen=True, slots=True)
class SensitivityEntry:
    """Metric swing caused by one parameter's range."""

    parameter: str
    low_value: float
    high_value: float
    metric_at_low: float
    metric_at_high: float
    baseline_metric: float

    @property
    def swing(self) -> float:
        """Total metric excursion across the parameter's range."""
        return abs(self.metric_at_high - self.metric_at_low)

    @property
    def signed_slope(self) -> float:
        """Direction: > 0 when the metric rises with the parameter."""
        if self.high_value == self.low_value:
            return 0.0
        return (self.metric_at_high - self.metric_at_low) / (
            self.high_value - self.low_value
        )


def tornado(
    metric: Metric,
    nominal: Mapping[str, float],
    ranges: Mapping[str, tuple[float, float]],
    *,
    cache: MutableMapping[tuple, float] | None = None,
) -> list[SensitivityEntry]:
    """One-at-a-time sensitivity of *metric* around *nominal*.

    For each parameter in *ranges*, the metric is evaluated with that
    parameter at its low and high end while all others stay nominal.
    Entries come back sorted by decreasing swing — the tornado order.

    Pass a *cache* mapping (see :func:`cached_metric`) to share metric
    evaluations across repeated tornado runs; a re-sweep over
    already-seen parameter points then costs no metric calls at all.
    """
    if not ranges:
        raise ConfigurationError("tornado requires at least one parameter range")
    unknown = set(ranges) - set(nominal)
    if unknown:
        raise ConfigurationError(f"ranges name unknown parameters: {sorted(unknown)}")
    if cache is not None:
        metric = cached_metric(metric, cache)
    baseline_metric = metric(nominal)
    entries: list[SensitivityEntry] = []
    for name, (low, high) in ranges.items():
        low_params = dict(nominal)
        low_params[name] = low
        high_params = dict(nominal)
        high_params[name] = high
        entries.append(
            SensitivityEntry(
                parameter=name,
                low_value=low,
                high_value=high,
                metric_at_low=metric(low_params),
                metric_at_high=metric(high_params),
                baseline_metric=baseline_metric,
            )
        )
    entries.sort(key=lambda entry: entry.swing, reverse=True)
    return entries
