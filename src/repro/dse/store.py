"""Persistent fingerprint-keyed result store with chunk-granular reuse.

:class:`~repro.dse.batch.FactoryCache` memoizes within one process and
:class:`~repro.resilience.checkpoint.CheckpointStore` resumes one
interrupted run; both forget everything the moment the process exits or
the grid changes shape. This module is the third tier: a persistent,
content-addressed store of factory outcomes that any later sweep of the
same factory can read — a warm re-sweep loads byte-identical outcomes
from disk instead of recomputing, and a **delta sweep** over a grid that
merely *overlaps* a stored one evaluates only the new points and
stitches the rest from the store.

Keying follows the checkpoint fingerprints: the factory's identity is
:func:`~repro.resilience.checkpoint.describe_factory`, and every grid
point is reduced to a canonical key string with ``float.hex`` encoding
for floats, so two parameter dicts collide exactly when the factory
would compute bit-identical outcomes for them. Nothing else enters the
key — not chunk size, not worker count, not baseline or weight — so a
store written at ``chunk_size=4096, workers=4`` serves a reader at
``chunk_size=100, workers=0`` bit-exactly (outcomes depend only on
``factory(params)``).

Two tiers:

* an in-process LRU over decoded outcome chunks (bounded,
  stats-instrumented like :class:`~repro.dse.batch.CacheStats`), so
  repeated probes within one process never touch disk twice;
* an atomic on-disk tier: every file is written
  temp → ``fsync`` → ``os.replace`` and carries a SHA-256 checksum over
  its canonical payload. Corruption is never an error and never a wrong
  answer — a damaged file is discarded, counted in
  ``focal_store_corrupt_total``, and the affected points recompute.

On-disk layout under the store root::

    focal-store.json                    # marker: {"format": "focal-store/1"}
    sweeps/<fp>/index.json              # point-key -> object row map
    sweeps/<fp>/objects/<sha256>.json   # one stored chunk of outcomes
    mc/<fp>/meta.json                   # the segment stream's fingerprint
    mc/<fp>/<start>-<count>.json        # Monte-Carlo rng-stream segment

``<fp>`` is a hash prefix of the factory description (sweeps) or the
sampler fingerprint (Monte-Carlo). Objects are content-addressed by the
SHA-256 of their canonical payload, so identical chunks written twice
dedupe into one file. ``ResultStore.gc`` removes temp litter, orphaned
objects and corrupt files, and with ``max_bytes`` evicts whole
fingerprints oldest-first until the store fits the budget.
"""

from __future__ import annotations

import json
import os
import time
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping, Sequence

import numpy as np

from ..core.design import DesignPoint
from ..core.errors import DomainError, QuarantinedPoint, ValidationError
from ..obs import metrics as _metrics
from ..obs.log import get_logger, kv
from ..resilience.checkpoint import (
    TRANSIENT_DISK_ERRNOS,
    atomic_write_text,
    canonical_json,
    decode_outcomes,
    describe_factory,
    encode_outcomes,
    sha256_hex,
)

__all__ = [
    "STORE_FORMAT",
    "StoreStats",
    "ResultStore",
    "SweepStoreSession",
    "ChunkProbe",
    "point_store_key",
    "chunk_store_key",
]

#: Format tag written into (and required from) every store document.
STORE_FORMAT = "focal-store/1"

#: Name of the marker file identifying a directory as a result store
#: (``gc`` refuses to delete anything from a directory without it).
MARKER_NAME = "focal-store.json"

#: Sweep sessions persist their index after this many newly stored
#: chunks (and once more at sweep end), bounding data loss on a crash.
FLUSH_EVERY_CHUNKS = 16


# ----------------------------------------------------------------------
# Point/chunk keys
#
# A point key must be equal exactly when the factory would compute the
# identical outcome: floats go through float.hex (bit-exact, like the
# checkpoint fingerprints), other JSON scalars keep their type tag so
# int 2 and float 2.0 never alias (a conservative miss, never a wrong
# answer).
# ----------------------------------------------------------------------
def _encode_value(value: object) -> str:
    if isinstance(value, bool):
        return "b1" if value else "b0"
    if isinstance(value, (int, np.integer)):
        return f"i{int(value)}"
    if isinstance(value, str):
        return f"s{value}"
    if value is None:
        return "n"
    return "f" + float(value).hex()


def point_store_key(params: Mapping[str, object]) -> str:
    """The canonical store key of one grid point (axis-order free)."""
    return "\x1e".join(
        f"{name}={_encode_value(params[name])}" for name in sorted(params)
    )


def chunk_store_key(keys: Sequence[str]) -> str:
    """One hash for a whole chunk of point keys — the fast path a warm
    re-sweep with unchanged chunking hits (one probe, not N)."""
    return sha256_hex("\x1f".join(keys))


def _fingerprint_hash(payload: object) -> str:
    return sha256_hex(canonical_json(payload))[:16]


# ----------------------------------------------------------------------
# Stats
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StoreStats:
    """One consistent snapshot of a :class:`ResultStore`'s counters.

    Hits and misses count *entries served* — grid points for sweep
    probes, samples for Monte-Carlo segments — mirroring how
    :class:`~repro.dse.batch.CacheStats` counts lookups.
    """

    memory_hits: int
    disk_hits: int
    misses: int
    corrupt: int
    memory_evictions: int
    objects_written: int
    segments_written: int
    bytes_read: int
    bytes_written: int
    recovered_objects: int = 0
    disk_fallback: bool = False

    @property
    def hits(self) -> int:
        """Entries served from either tier."""
        return self.memory_hits + self.disk_hits

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        """Hits over lookups; 0.0 before any lookup happened."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict[str, object]:
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "hit_ratio": self.hit_ratio,
            "corrupt": self.corrupt,
            "memory_evictions": self.memory_evictions,
            "objects_written": self.objects_written,
            "segments_written": self.segments_written,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "recovered_objects": self.recovered_objects,
            "disk_fallback": self.disk_fallback,
        }


@dataclass
class ChunkProbe:
    """What the store knows about one grid chunk.

    ``outcomes`` has one slot per chunk row — a decoded outcome for
    stored points, ``None`` for rows the sweep must still evaluate
    (their indices are in ``missing``).
    """

    keys: list[str]
    chunk_hash: str
    outcomes: list[DesignPoint | DomainError | None]
    missing: list[int]
    memory_points: int = 0
    disk_points: int = 0

    @property
    def hit_points(self) -> int:
        return self.memory_points + self.disk_points

    @property
    def complete(self) -> bool:
        """Every row of the chunk came from the store."""
        return not self.missing


# ----------------------------------------------------------------------
# The store
# ----------------------------------------------------------------------
class ResultStore:
    """A persistent, content-addressed store of factory outcomes.

    Parameters
    ----------
    root:
        Store directory (created on first write). Refuses a non-empty
        directory that is not a store — the marker file guards ``gc``
        and plain writes alike from clobbering unrelated data.
    max_memory_entries:
        LRU bound of the in-process tier, in decoded chunk objects /
        Monte-Carlo segments (not points).
    """

    def __init__(
        self, root: str | os.PathLike, *, max_memory_entries: int = 64
    ) -> None:
        if max_memory_entries < 0:
            raise ValidationError(
                f"max_memory_entries must be >= 0, got {max_memory_entries}"
            )
        self.root = Path(root)
        self.max_memory_entries = max_memory_entries
        self._memory: OrderedDict[tuple, object] = OrderedDict()
        self._memory_hits = 0
        self._disk_hits = 0
        self._misses = 0
        self._corrupt = 0
        self._memory_evictions = 0
        self._objects_written = 0
        self._segments_written = 0
        self._bytes_read = 0
        self._bytes_written = 0
        self._recovered_objects = 0
        self._disk_disabled = False
        if self.root.exists():
            marker = self.root / MARKER_NAME
            if not marker.exists() and any(self.root.iterdir()):
                raise ValidationError(
                    f"{self.root} exists, is not empty and has no "
                    f"{MARKER_NAME} marker — refusing to treat it as a "
                    "result store"
                )

    @classmethod
    def coerce(
        cls, value: "ResultStore | str | os.PathLike | None"
    ) -> "ResultStore | None":
        """``None`` passes through; paths become stores."""
        if value is None or isinstance(value, cls):
            return value
        return cls(value)

    # -- stats ---------------------------------------------------------
    def stats(self) -> StoreStats:
        """Snapshot of the per-process counters."""
        return StoreStats(
            memory_hits=self._memory_hits,
            disk_hits=self._disk_hits,
            misses=self._misses,
            corrupt=self._corrupt,
            memory_evictions=self._memory_evictions,
            objects_written=self._objects_written,
            segments_written=self._segments_written,
            bytes_read=self._bytes_read,
            bytes_written=self._bytes_written,
            recovered_objects=self._recovered_objects,
            disk_fallback=self._disk_disabled,
        )

    def reset(self) -> None:
        """Zero the counters (keeps the memory tier)."""
        self._memory_hits = self._disk_hits = self._misses = 0
        self._corrupt = self._memory_evictions = 0
        self._objects_written = self._segments_written = 0
        self._bytes_read = self._bytes_written = 0
        self._recovered_objects = 0

    def _count_hits(self, tier: str, n: int) -> None:
        if not n:
            return
        if tier == "memory":
            self._memory_hits += n
        else:
            self._disk_hits += n
        registry = _metrics.get_registry()
        if registry.enabled:
            registry.counter(
                "focal_store_hits_total",
                "result-store entries served, by tier",
                labels={"tier": tier},
            ).inc(n)

    def _count_misses(self, n: int) -> None:
        if not n:
            return
        self._misses += n
        registry = _metrics.get_registry()
        if registry.enabled:
            registry.counter(
                "focal_store_misses_total",
                "result-store entries that had to be computed",
            ).inc(n)

    def _note_corrupt(self, path: Path, reason: str) -> None:
        self._corrupt += 1
        get_logger().warning(
            kv("store.corrupt", path=str(path), reason=reason)
        )
        registry = _metrics.get_registry()
        if registry.enabled:
            registry.counter(
                "focal_store_corrupt_total",
                "corrupt result-store files discarded (recomputed)",
            ).inc()

    # -- memory tier ---------------------------------------------------
    def _memory_get(self, key: tuple):
        entry = self._memory.get(key)
        if entry is not None:
            self._memory.move_to_end(key)
        return entry

    def _memory_put(self, key: tuple, value: object) -> None:
        if self.max_memory_entries == 0:
            return
        self._memory[key] = value
        self._memory.move_to_end(key)
        while len(self._memory) > self.max_memory_entries:
            self._memory.popitem(last=False)
            self._memory_evictions += 1
            registry = _metrics.get_registry()
            if registry.enabled:
                registry.counter(
                    "focal_store_memory_evictions_total",
                    "decoded entries evicted from the store's LRU tier",
                ).inc()

    # -- disk tier -----------------------------------------------------
    def _ensure_root(self) -> None:
        marker = self.root / MARKER_NAME
        if not marker.exists():
            self._write_document(marker, {"marker": STORE_FORMAT})

    def _write_document(self, path: Path, payload: object) -> bool:
        """Atomic checksummed write (temp → fsync → rename), the same
        durability contract checkpoint files carry.

        Transient disk faults (EIO/ENOSPC) are retried inside
        :func:`~repro.resilience.checkpoint.atomic_write_text`; when the
        retry budget is exhausted the store degrades to memory-only for
        the rest of the process instead of failing the sweep — reads
        keep working, writes become no-ops (returning ``False``), and
        the degradation is visible in stats and
        ``focal_store_disk_fallback_total``.
        """
        if self._disk_disabled:
            return False
        body = canonical_json(payload)
        document = canonical_json(
            {"format": STORE_FORMAT, "sha256": sha256_hex(body), "payload": payload}
        )
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            atomic_write_text(path, document)
        except OSError as exc:
            if exc.errno not in TRANSIENT_DISK_ERRNOS:
                raise
            self._disk_disabled = True
            get_logger().warning(
                kv(
                    "store.disk_fallback",
                    path=str(path),
                    error=str(exc),
                    action="store degraded to memory-only tier",
                )
            )
            registry = _metrics.get_registry()
            if registry.enabled:
                registry.counter(
                    "focal_store_disk_fallback_total",
                    "result stores degraded to memory-only after disk faults",
                ).inc()
            return False
        self._bytes_written += len(document)
        registry = _metrics.get_registry()
        if registry.enabled:
            registry.counter(
                "focal_store_bytes_written_total",
                "bytes written to result-store files",
            ).inc(len(document))
        return True

    def _count_recovered(self, n: int) -> None:
        if not n:
            return
        self._recovered_objects += n
        registry = _metrics.get_registry()
        if registry.enabled:
            registry.counter(
                "focal_store_recovered_total",
                "stored objects re-indexed after a lost/stale index",
            ).inc(n)

    def _read_document(self, path: Path) -> dict | None:
        """The verified payload, or ``None`` (missing file is a plain
        miss; damage is counted, logged and the file deleted so the
        recomputed object can be rewritten cleanly)."""
        try:
            text = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return None
        except OSError as exc:
            self._note_corrupt(path, f"unreadable: {exc}")
            return None
        self._bytes_read += len(text)
        try:
            document = json.loads(text)
        except json.JSONDecodeError as exc:
            self._discard_corrupt(path, f"not valid JSON: {exc}")
            return None
        if (
            not isinstance(document, dict)
            or document.get("format") != STORE_FORMAT
            or not isinstance(document.get("payload"), dict)
        ):
            self._discard_corrupt(path, "not a focal-store document")
            return None
        payload = document["payload"]
        if sha256_hex(canonical_json(payload)) != document.get("sha256"):
            self._discard_corrupt(path, "content checksum mismatch")
            return None
        return payload

    def _discard_corrupt(self, path: Path, reason: str) -> None:
        self._note_corrupt(path, reason)
        try:
            path.unlink()
        except OSError:  # pragma: no cover - already gone / readonly dir
            pass

    # -- sweep tier ----------------------------------------------------
    def sweep_session(self, factory: object) -> "SweepStoreSession":
        """Open (or create) the per-factory sweep index for one sweep."""
        return SweepStoreSession(self, describe_factory(factory))

    # -- Monte-Carlo rng-stream segments -------------------------------
    def _segment_dir(self, fingerprint: Mapping) -> tuple[Path, str]:
        fp = _fingerprint_hash(fingerprint)
        return self.root / "mc" / fp, fp

    def load_segment(
        self, fingerprint: Mapping, start: int, count: int
    ) -> tuple[np.ndarray, dict] | None:
        """One stored sampler segment: ``(codes, post-segment rng
        state)``, or ``None`` when the store has nothing usable."""
        directory, fp = self._segment_dir(fingerprint)
        memo_key = ("mc", fp, start, count)
        cached = self._memory_get(memo_key)
        if cached is not None:
            self._count_hits("memory", count)
            codes, state = cached
            return np.array(codes), state
        payload = self._read_document(directory / f"{start}-{count}.json")
        if (
            payload is None
            or payload.get("start") != start
            or payload.get("count") != count
            or not isinstance(payload.get("codes"), list)
            or len(payload["codes"]) != count
            or not isinstance(payload.get("rng_state"), dict)
        ):
            self._count_misses(count)
            return None
        codes = np.asarray(payload["codes"], dtype=np.int8)
        state = payload["rng_state"]
        self._memory_put(memo_key, (codes, state))
        self._count_hits("disk", count)
        return np.array(codes), state

    def save_segment(
        self,
        fingerprint: Mapping,
        start: int,
        count: int,
        codes: np.ndarray,
        rng_state: Mapping,
    ) -> None:
        """Persist one sampler segment plus the rng state that follows
        it (required: the draw is data-dependent, so a later segment
        can only continue from a restored state, never by skip-ahead)."""
        self._ensure_root()
        directory, fp = self._segment_dir(fingerprint)
        meta = directory / "meta.json"
        if not meta.exists():
            self._write_document(meta, {"fingerprint": dict(fingerprint)})
        self._write_document(
            directory / f"{start}-{count}.json",
            {
                "start": start,
                "count": count,
                "codes": [int(code) for code in codes],
                "rng_state": dict(rng_state),
            },
        )
        self._segments_written += 1
        codes = np.asarray(codes, dtype=np.int8)
        self._memory_put(("mc", fp, start, count), (codes, dict(rng_state)))

    # -- maintenance ---------------------------------------------------
    def _require_marker(self, verb: str) -> bool:
        """Whether maintenance may proceed: an absent/empty root is a
        no-op, a foreign directory is an error."""
        if not self.root.exists():
            return False
        if (self.root / MARKER_NAME).exists():
            return True
        if any(self.root.iterdir()):
            raise ValidationError(
                f"refusing to {verb} {self.root}: no {MARKER_NAME} marker, "
                "this is not a focal result store"
            )
        return False

    def ls(self) -> list[dict]:
        """One row per stored fingerprint (sweep indexes and
        Monte-Carlo segment streams), oldest first."""
        if not self._require_marker("list"):
            return []
        rows: list[dict] = []
        for directory in sorted((self.root / "sweeps").glob("*")):
            if not directory.is_dir():
                continue
            index = self._read_document(directory / "index.json") or {}
            rows.append(
                {
                    "kind": "sweep",
                    "fingerprint": directory.name,
                    "what": index.get("factory", "?"),
                    "entries": len(index.get("points", {})),
                    "files": sum(
                        1 for _ in directory.glob("objects/*.json")
                    ),
                    "bytes": _tree_bytes(directory),
                    "last_used": _tree_mtime(directory),
                }
            )
        for directory in sorted((self.root / "mc").glob("*")):
            if not directory.is_dir():
                continue
            meta = self._read_document(directory / "meta.json") or {}
            fingerprint = meta.get("fingerprint", {})
            segments = [
                p for p in directory.glob("*.json") if p.name != "meta.json"
            ]
            rows.append(
                {
                    "kind": "mc",
                    "fingerprint": directory.name,
                    "what": str(
                        fingerprint.get("kind", fingerprint.get("factory", "?"))
                    ),
                    "entries": len(segments),
                    "files": len(segments),
                    "bytes": _tree_bytes(directory),
                    "last_used": _tree_mtime(directory),
                }
            )
        rows.sort(key=lambda row: row["last_used"])
        return rows

    def stat(self) -> dict:
        """Aggregate store totals plus this process's counters."""
        rows = self.ls()
        return {
            "root": str(self.root),
            "fingerprints": len(rows),
            "sweep_fingerprints": sum(1 for r in rows if r["kind"] == "sweep"),
            "mc_fingerprints": sum(1 for r in rows if r["kind"] == "mc"),
            "entries": sum(r["entries"] for r in rows),
            "files": sum(r["files"] for r in rows),
            "bytes": _tree_bytes(self.root) if self.root.exists() else 0,
            "session": self.stats().as_dict(),
        }

    def gc(self, *, max_bytes: int | None = None) -> dict:
        """Collect garbage; with *max_bytes*, also evict whole
        fingerprints oldest-first until the store fits the budget.

        Removes: temp-file litter from interrupted writes, objects no
        index references, corrupt indexes/objects/segments (and, for a
        corrupt index, the whole fingerprint — its objects would all be
        orphans). Never touches files outside the store root, and
        refuses to run on a directory without the store marker.
        """
        removed_tmp = removed_orphans = removed_corrupt = 0
        evicted: list[str] = []
        if not self._require_marker("gc"):
            return {
                "removed_tmp": 0,
                "removed_orphans": 0,
                "removed_corrupt": 0,
                "recovered_objects": 0,
                "evicted_fingerprints": [],
                "freed_bytes": 0,
                "bytes": 0,
            }
        recovered_before = self._recovered_objects
        before = _tree_bytes(self.root)
        for tmp in self.root.rglob("*.tmp.*"):
            tmp.unlink(missing_ok=True)
            removed_tmp += 1
        for directory in sorted((self.root / "sweeps").glob("*")):
            if not directory.is_dir():
                continue
            corrupt_before = self._corrupt
            index = self._read_document(directory / "index.json")
            if index is None:
                # No (valid) index — but objects are self-describing, so
                # a lost index is rebuildable from the surviving valid
                # objects; only a fingerprint with nothing valid left is
                # actually unreachable and removed.
                removed_corrupt += self._corrupt - corrupt_before
                index = self._rebuild_index(directory)
                if index is None:
                    _remove_tree(directory)
                    continue
            referenced = {entry[0] for entry in index.get("points", {}).values()}
            referenced.update(index.get("chunks", {}).values())
            for obj in directory.glob("objects/*.json"):
                if obj.stem not in referenced:
                    obj.unlink(missing_ok=True)
                    removed_orphans += 1
        for directory in sorted((self.root / "mc").glob("*")):
            if not directory.is_dir():
                continue
            for segment in directory.glob("*.json"):
                corrupt_before = self._corrupt
                if self._read_document(segment) is None:
                    removed_corrupt += self._corrupt - corrupt_before
        if max_bytes is not None:
            candidates = [
                directory
                for parent in ("sweeps", "mc")
                for directory in (self.root / parent).glob("*")
                if directory.is_dir()
            ]
            candidates.sort(key=_tree_mtime)
            while candidates and _tree_bytes(self.root) > max_bytes:
                victim = candidates.pop(0)
                evicted.append(f"{victim.parent.name}/{victim.name}")
                _remove_tree(victim)
        after = _tree_bytes(self.root)
        self._memory.clear()
        return {
            "recovered_objects": self._recovered_objects - recovered_before,
            "removed_tmp": removed_tmp,
            "removed_orphans": removed_orphans,
            "removed_corrupt": removed_corrupt,
            "evicted_fingerprints": evicted,
            "freed_bytes": max(0, before - after),
            "bytes": after,
        }

    def _rebuild_index(self, directory: Path) -> dict | None:
        """Rebuild a sweep index from its surviving object files.

        Objects are self-describing (factory description, point keys,
        outcomes), so a lost or corrupt index never strands committed
        work — this is the same recovery
        :class:`SweepStoreSession` performs on open, shared with ``gc``.
        Returns ``None`` when no valid object survives.
        """
        points: dict[str, list] = {}
        chunks: dict[str, str] = {}
        factory = None
        for path in sorted(directory.glob("objects/*.json")):
            payload = self._read_document(path)
            if payload is None:
                continue
            keys = payload.get("keys")
            outcomes = payload.get("outcomes")
            if (
                not isinstance(keys, list)
                or not isinstance(outcomes, list)
                or len(keys) != len(outcomes)
                or not isinstance(payload.get("factory"), str)
            ):
                continue
            if factory is None:
                factory = payload["factory"]
            elif payload["factory"] != factory:
                continue
            chunks.setdefault(chunk_store_key(keys), path.stem)
            for row, key in enumerate(keys):
                points.setdefault(key, [path.stem, row])
        if not chunks:
            return None
        index = {"factory": factory, "points": points, "chunks": chunks}
        if self._write_document(directory / "index.json", index):
            self._count_recovered(len(chunks))
            get_logger().warning(
                kv(
                    "store.index_rebuilt",
                    directory=str(directory),
                    objects=len(chunks),
                )
            )
        return index


def _tree_bytes(root: Path) -> int:
    return sum(
        path.stat().st_size for path in root.rglob("*") if path.is_file()
    )


def _tree_mtime(root: Path) -> float:
    """Last-use time of a fingerprint directory: newest file mtime
    (sessions touch their index on read-only use)."""
    times = [path.stat().st_mtime for path in root.rglob("*") if path.is_file()]
    return max(times, default=0.0)


def _remove_tree(root: Path) -> None:
    for path in sorted(root.rglob("*"), reverse=True):
        if path.is_file():
            path.unlink(missing_ok=True)
        else:
            try:
                path.rmdir()
            except OSError:  # pragma: no cover - non-empty race
                pass
    try:
        root.rmdir()
    except OSError:  # pragma: no cover
        pass


# ----------------------------------------------------------------------
# Sweep sessions
# ----------------------------------------------------------------------
class SweepStoreSession:
    """One sweep's view of the store, bound to one factory identity.

    The session loads the factory's point index once, answers chunk
    probes from it (memory tier first, then content-addressed object
    files), collects newly evaluated chunks, and persists the merged
    index atomically — every :data:`FLUSH_EVERY_CHUNKS` stored chunks
    and once at :meth:`flush` from the sweep's ``finally``.
    """

    def __init__(self, store: ResultStore, factory_desc: str) -> None:
        self.store = store
        self.factory = factory_desc
        fp = _fingerprint_hash({"factory": factory_desc})
        self.directory = store.root / "sweeps" / fp
        index = store._read_document(self.directory / "index.json") or {}
        points = index.get("points", {})
        chunks = index.get("chunks", {})
        self._points: dict[str, list] = points if isinstance(points, dict) else {}
        self._chunks: dict[str, str] = chunks if isinstance(chunks, dict) else {}
        self._bad_objects: set[str] = set()
        self._dirty = 0
        self._probed = False
        self._recover_unindexed()

    def _recover_unindexed(self) -> None:
        """Re-index committed objects the index does not reference.

        The index is flushed only every :data:`FLUSH_EVERY_CHUNKS`
        stored chunks, so a crash between flushes (or a corrupt index)
        leaves valid, fully written object files behind that the loaded
        index has never heard of. Objects are self-describing, so they
        are folded back in here — a resumed sweep re-reads them instead
        of recomputing. The rebuilt entries flush with the next index
        write.
        """
        objects_dir = self.directory / "objects"
        if not objects_dir.is_dir():
            return
        referenced = {
            entry[0]
            for entry in self._points.values()
            if isinstance(entry, (list, tuple)) and entry
        }
        referenced.update(self._chunks.values())
        recovered = 0
        for path in sorted(objects_dir.glob("*.json")):
            if path.stem in referenced:
                continue
            payload = self.store._read_document(path)
            if payload is None or payload.get("factory") != self.factory:
                continue
            keys = payload.get("keys")
            outcomes = payload.get("outcomes")
            if (
                not isinstance(keys, list)
                or not isinstance(outcomes, list)
                or len(keys) != len(outcomes)
            ):
                continue
            self._chunks.setdefault(chunk_store_key(keys), path.stem)
            for row, key in enumerate(keys):
                self._points.setdefault(key, [path.stem, row])
            recovered += 1
        if recovered:
            self._dirty += 1
            self.store._count_recovered(recovered)
            get_logger().info(
                kv(
                    "store.recovered",
                    factory=self.factory,
                    objects=recovered,
                )
            )

    # -- reading -------------------------------------------------------
    def probe(self, chunk: Sequence[Mapping[str, object]]) -> ChunkProbe:
        """What the store holds for *chunk* (never raises; a fully
        unknown chunk comes back with every row missing)."""
        self._probed = True
        keys = [point_store_key(params) for params in chunk]
        chunk_hash = chunk_store_key(keys)
        object_id = self._chunks.get(chunk_hash)
        if object_id is not None:
            outcomes, tier = self._load_object(object_id)
            if outcomes is not None and len(outcomes) == len(chunk):
                self.store._count_hits(tier, len(chunk))
                return ChunkProbe(
                    keys=keys,
                    chunk_hash=chunk_hash,
                    outcomes=list(outcomes),
                    missing=[],
                    memory_points=len(chunk) if tier == "memory" else 0,
                    disk_points=len(chunk) if tier != "memory" else 0,
                )
            self._chunks.pop(chunk_hash, None)
        outcomes: list = [None] * len(chunk)
        wanted: dict[str, list[tuple[int, int]]] = {}
        for row, key in enumerate(keys):
            entry = self._points.get(key)
            if (
                isinstance(entry, (list, tuple))
                and len(entry) == 2
                and entry[0] not in self._bad_objects
            ):
                wanted.setdefault(entry[0], []).append((row, int(entry[1])))
        memory = disk = 0
        for object_id, rows in wanted.items():
            data, tier = self._load_object(object_id)
            if data is None:
                continue
            for row, source in rows:
                if 0 <= source < len(data):
                    outcomes[row] = data[source]
                    if tier == "memory":
                        memory += 1
                    else:
                        disk += 1
        missing = [row for row, outcome in enumerate(outcomes) if outcome is None]
        self.store._count_hits("memory", memory)
        self.store._count_hits("disk", disk)
        self.store._count_misses(len(missing))
        return ChunkProbe(
            keys=keys,
            chunk_hash=chunk_hash,
            outcomes=outcomes,
            missing=missing,
            memory_points=memory,
            disk_points=disk,
        )

    def _load_object(self, object_id: str):
        """Decoded outcomes of one stored chunk, LRU'd per process."""
        memo_key = ("sweep", object_id)
        cached = self.store._memory_get(memo_key)
        if cached is not None:
            return cached, "memory"
        payload = self.store._read_document(
            self.directory / "objects" / f"{object_id}.json"
        )
        if payload is None or not isinstance(payload.get("outcomes"), list):
            self._bad_objects.add(object_id)
            return None, "disk"
        try:
            outcomes = decode_outcomes(payload["outcomes"])
        except Exception as exc:
            self.store._note_corrupt(
                self.directory / "objects" / f"{object_id}.json",
                f"undecodable outcomes: {exc}",
            )
            self._bad_objects.add(object_id)
            return None, "disk"
        self.store._memory_put(memo_key, outcomes)
        return outcomes, "disk"

    # -- writing -------------------------------------------------------
    def put(
        self,
        chunk: Sequence[Mapping[str, object]],
        outcomes: Sequence[DesignPoint | DomainError],
        probe: ChunkProbe | None = None,
    ) -> None:
        """Store one fully evaluated chunk (idempotent: a chunk the
        index already covers in full is not rewritten).

        Chunks holding quarantined points are not stored: a
        :class:`~repro.core.errors.QuarantinedPoint` is containment
        state (the quarantine ledger's job), not a factory outcome, and
        must not be served to a later sweep running without the ledger.
        """
        if any(isinstance(outcome, QuarantinedPoint) for outcome in outcomes):
            return
        if probe is not None:
            keys, chunk_hash = probe.keys, probe.chunk_hash
        else:
            keys = [point_store_key(params) for params in chunk]
            chunk_hash = chunk_store_key(keys)
        if self._chunks.get(chunk_hash) is not None:
            return
        payload = {
            "factory": self.factory,
            "keys": keys,
            "outcomes": encode_outcomes(outcomes),
        }
        object_id = sha256_hex(canonical_json(payload))
        self.store._ensure_root()
        path = self.directory / "objects" / f"{object_id}.json"
        if not path.exists() and self.store._write_document(path, payload):
            self.store._objects_written += 1
        for row, key in enumerate(keys):
            self._points[key] = [object_id, row]
        self._chunks[chunk_hash] = object_id
        self._bad_objects.discard(object_id)
        self.store._memory_put(("sweep", object_id), list(outcomes))
        self._dirty += 1
        if self._dirty >= FLUSH_EVERY_CHUNKS:
            self.flush()

    def flush(self) -> None:
        """Persist the index (merged over any concurrent writer's), or
        just freshen its mtime after a read-only sweep so ``gc``
        eviction ordering sees the use."""
        index_path = self.directory / "index.json"
        if not self._dirty:
            if self._probed and index_path.exists():
                os.utime(index_path, (time.time(), time.time()))
            return
        on_disk = self.store._read_document(index_path) or {}
        points = on_disk.get("points", {})
        chunks = on_disk.get("chunks", {})
        if not isinstance(points, dict):
            points = {}
        if not isinstance(chunks, dict):
            chunks = {}
        points.update(self._points)
        chunks.update(self._chunks)
        self.store._ensure_root()
        self.store._write_document(
            index_path,
            {"factory": self.factory, "points": points, "chunks": chunks},
        )
        self._points, self._chunks = points, chunks
        self._dirty = 0
