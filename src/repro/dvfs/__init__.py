"""Voltage/frequency scaling: DVFS, turbo boost, and iso-power solving
(paper §5.8, §7)."""

from .batch import (
    dynamic_energy_factors,
    dynamic_power_factors,
    leakage_power_factors,
    performance_factors,
    scale_design_arrays,
)
from .governor import (
    EnergyModel,
    RaceVsPace,
    energy_for_multiplier,
    optimal_multiplier,
    race_vs_pace,
)
from .laws import (
    dynamic_energy_factor,
    dynamic_power_factor,
    leakage_power_factor,
    performance_factor,
)
from .operating_point import DVFSConfig, classify_downscaling, scale_design
from .power_cap import capped_frequency_multiplier
from .turboboost import TurboBoost, boosted_design, classify_turboboost

__all__ = [
    "dynamic_power_factor",
    "dynamic_energy_factor",
    "leakage_power_factor",
    "performance_factor",
    "DVFSConfig",
    "scale_design",
    "classify_downscaling",
    "TurboBoost",
    "boosted_design",
    "classify_turboboost",
    "capped_frequency_multiplier",
    "EnergyModel",
    "energy_for_multiplier",
    "optimal_multiplier",
    "race_vs_pace",
    "RaceVsPace",
    "dynamic_power_factors",
    "dynamic_energy_factors",
    "leakage_power_factors",
    "performance_factors",
    "scale_design_arrays",
]
