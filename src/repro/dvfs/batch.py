"""Columnar DVFS kernels: array versions of the voltage/frequency
scaling laws (paper §5.8).

Twins of :mod:`repro.dvfs.laws` and
:func:`repro.dvfs.operating_point.scale_design` over arrays of
frequency multipliers. The cubic and quadratic laws route through
:func:`~repro.core.batch.exact_pow` (NumPy's array power loop is not
bit-identical to Python's ``s ** 3``), so every factor — and therefore
every scaled operating point — is bit-exact with the scalar path.
"""

from __future__ import annotations

import numpy as np

from ..core.batch import ensure_positive_array, exact_pow
from ..core.design import DesignPoint
from .operating_point import DVFSConfig

__all__ = [
    "dynamic_power_factors",
    "dynamic_energy_factors",
    "leakage_power_factors",
    "performance_factors",
    "scale_design_arrays",
]


def dynamic_power_factors(freq_multipliers: object) -> np.ndarray:
    """Array twin of :func:`~repro.dvfs.laws.dynamic_power_factor`: ``s^3``."""
    s = ensure_positive_array(freq_multipliers, "freq_multipliers")
    return exact_pow(s, 3)


def dynamic_energy_factors(freq_multipliers: object) -> np.ndarray:
    """Array twin of :func:`~repro.dvfs.laws.dynamic_energy_factor`: ``s^2``."""
    s = ensure_positive_array(freq_multipliers, "freq_multipliers")
    return exact_pow(s, 2)


def leakage_power_factors(freq_multipliers: object) -> np.ndarray:
    """Array twin of :func:`~repro.dvfs.laws.leakage_power_factor`: ``s``."""
    return ensure_positive_array(freq_multipliers, "freq_multipliers").copy()


def performance_factors(freq_multipliers: object) -> np.ndarray:
    """Array twin of :func:`~repro.dvfs.laws.performance_factor`: ``s``."""
    return ensure_positive_array(freq_multipliers, "freq_multipliers").copy()


def scale_design_arrays(
    design: DesignPoint,
    freq_multipliers: object,
    config: DVFSConfig = DVFSConfig(),
    *,
    include_regulator_area: bool = True,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Array twin of :func:`~repro.dvfs.operating_point.scale_design`.

    Returns ``(areas, perfs, powers)`` for *design* operated at each
    multiplier — element ``i`` is bit-exact with
    ``scale_design(design, s[i], config)``'s fields.
    """
    s = ensure_positive_array(freq_multipliers, "freq_multipliers")
    dynamic = (1.0 - config.leakage_fraction) * design.power
    leakage = config.leakage_fraction * design.power
    powers = dynamic * dynamic_power_factors(s) + leakage * leakage_power_factors(s)
    area_factor = 1.0 + (
        config.regulator_area_overhead if include_regulator_area else 0.0
    )
    areas = np.full_like(s, design.area * area_factor)
    perfs = design.perf * performance_factors(s)
    return areas, perfs, powers
