"""Energy-minimal frequency selection: pace versus race-to-idle.

A classical power-management question with a direct FOCAL reading
(§5.8): given slack — a deadline longer than the work strictly needs —
should a core *race* at full frequency and idle, or *pace* at a lower
V/f point and finish just in time?

With the cubic/quadratic scaling laws and an idle-leakage floor the
answer is analytic in shape: dynamic energy falls quadratically as the
multiplier drops, but running longer accrues more leakage energy, so
the energy-minimal multiplier sits strictly between "as slow as the
deadline allows" and full speed whenever leakage is non-zero.

:func:`optimal_multiplier` finds the energy-minimal frequency
multiplier within the deadline by golden-section search (the energy
function is unimodal in the multiplier); :func:`race_vs_pace` compares
the two classical policies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.errors import ValidationError
from ..core.quantities import ensure_at_least, ensure_fraction, ensure_positive

__all__ = ["EnergyModel", "energy_for_multiplier", "optimal_multiplier", "race_vs_pace"]

_GOLDEN = (math.sqrt(5.0) - 1.0) / 2.0


@dataclass(frozen=True, slots=True)
class EnergyModel:
    """A core's energy model for governor decisions.

    At the nominal multiplier (1.0) the core consumes one unit of
    power, split into dynamic power (cubic while voltage scales) and
    leakage (linear in voltage while active). Voltage tracks frequency
    only down to ``voltage_floor``: below it only the clock slows, so
    dynamic power scales linearly with ``s`` at the floor voltage and
    dynamic energy per unit work stops improving — the physical reason
    race-to-idle can beat pacing. While *idle* the core leaks
    ``idle_leakage`` regardless of the active operating point.
    """

    leakage_fraction: float = 0.1
    idle_leakage: float = 0.05
    voltage_floor: float = 0.5

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "leakage_fraction",
            ensure_fraction(self.leakage_fraction, "leakage_fraction"),
        )
        object.__setattr__(
            self,
            "idle_leakage",
            ensure_fraction(self.idle_leakage, "idle_leakage"),
        )
        floor = ensure_positive(self.voltage_floor, "voltage_floor")
        if floor > 1.0:
            raise ValidationError(
                f"voltage_floor must be <= 1, got {floor:g}"
            )
        object.__setattr__(self, "voltage_floor", floor)

    def active_power(self, multiplier: float) -> float:
        """Power while executing at the given frequency multiplier."""
        s = ensure_positive(multiplier, "multiplier")
        voltage = max(s, self.voltage_floor)
        dynamic = (1.0 - self.leakage_fraction) * s * voltage**2
        leakage = self.leakage_fraction * voltage
        return dynamic + leakage


def energy_for_multiplier(
    multiplier: float,
    deadline: float,
    model: EnergyModel = EnergyModel(),
) -> float:
    """Total energy to do one unit of work within *deadline*.

    The busy phase lasts ``1/multiplier`` (work of 1 at nominal speed
    1); the remaining time idles at the idle-leakage floor. The
    multiplier must meet the deadline.
    """
    s = ensure_positive(multiplier, "multiplier")
    deadline = ensure_at_least(deadline, 1.0, "deadline")
    busy_time = 1.0 / s
    if busy_time > deadline * (1.0 + 1e-12):
        raise ValidationError(
            f"multiplier {s:g} misses the deadline "
            f"(needs {busy_time:g} > {deadline:g})"
        )
    idle_time = max(0.0, deadline - busy_time)
    return model.active_power(s) * busy_time + model.idle_leakage * idle_time


def optimal_multiplier(
    deadline: float,
    model: EnergyModel = EnergyModel(),
    *,
    max_multiplier: float = 1.0,
    tol: float = 1e-10,
) -> float:
    """The energy-minimal multiplier meeting the deadline.

    Searches ``[1/deadline, max_multiplier]`` (slower misses the
    deadline; faster than nominal is turbo, excluded by default). The
    energy function is unimodal on this interval, so golden-section
    converges to the global minimum.
    """
    deadline = ensure_at_least(deadline, 1.0, "deadline")
    max_multiplier = ensure_positive(max_multiplier, "max_multiplier")
    lo = 1.0 / deadline
    hi = max_multiplier
    if lo > hi:
        raise ValidationError(
            f"deadline {deadline:g} cannot be met at max multiplier {hi:g}"
        )
    # Golden-section search on the unimodal energy function.
    a, b = lo, hi
    c = b - _GOLDEN * (b - a)
    d = a + _GOLDEN * (b - a)
    f_c = energy_for_multiplier(c, deadline, model)
    f_d = energy_for_multiplier(d, deadline, model)
    while b - a > tol:
        if f_c < f_d:
            b, d, f_d = d, c, f_c
            c = b - _GOLDEN * (b - a)
            f_c = energy_for_multiplier(c, deadline, model)
        else:
            a, c, f_c = c, d, f_d
            d = a + _GOLDEN * (b - a)
            f_d = energy_for_multiplier(d, deadline, model)
    return 0.5 * (a + b)


@dataclass(frozen=True, slots=True)
class RaceVsPace:
    """Comparison of the two classical policies plus the optimum."""

    race_energy: float
    pace_energy: float
    optimal_multiplier: float
    optimal_energy: float

    @property
    def best_policy(self) -> str:
        if self.race_energy < self.pace_energy:
            return "race-to-idle"
        if self.pace_energy < self.race_energy:
            return "pace"
        return "tie"


def race_vs_pace(deadline: float, model: EnergyModel = EnergyModel()) -> RaceVsPace:
    """Race-to-idle (s = 1) versus pace-to-deadline (s = 1/deadline),
    with the true energy optimum for reference."""
    best = optimal_multiplier(deadline, model)
    return RaceVsPace(
        race_energy=energy_for_multiplier(1.0, deadline, model),
        pace_energy=energy_for_multiplier(1.0 / deadline, deadline, model),
        optimal_multiplier=best,
        optimal_energy=energy_for_multiplier(best, deadline, model),
    )


__all__.append("RaceVsPace")
