"""Voltage/frequency scaling laws (paper §5.8).

When voltage scales proportionally with frequency (the DVFS operating
region):

* dynamic power scales **cubically** with the frequency multiplier
  (``P_dyn ∝ C V^2 f ∝ f^3``);
* dynamic energy per unit work scales **quadratically**
  (``E_dyn ∝ C V^2 ∝ f^2``);
* leakage power scales **linearly** with voltage, hence with the
  multiplier;
* performance scales linearly with frequency.

These four laws are all the paper needs for Findings #14 and #15 and
for the §7 power-capped case study.
"""

from __future__ import annotations

from ..core.quantities import ensure_positive

__all__ = [
    "dynamic_power_factor",
    "dynamic_energy_factor",
    "leakage_power_factor",
    "performance_factor",
]


def dynamic_power_factor(freq_multiplier: float) -> float:
    """Dynamic-power multiplier for a frequency (and voltage) multiplier."""
    s = ensure_positive(freq_multiplier, "freq_multiplier")
    return s**3


def dynamic_energy_factor(freq_multiplier: float) -> float:
    """Dynamic energy-per-work multiplier (quadratic in the multiplier)."""
    s = ensure_positive(freq_multiplier, "freq_multiplier")
    return s**2


def leakage_power_factor(freq_multiplier: float) -> float:
    """Leakage-power multiplier (linear in voltage = linear in the
    multiplier within the DVFS region)."""
    return ensure_positive(freq_multiplier, "freq_multiplier")


def performance_factor(freq_multiplier: float) -> float:
    """Performance multiplier (linear in frequency)."""
    return ensure_positive(freq_multiplier, "freq_multiplier")
