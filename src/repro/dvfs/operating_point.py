"""DVFS operating points (paper §5.8, Finding #14).

Re-runs a design at a scaled voltage/frequency point. The design's
power is split into a dynamic part (cubic in the multiplier) and a
leakage part (linear); performance scales linearly. On-chip voltage
regulators add "no more than a couple percent" of core area (Kim et
al., HPCA'08), modeled by ``regulator_area_overhead``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.classify import Sustainability, classify
from ..core.design import DesignPoint
from ..core.quantities import ensure_fraction, ensure_non_negative, ensure_positive
from .laws import dynamic_power_factor, leakage_power_factor, performance_factor

__all__ = ["DVFSConfig", "scale_design", "classify_downscaling"]


@dataclass(frozen=True, slots=True)
class DVFSConfig:
    """How a design responds to voltage/frequency scaling.

    Parameters
    ----------
    leakage_fraction:
        Share of the design's power that is leakage (scales linearly
        instead of cubically). 0 = fully dynamic.
    regulator_area_overhead:
        Area added by on-chip regulators, as a fraction of the design's
        area (default 2 %, the "couple percent" of Kim et al.).
    """

    leakage_fraction: float = 0.1
    regulator_area_overhead: float = 0.02

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "leakage_fraction",
            ensure_fraction(self.leakage_fraction, "leakage_fraction"),
        )
        object.__setattr__(
            self,
            "regulator_area_overhead",
            ensure_non_negative(
                self.regulator_area_overhead, "regulator_area_overhead"
            ),
        )


def scale_design(
    design: DesignPoint,
    freq_multiplier: float,
    config: DVFSConfig = DVFSConfig(),
    *,
    include_regulator_area: bool = True,
) -> DesignPoint:
    """Return *design* operated at ``freq_multiplier`` times its nominal
    frequency (with proportional voltage scaling).

    The regulator area is charged once — pass
    ``include_regulator_area=False`` when comparing two operating
    points of the *same* DVFS-capable chip.
    """
    s = ensure_positive(freq_multiplier, "freq_multiplier")
    dynamic = (1.0 - config.leakage_fraction) * design.power
    leakage = config.leakage_fraction * design.power
    new_power = dynamic * dynamic_power_factor(s) + leakage * leakage_power_factor(s)
    area_factor = 1.0 + (
        config.regulator_area_overhead if include_regulator_area else 0.0
    )
    return DesignPoint(
        name=f"{design.name} @ {s:g}x",
        area=design.area * area_factor,
        perf=design.perf * performance_factor(s),
        power=new_power,
    )


def classify_downscaling(
    alpha: float,
    freq_multiplier: float = 0.8,
    config: DVFSConfig = DVFSConfig(),
) -> Sustainability:
    """Sustainability category of scaling a core *down* (Finding #14).

    Compares the DVFS-equipped core at the reduced operating point
    against the fixed-frequency core without regulators. Strongly
    sustainable whenever the cubic/quadratic savings beat the couple
    percent of regulator area — i.e. for any non-trivial downscaling.
    """
    baseline = DesignPoint.baseline("fixed-frequency core")
    scaled = scale_design(baseline, freq_multiplier, config)
    return classify(scaled, baseline, alpha).category
