"""Iso-power frequency solving (used by the paper's §7 case study).

Modern processors are power-constrained: adding cores forces the clock
(and voltage) down so that total power stays within the budget. With
the cubic power–frequency law, average multicore power at frequency
multiplier ``phi`` is

    P(phi, N) = (phi / phi_nominal)^3 * Pshape(N)

where ``Pshape(N)`` is the Woo–Lee average-power shape of the N-core
chip at the nominal multiplier. Solving ``P = budget`` gives

    phi = phi_nominal * (budget / Pshape(N))^(1/3)

Reproduces the paper's quoted multipliers exactly: the 4-core die
shrink runs at 1.41x (post-Dennard nominal) and the 8-core option drops
to 1.233x ≈ the paper's 1.24x.
"""

from __future__ import annotations

from ..core.quantities import ensure_positive

__all__ = ["capped_frequency_multiplier"]


def capped_frequency_multiplier(
    power_at_nominal: float,
    power_budget: float,
    nominal_multiplier: float = 1.0,
) -> float:
    """Frequency multiplier that exactly meets the power budget.

    Parameters
    ----------
    power_at_nominal:
        Average power the chip would draw at ``nominal_multiplier``.
    power_budget:
        The allowed average power (same units).
    nominal_multiplier:
        The frequency multiplier at which *power_at_nominal* holds
        (e.g. 1.41 for a post-Dennard die shrink at full node speed).

    Returns the multiplier ``phi`` with
    ``(phi/nominal)^3 * power_at_nominal == power_budget``. Values
    above the nominal multiplier mean the budget leaves headroom.
    """
    power_at_nominal = ensure_positive(power_at_nominal, "power_at_nominal")
    power_budget = ensure_positive(power_budget, "power_budget")
    nominal_multiplier = ensure_positive(nominal_multiplier, "nominal_multiplier")
    return nominal_multiplier * (power_budget / power_at_nominal) ** (1.0 / 3.0)
