"""Turbo boosting (paper §5.8, Finding #15).

Boosting clock frequency and voltage when thermal headroom allows
(Rotem et al., the Sandy Bridge power architecture) raises both power
(cubically) and energy (quadratically), on top of the extra chip area
for the boost circuitry — under FOCAL a *less sustainable* mechanism
under every scenario and weight.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.classify import Sustainability, classify
from ..core.design import DesignPoint
from ..core.errors import ValidationError
from ..core.quantities import ensure_fraction, ensure_non_negative, ensure_positive
from .laws import dynamic_energy_factor, dynamic_power_factor

__all__ = ["TurboBoost", "boosted_design", "classify_turboboost"]


@dataclass(frozen=True, slots=True)
class TurboBoost:
    """A turbo-boost configuration.

    Parameters
    ----------
    boost_multiplier:
        Frequency multiplier while boosting (> 1).
    boost_residency:
        Fraction of execution time spent boosted (thermal headroom
        limits residency; 1.0 = always boosted).
    circuitry_area_overhead:
        Extra chip area for the boost/power-management circuitry.
    """

    boost_multiplier: float = 1.2
    boost_residency: float = 1.0
    circuitry_area_overhead: float = 0.01

    def __post_init__(self) -> None:
        multiplier = ensure_positive(self.boost_multiplier, "boost_multiplier")
        if multiplier <= 1.0:
            raise ValidationError(
                f"boost_multiplier must exceed 1, got {multiplier:g} "
                "(use repro.dvfs.scale_design for downscaling)"
            )
        object.__setattr__(self, "boost_multiplier", multiplier)
        object.__setattr__(
            self,
            "boost_residency",
            ensure_fraction(self.boost_residency, "boost_residency"),
        )
        object.__setattr__(
            self,
            "circuitry_area_overhead",
            ensure_non_negative(
                self.circuitry_area_overhead, "circuitry_area_overhead"
            ),
        )


def boosted_design(base: DesignPoint, boost: TurboBoost) -> DesignPoint:
    """*base* equipped with turbo boost, time-weighted over residency.

    During the boosted fraction of time performance rises linearly and
    power cubically; the rest of the time runs at nominal. Energy per
    unit work follows from the quadratic law per unit of boosted work.
    """
    r = boost.boost_residency
    s = boost.boost_multiplier
    # Work done per unit time: nominal work in (1-r), boosted in r.
    perf = base.perf * ((1.0 - r) + r * s)
    power = base.power * ((1.0 - r) + r * dynamic_power_factor(s))
    # Consistency check: energy per work = power / perf; per-work energy of
    # boosted work alone is base.energy * s^2 as the quadratic law demands
    # when r = 1.
    _ = dynamic_energy_factor  # documented relation, derived via power/perf
    return DesignPoint(
        name=f"{base.name} +turbo {s:g}x@{r:.0%}",
        area=base.area * (1.0 + boost.circuitry_area_overhead),
        perf=perf,
        power=power,
    )


def classify_turboboost(
    alpha: float, boost: TurboBoost = TurboBoost()
) -> Sustainability:
    """Finding #15: turbo boosting is less sustainable at any alpha."""
    base = DesignPoint.baseline("nominal core")
    return classify(boosted_design(base, boost), base, alpha).category
