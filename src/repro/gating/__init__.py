"""Power/energy saving via pipeline gating (paper §5.9, Finding #16)."""

from .pipeline_gating import (
    PARIKH_GATING,
    PipelineGatingEffect,
    classify_gating,
    gated_design,
    gating_ncf,
)

__all__ = [
    "PipelineGatingEffect",
    "PARIKH_GATING",
    "gated_design",
    "gating_ncf",
    "classify_gating",
]
