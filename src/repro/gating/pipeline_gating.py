"""Pipeline gating (paper §5.9, Finding #16).

Manne et al.'s pipeline gating throttles instruction fetch when several
low-confidence branches are in flight, trading a little performance for
less wrong-path work. Parikh et al. (HPCA 2002) measured: energy down
3.5 %, performance down 6.6 % — so power drops by ~10 %
(0.965 x 0.934 ≈ 0.901) — at *zero* hardware cost (the confidence
estimator reuses the hybrid predictor's saturating counters).

With no embodied cost and both operational proxies improved, pipeline
gating is the paper's cleanest example of a *strongly sustainable*
mechanism: NCF < 1 for every scenario and every alpha < 1.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.classify import Sustainability, classify
from ..core.design import DesignPoint
from ..core.ncf import ncf
from ..core.quantities import ensure_non_negative, ensure_positive
from ..core.scenario import UseScenario

__all__ = [
    "PipelineGatingEffect",
    "PARIKH_GATING",
    "gated_design",
    "gating_ncf",
    "classify_gating",
]


@dataclass(frozen=True, slots=True)
class PipelineGatingEffect:
    """Measured effect of pipeline gating versus the ungated core."""

    perf_factor: float
    energy_factor: float
    area_overhead: float = 0.0
    name: str = "pipeline gating"

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "perf_factor", ensure_positive(self.perf_factor, "perf_factor")
        )
        object.__setattr__(
            self, "energy_factor", ensure_positive(self.energy_factor, "energy_factor")
        )
        object.__setattr__(
            self,
            "area_overhead",
            ensure_non_negative(self.area_overhead, "area_overhead"),
        )

    @property
    def power_factor(self) -> float:
        return self.energy_factor * self.perf_factor


#: Parikh et al.: -3.5 % energy, -6.6 % performance, no extra hardware.
PARIKH_GATING = PipelineGatingEffect(
    perf_factor=1.0 - 0.066,
    energy_factor=1.0 - 0.035,
    area_overhead=0.0,
    name="pipeline gating (Parikh et al.)",
)


def gated_design(effect: PipelineGatingEffect = PARIKH_GATING) -> DesignPoint:
    """The gated core versus the ungated baseline (= 1)."""
    return DesignPoint(
        name=effect.name,
        area=1.0 + effect.area_overhead,
        perf=effect.perf_factor,
        power=effect.power_factor,
    )


def gating_ncf(
    scenario: UseScenario, alpha: float, effect: PipelineGatingEffect = PARIKH_GATING
) -> float:
    """NCF of the gated core versus the ungated core."""
    return ncf(gated_design(effect), DesignPoint.baseline("ungated"), scenario, alpha)


def classify_gating(
    alpha: float, effect: PipelineGatingEffect = PARIKH_GATING
) -> Sustainability:
    """Finding #16: strongly sustainable for any alpha < 1."""
    return classify(gated_design(effect), DesignPoint.baseline("ungated"), alpha).category
