"""Lifetime and replacement analyses: GreenChip indifference points and
junkyard-computing amortization (paper §8 related work)."""

from .act_bridge import device_from_act
from .replacement import (
    DeviceFootprint,
    breakeven_lifetime_extension,
    footprint_per_work,
    indifference_point,
)

__all__ = [
    "DeviceFootprint",
    "indifference_point",
    "footprint_per_work",
    "breakeven_lifetime_extension",
    "device_from_act",
]
