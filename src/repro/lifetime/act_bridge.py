"""Bridge from the bottom-up ACT model to lifetime analyses."""

from __future__ import annotations

from ..act.model import ActChipSpec, ActModel
from ..core.quantities import ensure_positive
from .replacement import DeviceFootprint

__all__ = ["device_from_act"]

_HOURS_PER_YEAR = 365.0 * 24.0


def device_from_act(
    spec: ActChipSpec,
    model: ActModel | None = None,
    *,
    performance: float = 1.0,
) -> DeviceFootprint:
    """Convert an ACT chip spec into a :class:`DeviceFootprint`.

    The embodied footprint comes straight from the ACT estimate; the
    operational rate is the use-phase footprint divided by the spec's
    lifetime, i.e. kg CO2e per year of the spec's duty cycle.
    """
    act = model or ActModel()
    footprint = act.footprint(spec)
    years = ensure_positive(spec.lifetime_hours, "lifetime_hours") / _HOURS_PER_YEAR
    return DeviceFootprint(
        name=spec.name,
        embodied=footprint.embodied_kg,
        operational_rate=footprint.operational_kg / years,
        performance=performance,
    )
