"""Device lifetime and replacement analysis (paper §8 related work).

Two analyses the paper surveys are natural FOCAL companions and are
implemented here on top of the same first-order quantities:

* **GreenChip's indifference point** (Kline et al.): when does a new,
  more efficient device's *total* footprint (its embodied cost plus its
  use-phase emissions) drop below the *marginal* footprint of simply
  keeping the old device running? Before that time, upgrading increases
  total emissions; after it, the upgrade has paid for itself.
* **Junkyard amortization** (Switzer et al.): extending a device's
  lifetime amortizes its (sunk) embodied footprint over more service,
  cutting the footprint per unit of work delivered.

All quantities are in arbitrary consistent units (e.g. kg CO2e and
years); :func:`device_from_act` bridges from the bottom-up ACT model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.errors import ValidationError
from ..core.quantities import ensure_non_negative, ensure_positive

__all__ = [
    "DeviceFootprint",
    "indifference_point",
    "footprint_per_work",
    "breakeven_lifetime_extension",
]


@dataclass(frozen=True, slots=True)
class DeviceFootprint:
    """A device's carbon profile for lifetime analyses.

    Parameters
    ----------
    name:
        Label for reports.
    embodied:
        One-time manufacturing footprint (e.g. kg CO2e).
    operational_rate:
        Use-phase footprint per unit time (e.g. kg CO2e / year).
    performance:
        Work delivered per unit time, used by per-work metrics
        (arbitrary units; default 1).
    """

    name: str
    embodied: float
    operational_rate: float
    performance: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("DeviceFootprint.name must be non-empty")
        object.__setattr__(self, "embodied", ensure_non_negative(self.embodied, "embodied"))
        object.__setattr__(
            self,
            "operational_rate",
            ensure_non_negative(self.operational_rate, "operational_rate"),
        )
        object.__setattr__(
            self, "performance", ensure_positive(self.performance, "performance")
        )

    def total_footprint(self, lifetime: float) -> float:
        """Embodied plus use-phase footprint over *lifetime*."""
        ensure_non_negative(lifetime, "lifetime")
        return self.embodied + self.operational_rate * lifetime

    def embodied_share(self, lifetime: float) -> float:
        """The device's own embodied-vs-total split at a given lifetime
        — the empirical face of FOCAL's alpha_E2O."""
        total = self.total_footprint(lifetime)
        if total == 0.0:
            return 0.0
        return self.embodied / total


def indifference_point(old: DeviceFootprint, new: DeviceFootprint) -> float | None:
    """GreenChip's indifference point for replacing *old* with *new*.

    The old device's embodied footprint is sunk; keeping it costs
    ``rate_old * t`` going forward. Replacing costs
    ``embodied_new + rate_new * t``. The crossing

        t* = embodied_new / (rate_old - rate_new)

    is the service time after which the upgrade is carbon-positive.
    Returns ``None`` when the new device does not save operational
    footprint (no crossing: the upgrade never pays).
    """
    saving_rate = old.operational_rate - new.operational_rate
    if saving_rate <= 0.0:
        return None
    point = new.embodied / saving_rate
    # A vanishing saving rate can overflow to infinity: the upgrade
    # effectively never pays back.
    if not math.isfinite(point):
        return None
    return point


def footprint_per_work(device: DeviceFootprint, lifetime: float) -> float:
    """Lifetime footprint divided by lifetime work (junkyard metric).

    Monotonically decreasing in lifetime when the embodied share is
    non-zero: longer service amortizes manufacturing.
    """
    lifetime = ensure_positive(lifetime, "lifetime")
    work = device.performance * lifetime
    return device.total_footprint(lifetime) / work


def breakeven_lifetime_extension(
    old: DeviceFootprint,
    new: DeviceFootprint,
    new_lifetime: float,
) -> float | None:
    """How much longer *old* must serve to beat buying *new*.

    Compares footprint *per unit of work* over the planning horizon:
    the new device delivers ``perf_new * new_lifetime`` work at
    ``embodied_new + rate_new * new_lifetime``; the answer is the
    service time ``t`` at which the (sunk-embodied) old device matches
    that per-work footprint:

        rate_old / perf_old = (embodied_new + rate_new * L) / (perf_new * L)
        -> matching is possible only if old's marginal per-work rate is
           below new's all-in per-work rate; otherwise returns None.

    When possible, *any* continued use of the old device already beats
    the new one per unit of work, so the function returns 0.0; when the
    old device's marginal rate is higher, no extension helps and it
    returns None. The interesting output is therefore the comparison of
    the two rates, exposed as a crossover decision.
    """
    ensure_positive(new_lifetime, "new_lifetime")
    old_marginal_per_work = old.operational_rate / old.performance
    new_per_work = (
        new.total_footprint(new_lifetime) / (new.performance * new_lifetime)
    )
    if old_marginal_per_work <= new_per_work:
        return 0.0
    return None
