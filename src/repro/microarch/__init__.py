"""Core microarchitectures: InO, FSC, OoO (paper §5.6, Figure 7)."""

from .cores import CORE_ROSTER, FSC_CORE, INO_CORE, OOO_CORE, core_by_name
from .study import CoreChartPoint, CoreComparison, compare_cores, core_chart

__all__ = [
    "INO_CORE",
    "FSC_CORE",
    "OOO_CORE",
    "CORE_ROSTER",
    "core_by_name",
    "CoreChartPoint",
    "core_chart",
    "CoreComparison",
    "compare_cores",
]
