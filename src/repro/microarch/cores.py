"""Core microarchitecture design points (paper §5.6, Figure 7).

The paper compares three 2-wide, 2 GHz cores with identical cache
hierarchies, using McPAT + CACTI 6.5 numbers at 22 nm quoted from
Lakshminarasimhan et al., "The Forward Slice Core Microarchitecture"
(PACT 2020), all relative to the in-order (InO) core:

* **FSC** (forward slice core): +64 % performance, +1 % area,
  +1 % power;
* **OoO** (out-of-order): +75 % performance, +39 % area, 2.32x power.

These are encoded as :class:`~repro.core.design.DesignPoint` constants
with the InO core as the unit baseline.
"""

from __future__ import annotations

from ..core.design import DesignPoint

__all__ = ["INO_CORE", "FSC_CORE", "OOO_CORE", "CORE_ROSTER", "core_by_name"]

#: The in-order baseline core (unit design).
INO_CORE = DesignPoint(name="InO", area=1.0, perf=1.0, power=1.0)

#: Forward Slice Core: near-OoO performance at near-InO cost.
FSC_CORE = DesignPoint(name="FSC", area=1.01, perf=1.64, power=1.01)

#: Out-of-order core.
OOO_CORE = DesignPoint(name="OoO", area=1.39, perf=1.75, power=2.32)

#: All three cores, InO first (the normalization baseline).
CORE_ROSTER: tuple[DesignPoint, ...] = (INO_CORE, FSC_CORE, OOO_CORE)

_BY_NAME = {core.name: core for core in CORE_ROSTER}


def core_by_name(name: str) -> DesignPoint:
    """Look up one of the three §5.6 cores by name (InO/FSC/OoO)."""
    try:
        return _BY_NAME[name]
    except KeyError:
        from ..core.errors import ValidationError

        known = ", ".join(sorted(_BY_NAME))
        raise ValidationError(f"unknown core {name!r}; known cores: {known}") from None
