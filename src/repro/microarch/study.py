"""The core-microarchitecture study (paper §5.6, Findings #9–#11).

Produces the Figure 7 chart points (NCF versus performance for InO,
FSC and OoO under the four scenario panels) and the pairwise
comparisons behind the findings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.classify import Sustainability, classify
from ..core.design import DesignPoint
from ..core.ncf import ncf, relative_footprint
from ..core.scenario import UseScenario
from .cores import CORE_ROSTER, INO_CORE

__all__ = ["CoreChartPoint", "core_chart", "compare_cores"]


@dataclass(frozen=True, slots=True)
class CoreChartPoint:
    """One core's position on a Figure 7 panel."""

    name: str
    perf: float
    ncf: float


def core_chart(
    scenario: UseScenario,
    alpha: float,
    cores: Sequence[DesignPoint] = CORE_ROSTER,
    baseline: DesignPoint = INO_CORE,
) -> list[CoreChartPoint]:
    """Chart points for one Figure 7 panel (one scenario, one alpha)."""
    return [
        CoreChartPoint(
            name=core.name,
            perf=core.perf_ratio(baseline),
            ncf=ncf(core, baseline, scenario, alpha),
        )
        for core in cores
    ]


@dataclass(frozen=True, slots=True)
class CoreComparison:
    """Pairwise comparison of two cores under one alpha regime.

    ``footprint_ratio_*`` are chart-NCF ratios (the paper's percentage
    convention); ``category`` classifies design vs baseline directly.
    """

    design: str
    baseline: str
    alpha: float
    perf_ratio: float
    footprint_ratio_fixed_work: float
    footprint_ratio_fixed_time: float
    category: Sustainability


def compare_cores(
    design: DesignPoint,
    baseline: DesignPoint,
    alpha: float,
    chart_baseline: DesignPoint = INO_CORE,
) -> CoreComparison:
    """Compare two cores the way the paper's text does.

    Footprint ratios are ratios of chart NCF values (both cores
    normalized to *chart_baseline*, InO); the sustainability category
    comes from the direct pairwise NCF.
    """
    verdict = classify(design, baseline, alpha)
    return CoreComparison(
        design=design.name,
        baseline=baseline.name,
        alpha=alpha,
        perf_ratio=design.perf_ratio(baseline),
        footprint_ratio_fixed_work=relative_footprint(
            design, baseline, chart_baseline, UseScenario.FIXED_WORK, alpha
        ),
        footprint_ratio_fixed_time=relative_footprint(
            design, baseline, chart_baseline, UseScenario.FIXED_TIME, alpha
        ),
        category=verdict.category,
    )


__all__.append("CoreComparison")
