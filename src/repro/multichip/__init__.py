"""Chiplet disaggregation and the performance-per-wafer metric
(Zhang et al., the paper's ref. [52])."""

from .chiplets import (
    ChipletPartition,
    PartitionOutcome,
    best_partition,
    evaluate_partition,
)

__all__ = [
    "ChipletPartition",
    "PartitionOutcome",
    "evaluate_partition",
    "best_partition",
]
