"""Chiplet disaggregation and the performance-per-wafer metric.

Zhang et al. (CAL 2023, the paper's ref. [52]) balance performance
against cost and sustainability in multi-chip-module GPUs via a
*performance per wafer* metric. This module implements that analysis on
top of this repository's wafer/yield substrate:

* a **monolithic** design of area ``A`` yields poorly at large ``A``;
* a **chiplet** design splits the logic into ``k`` dies of area
  ``A/k`` each (plus a per-die area overhead for die-to-die
  interfaces), each yielding much better, at the price of a packaging
  footprint overhead and an inter-chiplet performance penalty.

The embodied footprint per *system* follows FOCAL's §3.1 proxy: wafer
footprint divided by good systems per wafer.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.design import DesignPoint
from ..core.errors import ValidationError
from ..core.quantities import (
    ensure_fraction,
    ensure_int_at_least,
    ensure_non_negative,
    ensure_positive,
)
from ..wafer.embodied import EmbodiedFootprintModel
from ..wafer.yield_models import MurphyYield

__all__ = ["ChipletPartition", "PartitionOutcome", "evaluate_partition", "best_partition"]


@dataclass(frozen=True, slots=True)
class ChipletPartition:
    """One way to build a system of ``logic_area_mm2`` of logic.

    Parameters
    ----------
    chiplets:
        Number of dies the logic is split into (1 = monolithic).
    logic_area_mm2:
        Total logic area of the system, excluding overheads.
    interface_overhead:
        Extra area per chiplet for die-to-die PHYs, as a fraction of
        the chiplet's logic area (charged only when chiplets > 1).
    packaging_overhead:
        Extra embodied footprint for the multi-die package (interposer,
        bonding), as a fraction of the silicon embodied footprint
        (charged only when chiplets > 1).
    perf_penalty_per_cut:
        Multiplicative performance loss per additional chiplet beyond
        the first (inter-die latency/bandwidth), e.g. 0.02 = 2 %.
    """

    chiplets: int
    logic_area_mm2: float
    interface_overhead: float = 0.10
    packaging_overhead: float = 0.10
    perf_penalty_per_cut: float = 0.02

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "chiplets", ensure_int_at_least(self.chiplets, 1, "chiplets")
        )
        object.__setattr__(
            self,
            "logic_area_mm2",
            ensure_positive(self.logic_area_mm2, "logic_area_mm2"),
        )
        object.__setattr__(
            self,
            "interface_overhead",
            ensure_non_negative(self.interface_overhead, "interface_overhead"),
        )
        object.__setattr__(
            self,
            "packaging_overhead",
            ensure_non_negative(self.packaging_overhead, "packaging_overhead"),
        )
        object.__setattr__(
            self,
            "perf_penalty_per_cut",
            ensure_fraction(self.perf_penalty_per_cut, "perf_penalty_per_cut"),
        )

    @property
    def die_area_mm2(self) -> float:
        """Area of one die, including the interface overhead."""
        per_die_logic = self.logic_area_mm2 / self.chiplets
        if self.chiplets == 1:
            return per_die_logic
        return per_die_logic * (1.0 + self.interface_overhead)

    @property
    def total_silicon_mm2(self) -> float:
        return self.die_area_mm2 * self.chiplets

    @property
    def performance(self) -> float:
        """System performance relative to the monolithic design."""
        return (1.0 - self.perf_penalty_per_cut) ** (self.chiplets - 1)


@dataclass(frozen=True, slots=True)
class PartitionOutcome:
    """Evaluated metrics for one partition."""

    partition: ChipletPartition
    die_yield: float
    systems_per_wafer: float
    embodied_per_system: float
    performance: float

    @property
    def perf_per_wafer(self) -> float:
        """Zhang et al.'s metric: aggregate performance a wafer buys."""
        return self.systems_per_wafer * self.performance

    def design_point(self, name: str | None = None) -> DesignPoint:
        """As a FOCAL design point: area = embodied-per-system proxy.

        Power is approximated as proportional to total silicon (the
        interface overhead burns energy too).
        """
        return DesignPoint(
            name=name or f"{self.partition.chiplets} chiplet(s)",
            area=self.embodied_per_system,
            perf=self.performance,
            power=self.partition.total_silicon_mm2 / self.partition.logic_area_mm2,
        )


def evaluate_partition(
    partition: ChipletPartition,
    model: EmbodiedFootprintModel | None = None,
) -> PartitionOutcome:
    """Evaluate yield, embodied footprint and performance-per-wafer."""
    wafer_model = model or EmbodiedFootprintModel(yield_model=MurphyYield())
    die_area = partition.die_area_mm2
    good_dies = wafer_model.good_chips_per_wafer(die_area)
    systems = good_dies / partition.chiplets
    silicon_embodied = partition.chiplets * wafer_model.footprint_per_chip(die_area)
    if partition.chiplets > 1:
        silicon_embodied *= 1.0 + partition.packaging_overhead
    return PartitionOutcome(
        partition=partition,
        die_yield=wafer_model.yield_model.die_yield(die_area),
        systems_per_wafer=systems,
        embodied_per_system=silicon_embodied,
        performance=partition.performance,
    )


def best_partition(
    logic_area_mm2: float,
    max_chiplets: int = 8,
    model: EmbodiedFootprintModel | None = None,
    **partition_kwargs: float,
) -> PartitionOutcome:
    """The partition maximizing performance per wafer.

    Sweeps 1..max_chiplets; raises when no candidate is valid (e.g. a
    monolithic die beyond the wafer formula's validity *and* every
    split also invalid, which cannot happen for sane inputs).
    """
    ensure_int_at_least(max_chiplets, 1, "max_chiplets")
    best: PartitionOutcome | None = None
    from ..core.errors import DomainError

    for k in range(1, max_chiplets + 1):
        try:
            outcome = evaluate_partition(
                ChipletPartition(
                    chiplets=k, logic_area_mm2=logic_area_mm2, **partition_kwargs
                ),
                model,
            )
        except DomainError:
            continue  # die too large for the wafer formula
        if best is None or outcome.perf_per_wafer > best.perf_per_wafer:
            best = outcome
    if best is None:
        raise ValidationError(
            f"no valid partition of {logic_area_mm2:g} mm^2 into "
            f"<= {max_chiplets} chiplets"
        )
    return best
