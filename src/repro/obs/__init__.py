"""Observability for the FOCAL engine: tracing, metrics, logging,
and run provenance.

Four small, dependency-free pieces:

* :mod:`repro.obs.trace` — nestable spans with wall-time, counters and
  attributes; **off by default** with near-zero disabled overhead;
* :mod:`repro.obs.metrics` — a counter/gauge/histogram registry with
  JSON-lines and Prometheus text exporters
  (:mod:`repro.obs.exporters`, re-exported by
  :mod:`repro.report.export`);
* :mod:`repro.obs.events` — cross-process worker events (shard/compute/
  shm timings, supervisor actions) merged with the span tree into one
  sweep timeline, exported to Chrome Trace / Perfetto JSON by
  :mod:`repro.obs.chrome` and decomposed into a bottleneck-attribution
  report by :mod:`repro.obs.profile`;
* :mod:`repro.obs.log` — the single structured ``"repro"`` stderr
  logger every module shares;
* :mod:`repro.obs.manifest` — run manifests (argv, seed, version,
  node roster, per-phase timing) bundled with the span tree and a
  metrics snapshot into a replayable JSON report, pretty-printed by
  ``focal trace show`` (:mod:`repro.obs.show`).

The hot paths (:class:`~repro.dse.batch.BatchExplorer`, the
Monte-Carlo samplers, :func:`~repro.studies.registry.run_study`) are
pre-instrumented; flip everything on with :func:`enable` or the CLI's
``--trace``/``--metrics`` flags::

    from repro import obs

    obs.enable()
    ...  # run a sweep
    print(obs.exporters.metrics_to_prometheus(obs.get_registry()))
"""

from __future__ import annotations

from . import events, exporters, log, manifest, metrics, trace
from .log import configure as configure_logging
from .log import get_logger, kv
from .manifest import RunManifest, build_manifest, build_report
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, get_registry
from .trace import NULL_SPAN, Span, Tracer, get_tracer, span

__all__ = [
    "trace",
    "metrics",
    "events",
    "log",
    "manifest",
    "exporters",
    "span",
    "Span",
    "NULL_SPAN",
    "Tracer",
    "get_tracer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "get_logger",
    "configure_logging",
    "kv",
    "RunManifest",
    "build_manifest",
    "build_report",
    "enable",
    "disable",
    "reset",
    "is_active",
]


def enable(
    *, tracing: bool = True, metrics_: bool = True, events_: bool = True
) -> None:
    """Enable tracing, metrics and/or worker-event capture on the
    global instances."""
    if tracing:
        trace.enable()
    if metrics_:
        metrics.enable()
    if events_:
        events.enable()


def disable() -> None:
    """Disable tracing, metrics and events (collected data is kept)."""
    trace.disable()
    metrics.disable()
    events.disable()


def reset() -> None:
    """Disable and clear tracer, registry and event log (test/CLI
    isolation)."""
    trace.reset()
    metrics.reset()
    events.reset()


def is_active() -> bool:
    """True when any of tracing, metrics or event collection is on —
    the single check hot paths use to skip instrumentation entirely."""
    return (
        trace.is_enabled()
        or metrics.get_registry().enabled
        or events.is_enabled()
    )
