"""Chrome Trace Event / Perfetto export: ``focal trace export``.

Converts a trace report (the JSON document written by a traced run —
see :func:`repro.obs.manifest.build_report`) into the Chrome Trace
Event format, loadable in ``chrome://tracing`` and
https://ui.perfetto.dev. The mapping:

* the **parent process** is pid 1. Its span tree renders on tid 0
  (``main``); ``chunk`` spans additionally render on tid 1
  (``chunks``) so chunk cadence reads as its own track; parent-origin
  events tagged ``track="supervisor"`` (pool retry/respawn/degraded)
  render as instants on tid 2 (``supervisor``);
* each **worker process** is pid 2 with its own tid (the worker's OS
  pid), one track per worker — shard/compute/shm-write duration
  events nest visually, heartbeats are instants.

Timestamps: parent spans carry ``start_s`` relative to the tracer
origin; worker events carry ``t_rel`` on the same axis (stamped by
:func:`~repro.obs.manifest.build_report`). Chrome wants microseconds,
so everything is ``round(t * 1e6)``.
"""

from __future__ import annotations

import json

from ..core.errors import ValidationError

__all__ = ["report_to_chrome", "chrome_trace_events"]

#: pid assignments in the exported trace.
PARENT_PID = 1
WORKER_PID = 2

#: Parent-process tids.
MAIN_TID = 0
CHUNK_TID = 1
SUPERVISOR_TID = 2

_US = 1e6


def _metadata(pid: int, tid: int | None, name: str) -> dict:
    event: dict = {
        "name": "process_name" if tid is None else "thread_name",
        "ph": "M",
        "pid": pid,
        "args": {"name": name},
    }
    if tid is not None:
        event["tid"] = tid
    return event


def _complete(
    name: str, pid: int, tid: int, start_s: float, dur_s: float, args: dict
) -> dict:
    return {
        "name": name,
        "ph": "X",
        "pid": pid,
        "tid": tid,
        "ts": round(start_s * _US),
        "dur": max(0, round(dur_s * _US)),
        "args": args,
    }


def _instant(name: str, pid: int, tid: int, t_s: float, args: dict) -> dict:
    return {
        "name": name,
        "ph": "i",
        "pid": pid,
        "tid": tid,
        "ts": round(t_s * _US),
        "s": "t",
        "args": args,
    }


def _span_events(span: dict, tid: int, out: list[dict]) -> None:
    start = span.get("start_s")
    dur = span.get("duration_s")
    if start is not None:
        args = dict(span.get("attributes", {}))
        args.update(span.get("counters", {}))
        # Perfetto rejects non-primitive args; convergence tables etc.
        # collapse to their repr.
        args = {
            k: (v if isinstance(v, (int, float, str, bool)) else repr(v))
            for k, v in args.items()
        }
        if dur is None:
            out.append(_instant(span["name"], PARENT_PID, tid, start, args))
        else:
            out.append(
                _complete(span["name"], PARENT_PID, tid, start, dur, args)
            )
            if span["name"] == "chunk" and tid == MAIN_TID:
                out.append(
                    _complete(span["name"], PARENT_PID, CHUNK_TID, start, dur, args)
                )
    for child in span.get("children", ()):
        _span_events(child, tid, out)


def _event_events(rows: list[dict], out: list[dict], workers: list[int]) -> None:
    for row in rows:
        t_rel = row.get("t_rel")
        if not isinstance(t_rel, (int, float)):
            continue  # no clock alignment for this row — skip, don't lie
        name = row.get("name", "event")
        args = dict(row.get("attrs", {}))
        args["worker"] = row.get("worker")
        dur = row.get("dur_s")
        if row.get("track") == "supervisor":
            out.append(_instant(name, PARENT_PID, SUPERVISOR_TID, t_rel, args))
            continue
        worker = row.get("worker")
        if worker not in workers:
            workers.append(worker)
        tid = worker if isinstance(worker, int) else 0
        if dur is None:
            out.append(_instant(name, WORKER_PID, tid, t_rel, args))
        else:
            # t_wall/t_rel stamp the event's *start*; dur_s extends it.
            out.append(_complete(name, WORKER_PID, tid, t_rel, float(dur), args))


def chrome_trace_events(report: dict) -> list[dict]:
    """The report's spans + worker events as Chrome trace events."""
    if not isinstance(report, dict) or "trace" not in report:
        raise ValidationError(
            "not a trace report: expected a dict with a 'trace' key "
            "(write one with focal --trace)"
        )
    command = report.get("manifest", {}).get("command", "focal")
    out: list[dict] = [
        _metadata(PARENT_PID, None, f"focal parent ({command})"),
        _metadata(PARENT_PID, MAIN_TID, "main"),
        _metadata(PARENT_PID, CHUNK_TID, "chunks"),
        _metadata(PARENT_PID, SUPERVISOR_TID, "supervisor"),
        _metadata(WORKER_PID, None, "focal workers"),
    ]
    for root in report.get("trace", []):
        _span_events(root, MAIN_TID, out)
    workers: list[int] = []
    _event_events(report.get("events", []) or [], out, workers)
    for worker in workers:
        tid = worker if isinstance(worker, int) else 0
        out.append(_metadata(WORKER_PID, tid, f"worker {worker}"))
    return out


def report_to_chrome(report: dict, *, indent: int | None = None) -> str:
    """Serialize *report* as a Chrome Trace Event JSON document
    (``{"traceEvents": [...]}`` with microsecond timestamps)."""
    return json.dumps(
        {
            "traceEvents": chrome_trace_events(report),
            "displayTimeUnit": "ms",
        },
        indent=indent,
        default=str,
    )
