"""Cross-process worker event capture for sweep timelines.

The span tracer (:mod:`repro.obs.trace`) lives entirely in the parent
process: a parallel-columnar sweep shows one ``kernels`` span covering
the whole pool phase and nothing about what each worker did inside it.
This module closes that gap with *events* — flat, timestamped records
cheap enough to capture inside pool workers:

* each worker process owns one :class:`EventBuffer`, armed (or left
  disabled) by the pool initializer via :func:`init_worker`. Recording
  while disabled is a single attribute check; the disabled path is the
  default everyone runs;
* events ride back to the parent with shard results (the worker drains
  its buffer into the reply), **and** every event is written through to
  a per-worker spill file as it is recorded — so a worker that crashes
  mid-shard still leaves its partial timeline on disk for the parent to
  collect. The parent deduplicates the two transports by
  ``(worker, seq)``;
* the parent merges everything into the process-global
  :class:`EventLog`, which the run report (:func:`repro.obs.manifest.
  build_report`), the Chrome-trace exporter (:mod:`repro.obs.chrome`)
  and the bottleneck profiler (:mod:`repro.obs.profile`) consume.

Clock alignment: ``perf_counter`` readings are process-local, so raw
monotonic timestamps from different processes cannot be merged. Each
buffer therefore anchors itself once at arm time — it pairs one
``time.time()`` reading with one ``time.perf_counter()`` reading — and
stamps every event as ``anchor_wall + (perf_counter() - anchor_perf)``:
monotonic *within* a process, aligned *across* processes through the
host's shared wall clock. The parent's tracer keeps the matching
anchor (``Tracer.started_at``/``origin_s``), so worker events and
parent spans land on one timeline.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import time
from pathlib import Path
from typing import Iterable

__all__ = [
    "EventBuffer",
    "EventLog",
    "get_buffer",
    "get_log",
    "record",
    "init_worker",
    "is_enabled",
    "enable",
    "disable",
    "reset",
    "make_spill_dir",
    "cleanup_spill_dir",
    "SPILL_PREFIX",
]

#: Spill files are named ``events-<pid>.jsonl`` inside the sweep's
#: spill directory.
SPILL_PREFIX = "events-"


class EventBuffer:
    """The per-process event recorder (worker side).

    Disabled by default; while disabled, :meth:`add` is one attribute
    check and an early return. When armed, events accumulate in memory
    (drained into shard replies by the caller) and are simultaneously
    written through to the spill file, line-buffered, so a crash loses
    at most the event being written.
    """

    __slots__ = (
        "enabled",
        "events",
        "_seq",
        "_anchor_wall",
        "_anchor_perf",
        "_spill",
    )

    def __init__(self) -> None:
        self.enabled = False
        self.events: list[dict] = []
        self._seq = 0
        self._anchor_wall = 0.0
        self._anchor_perf = 0.0
        self._spill = None

    def enable(self, spill_dir: str | os.PathLike | None = None) -> None:
        """Arm the buffer, stamping the clock anchor; optionally open a
        write-through spill file under *spill_dir*."""
        self.disable()
        self.enabled = True
        self.events = []
        self._anchor_wall = time.time()
        self._anchor_perf = time.perf_counter()
        if spill_dir is not None:
            try:
                path = Path(spill_dir) / f"{SPILL_PREFIX}{os.getpid()}.jsonl"
                self._spill = open(path, "a", buffering=1)
            except OSError:
                self._spill = None

    def disable(self) -> None:
        """Disarm; buffered events are dropped and the spill is closed."""
        self.enabled = False
        self.events = []
        if self._spill is not None:
            try:
                self._spill.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass
            self._spill = None

    def now(self) -> float:
        """An anchored wall-clock reading (monotonic within process)."""
        if self.enabled:
            return self._anchor_wall + (time.perf_counter() - self._anchor_perf)
        return time.time()

    def add(
        self,
        name: str,
        *,
        start: float | None = None,
        dur_s: float | None = None,
        **attrs: object,
    ) -> None:
        """Record one event (no-op while disabled).

        *start* is an anchored timestamp from :meth:`now` (defaults to
        the current reading); *dur_s* turns the event into a duration
        span, ``None`` marks an instant. Extra keywords become the
        event's attributes.
        """
        if not self.enabled:
            return
        event: dict = {
            "name": name,
            "worker": os.getpid(),
            "seq": self._seq,
            "t_wall": self.now() if start is None else start,
            "dur_s": dur_s,
        }
        if attrs:
            event["attrs"] = attrs
        self._seq += 1
        self.events.append(event)
        if self._spill is not None:
            try:
                self._spill.write(json.dumps(event, default=str) + "\n")
            except OSError:  # pragma: no cover - disk full etc.
                pass

    def drain(self) -> list[dict]:
        """Hand the buffered events over (the reply transport) and keep
        the sequence counter running so spill dedup stays correct."""
        events, self.events = self.events, []
        return events


class EventLog:
    """The parent-side merged collection of one observed run's events.

    Events arrive from shard replies (:meth:`extend`), from crash spill
    files (:meth:`collect_spill`) and from parent-side instrumentation
    such as the pool supervisor (:meth:`record`). Both worker
    transports deliver the same events, so the log deduplicates on
    ``(worker, seq)``.
    """

    def __init__(self) -> None:
        self.enabled = False
        self._events: list[dict] = []
        self._seen: set[tuple] = set()
        self._seq = 0

    def __len__(self) -> int:
        return len(self._events)

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        self._events.clear()
        self._seen.clear()
        self._seq = 0

    def record(
        self,
        name: str,
        *,
        track: str | None = None,
        dur_s: float | None = None,
        **attrs: object,
    ) -> None:
        """A parent-origin event (supervisor actions and the like)."""
        if not self.enabled:
            return
        event: dict = {
            "name": name,
            "worker": os.getpid(),
            "seq": f"parent-{self._seq}",
            "t_wall": time.time(),
            "dur_s": dur_s,
        }
        if track is not None:
            event["track"] = track
        if attrs:
            event["attrs"] = attrs
        self._seq += 1
        self._events.append(event)

    def extend(self, events: Iterable[dict]) -> int:
        """Merge worker events, skipping duplicates and malformed rows;
        returns how many were actually added."""
        if not self.enabled:
            return 0
        added = 0
        for event in events:
            if not isinstance(event, dict) or "name" not in event:
                continue
            key = (event.get("worker"), event.get("seq"))
            if key in self._seen:
                continue
            self._seen.add(key)
            self._events.append(event)
            added += 1
        return added

    def collect_spill(self, spill_dir: str | os.PathLike) -> int:
        """Read every spill file under *spill_dir* into the log.

        A torn final line (the worker died mid-write) is silently
        skipped — that is the crash contract: everything fully written
        before the crash survives. Returns how many events were new.
        """
        added = 0
        try:
            paths = sorted(Path(spill_dir).glob(f"{SPILL_PREFIX}*.jsonl"))
        except OSError:  # pragma: no cover - spill dir vanished
            return 0
        for path in paths:
            try:
                lines = path.read_text().splitlines()
            except OSError:  # pragma: no cover - race with cleanup
                continue
            rows = []
            for line in lines:
                try:
                    rows.append(json.loads(line))
                except json.JSONDecodeError:
                    continue  # torn write from a crashed worker
            added += self.extend(rows)
        return added

    def events(self) -> list[dict]:
        """The merged events, sorted by timestamp."""
        return sorted(self._events, key=lambda e: e.get("t_wall", 0.0))

    def as_dicts(self, *, started_at: float | None = None) -> list[dict]:
        """JSON-ready rows for the run report.

        With *started_at* (the tracer's wall-clock enable time) each row
        additionally carries ``t_rel`` — seconds since trace start, the
        same origin parent span ``start_s`` values use — so consumers
        can merge spans and events without clock arithmetic.
        """
        rows = []
        for event in self.events():
            row = dict(event)
            if started_at is not None and isinstance(
                row.get("t_wall"), (int, float)
            ):
                row["t_rel"] = float(row["t_wall"]) - started_at
            rows.append(row)
        return rows

    def workers(self) -> list[int]:
        """Distinct worker ids (parent pid included if it recorded)."""
        return sorted({e.get("worker") for e in self._events if "worker" in e})


_BUFFER = EventBuffer()
_LOG = EventLog()


def get_buffer() -> EventBuffer:
    """This process's event buffer (worker-side recording)."""
    return _BUFFER


def get_log() -> EventLog:
    """The process-global parent event log."""
    return _LOG


def record(name: str, **kwargs: object) -> None:
    """Record onto the parent log (see :meth:`EventLog.record`)."""
    _LOG.record(name, **kwargs)  # type: ignore[arg-type]


def init_worker(capture: bool, spill_dir: str | None = None) -> None:
    """Pool-initializer hook: arm (or disarm) this process's buffer.

    Shipped as ``initializer=init_worker, initargs=(capture, spill)``
    on worker pools; also called by the parent (without a spill) so
    in-process degradation records events exactly like a worker would.
    """
    if capture:
        _BUFFER.enable(spill_dir)
    else:
        _BUFFER.disable()


def is_enabled() -> bool:
    """Whether the parent log is collecting (the capture switch sweeps
    consult when deciding whether to arm worker buffers)."""
    return _LOG.enabled


def enable() -> None:
    """Enable the parent event log."""
    _LOG.enable()


def disable() -> None:
    """Disable the parent event log (collected events are kept)."""
    _LOG.disable()


def reset() -> None:
    """Disable and clear the log and this process's buffer."""
    _LOG.disable()
    _LOG.clear()
    _BUFFER.disable()


def make_spill_dir(base: str | os.PathLike | None = None) -> str:
    """A fresh private directory for one sweep's spill files.

    Out-of-core sweeps pass their spill directory as *base* so worker
    event files land next to the memmapped blocks instead of in a
    cwd/tmp mix; the caller's ``finally`` removes the whole tree either
    way via :func:`cleanup_spill_dir`.
    """
    return tempfile.mkdtemp(
        prefix="focal-events-", dir=os.fspath(base) if base is not None else None
    )


def cleanup_spill_dir(spill_dir: str | os.PathLike) -> None:
    """Remove a spill directory and everything in it (best-effort)."""
    shutil.rmtree(spill_dir, ignore_errors=True)
