"""Exporters for traces and metrics: JSON-lines and Prometheus text.

Everything returns plain strings (the :mod:`repro.report.export`
convention — callers decide where bytes land); the file-writing
wrappers ``write_metrics``/``write_trace`` live in
:mod:`repro.report.export`, which re-exports these formatters.

Prometheus output follows the text exposition format 0.0.4: one
``# HELP``/``# TYPE`` pair per metric family, label values escaped
(backslash, double-quote, newline), help strings escaped (backslash,
newline), histograms expanded to cumulative ``_bucket{le=...}`` series
plus ``_sum``/``_count``.
"""

from __future__ import annotations

import json
import math
import re

from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .trace import Tracer

__all__ = [
    "metrics_to_prometheus",
    "metrics_to_jsonl",
    "trace_to_jsonl",
]

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_OK = re.compile(r"[^a-zA-Z0-9_]")


def _sanitize_name(name: str) -> str:
    name = _NAME_OK.sub("_", name)
    if not name or name[0].isdigit():
        name = "_" + name
    return name


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_number(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _labels_text(labels: dict[str, str], extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = [
        (_LABEL_OK.sub("_", key), _escape_label_value(str(value)))
        for key, value in labels.items()
    ]
    pairs.extend(extra)
    if not pairs:
        return ""
    return "{" + ",".join(f'{key}="{value}"' for key, value in pairs) + "}"


def metrics_to_prometheus(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format (0.0.4).

    The 0.0.4 spec requires every sample of one metric family to form a
    single group under that family's ``# HELP``/``# TYPE`` header.
    Instruments are created lazily, so label-set variants of one family
    can be interleaved with other families in creation order — samples
    are therefore grouped by family first (families keep first-creation
    order, samples keep creation order within their family).
    """
    families: dict[str, list[Counter | Gauge | Histogram]] = {}
    for metric in registry:
        families.setdefault(_sanitize_name(metric.name), []).append(metric)
    lines: list[str] = []
    for name, metrics in families.items():
        # HELP comes from the first instrument that provided one (label
        # variants are usually created with identical help text).
        help_text = next((m.help for m in metrics if m.help), "")
        if help_text:
            lines.append(f"# HELP {name} {_escape_help(help_text)}")
        lines.append(f"# TYPE {name} {metrics[0].kind}")
        for metric in metrics:
            if isinstance(metric, (Counter, Gauge)):
                lines.append(
                    f"{name}{_labels_text(metric.labels)} {_format_number(metric.value)}"
                )
            elif isinstance(metric, Histogram):
                for bound, count in zip(metric.buckets, metric.bucket_counts):
                    le = (("le", _format_number(bound)),)
                    lines.append(f"{name}_bucket{_labels_text(metric.labels, le)} {count}")
                inf = (("le", "+Inf"),)
                lines.append(f"{name}_bucket{_labels_text(metric.labels, inf)} {metric.count}")
                lines.append(
                    f"{name}_sum{_labels_text(metric.labels)} {_format_number(metric.sum)}"
                )
                lines.append(f"{name}_count{_labels_text(metric.labels)} {metric.count}")
    return "\n".join(lines) + ("\n" if lines else "")


def metrics_to_jsonl(registry: MetricsRegistry) -> str:
    """One JSON object per instrument, one per line (creation order);
    the empty registry exports the empty string."""
    rows = registry.snapshot()
    if not rows:
        return ""
    return "\n".join(json.dumps(row, default=str) for row in rows) + "\n"


def trace_to_jsonl(tracer: Tracer) -> str:
    """The span forest flattened depth-first, one JSON object per line.

    Each line carries ``depth`` and the ``/``-joined ``path`` so nested
    structure survives the flattening; an empty trace exports the empty
    string.
    """
    lines: list[str] = []
    origin = tracer.origin_s
    for depth, path, span_ in tracer.walk():
        row: dict[str, object] = {
            "path": path,
            "depth": depth,
            "name": span_.name,
            "start_s": None if span_.start_s is None else span_.start_s - origin,
            "duration_s": span_.duration_s,
        }
        if span_.attributes:
            row["attributes"] = dict(span_.attributes)
        if span_.counters:
            row["counters"] = dict(span_.counters)
        lines.append(json.dumps(row, default=str))
    if not lines:
        return ""
    return "\n".join(lines) + "\n"
