"""The single structured logger for the whole package.

Every module logs through the one ``"repro"`` logger this module owns
— there is no per-module logger forest to configure. Messages are
``event key=value`` structured lines on **stderr** (stdout stays clean
for tables, CSV and JSON), formatted as::

    2026-08-05T12:00:00 DEBUG repro: study.run study=figure3

Nothing is emitted until :func:`configure` attaches the stderr handler
— the CLI does that from ``--log-level``/``-v``; library users call it
directly. Before configuration the logger carries a
``logging.NullHandler``, so importing the package never prints.

Usage::

    from repro.obs.log import get_logger, kv

    log = get_logger()
    log.debug(kv("study.run", study=name))
"""

from __future__ import annotations

import logging
import sys
from typing import TextIO

__all__ = ["LOGGER_NAME", "LEVELS", "get_logger", "configure", "kv"]

#: The one logger name the package emits on.
LOGGER_NAME = "repro"

#: Accepted ``--log-level`` spellings, least to most verbose.
LEVELS = ("critical", "error", "warning", "info", "debug")

_FORMAT = "%(asctime)s %(levelname)s %(name)s: %(message)s"
_DATE_FORMAT = "%Y-%m-%dT%H:%M:%S"

#: Marker attribute identifying the handler :func:`configure` installs,
#: so re-configuration replaces rather than stacks handlers.
_HANDLER_MARK = "_repro_obs_handler"

_logger = logging.getLogger(LOGGER_NAME)
_logger.addHandler(logging.NullHandler())


def get_logger() -> logging.Logger:
    """The shared ``"repro"`` logger."""
    return _logger


def _format_value(value: object) -> str:
    text = str(value)
    if " " in text or "=" in text or not text:
        return repr(text)
    return text


def kv(event: str, **fields: object) -> str:
    """Format *event* plus key/value *fields* as one structured line
    (values with spaces are quoted): ``kv("chunk.done", points=1024)``
    → ``"chunk.done points=1024"``."""
    parts = [event]
    parts.extend(f"{key}={_format_value(value)}" for key, value in fields.items())
    return " ".join(parts)


def configure(level: str | int = "warning", stream: TextIO | None = None) -> logging.Logger:
    """Attach (or replace) the structured stderr handler at *level*.

    *level* is a :data:`LEVELS` name or a ``logging`` integer;
    *stream* defaults to ``sys.stderr``. Idempotent: calling again
    swaps the previous handler instead of stacking a duplicate.
    """
    if isinstance(level, str):
        name = level.lower()
        if name not in LEVELS:
            from ..core.errors import ValidationError

            raise ValidationError(
                f"unknown log level {level!r}; use one of {', '.join(LEVELS)}"
            )
        level = getattr(logging, name.upper())
    for handler in list(_logger.handlers):
        if getattr(handler, _HANDLER_MARK, False):
            _logger.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(logging.Formatter(_FORMAT, datefmt=_DATE_FORMAT))
    setattr(handler, _HANDLER_MARK, True)
    _logger.addHandler(handler)
    _logger.setLevel(level)
    return _logger
