"""Run provenance: what ran, where, and how long each phase took.

A :class:`RunManifest` pins down everything needed to replay a traced
run — argv, seed, package version, a node roster (host, platform,
Python/NumPy versions, CPU count) and the per-phase wall-time
breakdown derived from the trace. :func:`build_report` bundles the
manifest with the full span tree and a metrics snapshot into one
JSON document (schema :data:`SCHEMA`), which ``focal trace show``
pretty-prints and :func:`report_from_json` round-trips.
"""

from __future__ import annotations

import json
import os
import platform
import socket
import time
from dataclasses import dataclass, field

from ..core.errors import ValidationError
from .events import EventLog
from .metrics import MetricsRegistry
from .trace import Tracer

__all__ = [
    "SCHEMA",
    "RunManifest",
    "node_roster",
    "phase_breakdown",
    "build_manifest",
    "build_report",
    "report_to_json",
    "report_from_json",
]

#: Schema tag stamped into every trace report; bump on breaking change.
SCHEMA = "focal-trace/1"


def node_roster() -> dict[str, object]:
    """The machine identity recorded with every manifest."""
    import numpy

    return {
        "hostname": socket.gethostname(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "cpu_count": os.cpu_count(),
    }


def phase_breakdown(tracer: Tracer) -> list[dict[str, object]]:
    """Per-phase timing rows from a trace.

    A CLI run has one root span (the command); its direct children are
    the interesting phases, so the breakdown is the root plus its
    children. Multi-root traces report each root as a phase.
    """
    roots = tracer.roots
    spans = list(roots)
    if len(roots) == 1:
        spans.extend(roots[0].children)
    return [
        {"phase": s.name, "seconds": s.duration_s, "spans": 1 + _descendants(s)}
        for s in spans
    ]


def _descendants(span_) -> int:
    return sum(1 + _descendants(child) for child in span_.children)


@dataclass(frozen=True)
class RunManifest:
    """Provenance for one observed run."""

    argv: tuple[str, ...]
    command: str
    seed: int | None
    version: str
    started_at: float
    duration_s: float | None
    node: dict[str, object] = field(default_factory=dict)
    phases: tuple[dict[str, object], ...] = ()

    def as_dict(self) -> dict[str, object]:
        return {
            "argv": list(self.argv),
            "command": self.command,
            "seed": self.seed,
            "version": self.version,
            "started_at": self.started_at,
            "started_at_iso": time.strftime(
                "%Y-%m-%dT%H:%M:%S", time.gmtime(self.started_at)
            )
            + "Z",
            "duration_s": self.duration_s,
            "node": dict(self.node),
            "phases": [dict(p) for p in self.phases],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RunManifest":
        try:
            return cls(
                argv=tuple(payload["argv"]),
                command=payload["command"],
                seed=payload.get("seed"),
                version=payload["version"],
                started_at=payload["started_at"],
                duration_s=payload.get("duration_s"),
                node=dict(payload.get("node", {})),
                phases=tuple(dict(p) for p in payload.get("phases", ())),
            )
        except (KeyError, TypeError) as exc:
            raise ValidationError(f"malformed run manifest: {exc}") from exc


def build_manifest(
    argv: tuple[str, ...] | list[str],
    *,
    command: str,
    seed: int | None = None,
    tracer: Tracer | None = None,
    duration_s: float | None = None,
) -> RunManifest:
    """Assemble a manifest for the run the *tracer* observed."""
    from .. import __version__

    started_at = time.time()
    if tracer is not None and tracer.started_at is not None:
        started_at = tracer.started_at
    phases: tuple[dict[str, object], ...] = ()
    if tracer is not None:
        phases = tuple(phase_breakdown(tracer))
        if duration_s is None and tracer.roots:
            durations = [r.duration_s for r in tracer.roots if r.duration_s is not None]
            if durations:
                duration_s = sum(durations)
    return RunManifest(
        argv=tuple(argv),
        command=command,
        seed=seed,
        version=__version__,
        started_at=started_at,
        duration_s=duration_s,
        node=node_roster(),
        phases=phases,
    )


def build_report(
    manifest: RunManifest,
    tracer: Tracer | None = None,
    registry: MetricsRegistry | None = None,
    events: "EventLog | None" = None,
) -> dict[str, object]:
    """The replayable JSON document: manifest + span tree + metrics +
    worker events.

    Event rows carry ``t_rel`` (seconds since trace start, the same
    origin span ``start_s`` values use) when the tracer's wall-clock
    anchor is known, so spans and events merge into one timeline
    without clock arithmetic. Reports written before the events layer
    existed simply lack the key — consumers treat a missing ``events``
    as an empty list.
    """
    rows: list[dict[str, object]] = []
    if events is not None and len(events):
        started_at = tracer.started_at if tracer is not None else None
        rows = events.as_dicts(started_at=started_at)
    return {
        "schema": SCHEMA,
        "manifest": manifest.as_dict(),
        "trace": tracer.as_dicts() if tracer is not None else [],
        "metrics": registry.snapshot() if registry is not None else [],
        "events": rows,
    }


def report_to_json(report: dict[str, object], *, indent: int = 2) -> str:
    """Serialize a report built by :func:`build_report`."""
    return json.dumps(report, indent=indent, default=str)


def report_from_json(text: str) -> dict[str, object]:
    """Parse and validate a trace report; raises
    :class:`~repro.core.errors.ValidationError` on malformed input."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValidationError(f"malformed trace report JSON: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("schema") != SCHEMA:
        raise ValidationError(
            f"not a {SCHEMA} trace report (schema="
            f"{payload.get('schema') if isinstance(payload, dict) else None!r})"
        )
    RunManifest.from_dict(payload.get("manifest", {}))  # validates
    return payload
