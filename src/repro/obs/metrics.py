"""A small metrics registry: counters, gauges, and histograms.

The registry is the aggregate complement to :mod:`repro.obs.trace`:
spans answer *where a particular run spent its time*, metrics answer
*how much work happened overall* (evaluations, cache hits, chunk
latency distribution). Instruments are created on first use and keyed
by ``(name, labels)``, Prometheus-style::

    from repro.obs import metrics

    metrics.enable()
    reg = metrics.get_registry()
    reg.counter("focal_evaluations_total", "factory evaluations").inc(128)
    reg.gauge("focal_cache_hit_ratio").set(0.93)
    reg.histogram("focal_chunk_seconds").observe(0.0042)

Like tracing, the global registry is **disabled by default**; hot paths
check ``get_registry().enabled`` once and skip recording entirely, so
the disabled cost is a single attribute check per sweep or sampler
call. Exporters (JSON-lines and Prometheus text format) live in
:mod:`repro.obs.exporters` and are re-exported by
:mod:`repro.report.export`.
"""

from __future__ import annotations

from ..core.errors import ValidationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "get_registry",
    "enable",
    "disable",
    "reset",
]

#: Default histogram bucket upper bounds (seconds-flavored); a final
#: +Inf bucket is implicit.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class Counter:
    """Monotonically increasing count."""

    kind = "counter"
    __slots__ = ("name", "help", "labels", "value")

    def __init__(self, name: str, help: str, labels: dict[str, str]) -> None:
        self.name = name
        self.help = help
        self.labels = labels
        self.value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add *amount* (must be >= 0) to the counter."""
        if amount < 0:
            raise ValidationError(f"counter increments must be >= 0, got {amount}")
        self.value += amount

    def snapshot(self) -> dict[str, object]:
        return {"value": self.value}


class Gauge:
    """A value that can go up and down (last write wins)."""

    kind = "gauge"
    __slots__ = ("name", "help", "labels", "value")

    def __init__(self, name: str, help: str, labels: dict[str, str]) -> None:
        self.name = name
        self.help = help
        self.labels = labels
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def snapshot(self) -> dict[str, object]:
        return {"value": self.value}


class Histogram:
    """Cumulative-bucket histogram of observed values.

    ``bucket_counts[i]`` counts observations ``<= buckets[i]``
    (cumulative, as Prometheus expects); the implicit +Inf bucket is
    :attr:`count`. :attr:`sum` accumulates raw observations so mean
    latency is recoverable.
    """

    kind = "histogram"
    __slots__ = ("name", "help", "labels", "buckets", "bucket_counts", "sum", "count")

    def __init__(
        self,
        name: str,
        help: str,
        labels: dict[str, str],
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValidationError(
                f"histogram buckets must be non-empty and ascending, got {buckets}"
            )
        self.name = name
        self.help = help
        self.labels = labels
        self.buckets = tuple(float(b) for b in buckets)
        self.bucket_counts = [0] * len(self.buckets)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.sum += value
        self.count += 1
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                # Cumulative buckets: every bound at or above the value.
                for j in range(i, len(self.buckets)):
                    self.bucket_counts[j] += 1
                return

    def snapshot(self) -> dict[str, object]:
        return {
            "sum": self.sum,
            "count": self.count,
            "buckets": {
                repr(bound): count
                for bound, count in zip(self.buckets, self.bucket_counts)
            },
        }


def _labels_key(labels: dict[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted(labels.items()))


class MetricsRegistry:
    """Creates and holds instruments, keyed by ``(name, labels)``.

    Re-requesting an instrument with the same name and labels returns
    the existing one; requesting a name that already exists with a
    different kind raises :class:`~repro.core.errors.ValidationError`
    (one name, one type — the Prometheus contract).
    """

    def __init__(self, *, enabled: bool = False) -> None:
        self.enabled = enabled
        self._instruments: dict[tuple, Counter | Gauge | Histogram] = {}

    def __len__(self) -> int:
        return len(self._instruments)

    def __iter__(self):
        """Instruments in creation order (stable export order)."""
        return iter(self._instruments.values())

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        """Drop every instrument."""
        self._instruments.clear()

    def _get(self, cls, name: str, help: str, labels: dict[str, str] | None, **kwargs):
        labels = dict(labels or {})
        key = (name, _labels_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            same_name = [m for m in self._instruments.values() if m.name == name]
            if same_name and not isinstance(same_name[0], cls):
                raise ValidationError(
                    f"metric {name!r} already registered as "
                    f"{same_name[0].kind}, requested {cls.kind}"
                )
            instrument = cls(name, help, labels, **kwargs)
            self._instruments[key] = instrument
        elif not isinstance(instrument, cls):
            raise ValidationError(
                f"metric {name!r} already registered as "
                f"{instrument.kind}, requested {cls.kind}"
            )
        return instrument

    def counter(
        self, name: str, help: str = "", labels: dict[str, str] | None = None
    ) -> Counter:
        """Get or create a counter."""
        return self._get(Counter, name, help, labels)

    def gauge(
        self, name: str, help: str = "", labels: dict[str, str] | None = None
    ) -> Gauge:
        """Get or create a gauge."""
        return self._get(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: dict[str, str] | None = None,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> Histogram:
        """Get or create a histogram."""
        return self._get(Histogram, name, help, labels, buckets=buckets)

    def snapshot(self) -> list[dict[str, object]]:
        """Every instrument as a JSON-ready dict, creation order."""
        return [
            {
                "name": m.name,
                "kind": m.kind,
                "help": m.help,
                "labels": dict(m.labels),
                **m.snapshot(),
            }
            for m in self
        ]


_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global registry used by all instrumentation."""
    return _REGISTRY


def enable() -> None:
    """Enable the global registry."""
    _REGISTRY.enable()


def disable() -> None:
    """Disable the global registry (instruments are kept)."""
    _REGISTRY.disable()


def reset() -> None:
    """Disable the global registry and drop every instrument."""
    _REGISTRY.disable()
    _REGISTRY.clear()
