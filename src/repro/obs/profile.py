"""Bottleneck attribution for parallel sweeps: ``focal profile``.

Answers the question the parallel-columnar benchmark raised: the pool
landed well short of ``workers``-fold speedup — *where did the rest
go?* Given a trace report with worker events (a run captured with
``focal --trace`` or :func:`repro.obs.enable`), the profiler
decomposes the sweep's wall-clock into five mutually exclusive,
collectively exhaustive categories:

``compute``
    Worker seconds inside ``factory.batch_arrays``, divided by the
    worker count — the part that scales.
``shm``
    Worker seconds writing result columns into the shared block.
``dispatch``
    Pool overhead attributed to workers: shard time that is neither
    compute nor shm (pickling columns in/out, queue handoff) plus the
    idle gaps between one shard ending and the next starting inside a
    worker's busy window.
``straggler``
    Kernel-phase time where a worker had no shard at all — the lead-in
    before its first shard, the tail after its last (waiting for the
    slowest sibling), and the whole kernel phase for planned workers
    that never reported an event.
``serial``
    The parent-serial residue outside the kernel phase: grid chunking,
    shared-memory setup, point materialization, cache fills,
    classification, checkpoint writes.

The identity that makes the report trustworthy: *serial* is
``wall − kernel`` and the four worker categories tile ``kernel`` ×
``workers`` worker-seconds exactly, so after dividing by ``workers``
the five categories sum to the sweep wall-clock (shares sum to 100%).

On top of the decomposition the report derives per-worker utilization
(compute seconds / kernel wall) and an Amdahl-style attainable
speedup: with serial time ``s`` and total compute ``c``, a perfect
``N``-worker run takes ``s + c/N`` against a serial ``s + c`` — the
ceiling the current pool should be measured against.

Sweeps recorded with reuse telemetry (any store-backed run) also carry
a point-provenance section: how many grid points came from the store's
memory tier, its disk tier, the in-process factory memo, and fresh
evaluation — so a "suspiciously fast" sweep is explained rather than
mis-attributed to compute.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.errors import ValidationError
from ..report.table import format_mapping_rows, format_table

__all__ = ["WorkerProfile", "ProfileReport", "profile_report", "render_profile"]

#: Category keys, display order.
CATEGORIES = ("compute", "shm", "dispatch", "straggler", "serial")


@dataclass(frozen=True)
class WorkerProfile:
    """One worker's share of the kernel phase."""

    worker: int
    shards: int
    compute_s: float
    shm_s: float
    active_s: float
    window_s: float
    utilization: float


@dataclass(frozen=True)
class ProfileReport:
    """The full attribution of one sweep's wall-clock."""

    wall_s: float
    kernel_s: float
    workers: int
    observed_workers: int
    seconds: dict[str, float]
    shares: dict[str, float]
    per_worker: tuple[WorkerProfile, ...]
    serial_s: float
    compute_total_s: float
    amdahl_attainable: float
    achieved_speedup_estimate: float
    #: Point-provenance split when the sweep ran with reuse telemetry
    #: (memo/store/fresh counts from the sweep span attributes); None
    #: for traces recorded before the result store existed.
    reuse: dict | None = None
    top_cost: str = field(init=False)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "top_cost", max(self.seconds, key=self.seconds.__getitem__)
        )


def _find_span(spans: list[dict], name: str) -> dict | None:
    """Depth-first search of the span forest for the first *name*."""
    for span in spans:
        if span.get("name") == name:
            return span
        found = _find_span(list(span.get("children", ())), name)
        if found is not None:
            return found
    return None


def profile_report(report: dict) -> ProfileReport:
    """Attribute a traced parallel sweep's wall-clock (see module docs).

    *report* is the parsed trace-report document. Raises
    :class:`~repro.core.errors.ValidationError` when the report has no
    parallel sweep or no worker events to attribute from.
    """
    trace = report.get("trace") if isinstance(report, dict) else None
    if not isinstance(trace, list):
        raise ValidationError("not a trace report: no span tree to profile")
    sweep = _find_span(trace, "sweep")
    if sweep is None or sweep.get("duration_s") is None:
        raise ValidationError(
            "no completed 'sweep' span in this report — profile a run of "
            "focal sweep --workers N --trace FILE"
        )
    attrs = sweep.get("attributes", {}) or {}
    reuse = _reuse_split(attrs)
    kernels = _find_span(list(sweep.get("children", ())), "kernels")
    workers = int(attrs.get("workers", 0) or 0)
    if kernels is None or kernels.get("duration_s") is None or workers < 1:
        detail = (
            "this sweep has no kernel phase to attribute — the profiler "
            "needs a parallel-columnar run (workers > 0, cold cache)"
        )
        if reuse is not None and not reuse["fresh"]:
            detail += (
                f"; this run was served entirely from reuse "
                f"({reuse['store_memory'] + reuse['store_disk']} store pts, "
                f"{reuse['memo']} memoized) — nothing was evaluated"
            )
        raise ValidationError(detail)
    shards = [
        row
        for row in report.get("events", []) or []
        if row.get("name") == "shard" and isinstance(row.get("t_rel"), (int, float))
    ]
    if not shards:
        raise ValidationError(
            "no worker shard events in this report — capture one with "
            "worker-event telemetry enabled (focal --trace does)"
        )

    wall = float(sweep["duration_s"])
    k_start = float(kernels.get("start_s") or 0.0)
    k_dur = float(kernels["duration_s"])
    k_end = k_start + k_dur

    by_worker: dict[int, list[dict]] = {}
    for row in shards:
        by_worker.setdefault(int(row.get("worker", 0)), []).append(row)

    per_worker: list[WorkerProfile] = []
    sum_compute = sum_shm = sum_active = sum_window = 0.0
    for worker, rows in sorted(by_worker.items()):
        compute = sum(float(r.get("attrs", {}).get("compute_s", 0.0)) for r in rows)
        shm = sum(float(r.get("attrs", {}).get("shm_s", 0.0)) for r in rows)
        active = sum(float(r.get("dur_s") or 0.0) for r in rows)
        # Clamp the busy window to the kernel phase: worker clocks are
        # wall-aligned but independent, so a few ms of skew must not
        # manufacture negative straggler time.
        lo = max(k_start, min(float(r["t_rel"]) for r in rows))
        hi = min(k_end, max(float(r["t_rel"]) + float(r.get("dur_s") or 0.0) for r in rows))
        window = max(0.0, hi - lo)
        active = min(active, window) if window else active
        compute = min(compute, active)
        shm = min(shm, max(0.0, active - compute))
        per_worker.append(
            WorkerProfile(
                worker=worker,
                shards=len(rows),
                compute_s=compute,
                shm_s=shm,
                active_s=active,
                window_s=window,
                utilization=compute / k_dur if k_dur > 0 else 0.0,
            )
        )
        sum_compute += compute
        sum_shm += shm
        sum_active += active
        sum_window += window

    observed = len(per_worker)
    n = max(workers, 1)
    serial = max(0.0, wall - k_dur)
    # Worker-seconds tiling of the kernel phase, then /N to wall units:
    # compute + shm + (active - compute - shm) + (window - active)
    # + (K - window) per observed worker, plus K per missing worker.
    dispatch_ws = (sum_active - sum_compute - sum_shm) + (sum_window - sum_active)
    straggler_ws = (observed * k_dur - sum_window) + (n - observed) * k_dur
    seconds = {
        "compute": sum_compute / n,
        "shm": sum_shm / n,
        "dispatch": max(0.0, dispatch_ws) / n,
        "straggler": max(0.0, straggler_ws) / n,
        "serial": serial,
    }
    # Clock skew can clamp a few worker-seconds away; fold the rounding
    # remainder into straggler so the categories tile the wall exactly.
    remainder = wall - sum(seconds.values())
    seconds["straggler"] = max(0.0, seconds["straggler"] + remainder)
    total = sum(seconds.values()) or 1.0
    shares = {key: value / total for key, value in seconds.items()}

    serial_ideal = serial + sum_shm / n  # shm does not parallel-scale away
    t1 = serial + sum_compute
    t_n_ideal = serial_ideal + sum_compute / n
    return ProfileReport(
        wall_s=wall,
        kernel_s=k_dur,
        workers=workers,
        observed_workers=observed,
        seconds=seconds,
        shares=shares,
        per_worker=tuple(per_worker),
        serial_s=serial,
        compute_total_s=sum_compute,
        amdahl_attainable=t1 / t_n_ideal if t_n_ideal > 0 else 0.0,
        achieved_speedup_estimate=t1 / wall if wall > 0 else 0.0,
        reuse=reuse,
    )


def _reuse_split(attrs: dict) -> dict | None:
    """The sweep's point-provenance split, when its span recorded one.

    ``store_points`` only lands on the span for store-backed sweeps, so
    its presence is the signal that the reuse telemetry exists at all.
    """
    if "store_points" not in attrs:
        return None
    return {
        "store_memory": int(attrs.get("store_memory_points", 0) or 0),
        "store_disk": int(attrs.get("store_disk_points", 0) or 0),
        "memo": int(attrs.get("memo_points", 0) or 0),
        "fresh": int(attrs.get("fresh_points", 0) or 0),
        "store_chunks": int(attrs.get("store_chunks", 0) or 0),
        "delta_chunks": int(attrs.get("delta_chunks", 0) or 0),
        "reuse_ratio": float(attrs.get("store_reuse_ratio", 0.0) or 0.0),
    }


def render_profile(profile: ProfileReport) -> str:
    """The ``focal profile`` page: attribution, per-worker rows, verdict."""
    attribution = format_mapping_rows(
        [
            {
                "category": key,
                "seconds": f"{profile.seconds[key]:.4f}",
                "share": f"{100.0 * profile.shares[key]:.1f}%",
            }
            for key in CATEGORIES
        ],
        title=(
            f"wall-clock attribution ({profile.wall_s:.3f} s over "
            f"{profile.workers} workers)"
        ),
    )
    worker_rows = format_table(
        ["worker", "shards", "compute_s", "shm_s", "active_s", "util"],
        [
            [
                w.worker,
                w.shards,
                f"{w.compute_s:.4f}",
                f"{w.shm_s:.4f}",
                f"{w.active_s:.4f}",
                f"{w.utilization:.0%}",
            ]
            for w in profile.per_worker
        ],
        title="per-worker kernel phase",
    )
    share = profile.shares[profile.top_cost]
    lines = [
        f"top cost center: {profile.top_cost} "
        f"({100.0 * share:.1f}% of wall-clock)",
        (
            f"speedup: ~{profile.achieved_speedup_estimate:.2f}x achieved vs "
            f"~{profile.amdahl_attainable:.2f}x attainable with "
            f"{profile.workers} workers (Amdahl bound over the serial "
            "residue)"
        ),
    ]
    if profile.observed_workers < profile.workers:
        lines.append(
            f"note: only {profile.observed_workers} of {profile.workers} "
            "planned workers reported shard events"
        )
    sections = [attribution, worker_rows]
    if profile.reuse is not None:
        reuse = profile.reuse
        total = (
            reuse["store_memory"]
            + reuse["store_disk"]
            + reuse["memo"]
            + reuse["fresh"]
        ) or 1
        reuse_rows = format_mapping_rows(
            [
                {
                    "source": label,
                    "points": reuse[key],
                    "share": f"{100.0 * reuse[key] / total:.1f}%",
                }
                for label, key in (
                    ("store (memory)", "store_memory"),
                    ("store (disk)", "store_disk"),
                    ("memoized", "memo"),
                    ("fresh", "fresh"),
                )
            ],
            title=(
                f"point provenance ({reuse['store_chunks']} whole chunks "
                f"from the store, {reuse['delta_chunks']} stitched delta "
                "chunks)"
            ),
        )
        sections.append(reuse_rows)
    sections.append("\n".join(lines))
    return "\n\n".join(sections)
