"""Pretty-printer for trace reports: ``focal trace show FILE``.

Renders the JSON document written by a traced run (see
:mod:`repro.obs.manifest`) as monospace tables and an indented span
tree, built on :mod:`repro.report.table` so trace output matches the
rest of the CLI.
"""

from __future__ import annotations

from pathlib import Path

from ..report.table import format_mapping_rows, format_table
from .manifest import report_from_json

__all__ = ["render_report", "load_report", "render_report_file"]

#: Span attributes rendered inline after the timing columns.
_MS = 1e3


def _format_value(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def _attr_text(span_: dict) -> str:
    parts = [
        f"{key}={_format_value(value)}"
        for key, value in span_.get("attributes", {}).items()
    ]
    parts.extend(
        f"{key}={_format_value(value)}"
        for key, value in span_.get("counters", {}).items()
    )
    return " ".join(parts)


def _span_rows(span_: dict, depth: int, rows: list[list[object]]) -> None:
    duration = span_.get("duration_s")
    rows.append(
        [
            "  " * depth + span_["name"],
            "-" if duration is None else f"{duration * _MS:.3f}",
            _attr_text(span_),
        ]
    )
    for child in span_.get("children", ()):
        _span_rows(child, depth + 1, rows)


def _manifest_section(manifest: dict) -> str:
    node = manifest.get("node", {})
    rows = [
        ["command", manifest.get("command", "")],
        ["argv", " ".join(manifest.get("argv", []))],
        ["version", manifest.get("version", "")],
        ["seed", manifest.get("seed")],
        ["started", manifest.get("started_at_iso", manifest.get("started_at", ""))],
        ["duration_s", manifest.get("duration_s")],
    ]
    rows.extend([f"node.{key}", value] for key, value in node.items())
    rows = [[key, "-" if value is None else _format_value(value)] for key, value in rows]
    return format_table(["field", "value"], rows, title="run manifest")


def _phases_section(manifest: dict) -> str | None:
    phases = manifest.get("phases", [])
    if not phases:
        return None
    total = sum(p.get("seconds") or 0.0 for p in phases) or 1.0
    rows = [
        {
            "phase": p.get("phase", ""),
            "ms": (p.get("seconds") or 0.0) * _MS,
            "share": f"{100.0 * (p.get('seconds') or 0.0) / total:.1f}%",
            "spans": p.get("spans", ""),
        }
        for p in phases
    ]
    return format_mapping_rows(rows, title="phase breakdown")


def _trace_section(trace: list[dict]) -> str | None:
    # The span tree needs left-aligned columns (indentation carries the
    # nesting), which format_table's right-alignment would garble — so
    # this one section is rendered directly.
    if not trace:
        return None
    rows: list[list[str]] = []
    for root in trace:
        _span_rows(root, 0, rows)
    w_span = max(len("span"), *(len(r[0]) for r in rows))
    w_ms = max(len("ms"), *(len(r[1]) for r in rows))
    lines = [
        "trace",
        f"{'span':<{w_span}}  {'ms':>{w_ms}}  detail",
        f"{'-' * w_span}  {'-' * w_ms}  {'-' * 6}",
    ]
    for name, ms, detail in rows:
        lines.append(f"{name:<{w_span}}  {ms:>{w_ms}}  {detail}".rstrip())
    return "\n".join(lines)


def _events_section(events: list[dict]) -> str | None:
    """Per-worker summary of the captured sweep timeline events.

    The full event stream belongs in ``focal trace export`` (Perfetto)
    and ``focal profile``; the pretty-printer shows one row per worker
    so a glance answers "did every worker report, and how busy was it".
    """
    if not events:
        return None
    by_worker: dict[object, dict[str, float]] = {}
    for event in events:
        stats = by_worker.setdefault(
            event.get("worker", "?"),
            {"events": 0, "shards": 0, "compute_s": 0.0, "shm_s": 0.0},
        )
        stats["events"] += 1
        if event.get("name") == "shard":
            attrs = event.get("attrs", {})
            stats["shards"] += 1
            stats["compute_s"] += float(attrs.get("compute_s", 0.0))
            stats["shm_s"] += float(attrs.get("shm_s", 0.0))
    rows = [
        {
            "worker": worker,
            "events": int(stats["events"]),
            "shards": int(stats["shards"]),
            "compute_ms": stats["compute_s"] * _MS,
            "shm_ms": stats["shm_s"] * _MS,
        }
        for worker, stats in sorted(by_worker.items(), key=lambda kv: str(kv[0]))
    ]
    return format_mapping_rows(rows, title="worker events")


def _metrics_section(metrics: list[dict]) -> str | None:
    if not metrics:
        return None
    rows = []
    for m in metrics:
        value = m.get("value")
        if m.get("kind") == "histogram":
            count = m.get("count", 0)
            mean = (m.get("sum", 0.0) / count) if count else 0.0
            value = f"count={count} mean={mean:.4g}"
        labels = m.get("labels") or {}
        label_text = (
            "{" + ", ".join(f"{k}={v}" for k, v in labels.items()) + "}"
            if labels
            else ""
        )
        rows.append(
            {
                "metric": m.get("name", "") + label_text,
                "kind": m.get("kind", ""),
                "value": _format_value(value) if not isinstance(value, str) else value,
            }
        )
    return format_mapping_rows(rows, title="metrics")


def render_report(payload: dict) -> str:
    """Render a parsed trace report as the full multi-section page."""
    sections = [
        _manifest_section(payload.get("manifest", {})),
        _phases_section(payload.get("manifest", {})),
        _trace_section(payload.get("trace", [])),
        _events_section(payload.get("events", []) or []),
        _metrics_section(payload.get("metrics", [])),
    ]
    return "\n\n".join(s for s in sections if s)


def load_report(path: str | Path) -> dict:
    """Read and validate a trace-report file."""
    return report_from_json(Path(path).read_text())


def render_report_file(path: str | Path) -> str:
    """Load *path* and render it (the ``focal trace show`` body)."""
    return render_report(load_report(path))
