"""Zero-dependency structured tracing: nestable spans with wall-time,
counters, and key/value attributes.

Tracing is **off by default** and costs next to nothing while off:
:func:`span` performs one attribute check and returns the shared
:data:`NULL_SPAN` singleton, whose every method is a no-op. Hot loops
that want to skip even attribute bookkeeping can check
``get_tracer().enabled`` once and branch around the instrumented code
entirely — that is the pattern :mod:`repro.dse.batch` uses, so a
disabled-instrumentation sweep runs the same per-point loop as before.

When enabled, spans nest through a context-manager stack::

    from repro.obs import trace

    trace.enable()
    with trace.span("sweep", grid_points=10_000) as sweep:
        for chunk in chunks:
            with trace.span("chunk", points=len(chunk)) as sp:
                ...
                sp.count("evaluations", len(chunk))
        sweep.set(cache_hit_ratio=0.93)

The tracer is process-local and not thread-safe; ``ProcessPoolExecutor``
workers never see the parent's tracer (instrumentation lives in the
parent, which observes per-chunk fan-out instead).
"""

from __future__ import annotations

import time
from typing import Iterator

__all__ = [
    "NullSpan",
    "NULL_SPAN",
    "Span",
    "Tracer",
    "get_tracer",
    "span",
    "enable",
    "disable",
    "is_enabled",
    "reset",
]


class NullSpan:
    """The do-nothing span returned while tracing is disabled.

    A single shared instance (:data:`NULL_SPAN`) serves every call, so
    disabled ``with span(...)`` blocks cost one method dispatch and no
    allocation.
    """

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attributes: object) -> "NullSpan":
        return self

    def count(self, name: str, amount: int = 1) -> "NullSpan":
        return self


#: Shared no-op span; identity-comparable (``sp is NULL_SPAN``) so
#: instrumented code can skip attribute computation while disabled.
NULL_SPAN = NullSpan()


class Span:
    """One timed, attributed section of work.

    Entering the span starts its wall clock and pushes it onto the
    tracer's stack (nesting it under the currently open span); exiting
    records the duration. Attributes are free-form key/values set at
    creation or via :meth:`set`; :meth:`count` accumulates named
    integer counters. An exception propagating out of the ``with``
    block is recorded in the ``error`` attribute and re-raised.
    """

    __slots__ = (
        "name",
        "attributes",
        "counters",
        "children",
        "start_s",
        "duration_s",
        "_tracer",
    )

    def __init__(self, name: str, tracer: "Tracer", attributes: dict) -> None:
        self.name = name
        self.attributes: dict[str, object] = attributes
        self.counters: dict[str, int] = {}
        self.children: list[Span] = []
        self.start_s: float | None = None
        self.duration_s: float | None = None
        self._tracer = tracer

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        self.start_s = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration_s = time.perf_counter() - (self.start_s or 0.0)
        if exc_type is not None:
            self.attributes.setdefault("error", f"{exc_type.__name__}: {exc}")
        self._tracer._pop(self)
        return False

    def set(self, **attributes: object) -> "Span":
        """Merge *attributes* into the span; returns ``self``."""
        self.attributes.update(attributes)
        return self

    def count(self, name: str, amount: int = 1) -> "Span":
        """Add *amount* to the span's named counter; returns ``self``."""
        self.counters[name] = self.counters.get(name, 0) + amount
        return self

    def as_dict(self, *, origin_s: float = 0.0) -> dict[str, object]:
        """The span subtree as JSON-ready nested dicts.

        ``start_s`` is reported relative to *origin_s* (the tracer's
        enable time), so traces are replayable without exposing raw
        ``perf_counter`` values.
        """
        payload: dict[str, object] = {
            "name": self.name,
            "start_s": None if self.start_s is None else self.start_s - origin_s,
            "duration_s": self.duration_s,
        }
        if self.attributes:
            payload["attributes"] = dict(self.attributes)
        if self.counters:
            payload["counters"] = dict(self.counters)
        if self.children:
            payload["children"] = [
                child.as_dict(origin_s=origin_s) for child in self.children
            ]
        return payload


class Tracer:
    """Collects a forest of spans for one observed run.

    ``enabled`` gates everything: while ``False`` (the default),
    :meth:`span` hands back :data:`NULL_SPAN` and no state changes.
    Finished top-level spans accumulate in :attr:`roots`.
    """

    def __init__(self) -> None:
        self.enabled = False
        self.roots: list[Span] = []
        self._stack: list[Span] = []
        #: ``perf_counter`` reading at :meth:`enable`; span starts are
        #: exported relative to it.
        self.origin_s: float = 0.0
        #: Wall-clock epoch seconds at :meth:`enable`.
        self.started_at: float | None = None

    def enable(self) -> None:
        """Turn tracing on (idempotent); stamps the trace origin."""
        if not self.enabled:
            self.enabled = True
            self.origin_s = time.perf_counter()
            self.started_at = time.time()

    def disable(self) -> None:
        """Turn tracing off; already-collected spans are kept."""
        self.enabled = False

    def clear(self) -> None:
        """Drop all collected spans and any open-span stack."""
        self.roots.clear()
        self._stack.clear()

    def span(self, name: str, **attributes: object):
        """A new span nested under the currently open one (or a new
        root). Returns :data:`NULL_SPAN` while disabled."""
        if not self.enabled:
            return NULL_SPAN
        return Span(name, self, attributes)

    def _push(self, span_: Span) -> None:
        if self._stack:
            self._stack[-1].children.append(span_)
        else:
            self.roots.append(span_)
        self._stack.append(span_)

    def _pop(self, span_: Span) -> None:
        # Tolerate out-of-order exits instead of corrupting the stack.
        if self._stack and self._stack[-1] is span_:
            self._stack.pop()
        elif span_ in self._stack:
            self._stack.remove(span_)

    def walk(self) -> Iterator[tuple[int, str, Span]]:
        """Depth-first ``(depth, path, span)`` triples over all roots;
        ``path`` joins span names with ``/``."""

        def _walk(span_: Span, depth: int, prefix: str):
            path = f"{prefix}/{span_.name}" if prefix else span_.name
            yield depth, path, span_
            for child in span_.children:
                yield from _walk(child, depth + 1, path)

        for root in self.roots:
            yield from _walk(root, 0, "")

    def as_dicts(self) -> list[dict[str, object]]:
        """All root spans as nested dicts (see :meth:`Span.as_dict`)."""
        return [root.as_dict(origin_s=self.origin_s) for root in self.roots]


_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-global tracer used by all instrumentation."""
    return _TRACER


def span(name: str, **attributes: object):
    """Open a span on the global tracer (or :data:`NULL_SPAN` when
    tracing is off). The common instrumentation entry point."""
    tracer = _TRACER
    if not tracer.enabled:
        return NULL_SPAN
    return tracer.span(name, **attributes)


def enable() -> None:
    """Enable the global tracer."""
    _TRACER.enable()


def disable() -> None:
    """Disable the global tracer (spans already collected are kept)."""
    _TRACER.disable()


def is_enabled() -> bool:
    """Whether the global tracer is currently recording."""
    return _TRACER.enabled


def reset() -> None:
    """Disable the global tracer and drop everything it collected
    (used by the CLI between runs and by tests for isolation)."""
    _TRACER.disable()
    _TRACER.clear()
