"""Quantitative rebound-effect modeling: the continuum between the
paper's fixed-work and fixed-time scenarios, plus deployment rebound
(paper §3.7)."""

from .model import (
    ReboundModel,
    classify_with_rebound,
    rebound_ncf,
    usage_rebound_tipping_point,
)

__all__ = [
    "ReboundModel",
    "rebound_ncf",
    "classify_with_rebound",
    "usage_rebound_tipping_point",
]
