"""Explicit rebound-effect modeling (paper §3.7).

The paper treats rebound effects qualitatively: *usage* rebound (a more
efficient device gets used more) is captured by switching from the
fixed-work to the fixed-time scenario, and *deployment* rebound (more
devices get made) by shifting the embodied-to-operational weight. This
module makes both quantitative so the space between the paper's two
scenario extremes can be explored.

**Usage rebound.** Let ``g = perf_X / perf_Y`` be the efficiency gain.
With rebound elasticity ``r`` in [0, 1], design X performs
``W_X = g**r`` times the baseline's lifetime work: ``r = 0`` is the
fixed-work scenario (work unchanged), ``r = 1`` the fixed-time scenario
(work scales with speed, device busy the same hours). The lifetime
operational footprint is energy-per-work times work:

    op_ratio(r) = (E_X / E_Y) * g**r

which smoothly interpolates the two proxies: at ``r = 0`` it is the
energy ratio, at ``r = 1`` it is ``E_X/E_Y * g = P_X/P_Y``, the power
ratio.

**Deployment rebound.** With elasticity ``d``, the number of deployed
devices scales as ``g**d``; the *fleet* footprint multiplies both the
embodied and operational terms by ``g**d``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.classify import Sustainability, classify_values
from ..core.design import DesignPoint
from ..core.ncf import ncf_from_ratios
from ..core.quantities import ensure_fraction, ensure_non_negative

__all__ = ["ReboundModel", "rebound_ncf", "usage_rebound_tipping_point"]


@dataclass(frozen=True, slots=True)
class ReboundModel:
    """Rebound elasticities.

    Parameters
    ----------
    usage_elasticity:
        ``r`` in [0, 1]: 0 = fixed-work, 1 = fixed-time.
    deployment_elasticity:
        ``d`` >= 0: fleet size scales as ``gain**d`` (0 = constant
        fleet, the paper's implicit default).
    """

    usage_elasticity: float = 0.0
    deployment_elasticity: float = 0.0

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "usage_elasticity",
            ensure_fraction(self.usage_elasticity, "usage_elasticity"),
        )
        object.__setattr__(
            self,
            "deployment_elasticity",
            ensure_non_negative(
                self.deployment_elasticity, "deployment_elasticity"
            ),
        )

    def work_multiplier(self, design: DesignPoint, baseline: DesignPoint) -> float:
        """Extra lifetime work done by *design* due to usage rebound."""
        gain = design.perf_ratio(baseline)
        return gain**self.usage_elasticity

    def fleet_multiplier(self, design: DesignPoint, baseline: DesignPoint) -> float:
        """Fleet-size growth due to deployment rebound."""
        gain = design.perf_ratio(baseline)
        return gain**self.deployment_elasticity

    def operational_ratio(self, design: DesignPoint, baseline: DesignPoint) -> float:
        """Per-device lifetime operational footprint ratio."""
        return design.energy_ratio(baseline) * self.work_multiplier(design, baseline)

    def embodied_ratio(self, design: DesignPoint, baseline: DesignPoint) -> float:
        """Fleet embodied ratio (per-device area times fleet growth)."""
        return design.area_ratio(baseline) * self.fleet_multiplier(design, baseline)


def rebound_ncf(
    design: DesignPoint,
    baseline: DesignPoint,
    alpha: float,
    rebound: ReboundModel,
) -> float:
    """NCF under explicit rebound elasticities.

    Reduces to the paper's fixed-work NCF at ``ReboundModel(0, 0)`` and
    to the fixed-time NCF at ``ReboundModel(1, 0)``.
    """
    fleet = rebound.fleet_multiplier(design, baseline)
    return ncf_from_ratios(
        rebound.embodied_ratio(design, baseline),
        rebound.operational_ratio(design, baseline) * fleet,
        alpha,
    )


def classify_with_rebound(
    design: DesignPoint,
    baseline: DesignPoint,
    alpha: float,
    *,
    deployment_elasticity: float = 0.0,
) -> Sustainability:
    """The paper's strong/weak/less verdict via rebound endpoints.

    Evaluates the usage-rebound extremes (r = 0 and r = 1) at the given
    deployment elasticity — identical to the fixed-work/fixed-time
    classification when ``deployment_elasticity`` is 0.
    """
    fixed_work = rebound_ncf(
        design, baseline, alpha, ReboundModel(0.0, deployment_elasticity)
    )
    fixed_time = rebound_ncf(
        design, baseline, alpha, ReboundModel(1.0, deployment_elasticity)
    )
    return classify_values(fixed_work, fixed_time)


def usage_rebound_tipping_point(
    design: DesignPoint,
    baseline: DesignPoint,
    alpha: float,
    *,
    deployment_elasticity: float = 0.0,
    tol: float = 1e-10,
) -> float | None:
    """The usage elasticity at which *design* stops paying off.

    Returns the smallest ``r`` in [0, 1] with NCF(r) >= 1, or ``None``
    if the design stays below 1 even under full usage rebound (i.e. it
    is strongly sustainable) — or 0.0 if it never pays off at all.
    NCF is monotone in ``r`` whenever the design is faster than the
    baseline (more rebound means more extra work), so a bisection on
    the boundary is exact.
    """

    def value(r: float) -> float:
        return rebound_ncf(
            design, baseline, alpha, ReboundModel(r, deployment_elasticity)
        )

    at_zero, at_one = value(0.0), value(1.0)
    if at_zero >= 1.0:
        return 0.0
    if at_one < 1.0:
        return None
    lo, hi = 0.0, 1.0  # value(lo) < 1 <= value(hi)
    while hi - lo > tol:
        mid = 0.5 * (lo + hi)
        if value(mid) < 1.0:
            lo = mid
        else:
            hi = mid
    return hi


__all__.append("classify_with_rebound")
