"""Reporting: chart data types, tables, ASCII plots, and exporters."""

from .ascii_plot import PlotCanvas, render_panel, render_series
from .export import (
    figure_from_json,
    figure_to_csv,
    figure_to_json,
    figure_to_markdown,
    read_figure,
    write_figure,
)
from .series import FigureResult, Panel, Point, Series
from .svg import figure_to_html, render_panel_svg
from .table import format_mapping_rows, format_table

__all__ = [
    "Point",
    "Series",
    "Panel",
    "FigureResult",
    "format_table",
    "format_mapping_rows",
    "PlotCanvas",
    "render_panel",
    "render_series",
    "figure_to_csv",
    "figure_to_json",
    "figure_to_markdown",
    "figure_from_json",
    "write_figure",
    "read_figure",
    "render_panel_svg",
    "figure_to_html",
]
