"""ASCII scatter plots.

The paper's figures are scatter/line charts; with no plotting library
available offline, the CLI renders them as character rasters — enough
to eyeball curve shapes, crossovers and orderings in a terminal.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.errors import ValidationError
from .series import Panel, Series

__all__ = ["PlotCanvas", "render_panel"]

_MARKERS = "ox+*#@%&sdv^"


@dataclass
class PlotCanvas:
    """A character raster with data-space axes."""

    width: int = 72
    height: int = 20
    x_min: float = 0.0
    x_max: float = 1.0
    y_min: float = 0.0
    y_max: float = 1.0

    def __post_init__(self) -> None:
        if self.width < 10 or self.height < 5:
            raise ValidationError("canvas must be at least 10x5")
        if not (self.x_max > self.x_min and self.y_max > self.y_min):
            raise ValidationError("canvas extents must be non-degenerate")
        self._cells = [[" "] * self.width for _ in range(self.height)]

    def _to_cell(self, x: float, y: float) -> tuple[int, int] | None:
        if not (math.isfinite(x) and math.isfinite(y)):
            return None
        if not (self.x_min <= x <= self.x_max and self.y_min <= y <= self.y_max):
            return None
        col = round((x - self.x_min) / (self.x_max - self.x_min) * (self.width - 1))
        row = round((self.y_max - y) / (self.y_max - self.y_min) * (self.height - 1))
        return row, col

    def mark(self, x: float, y: float, marker: str) -> None:
        cell = self._to_cell(x, y)
        if cell is None:
            return
        row, col = cell
        self._cells[row][col] = marker[0]

    def hline(self, y: float, char: str = "-") -> None:
        """Horizontal reference line (e.g. NCF = 1), drawn under data."""
        cell = self._to_cell(self.x_min, y)
        if cell is None:
            return
        row, _ = cell
        for col in range(self.width):
            if self._cells[row][col] == " ":
                self._cells[row][col] = char

    def render(self) -> str:
        y_lo = f"{self.y_min:g}"
        y_hi = f"{self.y_max:g}"
        gutter = max(len(y_lo), len(y_hi)) + 1
        lines = []
        for i, row in enumerate(self._cells):
            if i == 0:
                prefix = y_hi.rjust(gutter)
            elif i == self.height - 1:
                prefix = y_lo.rjust(gutter)
            else:
                prefix = " " * gutter
            lines.append(prefix + "|" + "".join(row))
        lines.append(" " * gutter + "+" + "-" * self.width)
        x_axis = f"{self.x_min:g}".ljust(self.width // 2) + f"{self.x_max:g}".rjust(
            self.width - self.width // 2
        )
        lines.append(" " * (gutter + 1) + x_axis)
        return "\n".join(lines)


def _extent(values: list[float]) -> tuple[float, float]:
    lo, hi = min(values), max(values)
    if lo == hi:
        pad = abs(lo) * 0.1 or 1.0
        return lo - pad, hi + pad
    pad = (hi - lo) * 0.05
    return lo - pad, hi + pad


def render_panel(
    panel: Panel,
    *,
    width: int = 72,
    height: int = 20,
    reference_y: float | None = 1.0,
) -> str:
    """Render one figure panel as an ASCII chart with a legend.

    ``reference_y`` draws a horizontal guide (the NCF = 1 boundary by
    default); pass ``None`` to omit it.
    """
    xs = [p.x for s in panel.series for p in s.points]
    ys = [p.y for s in panel.series for p in s.points]
    if reference_y is not None:
        ys.append(reference_y)
    x_min, x_max = _extent(xs)
    y_min, y_max = _extent(ys)
    canvas = PlotCanvas(
        width=width, height=height, x_min=x_min, x_max=x_max, y_min=y_min, y_max=y_max
    )
    if reference_y is not None:
        canvas.hline(reference_y)
    legend: list[str] = []
    for index, series in enumerate(panel.series):
        marker = _MARKERS[index % len(_MARKERS)]
        legend.append(f"  {marker} {series.name}")
        for point in series.points:
            canvas.mark(point.x, point.y, marker)
    header = f"{panel.name}   [y: {panel.y_label}; x: {panel.x_label}]"
    return "\n".join([header, canvas.render(), "legend:"] + legend)


def render_series(series: Series, **kwargs: object) -> str:
    """Render a single series (wrapped in an anonymous panel)."""
    panel = Panel(name=series.name, x_label="x", y_label="y", series=(series,))
    return render_panel(panel, **kwargs)  # type: ignore[arg-type]


__all__.append("render_series")
