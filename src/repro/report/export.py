"""Export figure results — and observability data — to text formats.

Figures go to CSV, JSON, and Markdown; metrics registries go to
JSON-lines or Prometheus text format and traces to JSON-lines or the
full manifest report (the formatters themselves live in
:mod:`repro.obs.exporters` and are re-exported here). Exports go
through plain strings so callers decide where bytes land (stdout,
files); :func:`write_figure`, :func:`write_metrics` and
:func:`write_trace` are the convenience file writers used by the CLI.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path

from ..core.errors import ValidationError
from ..obs.exporters import metrics_to_jsonl, metrics_to_prometheus, trace_to_jsonl
from .series import FigureResult

__all__ = [
    "figure_to_csv",
    "figure_to_json",
    "figure_to_markdown",
    "figure_from_json",
    "write_figure",
    "read_figure",
    "metrics_to_jsonl",
    "metrics_to_prometheus",
    "trace_to_jsonl",
    "write_metrics",
    "write_trace",
]


def figure_to_csv(figure: FigureResult) -> str:
    """Long-format CSV: one row per point with panel/series columns."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(["figure", "panel", "series", "label", "x", "y"])
    for panel in figure.panels:
        for series in panel.series:
            for point in series.points:
                writer.writerow(
                    [figure.figure_id, panel.name, series.name, point.label, point.x, point.y]
                )
    return buffer.getvalue()


def figure_to_json(figure: FigureResult, *, indent: int = 2) -> str:
    """Nested JSON mirroring the FigureResult structure."""
    payload = {
        "figure_id": figure.figure_id,
        "caption": figure.caption,
        "notes": list(figure.notes),
        "panels": [
            {
                "name": panel.name,
                "x_label": panel.x_label,
                "y_label": panel.y_label,
                "series": [
                    {
                        "name": series.name,
                        "points": [
                            {"x": p.x, "y": p.y, "label": p.label}
                            for p in series.points
                        ],
                    }
                    for series in panel.series
                ],
            }
            for panel in figure.panels
        ],
    }
    return json.dumps(payload, indent=indent)


def figure_to_markdown(figure: FigureResult, *, precision: int = 3) -> str:
    """Markdown report: caption, notes, one table per panel."""
    lines = [f"## {figure.figure_id}", "", figure.caption, ""]
    for note in figure.notes:
        lines.append(f"> {note}")
    if figure.notes:
        lines.append("")
    for panel in figure.panels:
        lines.append(f"### {panel.name}")
        lines.append("")
        lines.append(f"| series | label | {panel.x_label} | {panel.y_label} |")
        lines.append("|---|---|---|---|")
        for series in panel.series:
            for point in series.points:
                lines.append(
                    f"| {series.name} | {point.label} | "
                    f"{point.x:.{precision}f} | {point.y:.{precision}f} |"
                )
        lines.append("")
    return "\n".join(lines)


def figure_from_json(text: str) -> FigureResult:
    """Inverse of :func:`figure_to_json`: rebuild a FigureResult.

    Round-trip guarantee: ``figure_from_json(figure_to_json(f))``
    equals ``f`` for every valid figure. Raises
    :class:`~repro.core.errors.ValidationError` on malformed payloads
    (missing keys, empty panels) rather than producing a broken object.
    """
    from .series import Panel, Point, Series

    try:
        payload = json.loads(text)
        panels = tuple(
            Panel(
                name=panel["name"],
                x_label=panel["x_label"],
                y_label=panel["y_label"],
                series=tuple(
                    Series(
                        name=series["name"],
                        points=tuple(
                            Point(x=p["x"], y=p["y"], label=p.get("label", ""))
                            for p in series["points"]
                        ),
                    )
                    for series in panel["series"]
                ),
            )
            for panel in payload["panels"]
        )
        return FigureResult(
            figure_id=payload["figure_id"],
            caption=payload["caption"],
            panels=panels,
            notes=tuple(payload.get("notes", ())),
        )
    except (KeyError, TypeError, json.JSONDecodeError) as exc:
        raise ValidationError(f"malformed figure JSON: {exc}") from exc


def read_figure(path: str | Path) -> FigureResult:
    """Load a figure previously written as JSON."""
    path = Path(path)
    if path.suffix.lower() != ".json":
        raise ValidationError(
            f"read_figure only supports .json, got {path.suffix!r}"
        )
    return figure_from_json(path.read_text())


def _figure_to_html(figure: FigureResult) -> str:
    from .svg import figure_to_html

    return figure_to_html(figure)


_FORMATS = {
    "csv": figure_to_csv,
    "json": figure_to_json,
    "md": figure_to_markdown,
    "html": _figure_to_html,
}


def write_figure(figure: FigureResult, path: str | Path) -> Path:
    """Write a figure to *path*; format inferred from the suffix
    (.csv, .json, .md, .html)."""
    path = Path(path)
    suffix = path.suffix.lstrip(".").lower()
    if suffix not in _FORMATS:
        raise ValidationError(
            f"unsupported export suffix {path.suffix!r}; use one of "
            f"{sorted('.' + s for s in _FORMATS)}"
        )
    path.write_text(_FORMATS[suffix](figure))
    return path


def write_metrics(registry, path: str | Path) -> Path:
    """Write a metrics registry to *path*; the suffix picks the format
    — ``.prom``/``.txt`` for Prometheus text exposition, ``.jsonl``
    (or anything else) for JSON-lines."""
    path = Path(path)
    if path.suffix.lower() in (".prom", ".txt"):
        path.write_text(metrics_to_prometheus(registry))
    else:
        path.write_text(metrics_to_jsonl(registry))
    return path


def write_trace(
    path: str | Path, *, manifest=None, tracer=None, registry=None, events=None
) -> Path:
    """Write trace output to *path*.

    With a *manifest* the full replayable report (manifest + span tree
    + metrics snapshot + worker events, the document ``focal trace
    show`` / ``focal trace export`` / ``focal profile`` read) is
    written; without one, just the spans as JSON-lines.
    """
    from ..obs.manifest import build_report, report_to_json

    path = Path(path)
    if manifest is not None:
        report = build_report(
            manifest, tracer=tracer, registry=registry, events=events
        )
        path.write_text(report_to_json(report) + "\n")
    elif tracer is not None:
        path.write_text(trace_to_jsonl(tracer))
    else:
        raise ValidationError("write_trace needs a manifest or a tracer")
    return path
