"""Chart data types: points, series, and figure results.

Every study driver returns a :class:`FigureResult` — a named set of
:class:`Series` — which feeds the tests, the benchmarks, the CLI's
ASCII rendering, and the CSV/JSON exporters, so a figure is computed
exactly once and consumed everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from ..core.errors import ValidationError

__all__ = ["Point", "Series", "Panel", "FigureResult"]


@dataclass(frozen=True, slots=True)
class Point:
    """One chart point, optionally labelled (e.g. "16 BCEs", "4MB")."""

    x: float
    y: float
    label: str = ""


@dataclass(frozen=True, slots=True)
class Series:
    """A named sequence of points (one curve/legend entry)."""

    name: str
    points: tuple[Point, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("Series.name must be non-empty")
        if not self.points:
            raise ValidationError(f"series {self.name!r} has no points")

    @classmethod
    def from_xy(
        cls,
        name: str,
        xs: Sequence[float],
        ys: Sequence[float],
        labels: Sequence[str] | None = None,
    ) -> "Series":
        if len(xs) != len(ys):
            raise ValidationError(
                f"series {name!r}: {len(xs)} x-values vs {len(ys)} y-values"
            )
        if labels is not None and len(labels) != len(xs):
            raise ValidationError(f"series {name!r}: label count mismatch")
        labels = labels or [""] * len(xs)
        return cls(
            name=name,
            points=tuple(Point(float(x), float(y), lab) for x, y, lab in zip(xs, ys, labels)),
        )

    @property
    def xs(self) -> tuple[float, ...]:
        return tuple(p.x for p in self.points)

    @property
    def ys(self) -> tuple[float, ...]:
        return tuple(p.y for p in self.points)

    def __iter__(self) -> Iterator[Point]:
        return iter(self.points)

    def __len__(self) -> int:
        return len(self.points)


@dataclass(frozen=True, slots=True)
class Panel:
    """One subfigure: axis labels plus its series."""

    name: str
    x_label: str
    y_label: str
    series: tuple[Series, ...]

    def __post_init__(self) -> None:
        if not self.series:
            raise ValidationError(f"panel {self.name!r} has no series")

    def series_by_name(self, name: str) -> Series:
        for series in self.series:
            if series.name == name:
                return series
        known = ", ".join(s.name for s in self.series)
        raise ValidationError(f"no series {name!r} in panel {self.name!r}; have: {known}")


@dataclass(frozen=True, slots=True)
class FigureResult:
    """A reproduced figure: an id (e.g. "figure3"), a caption, panels."""

    figure_id: str
    caption: str
    panels: tuple[Panel, ...]
    notes: tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.panels:
            raise ValidationError(f"figure {self.figure_id!r} has no panels")

    def panel(self, name: str) -> Panel:
        for panel in self.panels:
            if panel.name == name:
                return panel
        known = ", ".join(p.name for p in self.panels)
        raise ValidationError(
            f"no panel {name!r} in {self.figure_id!r}; have: {known}"
        )

    @property
    def total_points(self) -> int:
        return sum(len(s) for panel in self.panels for s in panel.series)
