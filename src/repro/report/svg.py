"""SVG and standalone-HTML figure rendering.

With no plotting library available, the CLI's charts are ASCII — fine
for a terminal, not for a paper or a README. This module renders
:class:`~repro.report.series.Panel` objects as self-contained SVG
(pure-python string assembly, no dependencies) and whole
:class:`~repro.report.series.FigureResult` objects as a standalone HTML
page, wired into ``focal figure --format html``.

The SVG uses a small categorical palette, draws polylines with point
markers, labelled axes with min/max ticks, a legend, and an optional
NCF = 1 guide line.
"""

from __future__ import annotations

import math
from xml.sax.saxutils import escape

from ..core.errors import ValidationError
from .series import FigureResult, Panel

__all__ = ["render_panel_svg", "figure_to_html"]

#: Categorical palette (colorblind-safe Okabe-Ito subset).
PALETTE = (
    "#0072B2",
    "#D55E00",
    "#009E73",
    "#CC79A7",
    "#E69F00",
    "#56B4E9",
    "#F0E442",
    "#000000",
)

_WIDTH = 460
_HEIGHT = 300
_MARGIN_LEFT = 58
_MARGIN_RIGHT = 16
_MARGIN_TOP = 34
_MARGIN_BOTTOM = 44


def _extent(values: list[float]) -> tuple[float, float]:
    lo, hi = min(values), max(values)
    if lo == hi:
        pad = abs(lo) * 0.1 or 1.0
        return lo - pad, hi + pad
    pad = (hi - lo) * 0.06
    return lo - pad, hi + pad


def render_panel_svg(
    panel: Panel,
    *,
    width: int = _WIDTH,
    height: int = _HEIGHT,
    reference_y: float | None = 1.0,
) -> str:
    """One panel as a self-contained ``<svg>`` element."""
    if width < 120 or height < 100:
        raise ValidationError("svg panel must be at least 120x100")
    xs = [p.x for s in panel.series for p in s.points if math.isfinite(p.x)]
    ys = [p.y for s in panel.series for p in s.points if math.isfinite(p.y)]
    if not xs or not ys:
        raise ValidationError(f"panel {panel.name!r} has no finite points")
    # Include the reference line in the axis range only when it is near
    # the data (within one data-span); a far-away guide should neither
    # stretch the axis nor be drawn.
    if reference_y is not None:
        span = (max(ys) - min(ys)) or abs(max(ys)) or 1.0
        if min(ys) - span <= reference_y <= max(ys) + span:
            ys = ys + [reference_y]
    x_min, x_max = _extent(xs)
    y_min, y_max = _extent(ys)

    plot_w = width - _MARGIN_LEFT - _MARGIN_RIGHT
    plot_h = height - _MARGIN_TOP - _MARGIN_BOTTOM

    def sx(x: float) -> float:
        return _MARGIN_LEFT + (x - x_min) / (x_max - x_min) * plot_w

    def sy(y: float) -> float:
        return _MARGIN_TOP + (y_max - y) / (y_max - y_min) * plot_h

    parts: list[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        f'font-family="sans-serif" font-size="11">',
        f'<rect x="0" y="0" width="{width}" height="{height}" fill="white"/>',
        f'<text x="{width / 2:.1f}" y="16" text-anchor="middle" '
        f'font-size="12" font-weight="bold">{escape(panel.name)}</text>',
        # plot frame
        f'<rect x="{_MARGIN_LEFT}" y="{_MARGIN_TOP}" width="{plot_w}" '
        f'height="{plot_h}" fill="none" stroke="#999"/>',
        # axis labels and min/max ticks
        f'<text x="{_MARGIN_LEFT + plot_w / 2:.1f}" y="{height - 8}" '
        f'text-anchor="middle">{escape(panel.x_label)}</text>',
        f'<text x="14" y="{_MARGIN_TOP + plot_h / 2:.1f}" text-anchor="middle" '
        f'transform="rotate(-90 14 {_MARGIN_TOP + plot_h / 2:.1f})">'
        f"{escape(panel.y_label)}</text>",
        f'<text x="{_MARGIN_LEFT}" y="{height - 26}" text-anchor="middle">'
        f"{x_min:.3g}</text>",
        f'<text x="{_MARGIN_LEFT + plot_w}" y="{height - 26}" '
        f'text-anchor="middle">{x_max:.3g}</text>',
        f'<text x="{_MARGIN_LEFT - 6}" y="{sy(y_min) + 4:.1f}" '
        f'text-anchor="end">{y_min:.3g}</text>',
        f'<text x="{_MARGIN_LEFT - 6}" y="{sy(y_max) + 4:.1f}" '
        f'text-anchor="end">{y_max:.3g}</text>',
    ]
    if reference_y is not None and y_min <= reference_y <= y_max:
        ry = sy(reference_y)
        parts.append(
            f'<line x1="{_MARGIN_LEFT}" y1="{ry:.1f}" '
            f'x2="{_MARGIN_LEFT + plot_w}" y2="{ry:.1f}" '
            f'stroke="#bbb" stroke-dasharray="4 3"/>'
        )
    for index, series in enumerate(panel.series):
        color = PALETTE[index % len(PALETTE)]
        coords = [
            (sx(p.x), sy(p.y))
            for p in series.points
            if math.isfinite(p.x) and math.isfinite(p.y)
        ]
        if len(coords) > 1:
            points_attr = " ".join(f"{x:.1f},{y:.1f}" for x, y in coords)
            parts.append(
                f'<polyline fill="none" stroke="{color}" stroke-width="1.5" '
                f'points="{points_attr}"/>'
            )
        for x, y in coords:
            parts.append(f'<circle cx="{x:.1f}" cy="{y:.1f}" r="2.6" fill="{color}"/>')
        # legend entry
        ly = _MARGIN_TOP + 6 + index * 14
        lx = _MARGIN_LEFT + plot_w - 120
        parts.append(
            f'<rect x="{lx}" y="{ly - 7}" width="9" height="9" fill="{color}"/>'
        )
        parts.append(
            f'<text x="{lx + 13}" y="{ly + 1}">{escape(series.name)}</text>'
        )
    parts.append("</svg>")
    return "\n".join(parts)


def figure_to_html(figure: FigureResult, **svg_kwargs: object) -> str:
    """A standalone HTML page with one SVG per panel."""
    panels_html = "\n".join(
        f'<div class="panel">{render_panel_svg(panel, **svg_kwargs)}</div>'  # type: ignore[arg-type]
        for panel in figure.panels
    )
    notes_html = "\n".join(f"<li>{escape(note)}</li>" for note in figure.notes)
    notes_block = f"<ul>{notes_html}</ul>" if figure.notes else ""
    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>{escape(figure.figure_id)}</title>
<style>
body {{ font-family: sans-serif; margin: 2em; }}
.panel {{ display: inline-block; margin: 0.5em; }}
p.caption {{ max-width: 60em; }}
</style>
</head>
<body>
<h1>{escape(figure.figure_id)}</h1>
<p class="caption">{escape(figure.caption)}</p>
{notes_block}
{panels_html}
</body>
</html>
"""
