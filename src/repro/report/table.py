"""Plain-text table rendering.

Monospace tables for terminal output: the CLI, the benchmark harness
(which prints the same rows the paper's figures plot), and the
examples. Keeps formatting concerns out of the model code.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..core.errors import ValidationError

__all__ = ["format_table", "format_mapping_rows"]


def _format_cell(value: object, precision: int) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    precision: int = 3,
    title: str | None = None,
) -> str:
    """Render headers + rows as an aligned monospace table."""
    if not headers:
        raise ValidationError("format_table requires headers")
    rendered_rows = [
        [_format_cell(cell, precision) for cell in row] for row in rows
    ]
    for i, row in enumerate(rendered_rows):
        if len(row) != len(headers):
            raise ValidationError(
                f"row {i} has {len(row)} cells for {len(headers)} headers"
            )
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[j]) for j, cell in enumerate(cells))

    parts: list[str] = []
    if title:
        parts.append(title)
    parts.append(line(list(headers)))
    parts.append(line(["-" * w for w in widths]))
    parts.extend(line(row) for row in rendered_rows)
    return "\n".join(parts)


def format_mapping_rows(
    rows: Sequence[Mapping[str, object]],
    *,
    columns: Sequence[str] | None = None,
    precision: int = 3,
    title: str | None = None,
) -> str:
    """Render dict-rows (e.g. ``as_dict()`` outputs) as a table.

    Column order defaults to the first row's key order.
    """
    if not rows:
        raise ValidationError("format_mapping_rows requires at least one row")
    cols = list(columns) if columns else list(rows[0].keys())
    table_rows = [[row.get(col, "") for col in cols] for row in rows]
    return format_table(cols, table_rows, precision=precision, title=title)
