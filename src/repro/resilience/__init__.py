"""The resilient execution layer: supervision, containment, checkpointing, chaos.

Production-scale DSE sweeps and Monte-Carlo studies run for hours over
process pools; this package keeps them alive and honest:

* :mod:`repro.resilience.policy` — :class:`RetryPolicy` (timeouts,
  bounded retry with seeded-jitter exponential backoff, respawn budget,
  heartbeat watchdog deadline, quarantine budget, salvage mode,
  degradation) and :class:`SupervisionStats`;
* :mod:`repro.resilience.supervisor` — :class:`SupervisedPool`, the
  crash-tolerant ``ProcessPoolExecutor`` wrapper
  :class:`~repro.dse.batch.BatchExplorer` dispatches through;
* :mod:`repro.resilience.containment` — failure containment: the
  persisted poison-point :class:`QuarantineLedger`, the parent-side
  :class:`HeartbeatMonitor` watchdog, and the :class:`FailureReport`
  of a salvaged partial run;
* :mod:`repro.resilience.checkpoint` — atomic, checksummed
  :class:`CheckpointStore` files enabling bit-exact ``--resume`` of
  killed sweeps and samplers, with bounded retry on transient disk
  faults (:func:`atomic_write_text`);
* :mod:`repro.resilience.faults` — the deterministic fault-injection
  harness (:class:`FaultPlan`) behind the chaos test suite.

Everything here is byte-transparent: supervision, checkpointing and
resume never change a sweep's results, cache contents or ordering for
any non-quarantined point — the chaos suite and
``benchmarks/bench_resilience.py`` gate exactly that, and quarantine
is always reported, never silent.

See ``docs/ROBUSTNESS.md`` for the operational guide.
"""

from __future__ import annotations

from .checkpoint import (
    CHECKPOINT_FORMAT,
    CheckpointStore,
    atomic_write_text,
    decode_outcomes,
    describe_factory,
    encode_outcomes,
    set_disk_fault_hook,
    sweep_fingerprint,
)
from .containment import (
    INCOMPLETE,
    QUARANTINE_FORMAT,
    BisectOutcome,
    FailureReport,
    HeartbeatMonitor,
    QuarantineLedger,
    QuarantineSession,
)
from .faults import (
    FaultInjectingFactory,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    VectorFaultInjectingFactory,
    corrupt_checkpoint,
    truncate_checkpoint,
)
from .policy import DEFAULT_POLICY, RetryPolicy, SupervisionStats
from .supervisor import SupervisedPool

__all__ = [
    "RetryPolicy",
    "DEFAULT_POLICY",
    "SupervisionStats",
    "SupervisedPool",
    "CheckpointStore",
    "CHECKPOINT_FORMAT",
    "atomic_write_text",
    "set_disk_fault_hook",
    "sweep_fingerprint",
    "encode_outcomes",
    "decode_outcomes",
    "describe_factory",
    "QUARANTINE_FORMAT",
    "QuarantineLedger",
    "QuarantineSession",
    "FailureReport",
    "HeartbeatMonitor",
    "BisectOutcome",
    "INCOMPLETE",
    "FaultPlan",
    "FaultSpec",
    "FaultInjectingFactory",
    "InjectedFault",
    "VectorFaultInjectingFactory",
    "truncate_checkpoint",
    "corrupt_checkpoint",
]
