"""The resilient execution layer: supervision, checkpointing, chaos.

Production-scale DSE sweeps and Monte-Carlo studies run for hours over
process pools; this package keeps them alive and honest:

* :mod:`repro.resilience.policy` — :class:`RetryPolicy` (timeouts,
  bounded retry with exponential backoff, respawn budget, degradation)
  and :class:`SupervisionStats`;
* :mod:`repro.resilience.supervisor` — :class:`SupervisedPool`, the
  crash-tolerant ``ProcessPoolExecutor`` wrapper
  :class:`~repro.dse.batch.BatchExplorer` dispatches through;
* :mod:`repro.resilience.checkpoint` — atomic, checksummed
  :class:`CheckpointStore` files enabling bit-exact ``--resume`` of
  killed sweeps and samplers;
* :mod:`repro.resilience.faults` — the deterministic fault-injection
  harness (:class:`FaultPlan`) behind the chaos test suite.

Everything here is byte-transparent: supervision, checkpointing and
resume never change a sweep's results, cache contents or ordering —
the chaos suite and ``benchmarks/bench_resilience.py`` gate exactly
that.

See ``docs/ROBUSTNESS.md`` for the operational guide.
"""

from __future__ import annotations

from .checkpoint import (
    CHECKPOINT_FORMAT,
    CheckpointStore,
    decode_outcomes,
    describe_factory,
    encode_outcomes,
    sweep_fingerprint,
)
from .faults import (
    FaultInjectingFactory,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    VectorFaultInjectingFactory,
    corrupt_checkpoint,
    truncate_checkpoint,
)
from .policy import DEFAULT_POLICY, RetryPolicy, SupervisionStats
from .supervisor import SupervisedPool

__all__ = [
    "RetryPolicy",
    "DEFAULT_POLICY",
    "SupervisionStats",
    "SupervisedPool",
    "CheckpointStore",
    "CHECKPOINT_FORMAT",
    "sweep_fingerprint",
    "encode_outcomes",
    "decode_outcomes",
    "describe_factory",
    "FaultPlan",
    "FaultSpec",
    "FaultInjectingFactory",
    "InjectedFault",
    "VectorFaultInjectingFactory",
    "truncate_checkpoint",
    "corrupt_checkpoint",
]
