"""Crash-safe checkpoint files: atomic, checksummed, resumable.

A checkpoint is one JSON document holding three things:

* a **kind** (``"sweep"``, ``"montecarlo"``) naming the producer;
* a **fingerprint** — everything the run's identity depends on (grid
  axes, chunk size, baseline, weight, factory, sampler arguments).
  Resume refuses a checkpoint whose fingerprint does not match the run
  being resumed, so a stale file can never silently contaminate results;
* the **state** — chunk-granular progress (encoded outcomes, RNG
  states) that lets the producer continue bit-exactly from the last
  completed chunk.

Durability contract: every save rewrites the file via
write-temp → ``fsync`` → atomic ``os.replace``, with a SHA-256 content
checksum over the canonical payload serialization. A reader therefore
sees either the previous complete checkpoint or the new one — never a
torn write — and detects any truncation or corruption by checksum.
Corrupt files are *not* fatal on resume: :meth:`CheckpointStore.
load_or_restart` logs, counts ``focal_checkpoint_corrupt_total``, and
restarts cold, which keeps the final output byte-identical to a
fault-free run.
"""

from __future__ import annotations

import errno
import hashlib
import json
import os
import time
from pathlib import Path
from typing import Callable, Mapping, Sequence

from ..core.design import DesignPoint
from ..core.errors import CheckpointError, DomainError, QuarantinedPoint
from ..obs import metrics as _metrics
from ..obs.log import get_logger, kv

__all__ = [
    "CHECKPOINT_FORMAT",
    "CheckpointStore",
    "sweep_fingerprint",
    "encode_outcomes",
    "decode_outcomes",
    "describe_factory",
    "canonical_json",
    "sha256_hex",
    "atomic_write_text",
    "set_disk_fault_hook",
    "TRANSIENT_DISK_ERRNOS",
]

#: Format tag written into (and required from) every checkpoint file.
CHECKPOINT_FORMAT = "focal-checkpoint/1"

#: ``OSError`` errnos treated as transient disk faults: a wedged I/O
#: path (EIO) or a momentarily full volume (ENOSPC) often clears within
#: milliseconds; anything else (EACCES, EROFS, ...) is configuration
#: and propagates immediately.
TRANSIENT_DISK_ERRNOS = (errno.EIO, errno.ENOSPC)

#: Bounded retry budget for transient disk faults, and the backoff base
#: between attempts (doubled each retry).
DISK_RETRIES = 3
DISK_BACKOFF_S = 0.01

# Chaos hook: when set (FaultPlan.disk_hook), every durable write calls
# it first so the fault suite can inject OSError deterministically.
_disk_fault_hook: Callable[[Path], None] | None = None


def set_disk_fault_hook(hook: Callable[[Path], None] | None) -> None:
    """Install (or clear, with ``None``) the durable-write fault hook.

    Test-only seam used by :class:`repro.resilience.faults.FaultPlan`
    to fire deterministic ``OSError`` faults inside
    :func:`atomic_write_text` without mocking the filesystem.
    """
    global _disk_fault_hook
    _disk_fault_hook = hook


def atomic_write_text(
    path: Path, text: str, *, sleep: Callable[[float], None] = time.sleep
) -> None:
    """Durably write *text* to *path*: write-temp, fsync, atomic rename.

    Transient disk faults (:data:`TRANSIENT_DISK_ERRNOS`) are retried
    up to :data:`DISK_RETRIES` times with doubling backoff, counting
    ``focal_disk_retry_total`` per retry; a persistent fault — or any
    non-transient ``OSError`` — propagates to the caller, which decides
    whether the write is essential (checkpoints raise
    :class:`CheckpointError`) or shed-able (the result store falls back
    to its memory tier).
    """
    path = Path(path)
    temp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    for attempt in range(DISK_RETRIES + 1):
        try:
            if _disk_fault_hook is not None:
                _disk_fault_hook(path)
            with open(temp, "w", encoding="utf-8") as handle:
                handle.write(text)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temp, path)
            return
        except OSError as exc:
            try:
                temp.unlink()
            except OSError:
                pass
            transient = exc.errno in TRANSIENT_DISK_ERRNOS
            if not transient or attempt >= DISK_RETRIES:
                raise
            get_logger().warning(
                kv(
                    "disk.retry",
                    path=str(path),
                    errno=exc.errno,
                    attempt=attempt + 1,
                    error=str(exc),
                )
            )
            registry = _metrics.get_registry()
            if registry.enabled:
                registry.counter(
                    "focal_disk_retry_total",
                    "transient OSError retries on durable writes",
                ).inc()
            sleep(DISK_BACKOFF_S * (2.0**attempt))


class _CorruptCheckpoint(CheckpointError):
    """Internal marker: the file is damaged (vs. merely mismatched).

    ``load_or_restart`` recovers from damage by restarting cold; a
    fingerprint/kind mismatch is a configuration error and always
    propagates as a plain :class:`CheckpointError`.
    """


def canonical_json(payload: object) -> str:
    """The canonical serialization checksums are computed over.

    Shared with :mod:`repro.dse.store` so every durable FOCAL file —
    checkpoints and persistent result-store documents alike — hashes
    the same byte stream for the same payload.
    """
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=str
    )


def sha256_hex(text: str) -> str:
    """Hex SHA-256 of *text* (the content-checksum primitive)."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


# Historical private names; every internal call site predates the
# public aliases.
_canonical = canonical_json
_sha256 = sha256_hex


class CheckpointStore:
    """One checkpoint file with atomic saves and checksum-verified loads."""

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)

    @classmethod
    def coerce(
        cls, value: "CheckpointStore | str | os.PathLike | None"
    ) -> "CheckpointStore | None":
        """``None`` passes through; paths become stores."""
        if value is None or isinstance(value, cls):
            return value
        return cls(value)

    def exists(self) -> bool:
        return self.path.exists()

    def remove(self) -> None:
        """Delete the checkpoint file if present."""
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass

    # ------------------------------------------------------------------
    # Saving
    # ------------------------------------------------------------------
    def save(self, *, kind: str, fingerprint: Mapping, state: Mapping) -> None:
        """Atomically replace the file with a checksummed checkpoint.

        Transient disk faults (EIO/ENOSPC) are retried with bounded
        backoff inside :func:`atomic_write_text`; a write that still
        fails raises :class:`CheckpointError` so callers can decide to
        continue without checkpointing rather than abort the run.
        """
        payload = {"kind": kind, "fingerprint": fingerprint, "state": state}
        body = _canonical(payload)
        document = json.dumps(
            {
                "format": CHECKPOINT_FORMAT,
                "sha256": _sha256(body),
                "payload": payload,
            },
            default=str,
        )
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            atomic_write_text(self.path, document)
        except OSError as exc:
            raise CheckpointError(
                f"checkpoint {self.path} could not be written: {exc}"
            ) from exc
        self._fsync_dir()

    def _fsync_dir(self) -> None:
        """Durability of the rename itself (best-effort; not all
        filesystems allow opening a directory)."""
        try:
            fd = os.open(self.path.parent, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform dependent
            return
        try:
            os.fsync(fd)
        except OSError:  # pragma: no cover
            pass
        finally:
            os.close(fd)

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def load(self, *, kind: str, fingerprint: Mapping) -> dict:
        """The verified state, or :class:`CheckpointError` on any problem
        (missing file, corruption, wrong kind, fingerprint mismatch)."""
        payload = self._read_payload()
        if payload.get("kind") != kind:
            raise CheckpointError(
                f"checkpoint {self.path} holds a {payload.get('kind')!r} "
                f"run, expected {kind!r}"
            )
        recorded = _canonical(payload.get("fingerprint"))
        expected = _canonical(fingerprint)
        if recorded != expected:
            raise CheckpointError(
                f"checkpoint {self.path} was written by a different run "
                "configuration (grid/chunk-size/baseline/weight/factory "
                "fingerprint mismatch); delete it or point --checkpoint "
                "at a fresh path"
            )
        state = payload.get("state")
        if not isinstance(state, dict):
            raise _CorruptCheckpoint(
                f"checkpoint {self.path} has no usable state"
            )
        return state

    def load_or_restart(self, *, kind: str, fingerprint: Mapping) -> dict | None:
        """Resume-friendly load: ``None`` means "start cold".

        A missing file and a corrupt/truncated file both return ``None``
        (the latter with a warning log and a bump of
        ``focal_checkpoint_corrupt_total``) — recovery from a damaged
        checkpoint is a cold start, which reproduces the fault-free
        output exactly. A *fingerprint mismatch* still raises: that is a
        configuration error the user must resolve, not damage.
        """
        if not self.path.exists():
            return None
        try:
            return self.load(kind=kind, fingerprint=fingerprint)
        except _CorruptCheckpoint as exc:
            self._note_corrupt(str(exc))
            return None

    def _note_corrupt(self, reason: str) -> None:
        get_logger().warning(
            kv("checkpoint.corrupt", path=str(self.path), reason=reason)
        )
        registry = _metrics.get_registry()
        if registry.enabled:
            registry.counter(
                "focal_checkpoint_corrupt_total",
                "corrupt/truncated checkpoint files discarded on resume",
            ).inc()

    def _read_payload(self) -> dict:
        try:
            text = self.path.read_text(encoding="utf-8")
        except FileNotFoundError:
            raise CheckpointError(f"checkpoint {self.path} does not exist")
        except OSError as exc:
            raise CheckpointError(f"checkpoint {self.path} unreadable: {exc}")
        try:
            document = json.loads(text)
        except json.JSONDecodeError as exc:
            raise _CorruptCheckpoint(
                f"checkpoint {self.path} is not valid JSON "
                f"(truncated write?): {exc}"
            )
        if not isinstance(document, dict):
            raise _CorruptCheckpoint(f"checkpoint {self.path} is not an object")
        if document.get("format") != CHECKPOINT_FORMAT:
            raise _CorruptCheckpoint(
                f"checkpoint {self.path} has format "
                f"{document.get('format')!r}, expected {CHECKPOINT_FORMAT!r}"
            )
        payload = document.get("payload")
        if not isinstance(payload, dict):
            raise _CorruptCheckpoint(f"checkpoint {self.path} has no payload")
        if _sha256(_canonical(payload)) != document.get("sha256"):
            raise _CorruptCheckpoint(
                f"checkpoint {self.path} failed its content checksum "
                "(corrupted on disk)"
            )
        return payload


# ----------------------------------------------------------------------
# Sweep-specific encoding
#
# Design points are serialized with float hex so a resumed sweep rebuilds
# arrays and cache entries bit-for-bit; DomainError outcomes keep their
# message (the one observable the engine relies on).
# ----------------------------------------------------------------------
def describe_factory(factory: object) -> str:
    """A run-stable identity string for a design factory.

    Functions are named by module + qualname (their ``repr`` embeds a
    memory address, which would make every fingerprint unique); class
    instances use ``repr``, which for the stock frozen-dataclass
    factories encodes their configuration values.
    """
    qualname = getattr(factory, "__qualname__", None)
    if qualname is not None:
        return f"{getattr(factory, '__module__', '?')}.{qualname}"
    return repr(factory)


def _jsonable_axis(values: Sequence[object]) -> list:
    out = []
    for value in values:
        if isinstance(value, (bool, int, str)) or value is None:
            out.append(value)
        else:
            # numpy scalars and plain floats: shortest-repr JSON floats
            # roundtrip bit-exactly, so float() is identity-preserving.
            out.append(float(value))
    return out


def sweep_fingerprint(
    *,
    axes: Mapping[str, Sequence[object]],
    chunk_size: int,
    baseline: DesignPoint,
    alpha: float,
    factory: object,
) -> dict:
    """Everything a sweep's results depend on, as a JSON-able mapping."""
    return {
        "axes": {name: _jsonable_axis(values) for name, values in axes.items()},
        "chunk_size": chunk_size,
        "baseline": {
            "name": baseline.name,
            "area": baseline.area.hex(),
            "perf": baseline.perf.hex(),
            "power": baseline.power.hex(),
        },
        "alpha": float(alpha).hex(),
        "factory": describe_factory(factory),
    }


def encode_outcomes(
    outcomes: Sequence[DesignPoint | DomainError],
) -> list[list]:
    """One JSON row per outcome: designs as float hex, errors by message.

    Quarantined points get their own tag (``"q"``) so a resumed sweep
    restores them as :class:`QuarantinedPoint` — still an excluded
    outcome, but one the engine keeps reporting as quarantined.
    """
    rows: list[list] = []
    for outcome in outcomes:
        if isinstance(outcome, QuarantinedPoint):
            rows.append(["q", str(outcome)])
        elif isinstance(outcome, DomainError):
            rows.append(["e", str(outcome)])
        else:
            rows.append(
                [
                    "d",
                    outcome.name,
                    outcome.area.hex(),
                    outcome.perf.hex(),
                    outcome.power.hex(),
                ]
            )
    return rows


def decode_outcomes(rows: Sequence[Sequence]) -> list[DesignPoint | DomainError]:
    """Invert :func:`encode_outcomes` (bit-exact design fields)."""
    outcomes: list[DesignPoint | DomainError] = []
    for row in rows:
        try:
            tag = row[0]
            if tag == "d":
                _, name, area, perf, power = row
                outcomes.append(
                    DesignPoint(
                        name=name,
                        area=float.fromhex(area),
                        perf=float.fromhex(perf),
                        power=float.fromhex(power),
                    )
                )
            elif tag == "e":
                outcomes.append(DomainError(row[1]))
            elif tag == "q":
                outcomes.append(QuarantinedPoint(row[1]))
            else:
                raise ValueError(f"unknown outcome tag {tag!r}")
        except (ValueError, TypeError, IndexError) as exc:
            raise CheckpointError(
                f"checkpoint outcome row {row!r} is undecodable: {exc}"
            ) from exc
    return outcomes
