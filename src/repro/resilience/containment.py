"""Failure containment: quarantine ledger, heartbeat watchdog, salvage.

Three mechanisms that keep a long sweep alive when the retry ladder in
:mod:`repro.resilience.supervisor` is not enough:

* **poison-point quarantine** — a chunk that exhausts its retry budget
  is bisected down to the minimal crashing point set; those points are
  recorded in a persisted, fingerprint-keyed :class:`QuarantineLedger`
  (same atomic write-temp/fsync/rename + SHA-256 discipline as
  :class:`~repro.resilience.checkpoint.CheckpointStore`) and the sweep
  continues without them. Re-runs consult the ledger first and skip
  known poison points without re-crashing a worker.
* **heartbeat watchdog** — workers touch per-process heartbeat files
  while evaluating (:func:`beat`, armed via :func:`arm_heartbeat`);
  the parent-side :class:`HeartbeatMonitor` distinguishes
  slow-but-alive workers from hung ones, so the supervisor reaps a
  wedged pool as soon as *every* heartbeat goes stale past
  ``RetryPolicy.heartbeat_timeout_s`` instead of waiting out the blunt
  ``chunk_timeout_s``.
* **partial-result salvage** — under ``RetryPolicy(salvage=True)`` an
  irrecoverable pool returns :data:`INCOMPLETE` sentinels instead of
  raising; the sweep engine keeps every completed chunk, persists a
  resumable checkpoint, and reports a structured
  :class:`FailureReport`.

Everything here is deterministic and byte-transparent for the points
that survive: quarantine only ever *removes* points from the result
(reported, never silently), and the watchdog/salvage paths reuse the
supervisor's existing respawn/retry machinery.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Mapping

import numpy as np

from ..core.errors import QuarantinedPoint
from ..obs import metrics as _metrics
from ..obs.log import get_logger, kv
from .checkpoint import atomic_write_text, canonical_json, sha256_hex

__all__ = [
    "QUARANTINE_FORMAT",
    "INCOMPLETE",
    "BisectOutcome",
    "FailureReport",
    "QuarantineLedger",
    "QuarantineSession",
    "HeartbeatMonitor",
    "arm_heartbeat",
    "beat",
    "disarm_heartbeat",
    "point_key",
]

#: Format tag written into (and required from) every quarantine ledger.
QUARANTINE_FORMAT = "focal-quarantine/1"


class _Incomplete:
    """Singleton sentinel: a batch slot salvage could not materialize."""

    _instance: "_Incomplete | None" = None

    def __new__(cls) -> "_Incomplete":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "INCOMPLETE"


#: Placeholder the supervisor returns for jobs an irrecoverable pool
#: never completed (``RetryPolicy(salvage=True)``); the engine stops at
#: the first chunk containing one and salvages the prefix.
INCOMPLETE = _Incomplete()


@dataclass(frozen=True)
class BisectOutcome:
    """Per-job replies recovered by quarantine bisection.

    When a dispatched batch crashes on a poison point, bisection re-runs
    its healthy subsets and quarantines the culprits. The supervisor
    hands the merged result back as one :class:`BisectOutcome` in the
    failing job's slot; ``replies`` holds one entry per original job
    (clean results interleaved with :class:`~repro.core.errors.
    QuarantinedPoint` markers) in dispatch order.
    """

    replies: tuple


def _jsonable(value: object) -> object:
    if isinstance(value, (bool, int, str)) or value is None:
        return value
    return float(value)


def _encode_value(value: object) -> str:
    # The same type-tagged encoding repro.dse.store uses for its point
    # keys (kept local: importing dse.store here would cycle through
    # dse.batch back into this package during init).
    if isinstance(value, bool):
        return "b1" if value else "b0"
    if isinstance(value, (int, np.integer)):
        return f"i{int(value)}"
    if isinstance(value, str):
        return f"s{value}"
    if value is None:
        return "n"
    return "f" + float(value).hex()


def point_key(params: Mapping[str, object]) -> str:
    """The canonical ledger key of one grid point (axis-order free)."""
    return "\x1e".join(
        f"{name}={_encode_value(params[name])}" for name in sorted(params)
    )


@dataclass(frozen=True)
class FailureReport:
    """What an irrecoverable-but-salvaged run managed to keep.

    Attached to :class:`~repro.dse.batch.BatchSweepResult` when
    ``RetryPolicy(salvage=True)`` turned a fatal pool failure into a
    partial result: the completed prefix is intact (and checkpointed,
    when a checkpoint was configured), the rest is accounted for here.
    """

    reason: str
    error: str
    completed_chunks: int
    total_chunks: int
    completed_points: int
    pending_points: int
    checkpoint: str | None = None

    def as_dict(self) -> dict[str, object]:
        return {
            "reason": self.reason,
            "error": self.error,
            "completed_chunks": self.completed_chunks,
            "total_chunks": self.total_chunks,
            "completed_points": self.completed_points,
            "pending_points": self.pending_points,
            "checkpoint": self.checkpoint,
        }

    def summary(self) -> str:
        line = (
            f"salvaged: {self.completed_chunks}/{self.total_chunks} chunks "
            f"({self.completed_points} points) kept, "
            f"{self.pending_points} points pending — {self.reason}"
        )
        if self.checkpoint:
            line += f"; resume from {self.checkpoint}"
        return line


# ----------------------------------------------------------------------
# Quarantine ledger
# ----------------------------------------------------------------------
class QuarantineLedger:
    """A persisted registry of poison points, keyed by factory identity.

    One JSON document (schema ``focal-quarantine/1``) holding, per
    factory description (:func:`~repro.resilience.checkpoint.
    describe_factory`), the quarantined points with their parameters,
    fault kind and reason. Writes follow the checkpoint durability
    contract: write-temp, fsync, atomic rename, SHA-256 content
    checksum. A damaged ledger is discarded with a warning — losing the
    quarantine history costs re-discovering the poison points, never
    correctness.
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)
        self._sections: dict[str, dict[str, dict]] | None = None

    @classmethod
    def coerce(
        cls, value: "QuarantineLedger | str | os.PathLike | None"
    ) -> "QuarantineLedger | None":
        """``None`` passes through; paths become ledgers."""
        if value is None or isinstance(value, cls):
            return value
        return cls(value)

    # -- loading -------------------------------------------------------
    def _load(self) -> dict[str, dict[str, dict]]:
        if self._sections is not None:
            return self._sections
        self._sections = self._read() or {}
        return self._sections

    def _read(self) -> dict[str, dict[str, dict]] | None:
        try:
            text = self.path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return None
        except OSError as exc:
            self._note_corrupt(f"unreadable: {exc}")
            return None
        try:
            document = json.loads(text)
        except json.JSONDecodeError as exc:
            self._note_corrupt(f"not valid JSON (truncated write?): {exc}")
            return None
        if (
            not isinstance(document, dict)
            or document.get("format") != QUARANTINE_FORMAT
        ):
            found = document.get("format") if isinstance(document, dict) else None
            self._note_corrupt(f"format {found!r} != {QUARANTINE_FORMAT!r}")
            return None
        payload = document.get("payload")
        if not isinstance(payload, dict) or sha256_hex(
            canonical_json(payload)
        ) != document.get("sha256"):
            self._note_corrupt("failed its content checksum")
            return None
        sections = payload.get("sections")
        return sections if isinstance(sections, dict) else {}

    def _note_corrupt(self, reason: str) -> None:
        get_logger().warning(
            kv("quarantine.corrupt", path=str(self.path), reason=reason)
        )

    # -- writing -------------------------------------------------------
    def save(self) -> None:
        """Atomically persist the ledger (checkpoint durability rules)."""
        payload = {"sections": self._load()}
        document = json.dumps(
            {
                "format": QUARANTINE_FORMAT,
                "sha256": sha256_hex(canonical_json(payload)),
                "payload": payload,
            },
            default=str,
        )
        self.path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_text(self.path, document)

    # -- recording / querying ------------------------------------------
    def record(
        self, factory: str, params: Mapping[str, object], *, kind: str, reason: str
    ) -> None:
        """Quarantine one point under *factory* and persist immediately.

        Persisting per point (not per run) means a sweep killed right
        after isolating a poison point still skips it on the next run.
        """
        section = self._load().setdefault(factory, {})
        section[point_key(params)] = {
            "params": {name: _jsonable(value) for name, value in params.items()},
            "kind": kind,
            "reason": reason,
        }
        self.save()
        get_logger().warning(
            kv("quarantine.point", factory=factory, kind=kind, reason=reason)
        )
        registry = _metrics.get_registry()
        if registry.enabled:
            registry.counter(
                "focal_quarantine_total",
                "design points quarantined by failure containment",
            ).inc()

    def entries(self, factory: str) -> dict[str, dict]:
        """The quarantined points recorded for *factory* (by key)."""
        return dict(self._load().get(factory, {}))

    def __len__(self) -> int:
        return sum(len(section) for section in self._load().values())

    def session(self, factory: str) -> "QuarantineSession":
        """A per-run view bound to one factory identity."""
        return QuarantineSession(self, factory)


class QuarantineSession:
    """One run's view of the ledger, bound to a factory description."""

    def __init__(self, ledger: QuarantineLedger, factory: str) -> None:
        self.ledger = ledger
        self.factory = factory
        self._known = ledger.entries(factory)
        #: Points quarantined during *this* run, in discovery order.
        self.new_points: list[dict] = []

    def quarantine(
        self, params: Mapping[str, object], *, kind: str, reason: str
    ) -> QuarantinedPoint:
        """Record *params* as poison; the returned marker fills its slot."""
        self.ledger.record(self.factory, params, kind=kind, reason=reason)
        entry = {"params": dict(params), "kind": kind, "reason": reason}
        self._known[point_key(params)] = entry
        self.new_points.append(entry)
        return QuarantinedPoint(
            f"quarantined ({kind}): {reason}"
        )

    def known(self, params: Mapping[str, object]) -> dict | None:
        """The ledger entry for *params*, or ``None`` if not quarantined."""
        return self._known.get(point_key(params))

    def marker(self, params: Mapping[str, object]) -> QuarantinedPoint | None:
        """A :class:`QuarantinedPoint` for a known poison point, else ``None``."""
        entry = self.known(params)
        if entry is None:
            return None
        return QuarantinedPoint(
            f"quarantined ({entry['kind']}): {entry['reason']}"
        )

    @property
    def count(self) -> int:
        """Points quarantined during this run."""
        return len(self.new_points)

    @property
    def known_count(self) -> int:
        """Points the ledger knows as poison for this factory."""
        return len(self._known)


# ----------------------------------------------------------------------
# Heartbeat watchdog
# ----------------------------------------------------------------------
#: Minimum seconds between heartbeat-file touches — beats are called
#: per evaluated job, so rate-limiting keeps the watchdog's cost off
#: the hot path.
HEARTBEAT_MIN_INTERVAL_S = 0.02

_hb_path: Path | None = None
_hb_last: float = 0.0


def arm_heartbeat(hb_dir: str | os.PathLike) -> None:
    """Worker-side: start touching a per-pid heartbeat file in *hb_dir*.

    Called from the pool initializer the supervisor installs when a
    :class:`HeartbeatMonitor` is armed; the first touch happens
    immediately so the parent sees a live worker before its first job.
    """
    global _hb_path, _hb_last
    _hb_path = Path(hb_dir) / f"hb-{os.getpid()}"
    _hb_last = 0.0
    beat()


def beat() -> None:
    """Worker-side liveness tick (no-op when no monitor is armed).

    Cheap enough for per-job call sites: one monotonic read, and at
    most one ``touch`` per :data:`HEARTBEAT_MIN_INTERVAL_S`.
    """
    global _hb_last
    if _hb_path is None:
        return
    now = time.monotonic()
    if _hb_last and now - _hb_last < HEARTBEAT_MIN_INTERVAL_S:
        return
    _hb_last = now
    try:
        _hb_path.touch()
    except OSError:  # pragma: no cover - monitor dir torn down mid-run
        pass


def disarm_heartbeat() -> None:
    """Worker-side: stop beating (used by tests and pool teardown)."""
    global _hb_path, _hb_last
    _hb_path = None
    _hb_last = 0.0


class HeartbeatMonitor:
    """Parent-side watchdog over a pool's per-worker heartbeat files.

    The monitor owns a temporary directory; workers armed through
    :func:`arm_heartbeat` touch ``hb-<pid>`` files in it. A pool is
    *stale* when at least one worker has reported in and **every**
    heartbeat file is older than the deadline — a single live worker
    means the pool is still draining jobs and must not be reaped.
    """

    def __init__(self, base_dir: str | os.PathLike | None = None) -> None:
        self._dir: str | None = None
        # Out-of-core sweeps route scratch files under their spill dir
        # so nothing watchdog-related lands in a cwd/tmp mix.
        self._base_dir = os.fspath(base_dir) if base_dir is not None else None

    def arm(self) -> str:
        """Create (if needed) and return the heartbeat directory."""
        if self._dir is None:
            self._dir = tempfile.mkdtemp(
                prefix="focal-heartbeat-", dir=self._base_dir
            )
        return self._dir

    @property
    def directory(self) -> str | None:
        return self._dir

    def _files(self) -> Iterator[Path]:
        if self._dir is None:
            return iter(())
        try:
            return iter(sorted(Path(self._dir).glob("hb-*")))
        except OSError:  # pragma: no cover
            return iter(())

    def stale(self, deadline_s: float) -> bool:
        """True when every reported heartbeat is older than *deadline_s*."""
        now = time.time()
        ages = []
        for path in self._files():
            try:
                ages.append(now - path.stat().st_mtime)
            except OSError:
                continue
        return bool(ages) and all(age > deadline_s for age in ages)

    def clear(self) -> None:
        """Forget all heartbeats (called when the pool is respawned)."""
        for path in self._files():
            try:
                path.unlink()
            except OSError:
                pass

    def cleanup(self) -> None:
        """Remove the heartbeat directory entirely."""
        if self._dir is not None:
            shutil.rmtree(self._dir, ignore_errors=True)
            self._dir = None
