"""Deterministic fault injection for the resilient execution layer.

The chaos suite (``tests/resilience``) and the recovery-parity
benchmark (``benchmarks/bench_resilience.py``) must *prove* that every
recovery path yields output byte-identical to a fault-free run. That
requires faults which are

* **real** — a "worker crash" is an actual ``os._exit`` inside a pool
  worker (producing a genuine ``BrokenProcessPool``), a "chunk timeout"
  is an actual oversleeping worker, a "transient factory exception" is
  an actual exception raised mid-chunk;
* **deterministic** — a seeded :class:`FaultPlan` chooses the injection
  points from the grid, so a failing chaos run reproduces exactly;
* **single-fire** — each fault triggers once and never again, even
  across the process boundary of a respawned worker pool. Single-fire
  state lives in marker files under the plan's ``state_dir`` (worker
  processes share no memory with the supervisor, so the filesystem is
  the only honest place for it).

:class:`FaultInjectingFactory` wraps any picklable design factory and
is itself picklable, so it drops into ``BatchExplorer(workers=N)``
unchanged. Checkpoint damage (truncation, byte corruption) is injected
by :func:`truncate_checkpoint` / :func:`corrupt_checkpoint`.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping, Sequence

import numpy as np

from ..core.design import DesignPoint
from ..core.errors import ValidationError
from ..dse.grid import ParameterGrid

__all__ = [
    "InjectedFault",
    "FaultSpec",
    "FaultPlan",
    "FaultInjectingFactory",
    "VectorFaultInjectingFactory",
    "truncate_checkpoint",
    "corrupt_checkpoint",
]

#: Fault kinds a :class:`FaultSpec` may carry. The first three are
#: single-fire transients (retry recovers them); ``poison`` crashes the
#: worker *every* time its point is evaluated (only quarantine contains
#: it), ``stale`` oversleeps without heartbeating (the watchdog's prey),
#: and ``disk`` raises a transient ``OSError`` from the durable-write
#: hook instead of firing at a grid point.
KINDS = ("crash", "hang", "error", "poison", "stale", "disk")

#: Exit status an injected worker crash dies with (visible in logs).
CRASH_EXIT_CODE = 73


class InjectedFault(RuntimeError):
    """The transient exception an ``"error"`` fault raises.

    Deliberately *not* a :class:`~repro.core.errors.ReproError`:
    the execution layer must treat it like any foreign exception
    (retry, then surface), not like model data.
    """


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault: *kind* fires when *key* is evaluated.

    ``key`` is the sorted ``(name, value)`` tuple of the target grid
    point — the same shape as :func:`repro.dse.batch.params_key` — and
    ``arg`` parameterizes the fault (sleep seconds for ``"hang"``).
    """

    kind: str
    key: tuple
    arg: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValidationError(
                f"fault kind must be one of {KINDS}, got {self.kind!r}"
            )

    def marker_name(self) -> str:
        """Filesystem-safe single-fire marker name for this fault."""
        import hashlib

        digest = hashlib.sha256(
            repr((self.kind, self.key, self.arg)).encode("utf-8")
        ).hexdigest()[:24]
        return f"fault-{self.kind}-{digest}"


@dataclass(frozen=True)
class FaultInjectingFactory:
    """A picklable factory wrapper that fires planned faults.

    Scalar calls behave exactly like the wrapped factory except at
    planned grid points, where (once, ever) the fault fires *before*
    evaluation: ``crash`` hard-kills the process, ``hang`` oversleeps,
    ``error`` raises :class:`InjectedFault`. After its single fire the
    point evaluates normally, so retried/re-dispatched work converges
    to the fault-free answer.

    The wrapper intentionally does **not** forward ``batch_arrays``:
    chaos runs must exercise the scalar/worker paths the faults target,
    not the columnar fast path.
    """

    factory: object  # the wrapped (picklable) DesignFactory
    specs: tuple[FaultSpec, ...]
    state_dir: str

    def __call__(self, params: Mapping[str, object]) -> DesignPoint:
        key = tuple(sorted(params.items()))
        for spec in self.specs:
            # Poison points are deterministic, not transient: they fire
            # on every evaluation (no single-fire claim) — only
            # quarantine can contain them.
            if spec.key == key and (spec.kind == "poison" or self._claim(spec)):
                self._fire(spec)
        return self.factory(params)  # type: ignore[operator]

    def _claim(self, spec: FaultSpec) -> bool:
        """Atomically claim the single fire (exclusive marker create)."""
        try:
            fd = os.open(
                os.path.join(self.state_dir, spec.marker_name()),
                os.O_CREAT | os.O_EXCL | os.O_WRONLY,
            )
        except FileExistsError:
            return False
        os.close(fd)
        return True

    def _fire(self, spec: FaultSpec) -> None:
        if spec.kind in ("crash", "poison"):
            # A real worker death: no exception, no cleanup, just like
            # the OOM killer. The parent sees BrokenProcessPool.
            os._exit(CRASH_EXIT_CODE)
        if spec.kind in ("hang", "stale"):
            # Both oversleep; "stale" deliberately does so without
            # heartbeating, so only the watchdog can tell it from a
            # slow-but-alive worker.
            time.sleep(spec.arg)
            return
        raise InjectedFault(
            f"injected transient fault at {dict(spec.key)!r}"
        )


@dataclass(frozen=True)
class VectorFaultInjectingFactory(FaultInjectingFactory):
    """Fault injection for the parallel-columnar engine path.

    Unlike the scalar wrapper, this one *does* forward ``batch_arrays``
    to the wrapped vector factory: a planned fault fires (once, ever)
    inside the kernel call of whichever shard contains its target grid
    point, so chaos runs exercise the shard retry / pool respawn /
    in-process degradation machinery of the parallel-columnar engine.
    Kernel values and validity are untouched — after the single fire
    the re-dispatched shard evaluates clean, so recovery converges to
    the fault-free, byte-identical answer.
    """

    def batch_arrays(self, columns: Mapping[str, np.ndarray]):
        for spec in self.specs:
            if self._covers(columns, spec) and (
                spec.kind == "poison" or self._claim(spec)
            ):
                self._fire(spec)
        return self.factory.batch_arrays(columns)  # type: ignore[attr-defined]

    @staticmethod
    def _covers(columns: Mapping[str, np.ndarray], spec: FaultSpec) -> bool:
        """Whether any row of *columns* is the spec's target point."""
        mask: np.ndarray | None = None
        for name, value in spec.key:
            if name not in columns:
                return False
            hit = np.asarray(columns[name]) == value
            mask = hit if mask is None else mask & hit
        return mask is not None and bool(np.any(mask))

    @property
    def design_points(self):
        # Forward the wrapped factory's materializer when it has one; a
        # raised AttributeError makes getattr(..., None) in the engine
        # treat this wrapper as materializer-free, like the original.
        return self.factory.design_points  # type: ignore[attr-defined]


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, reproducible set of faults over a parameter grid."""

    seed: int
    state_dir: str
    specs: tuple[FaultSpec, ...]

    @classmethod
    def plan(
        cls,
        grid: ParameterGrid,
        *,
        seed: int,
        state_dir: str | os.PathLike,
        crashes: int = 0,
        hangs: int = 0,
        errors: int = 0,
        poisons: int = 0,
        stales: int = 0,
        disk_errors: int = 0,
        hang_s: float = 30.0,
        stale_s: float = 30.0,
    ) -> "FaultPlan":
        """Choose distinct injection points deterministically from *seed*.

        Points are drawn without replacement from the grid's cartesian
        order by a :func:`numpy.random.default_rng` stream, then
        assigned kinds in crash/hang/error/poison/stale order — the
        whole plan is a pure function of ``(grid, seed, counts)``.
        ``disk_errors`` are not grid points: each is one single-fire
        transient ``OSError`` raised from the durable-write hook (see
        :meth:`disk_hook`).
        """
        total = crashes + hangs + errors + poisons + stales
        points = list(grid)
        if total > len(points):
            raise ValidationError(
                f"cannot inject {total} faults into a {len(points)}-point grid"
            )
        rng = np.random.default_rng(seed)
        chosen = rng.choice(len(points), size=total, replace=False)
        kinds = (
            ["crash"] * crashes
            + ["hang"] * hangs
            + ["error"] * errors
            + ["poison"] * poisons
            + ["stale"] * stales
        )
        args = {"hang": hang_s, "stale": stale_s}
        specs = tuple(
            FaultSpec(
                kind=kind,
                key=tuple(sorted(points[int(index)].items())),
                arg=args.get(kind, 0.0),
            )
            for kind, index in zip(kinds, chosen)
        )
        specs += tuple(
            FaultSpec(kind="disk", key=(("disk", index),))
            for index in range(disk_errors)
        )
        return cls(seed=seed, state_dir=str(state_dir), specs=specs)

    @property
    def poison_points(self) -> list[dict]:
        """The planned poison points as grid-point parameter dicts."""
        return [dict(spec.key) for spec in self.specs if spec.kind == "poison"]

    def disk_hook(self):
        """A durable-write fault hook firing this plan's disk errors.

        Install with :func:`repro.resilience.checkpoint.
        set_disk_fault_hook`; each planned ``disk`` spec raises one
        transient ``OSError(ENOSPC)`` from the next durable write
        (single-fire markers in ``state_dir``, like every other fault).
        Returns ``None`` when the plan holds no disk specs.
        """
        import errno

        specs = [spec for spec in self.specs if spec.kind == "disk"]
        if not specs:
            return None
        Path(self.state_dir).mkdir(parents=True, exist_ok=True)
        state_dir = self.state_dir

        def hook(path: object) -> None:
            for spec in specs:
                marker = os.path.join(state_dir, spec.marker_name())
                try:
                    fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                except FileExistsError:
                    continue
                os.close(fd)
                raise OSError(
                    errno.ENOSPC, f"injected disk fault (writing {path})"
                )

        return hook

    def wrap(self, factory: object) -> FaultInjectingFactory:
        """The fault-injecting twin of *factory* (state dir is created).

        The wrapper hides ``batch_arrays``, forcing the scalar/worker
        paths; use :meth:`wrap_vector` to chaos-test the
        parallel-columnar kernels instead.
        """
        Path(self.state_dir).mkdir(parents=True, exist_ok=True)
        return FaultInjectingFactory(
            factory=factory, specs=self.specs, state_dir=self.state_dir
        )

    def wrap_vector(self, factory: object) -> VectorFaultInjectingFactory:
        """Like :meth:`wrap`, but keeps the factory vector-capable:
        faults fire inside ``batch_arrays`` on the shard containing the
        target point (the parallel-columnar chaos entry point)."""
        Path(self.state_dir).mkdir(parents=True, exist_ok=True)
        return VectorFaultInjectingFactory(
            factory=factory, specs=self.specs, state_dir=self.state_dir
        )

    def reset(self) -> None:
        """Forget all fired faults (markers removed; plan can re-run)."""
        for spec in self.specs:
            try:
                os.unlink(os.path.join(self.state_dir, spec.marker_name()))
            except FileNotFoundError:
                pass


# ----------------------------------------------------------------------
# Checkpoint damage
# ----------------------------------------------------------------------
def truncate_checkpoint(path: str | os.PathLike, keep_fraction: float = 0.5) -> None:
    """Truncate a checkpoint file, simulating a torn write.

    (The real writer cannot produce this state — saves go through
    write-temp/fsync/rename — so this simulates external damage:
    a filesystem crash mid-replace, a partial copy, a bad download.)
    """
    if not 0.0 <= keep_fraction < 1.0:
        raise ValidationError(
            f"keep_fraction must lie in [0, 1), got {keep_fraction}"
        )
    path = Path(path)
    data = path.read_bytes()
    path.write_bytes(data[: int(len(data) * keep_fraction)])


def corrupt_checkpoint(path: str | os.PathLike, *, seed: int = 0) -> None:
    """Flip one byte of the checkpoint body, deterministically by seed.

    The flip lands in the payload region (past the header), so the
    document stays parseable-looking but fails its content checksum.
    """
    path = Path(path)
    data = bytearray(path.read_bytes())
    if not data:
        raise ValidationError(f"checkpoint {path} is empty, nothing to corrupt")
    rng = np.random.default_rng(seed)
    offset = int(rng.integers(len(data) // 2, len(data)))
    data[offset] ^= 0x01
    path.write_bytes(bytes(data))
