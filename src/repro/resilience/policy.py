"""Supervision policy: how hard the execution layer fights failures.

A :class:`RetryPolicy` is the single knob bundle for the resilient
execution layer (:mod:`repro.resilience.supervisor`): how long a
dispatched chunk may run, how many times a failed chunk is re-dispatched,
how the backoff between attempts grows, and when the worker pool is
declared irrecoverable and the sweep degrades to in-process evaluation.

The policy is a frozen dataclass so a :class:`~repro.dse.batch.
BatchExplorer` carrying one stays hashable and comparable; the ``sleep``
hook exists so tests and the deterministic chaos suite can run backoff
schedules without real wall-clock waits.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from ..core.errors import ValidationError

__all__ = ["RetryPolicy", "SupervisionStats", "DEFAULT_POLICY"]


@dataclass(frozen=True)
class RetryPolicy:
    """How a :class:`~repro.resilience.supervisor.SupervisedPool` reacts
    to worker crashes, chunk timeouts and transient factory exceptions.

    Parameters
    ----------
    max_retries:
        Re-dispatch attempts per chunk after the first failure. When
        exhausted, the failing work runs in-process (graceful
        degradation) — a genuine, repeatable factory bug therefore still
        surfaces as its original exception.
    backoff_base_s, backoff_factor:
        Exponential backoff between attempts: attempt ``k`` (0-based)
        sleeps ``backoff_base_s * backoff_factor**k`` seconds.
    chunk_timeout_s:
        Wall-clock budget for one dispatched chunk; ``None`` disables
        timeouts. A timed-out pool is respawned (the hung worker cannot
        be cancelled, only replaced).
    max_respawns:
        Pool respawns (after ``BrokenProcessPool`` or a timeout) before
        the pool is declared irrecoverable and every remaining chunk
        runs in-process.
    degrade_in_process:
        When ``False``, exhausting retries raises
        :class:`~repro.core.errors.WorkerPoolError` instead of degrading
        (for callers that must not silently lose parallelism).
    sleep:
        Backoff sleeper (monkeypoint for tests; defaults to
        :func:`time.sleep`).
    """

    max_retries: int = 2
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    chunk_timeout_s: float | None = None
    max_respawns: int = 2
    degrade_in_process: bool = True
    sleep: Callable[[float], None] = field(
        default=time.sleep, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValidationError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff_base_s < 0.0:
            raise ValidationError(
                f"backoff_base_s must be >= 0, got {self.backoff_base_s}"
            )
        if self.backoff_factor < 1.0:
            raise ValidationError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.chunk_timeout_s is not None and self.chunk_timeout_s <= 0.0:
            raise ValidationError(
                f"chunk_timeout_s must be > 0 or None, got {self.chunk_timeout_s}"
            )
        if self.max_respawns < 0:
            raise ValidationError(
                f"max_respawns must be >= 0, got {self.max_respawns}"
            )

    def backoff_s(self, attempt: int) -> float:
        """Backoff before re-dispatch *attempt* (0-based)."""
        return self.backoff_base_s * self.backoff_factor**attempt


#: The stock policy ``focal sweep`` runs under: a couple of retries with
#: a short exponential backoff, no chunk timeout (sweep chunks are
#: CPU-bound and self-limiting), degradation enabled.
DEFAULT_POLICY = RetryPolicy()


@dataclass
class SupervisionStats:
    """Counters describing what the supervisor had to do (one pool).

    Mirrored into the ``focal_retry_*`` / ``focal_degraded_*`` metrics
    and per-chunk span attributes; exposed directly for CLI summaries
    and tests.
    """

    retries: int = 0
    crashes: int = 0
    timeouts: int = 0
    transient_errors: int = 0
    respawns: int = 0
    degraded_batches: int = 0
    pool_degraded: bool = False

    @property
    def faults(self) -> int:
        """Total faults observed (crashes + timeouts + transient)."""
        return self.crashes + self.timeouts + self.transient_errors

    def as_dict(self) -> dict[str, object]:
        return {
            "retries": self.retries,
            "crashes": self.crashes,
            "timeouts": self.timeouts,
            "transient_errors": self.transient_errors,
            "respawns": self.respawns,
            "degraded_batches": self.degraded_batches,
            "pool_degraded": self.pool_degraded,
        }

    def summary(self) -> str:
        """One human line for CLI output (empty when nothing happened)."""
        if not self.faults and not self.pool_degraded:
            return ""
        parts = [
            f"supervisor: {self.faults} faults "
            f"({self.crashes} crashes, {self.timeouts} timeouts, "
            f"{self.transient_errors} transient errors)",
            f"{self.retries} retries",
            f"{self.respawns} pool respawns",
        ]
        if self.degraded_batches:
            parts.append(f"{self.degraded_batches} batches ran in-process")
        if self.pool_degraded:
            parts.append("pool degraded")
        return ", ".join(parts)
