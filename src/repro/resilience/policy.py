"""Supervision policy: how hard the execution layer fights failures.

A :class:`RetryPolicy` is the single knob bundle for the resilient
execution layer (:mod:`repro.resilience.supervisor`): how long a
dispatched chunk may run, how many times a failed chunk is re-dispatched,
how the backoff between attempts grows, and when the worker pool is
declared irrecoverable and the sweep degrades to in-process evaluation.

The policy is a frozen dataclass so a :class:`~repro.dse.batch.
BatchExplorer` carrying one stays hashable and comparable; the ``sleep``
hook exists so tests and the deterministic chaos suite can run backoff
schedules without real wall-clock waits.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..core.errors import ValidationError

__all__ = ["RetryPolicy", "SupervisionStats", "DEFAULT_POLICY"]


@dataclass(frozen=True)
class RetryPolicy:
    """How a :class:`~repro.resilience.supervisor.SupervisedPool` reacts
    to worker crashes, chunk timeouts and transient factory exceptions.

    Parameters
    ----------
    max_retries:
        Re-dispatch attempts per chunk after the first failure. When
        exhausted, the failing work runs in-process (graceful
        degradation) — a genuine, repeatable factory bug therefore still
        surfaces as its original exception.
    backoff_base_s, backoff_factor:
        Exponential backoff between attempts: attempt ``k`` (0-based)
        sleeps ``backoff_base_s * backoff_factor**k`` seconds.
    chunk_timeout_s:
        Wall-clock budget for one dispatched chunk; ``None`` disables
        timeouts. A timed-out pool is respawned (the hung worker cannot
        be cancelled, only replaced).
    max_respawns:
        Pool respawns (after ``BrokenProcessPool`` or a timeout) before
        the pool is declared irrecoverable and every remaining chunk
        runs in-process.
    degrade_in_process:
        When ``False``, exhausting retries raises
        :class:`~repro.core.errors.WorkerPoolError` instead of degrading
        (for callers that must not silently lose parallelism).
    backoff_jitter:
        Fractional jitter on each backoff sleep: attempt ``k`` sleeps
        ``backoff_s(k) * (1 + backoff_jitter * u)`` with ``u`` drawn
        uniformly from ``[-1, 1)`` by a policy-private seeded generator.
        Concurrent sweeps sharing a host therefore never retry in
        lockstep, yet a fixed ``jitter_seed`` reproduces the exact sleep
        schedule. ``0.0`` disables jitter.
    jitter_seed:
        Seed for the jitter stream; ``None`` (the default) seeds from
        the process id, which de-synchronizes co-hosted sweeps while
        staying deterministic within one process.
    heartbeat_timeout_s:
        Parent-side watchdog deadline: workers touch per-process
        heartbeat files while evaluating, and a pool whose heartbeats
        *all* go stale past this deadline is reaped (respawned)
        immediately instead of waiting out ``chunk_timeout_s``. ``None``
        disables the watchdog.
    salvage:
        When ``True``, an irrecoverable run (respawn budget gone, pool
        unspawnable, degradation disabled) returns the completed work
        plus :data:`~repro.resilience.containment.INCOMPLETE` sentinels
        for the rest instead of raising, letting the sweep engine keep
        every finished chunk and report a structured
        :class:`~repro.resilience.containment.FailureReport`.
    max_quarantine:
        Poison-point budget per pool: how many points quarantine
        bisection may isolate before giving up on containment and
        falling through to degrade/salvage/raise.
    sleep:
        Backoff sleeper (monkeypoint for tests; defaults to
        :func:`time.sleep`).
    """

    max_retries: int = 2
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    chunk_timeout_s: float | None = None
    max_respawns: int = 2
    degrade_in_process: bool = True
    backoff_jitter: float = 0.1
    jitter_seed: int | None = None
    heartbeat_timeout_s: float | None = None
    salvage: bool = False
    max_quarantine: int = 16
    sleep: Callable[[float], None] = field(
        default=time.sleep, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValidationError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff_base_s < 0.0:
            raise ValidationError(
                f"backoff_base_s must be >= 0, got {self.backoff_base_s}"
            )
        if self.backoff_factor < 1.0:
            raise ValidationError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.chunk_timeout_s is not None and self.chunk_timeout_s <= 0.0:
            raise ValidationError(
                f"chunk_timeout_s must be > 0 or None, got {self.chunk_timeout_s}"
            )
        if self.max_respawns < 0:
            raise ValidationError(
                f"max_respawns must be >= 0, got {self.max_respawns}"
            )
        if not 0.0 <= self.backoff_jitter < 1.0:
            raise ValidationError(
                f"backoff_jitter must be in [0, 1), got {self.backoff_jitter}"
            )
        if (
            self.heartbeat_timeout_s is not None
            and self.heartbeat_timeout_s <= 0.0
        ):
            raise ValidationError(
                "heartbeat_timeout_s must be > 0 or None, "
                f"got {self.heartbeat_timeout_s}"
            )
        if self.max_quarantine < 0:
            raise ValidationError(
                f"max_quarantine must be >= 0, got {self.max_quarantine}"
            )

    def backoff_s(self, attempt: int) -> float:
        """Backoff before re-dispatch *attempt* (0-based), with jitter.

        The jitter draw comes from a policy-private generator seeded by
        ``jitter_seed`` (process id when ``None``) — deterministic per
        policy instance, de-synchronized across processes.
        """
        base = self.backoff_base_s * self.backoff_factor**attempt
        if not self.backoff_jitter:
            return base
        rng = getattr(self, "_jitter_rng", None)
        if rng is None:
            seed = self.jitter_seed if self.jitter_seed is not None else os.getpid()
            rng = np.random.default_rng(seed)
            # The frozen dataclass cannot grow fields; the generator is
            # runtime state, deliberately outside equality and repr.
            object.__setattr__(self, "_jitter_rng", rng)
        offset = self.backoff_jitter * (2.0 * rng.random() - 1.0)
        return base * (1.0 + offset)


#: The stock policy ``focal sweep`` runs under: a couple of retries with
#: a short exponential backoff, no chunk timeout (sweep chunks are
#: CPU-bound and self-limiting), degradation enabled.
DEFAULT_POLICY = RetryPolicy()


@dataclass
class SupervisionStats:
    """Counters describing what the supervisor had to do (one pool).

    Mirrored into the ``focal_retry_*`` / ``focal_degraded_*`` metrics
    and per-chunk span attributes; exposed directly for CLI summaries
    and tests.
    """

    retries: int = 0
    crashes: int = 0
    timeouts: int = 0
    transient_errors: int = 0
    respawns: int = 0
    degraded_batches: int = 0
    pool_degraded: bool = False
    quarantined: int = 0
    bisect_probes: int = 0
    watchdog_reaps: int = 0
    salvaged: int = 0

    @property
    def faults(self) -> int:
        """Total faults observed (crashes + timeouts + transient)."""
        return self.crashes + self.timeouts + self.transient_errors

    def as_dict(self) -> dict[str, object]:
        return {
            "retries": self.retries,
            "crashes": self.crashes,
            "timeouts": self.timeouts,
            "transient_errors": self.transient_errors,
            "respawns": self.respawns,
            "degraded_batches": self.degraded_batches,
            "pool_degraded": self.pool_degraded,
            "quarantined": self.quarantined,
            "bisect_probes": self.bisect_probes,
            "watchdog_reaps": self.watchdog_reaps,
            "salvaged": self.salvaged,
        }

    def summary(self) -> str:
        """One human line for CLI output (empty when nothing happened)."""
        if not (
            self.faults
            or self.pool_degraded
            or self.quarantined
            or self.watchdog_reaps
            or self.salvaged
        ):
            return ""
        parts = [
            f"supervisor: {self.faults} faults "
            f"({self.crashes} crashes, {self.timeouts} timeouts, "
            f"{self.transient_errors} transient errors)",
            f"{self.retries} retries",
            f"{self.respawns} pool respawns",
        ]
        if self.watchdog_reaps:
            parts.append(f"{self.watchdog_reaps} watchdog reaps")
        if self.quarantined:
            parts.append(f"{self.quarantined} points quarantined")
        if self.degraded_batches:
            parts.append(f"{self.degraded_batches} batches ran in-process")
        if self.pool_degraded:
            parts.append("pool degraded")
        if self.salvaged:
            parts.append(f"{self.salvaged} batches salvaged incomplete")
        return ", ".join(parts)
