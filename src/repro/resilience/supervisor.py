"""A supervised worker pool: ``ProcessPoolExecutor`` that survives its
workers.

A plain ``ProcessPoolExecutor`` turns one OOM-killed or segfaulted
worker into a ``BrokenProcessPool`` that aborts the entire sweep, and a
hung worker into an unbounded stall. :class:`SupervisedPool` wraps the
executor with the recovery ladder long design-space sweeps need:

1. **bounded retry with exponential backoff** — a chunk whose dispatch
   fails (worker crash, transient factory exception, timeout) is
   re-dispatched up to :attr:`~repro.resilience.policy.RetryPolicy.
   max_retries` times;
2. **pool respawn** — a ``BrokenProcessPool`` or a chunk timeout kills
   and recreates the executor (terminating any hung worker processes),
   re-dispatching only the failed work, never the chunks that already
   completed;
3. **graceful degradation** — when the pool is irrecoverable (respawn
   budget exhausted, or the OS refuses new processes), remaining work
   runs in-process, so the sweep finishes correctly, just slower. A
   genuine, repeatable factory bug is *not* retried away: the final
   in-process attempt re-raises it.

Every recovery action is counted in :class:`~repro.resilience.policy.
SupervisionStats` and surfaced through the ``focal_retry_*`` /
``focal_degraded_*`` metrics when :mod:`repro.obs.metrics` is enabled.

Results are returned in job order and are byte-identical to an
unsupervised run: supervision only re-executes pure factory calls, it
never reorders or drops them.
"""

from __future__ import annotations

from concurrent.futures import Executor, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Sequence

from ..core.errors import ValidationError, WorkerPoolError
from ..obs import events as _events
from ..obs import metrics as _metrics
from .policy import DEFAULT_POLICY, RetryPolicy, SupervisionStats

__all__ = ["SupervisedPool"]


def _run_batch(fn: Callable, jobs: Sequence) -> list:
    """Worker-side batch evaluation (module-level, hence picklable)."""
    return [fn(job) for job in jobs]


class SupervisedPool:
    """A crash-tolerant, timeout-bounded worker pool (see module docs).

    Parameters
    ----------
    workers:
        Maximum worker processes (>= 1).
    policy:
        The :class:`~repro.resilience.policy.RetryPolicy` governing
        timeouts, retries, respawns and degradation.
    executor_factory:
        The executor constructor, ``ProcessPoolExecutor`` by default.
        Tests inject thread pools or deliberately failing factories
        here; anything with the ``Executor`` interface works.
    initializer, initargs:
        Ran once in every worker the executor spawns (and re-ran in the
        replacement workers after a pool respawn) — how per-pool state
        such as a design factory or a shared-memory attachment ships
        once per pool instead of once per job. The caller is
        responsible for mirroring the state in its own process when
        jobs must also run in-process (degradation).
    """

    def __init__(
        self,
        workers: int,
        policy: RetryPolicy = DEFAULT_POLICY,
        executor_factory: Callable[..., Executor] = ProcessPoolExecutor,
        initializer: Callable | None = None,
        initargs: tuple = (),
    ) -> None:
        if workers < 1:
            raise ValidationError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.policy = policy
        self.stats = SupervisionStats()
        self._executor_factory = executor_factory
        self._initializer = initializer
        self._initargs = initargs
        self._executor: Executor | None = None
        self._degraded = False

    # ------------------------------------------------------------------
    # Public interface
    # ------------------------------------------------------------------
    @property
    def degraded(self) -> bool:
        """Whether the pool is irrecoverable (all work runs in-process)."""
        return self._degraded

    def run(self, fn: Callable, jobs: Sequence) -> list:
        """Evaluate ``fn`` over *jobs* on the pool, in job order.

        The jobs of one call are split into up to ``workers`` contiguous
        batches dispatched concurrently; a failed batch walks the
        recovery ladder described in the module docs. Exceptions that
        survive every recovery path propagate unchanged.
        """
        jobs = list(jobs)
        if not jobs:
            return []
        batches = self._split(jobs)
        results: list[list | None] = [None] * len(batches)
        pending = list(range(len(batches)))
        attempt = 0
        while pending:
            if self._degraded or self._ensure_executor() is None:
                self._run_in_process(fn, batches, results, pending)
                break
            futures = {
                index: self._executor.submit(_run_batch, fn, batches[index])
                for index in pending
            }
            _, not_done = wait(
                futures.values(), timeout=self.policy.chunk_timeout_s
            )
            failed: list[int] = []
            pool_hurt = False
            for index, future in futures.items():
                if future in not_done:
                    failed.append(index)
                    self.stats.timeouts += 1
                    self._count_fault("timeout")
                    pool_hurt = True
                    continue
                try:
                    results[index] = future.result()
                except BrokenProcessPool:
                    failed.append(index)
                    self.stats.crashes += 1
                    self._count_fault("crash")
                    pool_hurt = True
                except Exception:
                    failed.append(index)
                    self.stats.transient_errors += 1
                    self._count_fault("error")
            if not failed:
                break
            if pool_hurt:
                # The executor (or a worker in it) is gone or hung —
                # replace it before re-dispatching anything.
                self._respawn()
            if attempt >= self.policy.max_retries:
                self._run_in_process(fn, batches, results, failed)
                break
            self.stats.retries += len(failed)
            self._event("pool.retry", batches=len(failed), attempt=attempt)
            self._inc("focal_retry_total", "re-dispatched work batches", len(failed))
            self.policy.sleep(self.policy.backoff_s(attempt))
            attempt += 1
            pending = failed
        return [item for batch in results for item in batch]  # type: ignore[union-attr]

    def shutdown(self, *, cancel_futures: bool = True) -> None:
        """Tear the pool down, reaping every worker process.

        Queued work is cancelled (``cancel_futures``) and worker
        processes are terminated and joined, so an aborted sweep —
        ``KeyboardInterrupt`` included — leaves no orphans behind.
        """
        self._kill_executor(cancel_futures=cancel_futures)

    # Context-manager sugar so call sites mirror ProcessPoolExecutor.
    def __enter__(self) -> "SupervisedPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.shutdown()
        return False

    # ------------------------------------------------------------------
    # Recovery ladder internals
    # ------------------------------------------------------------------
    def _split(self, jobs: list) -> list[list]:
        """Up to ``workers`` contiguous, nearly equal batches."""
        count = min(self.workers, len(jobs))
        size, extra = divmod(len(jobs), count)
        batches: list[list] = []
        start = 0
        for index in range(count):
            stop = start + size + (1 if index < extra else 0)
            batches.append(jobs[start:stop])
            start = stop
        return batches

    def _ensure_executor(self) -> Executor | None:
        """The live executor, spawning lazily; ``None`` degrades."""
        if self._executor is None:
            # initializer/initargs are forwarded only when set, so
            # test-injected executor factories with a bare
            # ``max_workers`` signature keep working.
            kwargs: dict = {"max_workers": self.workers}
            if self._initializer is not None:
                kwargs["initializer"] = self._initializer
                kwargs["initargs"] = self._initargs
            try:
                self._executor = self._executor_factory(**kwargs)
            except Exception:
                self._declare_degraded()
        return self._executor

    def _respawn(self) -> None:
        """Replace a broken/hung executor, within the respawn budget."""
        self._kill_executor(cancel_futures=True)
        self.stats.respawns += 1
        self._event("pool.respawn", respawns=self.stats.respawns)
        self._inc("focal_pool_respawn_total", "worker pool respawns")
        if self.stats.respawns > self.policy.max_respawns:
            self._declare_degraded()

    def _declare_degraded(self) -> None:
        self._degraded = True
        self.stats.pool_degraded = True
        self._kill_executor(cancel_futures=True)
        self._event("pool.degraded")
        self._inc(
            "focal_degraded_pool_total", "worker pools declared irrecoverable"
        )

    def _run_in_process(
        self,
        fn: Callable,
        batches: list[list],
        results: list[list | None],
        indices: Sequence[int],
    ) -> None:
        """The last rung: evaluate *indices* in this process."""
        if not self.policy.degrade_in_process:
            raise WorkerPoolError(
                f"worker pool failed {len(indices)} batch(es) after "
                f"{self.policy.max_retries} retries and in-process "
                "degradation is disabled by policy"
            )
        for index in indices:
            results[index] = [fn(job) for job in batches[index]]
            self.stats.degraded_batches += 1
            self._inc(
                "focal_degraded_batches_total",
                "work batches evaluated in-process after pool failure",
            )

    def _kill_executor(self, *, cancel_futures: bool) -> None:
        """Shut the executor down without waiting on hung workers.

        ``shutdown(wait=True)`` would block forever behind a hung
        worker, so the order is: non-blocking shutdown, terminate the
        worker processes, then a bounded join to reap them.
        """
        executor = self._executor
        self._executor = None
        if executor is None:
            return
        # Snapshot the worker processes FIRST: shutdown(wait=False)
        # empties the executor's _processes dict, so a later snapshot
        # would silently skip the terminate loop and orphan hung workers.
        registry = getattr(executor, "_processes", None)
        processes = list(registry.values()) if registry else []
        try:
            executor.shutdown(wait=False, cancel_futures=cancel_futures)
        except Exception:  # pragma: no cover - shutdown is best-effort
            pass
        for process in processes:
            try:
                process.terminate()
            except Exception:  # pragma: no cover - already dead
                pass
        for process in processes:
            try:
                process.join(timeout=5.0)
            except Exception:  # pragma: no cover
                pass

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def _count_fault(self, reason: str) -> None:
        self._event("pool.fault", reason=reason)
        self._inc(
            "focal_retry_faults_total",
            "dispatch faults seen by the supervisor",
            labels={"reason": reason},
        )

    @staticmethod
    def _event(name: str, **attrs: object) -> None:
        """A recovery action on the sweep timeline's supervisor track."""
        _events.record(name, track="supervisor", **attrs)

    def _inc(
        self,
        name: str,
        help: str,
        amount: int = 1,
        labels: dict[str, str] | None = None,
    ) -> None:
        registry = _metrics.get_registry()
        if registry.enabled:
            registry.counter(name, help, labels or {}).inc(amount)
