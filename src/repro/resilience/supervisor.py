"""A supervised worker pool: ``ProcessPoolExecutor`` that survives its
workers.

A plain ``ProcessPoolExecutor`` turns one OOM-killed or segfaulted
worker into a ``BrokenProcessPool`` that aborts the entire sweep, and a
hung worker into an unbounded stall. :class:`SupervisedPool` wraps the
executor with the recovery ladder long design-space sweeps need:

1. **bounded retry with exponential backoff** — a chunk whose dispatch
   fails (worker crash, transient factory exception, timeout) is
   re-dispatched up to :attr:`~repro.resilience.policy.RetryPolicy.
   max_retries` times; with ``heartbeat_timeout_s`` set, a parent-side
   watchdog reaps a pool whose worker heartbeats have *all* gone stale
   instead of waiting out the blunt ``chunk_timeout_s``;
2. **pool respawn** — a ``BrokenProcessPool``, a chunk timeout or a
   watchdog reap kills and recreates the executor (terminating any
   hung worker processes), re-dispatching only the failed work, never
   the chunks that already completed;
3. **poison-point quarantine** — when the retry budget is exhausted
   and a :class:`~repro.resilience.containment.QuarantineSession` is
   attached, the failing batch is bisected to isolate the minimal
   crashing point set; those points are recorded in the quarantine
   ledger and their slots filled with :class:`~repro.core.errors.
   QuarantinedPoint` markers so the sweep continues without them;
4. **graceful degradation** — when the pool is irrecoverable (respawn
   budget exhausted, or the OS refuses new processes), remaining work
   runs in-process, so the sweep finishes correctly, just slower. A
   genuine, repeatable factory bug is *not* retried away: the final
   in-process attempt re-raises it;
5. **salvage** — under ``RetryPolicy(salvage=True,
   degrade_in_process=False)`` an irrecoverable pool fills the failed
   slots with :data:`~repro.resilience.containment.INCOMPLETE`
   sentinels instead of raising, letting the caller keep the completed
   prefix and report a structured failure.

Every recovery action is counted in :class:`~repro.resilience.policy.
SupervisionStats` and surfaced through the ``focal_retry_*`` /
``focal_degraded_*`` / ``focal_quarantine_*`` / ``focal_watchdog_*``
metrics when :mod:`repro.obs.metrics` is enabled.

Results are returned in job order and are byte-identical to an
unsupervised run for every non-quarantined point: supervision only
re-executes pure factory calls, it never reorders them, and removal by
quarantine is always reported, never silent.
"""

from __future__ import annotations

import time
from concurrent.futures import Executor, ProcessPoolExecutor, wait
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Mapping, Sequence

from ..core.errors import ValidationError, WorkerPoolError
from ..obs import events as _events
from ..obs import metrics as _metrics
from . import containment as _containment
from .containment import (
    INCOMPLETE,
    BisectOutcome,
    HeartbeatMonitor,
    QuarantineSession,
)
from .policy import DEFAULT_POLICY, RetryPolicy, SupervisionStats

__all__ = ["SupervisedPool"]

#: Internal signal: bisection gave up (budget, unspawnable pool, or an
#: indescribable job) — fall through to the next recovery rung.
_ABORT = object()


def _run_batch(fn: Callable, jobs: Sequence) -> list:
    """Worker-side batch evaluation (module-level, hence picklable).

    Beats the heartbeat between jobs so the parent watchdog sees a
    pool that is slow-but-alive as alive (no-op without a monitor).
    """
    results = []
    for job in jobs:
        _containment.beat()
        results.append(fn(job))
    return results


def _init_with_heartbeat(
    hb_dir: str, initializer: Callable | None, initargs: tuple
) -> None:
    """Pool initializer wrapper: arm the heartbeat, then chain through."""
    _containment.arm_heartbeat(hb_dir)
    if initializer is not None:
        initializer(*initargs)


class SupervisedPool:
    """A crash-tolerant, timeout-bounded worker pool (see module docs).

    Parameters
    ----------
    workers:
        Maximum worker processes (>= 1).
    policy:
        The :class:`~repro.resilience.policy.RetryPolicy` governing
        timeouts, retries, respawns, quarantine, salvage and
        degradation.
    executor_factory:
        The executor constructor, ``ProcessPoolExecutor`` by default.
        Tests inject thread pools or deliberately failing factories
        here; anything with the ``Executor`` interface works.
    initializer, initargs:
        Ran once in every worker the executor spawns (and re-ran in the
        replacement workers after a pool respawn) — how per-pool state
        such as a design factory or a shared-memory attachment ships
        once per pool instead of once per job. The caller is
        responsible for mirroring the state in its own process when
        jobs must also run in-process (degradation).
    monitor:
        The parent-side :class:`~repro.resilience.containment.
        HeartbeatMonitor`; auto-created when the policy sets
        ``heartbeat_timeout_s`` and none is supplied.
    quarantine:
        A :class:`~repro.resilience.containment.QuarantineSession`
        enabling the poison-point bisection rung; ``None`` (the
        default) skips that rung.
    """

    def __init__(
        self,
        workers: int,
        policy: RetryPolicy = DEFAULT_POLICY,
        executor_factory: Callable[..., Executor] = ProcessPoolExecutor,
        initializer: Callable | None = None,
        initargs: tuple = (),
        monitor: HeartbeatMonitor | None = None,
        quarantine: QuarantineSession | None = None,
    ) -> None:
        if workers < 1:
            raise ValidationError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.policy = policy
        self.stats = SupervisionStats()
        self._executor_factory = executor_factory
        self._initializer = initializer
        self._initargs = initargs
        self._executor: Executor | None = None
        self._degraded = False
        # Respawns already explained by a successful quarantine: once a
        # poison point is excised, the crashes it caused say nothing
        # about the pool's health, so they stop counting against the
        # respawn budget.
        self._respawns_forgiven = 0
        if monitor is None and policy.heartbeat_timeout_s is not None:
            monitor = HeartbeatMonitor()
        self._monitor = monitor
        self._quarantine = quarantine

    # ------------------------------------------------------------------
    # Public interface
    # ------------------------------------------------------------------
    @property
    def degraded(self) -> bool:
        """Whether the pool is irrecoverable (all work runs in-process)."""
        return self._degraded

    @property
    def quarantine(self) -> QuarantineSession | None:
        """The attached quarantine session, if any."""
        return self._quarantine

    def run(
        self,
        fn: Callable,
        jobs: Sequence,
        *,
        splitter: Callable | None = None,
        describe: Callable[[object], Mapping | None] | None = None,
        schedule: str = "batch",
    ) -> list:
        """Evaluate ``fn`` over *jobs* on the pool, in job order.

        With ``schedule="batch"`` (the default) the jobs of one call
        are split into up to ``workers`` contiguous batches dispatched
        concurrently — static assignment, one future per batch. With
        ``schedule="queue"`` every job becomes its own future on the
        executor's shared call queue, so idle workers pull the next job
        the moment they finish one (work stealing); the recovery ladder
        then operates at per-job granularity. Either way a failed
        batch walks the recovery ladder described in the module docs.
        Exceptions that survive every recovery path propagate
        unchanged.

        *splitter* and *describe* feed the quarantine-bisection rung:
        ``splitter(job)`` returns a pair of half-sized sub-jobs (or
        ``None`` for an atomic, single-point job) and ``describe(job)``
        returns an atomic job's grid-point parameters for the ledger.
        Without a quarantine session both are ignored. The returned
        list holds one reply per job; a bisected multi-point job's slot
        is a :class:`~repro.resilience.containment.BisectOutcome`
        wrapping its recovered sub-replies, a quarantined point's slot
        a :class:`~repro.core.errors.QuarantinedPoint`, and a salvaged
        (never completed) job's slot :data:`~repro.resilience.
        containment.INCOMPLETE`.
        """
        if schedule not in ("batch", "queue"):
            raise ValidationError(
                f"schedule must be 'batch' or 'queue', got {schedule!r}"
            )
        jobs = list(jobs)
        if not jobs:
            return []
        batches = (
            [[job] for job in jobs] if schedule == "queue" else self._split(jobs)
        )
        results: list[list | None] = [None] * len(batches)
        pending = list(range(len(batches)))
        attempt = 0
        while pending:
            if self._degraded or self._ensure_executor() is None:
                # attempt > 0 means the pending batches already failed
                # this run; on a fresh call they are merely unevaluated
                # and bisection must probe before splitting them.
                self._last_resort(
                    fn,
                    batches,
                    results,
                    pending,
                    splitter,
                    describe,
                    known_failing=attempt > 0,
                )
                break
            # submit() raises BrokenProcessPool *synchronously* when a
            # worker dies between two submits of the same round (a
            # poison job grabbed off the queue can kill the pool before
            # the loop finishes) — the unsubmitted batches walk the
            # ladder as crashes like everything else.
            futures: dict[int, object] = {}
            dispatch_broken = False
            for index in pending:
                try:
                    futures[index] = self._executor.submit(
                        _run_batch, fn, batches[index]
                    )
                except BrokenProcessPool:
                    dispatch_broken = True
                    break
            not_done = self._wait_for(list(futures.values()))
            failed: list[int] = []
            pool_hurt = dispatch_broken
            for index in pending:
                if index not in futures:
                    failed.append(index)
                    self.stats.crashes += 1
                    self._count_fault("crash")
            for index, future in futures.items():
                if future in not_done:
                    failed.append(index)
                    self.stats.timeouts += 1
                    self._count_fault("timeout")
                    pool_hurt = True
                    continue
                try:
                    results[index] = future.result()
                except BrokenProcessPool:
                    failed.append(index)
                    self.stats.crashes += 1
                    self._count_fault("crash")
                    pool_hurt = True
                except Exception:
                    failed.append(index)
                    self.stats.transient_errors += 1
                    self._count_fault("error")
            if not failed:
                break
            if pool_hurt:
                # The executor (or a worker in it) is gone or hung —
                # replace it before re-dispatching anything.
                self._respawn()
            if attempt >= self.policy.max_retries:
                self._last_resort(fn, batches, results, failed, splitter, describe)
                break
            self.stats.retries += len(failed)
            self._event("pool.retry", batches=len(failed), attempt=attempt)
            self._inc("focal_retry_total", "re-dispatched work batches", len(failed))
            self.policy.sleep(self.policy.backoff_s(attempt))
            attempt += 1
            pending = failed
        return [item for batch in results for item in batch]  # type: ignore[union-attr]

    def shutdown(self, *, cancel_futures: bool = True) -> None:
        """Tear the pool down, reaping every worker process.

        Queued work is cancelled (``cancel_futures``) and worker
        processes are terminated and joined, so an aborted sweep —
        ``KeyboardInterrupt`` included — leaves no orphans behind.
        """
        self._kill_executor(cancel_futures=cancel_futures)
        if self._monitor is not None:
            self._monitor.cleanup()

    # Context-manager sugar so call sites mirror ProcessPoolExecutor.
    def __enter__(self) -> "SupervisedPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.shutdown()
        return False

    # ------------------------------------------------------------------
    # Waiting: chunk timeout + heartbeat watchdog
    # ------------------------------------------------------------------
    def _wait_for(self, futures: list) -> set:
        """The futures still pending when the pool must be declared hurt.

        Without a watchdog this is one blocking :func:`wait` bounded by
        ``chunk_timeout_s``. With ``heartbeat_timeout_s`` set, the wait
        polls and reaps as soon as every worker heartbeat is stale —
        a slow-but-alive pool (fresh beats) keeps running right up to
        ``chunk_timeout_s``, a hung one is replaced after one heartbeat
        deadline.
        """
        heartbeat = self.policy.heartbeat_timeout_s
        if heartbeat is None or self._monitor is None:
            _, not_done = wait(futures, timeout=self.policy.chunk_timeout_s)
            return not_done
        deadline = (
            time.monotonic() + self.policy.chunk_timeout_s
            if self.policy.chunk_timeout_s is not None
            else None
        )
        poll = max(0.01, min(heartbeat / 4.0, 0.25))
        while True:
            _, not_done = wait(futures, timeout=poll)
            if not not_done:
                return not_done
            if self._monitor.stale(heartbeat):
                self.stats.watchdog_reaps += 1
                self._event("pool.reap", reason="stale-heartbeat")
                self._inc(
                    "focal_watchdog_reaps_total",
                    "worker pools reaped on stale heartbeats",
                )
                return not_done
            if deadline is not None and time.monotonic() >= deadline:
                return not_done

    # ------------------------------------------------------------------
    # Recovery ladder internals
    # ------------------------------------------------------------------
    def _split(self, jobs: list) -> list[list]:
        """Up to ``workers`` contiguous, nearly equal batches."""
        count = min(self.workers, len(jobs))
        size, extra = divmod(len(jobs), count)
        batches: list[list] = []
        start = 0
        for index in range(count):
            stop = start + size + (1 if index < extra else 0)
            batches.append(jobs[start:stop])
            start = stop
        return batches

    def _ensure_executor(self) -> Executor | None:
        """The live executor, spawning lazily; ``None`` degrades."""
        if self._executor is None:
            # initializer/initargs are forwarded only when set, so
            # test-injected executor factories with a bare
            # ``max_workers`` signature keep working.
            kwargs: dict = {"max_workers": self.workers}
            if self._monitor is not None:
                kwargs["initializer"] = _init_with_heartbeat
                kwargs["initargs"] = (
                    self._monitor.arm(),
                    self._initializer,
                    self._initargs,
                )
            elif self._initializer is not None:
                kwargs["initializer"] = self._initializer
                kwargs["initargs"] = self._initargs
            try:
                self._executor = self._executor_factory(**kwargs)
            except Exception:
                self._declare_degraded()
        return self._executor

    def _respawn(self) -> None:
        """Replace a broken/hung executor, within the respawn budget."""
        self._kill_executor(cancel_futures=True)
        if self._monitor is not None:
            self._monitor.clear()
        self.stats.respawns += 1
        self._event("pool.respawn", respawns=self.stats.respawns)
        self._inc("focal_pool_respawn_total", "worker pool respawns")
        if (
            self.stats.respawns - self._respawns_forgiven
            > self.policy.max_respawns
        ):
            self._declare_degraded()

    def _declare_degraded(self) -> None:
        self._degraded = True
        self.stats.pool_degraded = True
        self._kill_executor(cancel_futures=True)
        self._event("pool.degraded")
        self._inc(
            "focal_degraded_pool_total", "worker pools declared irrecoverable"
        )

    def _last_resort(
        self,
        fn: Callable,
        batches: list[list],
        results: list[list | None],
        indices: Sequence[int],
        splitter: Callable | None,
        describe: Callable | None,
        *,
        known_failing: bool = True,
    ) -> None:
        """Retry budget gone: quarantine-bisect, degrade, salvage or raise.

        Quarantine outranks degradation: bisection runs even on a pool
        already declared degraded — a poison point's own crashes are
        often what burned the respawn budget, and degrading would replay
        the killer in this process. An unspawnable executor makes every
        probe abort, falling through to degrade/salvage as before.
        """
        indices = list(indices)
        if self._quarantine is not None and describe is not None:
            remaining: list[int] = []
            for index in indices:
                replies = self._bisect_group(
                    fn,
                    batches[index],
                    splitter,
                    describe,
                    probe_first=not known_failing,
                )
                if replies is _ABORT:
                    remaining.append(index)
                else:
                    results[index] = replies
            indices = remaining
            if not indices:
                # Every failing batch is explained by quarantined
                # points, so the respawns their crashes burned no
                # longer indict the pool — refund the budget and
                # retract any degradation verdict those crashes caused.
                self._respawns_forgiven = self.stats.respawns
                if self._degraded:
                    self._degraded = False
                    self.stats.pool_degraded = False
                return
        if self.policy.degrade_in_process:
            self._run_in_process(fn, batches, results, indices)
            return
        if self.policy.salvage:
            self._salvage(batches, results, indices)
            return
        raise WorkerPoolError(
            f"worker pool failed {len(indices)} batch(es) after "
            f"{self.policy.max_retries} retries and in-process "
            "degradation is disabled by policy"
        )

    # -- poison-point bisection ----------------------------------------
    def _bisect_group(
        self,
        fn: Callable,
        jobs: list,
        splitter: Callable | None,
        describe: Callable,
        *,
        probe_first: bool = True,
    ) -> list | object:
        """Per-job replies for a failing job group, or :data:`_ABORT`.

        Classic halving: a group that probes clean returns its results
        wholesale; a failing group of more than one job splits in two;
        a failing single job is either split further via *splitter*
        (columnar shards down to single rows, wrapped in a
        :class:`BisectOutcome`) or quarantined as the isolated poison
        point. Probe crashes replace the executor without consuming
        the respawn budget — bisection deliberately crashes workers.
        """
        if probe_first:
            status, payload = self._probe(fn, jobs)
            if status == "ok":
                return payload
            if status == "abort":
                return _ABORT
            kind = payload
        else:
            kind = "crash"
        if len(jobs) > 1:
            mid = len(jobs) // 2
            left = self._bisect_group(fn, jobs[:mid], splitter, describe)
            if left is _ABORT:
                return _ABORT
            right = self._bisect_group(fn, jobs[mid:], splitter, describe)
            if right is _ABORT:
                return _ABORT
            return left + right
        job = jobs[0]
        subjobs = splitter(job) if splitter is not None else None
        if subjobs:
            inner = self._bisect_group(fn, list(subjobs), splitter, describe)
            if inner is _ABORT:
                return _ABORT
            return [BisectOutcome(tuple(self._flatten_replies(inner)))]
        if self.stats.quarantined >= self.policy.max_quarantine:
            self._event("pool.quarantine_budget", budget=self.policy.max_quarantine)
            return _ABORT
        params = describe(job)
        if params is None:
            return _ABORT
        marker = self._quarantine.quarantine(
            params,
            kind=kind,
            reason=f"isolated by bisection after retry budget ({kind})",
        )
        self.stats.quarantined += 1
        self._event("pool.quarantine", kind=kind)
        return [marker]

    @staticmethod
    def _flatten_replies(replies: list) -> list:
        """Inline nested :class:`BisectOutcome` layers, drop quarantine
        markers (the quarantined rows are already in the ledger; the
        engine re-derives their identity from the session)."""
        flat: list = []
        for reply in replies:
            if isinstance(reply, BisectOutcome):
                flat.extend(SupervisedPool._flatten_replies(list(reply.replies)))
            elif not isinstance(reply, Exception):
                flat.append(reply)
        return flat

    def _probe(self, fn: Callable, jobs: list) -> tuple[str, object]:
        """One bisection probe: ``("ok", results)``, ``("fail", kind)``
        or ``("abort", None)`` when no executor can be spawned."""
        executor = self._ensure_executor()
        if executor is None:
            return "abort", None
        self.stats.bisect_probes += 1
        future = executor.submit(_run_batch, fn, jobs)
        timeout = self.policy.chunk_timeout_s
        if timeout is None and self.policy.heartbeat_timeout_s is not None:
            timeout = self.policy.heartbeat_timeout_s * 4.0
        try:
            return "ok", future.result(timeout=timeout)
        except BrokenProcessPool:
            self.stats.crashes += 1
            self._count_fault("crash")
            self._respawn_for_bisect()
            return "fail", "crash"
        except FuturesTimeoutError:
            self.stats.timeouts += 1
            self._count_fault("timeout")
            self._respawn_for_bisect()
            return "fail", "hang"
        except Exception:
            self.stats.transient_errors += 1
            self._count_fault("error")
            return "fail", "error"

    def _respawn_for_bisect(self) -> None:
        """Replace the executor after a probe crash/hang.

        Deliberately outside the respawn budget: bisection *expects* to
        crash workers while narrowing in on the poison point, and must
        not burn the budget that guards against genuinely flaky pools.
        """
        self._kill_executor(cancel_futures=True)
        if self._monitor is not None:
            self._monitor.clear()

    # -- degrade / salvage ---------------------------------------------
    def _run_in_process(
        self,
        fn: Callable,
        batches: list[list],
        results: list[list | None],
        indices: Sequence[int],
    ) -> None:
        """The degradation rung: evaluate *indices* in this process."""
        for index in indices:
            results[index] = [fn(job) for job in batches[index]]
            self.stats.degraded_batches += 1
            self._inc(
                "focal_degraded_batches_total",
                "work batches evaluated in-process after pool failure",
            )

    def _salvage(
        self,
        batches: list[list],
        results: list[list | None],
        indices: Sequence[int],
    ) -> None:
        """Fill never-completed slots with :data:`INCOMPLETE` sentinels."""
        for index in indices:
            results[index] = [INCOMPLETE] * len(batches[index])
            self.stats.salvaged += 1
        self._event("pool.salvage", batches=len(indices))
        self._inc(
            "focal_salvage_runs_total",
            "irrecoverable runs salvaged as partial results",
        )

    def _kill_executor(self, *, cancel_futures: bool) -> None:
        """Shut the executor down without waiting on hung workers.

        ``shutdown(wait=True)`` would block forever behind a hung
        worker, so the order is: non-blocking shutdown, terminate the
        worker processes, then a bounded join to reap them.
        """
        executor = self._executor
        self._executor = None
        if executor is None:
            return
        # Snapshot the worker processes FIRST: shutdown(wait=False)
        # empties the executor's _processes dict, so a later snapshot
        # would silently skip the terminate loop and orphan hung workers.
        registry = getattr(executor, "_processes", None)
        processes = list(registry.values()) if registry else []
        try:
            executor.shutdown(wait=False, cancel_futures=cancel_futures)
        except Exception:  # pragma: no cover - shutdown is best-effort
            pass
        for process in processes:
            try:
                process.terminate()
            except Exception:  # pragma: no cover - already dead
                pass
        for process in processes:
            try:
                process.join(timeout=5.0)
            except Exception:  # pragma: no cover
                pass

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def _count_fault(self, reason: str) -> None:
        self._event("pool.fault", reason=reason)
        self._inc(
            "focal_retry_faults_total",
            "dispatch faults seen by the supervisor",
            labels={"reason": reason},
        )

    @staticmethod
    def _event(name: str, **attrs: object) -> None:
        """A recovery action on the sweep timeline's supervisor track."""
        _events.record(name, track="supervisor", **attrs)

    def _inc(
        self,
        name: str,
        help: str,
        amount: int = 1,
        labels: dict[str, str] | None = None,
    ) -> None:
        registry = _metrics.get_registry()
        if registry.enabled:
            registry.counter(name, help, labels or {}).inc(amount)
