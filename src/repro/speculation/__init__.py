"""Speculation mechanisms: branch prediction and runahead execution
(paper §5.7, Figure 8, Findings #12–#13)."""

from .branch_prediction import (
    PARIKH_HYBRID,
    BranchPredictorEffect,
    max_sustainable_area,
    ncf_vs_area,
    predictor_design,
)
from .runahead import (
    PRE,
    RunaheadEffect,
    classify_runahead,
    runahead_design,
    runahead_ncf,
)

__all__ = [
    "BranchPredictorEffect",
    "PARIKH_HYBRID",
    "predictor_design",
    "ncf_vs_area",
    "max_sustainable_area",
    "RunaheadEffect",
    "PRE",
    "runahead_design",
    "runahead_ncf",
    "classify_runahead",
]
