"""Branch-prediction sustainability model (paper §5.7, Figure 8).

Parikh et al. (HPCA 2002) report that their largest hybrid branch
predictor reduces total CPU *energy* by 7 % and improves performance by
14 % versus a small bimodal predictor — which implies CPU *power* rises
by 6.6 % (0.93 x 1.14 ≈ 1.066). The predictor's chip area was not
reported; the paper therefore sweeps it from 0 % to 8 % of the core
(modern TAGE-SC-L predictors land around 4.4 %), which is Figure 8's
x-axis.

Finding #12 falls out of the affine structure: under fixed-work +
operational-dominated the footprint drops for any realistic size; under
embodied-dominated + fixed-work the predictor must stay below ~2 % of
core area; under fixed-time it never pays off (power went up).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.design import DesignPoint
from ..core.ncf import ncf
from ..core.quantities import ensure_fraction, ensure_non_negative, ensure_positive
from ..core.scenario import UseScenario

__all__ = [
    "BranchPredictorEffect",
    "PARIKH_HYBRID",
    "predictor_design",
    "ncf_vs_area",
    "max_sustainable_area",
]


@dataclass(frozen=True, slots=True)
class BranchPredictorEffect:
    """Workload-level effect of a branch predictor versus a baseline
    predictor: performance and energy multipliers (power is implied)."""

    perf_factor: float
    energy_factor: float
    name: str = "branch predictor"

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "perf_factor", ensure_positive(self.perf_factor, "perf_factor")
        )
        object.__setattr__(
            self, "energy_factor", ensure_positive(self.energy_factor, "energy_factor")
        )

    @property
    def power_factor(self) -> float:
        """Power = energy x performance."""
        return self.energy_factor * self.perf_factor


#: Parikh et al.: the largest hybrid predictor vs a small bimodal one.
PARIKH_HYBRID = BranchPredictorEffect(
    perf_factor=1.14, energy_factor=0.93, name="hybrid (Parikh et al.)"
)


def predictor_design(
    area_share: float,
    effect: BranchPredictorEffect = PARIKH_HYBRID,
) -> DesignPoint:
    """Core-with-predictor design point versus the bimodal baseline.

    ``area_share`` is the predictor's share of *core* chip area
    (Figure 8's x-axis, 0–0.08).
    """
    area_share = ensure_non_negative(area_share, "area_share")
    return DesignPoint(
        name=f"{effect.name} @ {area_share:.1%} area",
        area=1.0 + area_share,
        perf=effect.perf_factor,
        power=effect.power_factor,
    )


def ncf_vs_area(
    area_share: float,
    scenario: UseScenario,
    alpha: float,
    effect: BranchPredictorEffect = PARIKH_HYBRID,
) -> float:
    """One point of Figure 8: NCF at the given predictor area share."""
    return ncf(
        predictor_design(area_share, effect),
        DesignPoint.baseline("bimodal"),
        scenario,
        alpha,
    )


def max_sustainable_area(
    scenario: UseScenario,
    alpha: float,
    effect: BranchPredictorEffect = PARIKH_HYBRID,
) -> float | None:
    """Largest predictor area share with NCF <= 1, or None if none.

    Solves ``alpha (1 + x) + (1 - alpha) op = 1`` for ``x``; the NCF is
    affine and increasing in the area share, so the boundary is exact:
    ``x* = (1 - op) (1 - alpha) / alpha`` (infinite for alpha = 0 when
    the operational proxy improves).
    """
    ensure_fraction(alpha, "alpha")
    operational = (
        effect.energy_factor
        if scenario is UseScenario.FIXED_WORK
        else effect.power_factor
    )
    if alpha == 0.0:
        return float("inf") if operational <= 1.0 else None
    boundary = (1.0 - operational) * (1.0 - alpha) / alpha
    if boundary < 0.0:
        return None
    return boundary
