"""Runahead execution (paper §5.7, Finding #13).

Precise Runahead Execution (PRE, Naithani et al., HPCA 2020) improves
performance by 38.2 % over an out-of-order baseline while *reducing*
energy by 6.8 %; power consequently rises by ~29 % (0.932 x 1.382 =
1.288 — the paper rounds to 29.8 %). The hardware overhead is 1.24 KB,
which the paper treats as a 0.5 % area increase.

Runahead is the paper's archetype of a *weakly sustainable* speculation
mechanism: energy down (fixed-work NCF < 1) but power up (fixed-time
NCF > 1), with negligible area in the balance.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.classify import Sustainability, classify
from ..core.design import DesignPoint
from ..core.ncf import ncf
from ..core.quantities import ensure_non_negative, ensure_positive
from ..core.scenario import UseScenario

__all__ = ["RunaheadEffect", "PRE", "runahead_design", "runahead_ncf", "classify_runahead"]


@dataclass(frozen=True, slots=True)
class RunaheadEffect:
    """Effect of a runahead technique versus its baseline OoO core."""

    perf_factor: float
    energy_factor: float
    area_overhead: float
    name: str = "runahead"

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "perf_factor", ensure_positive(self.perf_factor, "perf_factor")
        )
        object.__setattr__(
            self, "energy_factor", ensure_positive(self.energy_factor, "energy_factor")
        )
        object.__setattr__(
            self, "area_overhead", ensure_non_negative(self.area_overhead, "area_overhead")
        )

    @property
    def power_factor(self) -> float:
        return self.energy_factor * self.perf_factor


#: Precise Runahead Execution: +38.2 % perf, -6.8 % energy, +0.5 % area.
PRE = RunaheadEffect(
    perf_factor=1.382,
    energy_factor=0.932,
    area_overhead=0.005,
    name="PRE (Naithani et al.)",
)


def runahead_design(effect: RunaheadEffect = PRE) -> DesignPoint:
    """The runahead-enabled core versus the baseline OoO core (= 1)."""
    return DesignPoint(
        name=effect.name,
        area=1.0 + effect.area_overhead,
        perf=effect.perf_factor,
        power=effect.power_factor,
    )


def runahead_ncf(
    scenario: UseScenario, alpha: float, effect: RunaheadEffect = PRE
) -> float:
    """NCF of the runahead core versus its baseline."""
    return ncf(runahead_design(effect), DesignPoint.baseline("OoO"), scenario, alpha)


def classify_runahead(alpha: float, effect: RunaheadEffect = PRE) -> Sustainability:
    """Sustainability category at the given alpha (weak for PRE)."""
    return classify(
        runahead_design(effect), DesignPoint.baseline("OoO"), alpha
    ).category
