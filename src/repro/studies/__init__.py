"""Per-figure study drivers, the Findings verification table, and the
§7 case study."""

from .case_study import CaseStudyConfig, CaseStudyPoint, case_study, figure9
from .common import FOUR_PANELS, TWO_WEIGHT_PANELS, PanelSpec
from .figure1 import figure1
from .figure2 import figure2
from .figure3 import PAPER_BCE_LADDER, PAPER_PARALLEL_FRACTIONS, figure3
from .figure4 import figure4
from .figure5 import figure5
from .figure6 import figure6
from .figure7 import figure7
from .figure8 import figure8
from .findings import FindingCheck, all_findings, failed_findings
from .mechanisms import (
    PAPER_CATEGORIES,
    MechanismEntry,
    catalogue_pairs,
    mechanism_catalogue,
)
from .registry import STUDIES, run_study, study_names

__all__ = [
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "case_study",
    "CaseStudyConfig",
    "CaseStudyPoint",
    "FindingCheck",
    "all_findings",
    "failed_findings",
    "MechanismEntry",
    "PAPER_CATEGORIES",
    "mechanism_catalogue",
    "catalogue_pairs",
    "STUDIES",
    "run_study",
    "study_names",
    "PanelSpec",
    "FOUR_PANELS",
    "TWO_WEIGHT_PANELS",
    "PAPER_BCE_LADDER",
    "PAPER_PARALLEL_FRACTIONS",
]
