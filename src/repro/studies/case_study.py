"""Figure 9 / §7: the sustainable-multicore-design case study.

A quad-core (4 BCE) processor moves to the next technology node. The
design options integrate 4-8 cores of the unchanged microarchitecture
under an *iso-power* constraint: total average power in the new node
equals the old node's. Assumptions (paper §7):

* modestly parallel workload, f = 0.75; idle-core leakage gamma = 0.2;
* post-Dennard device scaling: at the nominal new-node frequency
  (1.41x the old node's) a shrunk core consumes the old core's power;
* the iso-power cap is enforced through cubic voltage/frequency
  scaling, so the achievable frequency multiplier falls from 1.41x at
  4 cores to ~1.24x at 8 cores;
* embodied footprint per chip scales with chip area times the Imec
  +25.2 % per-node wafer-footprint growth: 0.625 for the 4-core die
  shrink, 1.25 for the constant-area 8-core option.

Under fixed-time the operational footprint is unchanged (power is
capped at the old budget); under fixed-work it improves with achieved
performance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from ..amdahl.symmetric import DEFAULT_LEAKAGE, SymmetricMulticore
from ..core.classify import Sustainability, classify_values
from ..core.ncf import ncf_from_ratios
from ..core.quantities import ensure_fraction, ensure_int_at_least
from ..core.scenario import UseScenario
from ..dvfs.power_cap import capped_frequency_multiplier
from ..report.series import FigureResult, Panel, Point, Series
from ..technode.imec import IMEC_IEDM2020, ImecGrowthRates
from ..technode.scaling import POST_DENNARD_SCALING
from .common import TWO_WEIGHT_PANELS

__all__ = ["CaseStudyConfig", "CaseStudyPoint", "case_study", "figure9"]


@dataclass(frozen=True, slots=True)
class CaseStudyConfig:
    """Inputs of the §7 case study (defaults = the paper's values)."""

    old_cores: int = 4
    core_options: tuple[int, ...] = (4, 5, 6, 7, 8)
    parallel_fraction: float = 0.75
    leakage: float = DEFAULT_LEAKAGE
    nominal_frequency_gain: float = POST_DENNARD_SCALING.frequency_factor
    rates: ImecGrowthRates = IMEC_IEDM2020

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "old_cores", ensure_int_at_least(self.old_cores, 1, "old_cores")
        )
        object.__setattr__(
            self,
            "parallel_fraction",
            ensure_fraction(self.parallel_fraction, "parallel_fraction"),
        )
        object.__setattr__(self, "leakage", ensure_fraction(self.leakage, "leakage"))
        for n in self.core_options:
            ensure_int_at_least(n, 1, "core option")


@dataclass(frozen=True, slots=True)
class CaseStudyPoint:
    """One core-count option in the new node, relative to the old-node
    quad-core: all ratios are new / old."""

    cores: int
    frequency_multiplier: float
    perf: float
    embodied: float
    power: float

    @property
    def energy(self) -> float:
        return self.power / self.perf

    def ncf(self, scenario: UseScenario, alpha: float) -> float:
        operational = self.energy if scenario is UseScenario.FIXED_WORK else self.power
        return ncf_from_ratios(self.embodied, operational, alpha)

    def category(self, alpha: float) -> Sustainability:
        return classify_values(
            self.ncf(UseScenario.FIXED_WORK, alpha),
            self.ncf(UseScenario.FIXED_TIME, alpha),
        )


def case_study(config: CaseStudyConfig = CaseStudyConfig()) -> list[CaseStudyPoint]:
    """Evaluate every core-count option of the §7 case study."""
    old = SymmetricMulticore(
        cores=config.old_cores,
        parallel_fraction=config.parallel_fraction,
        leakage=config.leakage,
    )
    power_budget = old.power  # iso-power: the old chip's average power
    points = []
    for cores in config.core_options:
        new = SymmetricMulticore(
            cores=cores,
            parallel_fraction=config.parallel_fraction,
            leakage=config.leakage,
        )
        # Average power at the nominal new-node frequency (1.41x): each
        # shrunk core consumes the old per-core power (post-Dennard), so
        # the Woo-Lee shape applies unchanged; the cap then sets the
        # cubic frequency back-off.
        phi = capped_frequency_multiplier(
            power_at_nominal=new.power,
            power_budget=power_budget,
            nominal_multiplier=config.nominal_frequency_gain,
        )
        perf_ratio = (phi / 1.0) * new.speedup / old.speedup
        area_ratio = cores / config.old_cores
        embodied = (
            area_ratio
            * POST_DENNARD_SCALING.area_factor
            * config.rates.wafer_footprint_multiplier(1)
        )
        points.append(
            CaseStudyPoint(
                cores=cores,
                frequency_multiplier=phi,
                perf=perf_ratio,
                embodied=embodied,
                power=1.0,  # iso-power by construction
            )
        )
    return points


def figure9(config: CaseStudyConfig = CaseStudyConfig()) -> FigureResult:
    """Reproduce Figure 9 (both panels) from the case study."""
    points = case_study(config)
    panels = []
    for _, title, weight in TWO_WEIGHT_PANELS:
        series = []
        for scenario in (UseScenario.FIXED_WORK, UseScenario.FIXED_TIME):
            series.append(
                Series(
                    name=scenario.value,
                    points=tuple(
                        Point(
                            x=p.perf,
                            y=p.ncf(scenario, weight.alpha),
                            label=f"{p.cores} cores",
                        )
                        for p in points
                    ),
                )
            )
        panels.append(
            Panel(
                name=title,
                x_label="normalized performance",
                y_label="normalized carbon footprint",
                series=tuple(series),
            )
        )
    freq_low = min(p.frequency_multiplier for p in points)
    freq_high = max(p.frequency_multiplier for p in points)
    return FigureResult(
        figure_id="figure9",
        caption=(
            "Next-node multicore options (4-8 cores) vs the old-node "
            "quad-core under an iso-power cap; f = "
            f"{config.parallel_fraction:g}, gamma = {config.leakage:g}. "
            "4-6 cores are strongly sustainable; 7-8 cores are weakly (or "
            "not) sustainable."
        ),
        panels=tuple(panels),
        notes=(
            f"Achievable frequency multipliers span {freq_low:.3f}x to "
            f"{freq_high:.3f}x (paper: 1.24x to 1.41x).",
            f"sanity: sqrt(2) nominal gain = {math.sqrt(2):.3f}",
        ),
    )
