"""Shared scaffolding for the figure studies.

The paper's §5 figures share a four-panel layout: {embodied-dominated,
operational-dominated} x {fixed-work, fixed-time}. This module holds
the panel specs and small helpers the individual figure drivers use.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.scenario import (
    EMBODIED_DOMINATED,
    OPERATIONAL_DOMINATED,
    E2OWeight,
    UseScenario,
)

__all__ = ["PanelSpec", "FOUR_PANELS", "TWO_WEIGHT_PANELS"]


@dataclass(frozen=True, slots=True)
class PanelSpec:
    """One panel's scenario and weight regime."""

    key: str
    title: str
    scenario: UseScenario
    weight: E2OWeight

    @property
    def alpha(self) -> float:
        return self.weight.alpha


#: The standard four-panel layout of Figures 3, 4 and 7.
FOUR_PANELS: tuple[PanelSpec, ...] = (
    PanelSpec(
        key="a",
        title="(a) embodied dominated, fixed-work",
        scenario=UseScenario.FIXED_WORK,
        weight=EMBODIED_DOMINATED,
    ),
    PanelSpec(
        key="b",
        title="(b) embodied dominated, fixed-time",
        scenario=UseScenario.FIXED_TIME,
        weight=EMBODIED_DOMINATED,
    ),
    PanelSpec(
        key="c",
        title="(c) operational dominated, fixed-work",
        scenario=UseScenario.FIXED_WORK,
        weight=OPERATIONAL_DOMINATED,
    ),
    PanelSpec(
        key="d",
        title="(d) operational dominated, fixed-time",
        scenario=UseScenario.FIXED_TIME,
        weight=OPERATIONAL_DOMINATED,
    ),
)

#: The two-panel layout of Figures 6, 8 and 9: one panel per weight
#: regime, each carrying both scenarios as series.
TWO_WEIGHT_PANELS: tuple[tuple[str, str, E2OWeight], ...] = (
    ("a", "(a) embodied dominated", EMBODIED_DOMINATED),
    ("b", "(b) operational dominated", OPERATIONAL_DOMINATED),
)
