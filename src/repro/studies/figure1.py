"""Figure 1: embodied footprint per chip versus die size.

300 mm wafer, die sizes from 100 mm^2 up to 800 mm^2 (near the reticle
limit), normalized to 100 mm^2; perfect yield versus the Murphy model
at 0.09 defects/cm^2.
"""

from __future__ import annotations

from ..report.series import FigureResult, Panel, Point, Series
from ..wafer.embodied import FIGURE1_REFERENCE_AREA_MM2, EmbodiedFootprintModel
from ..wafer.yield_models import (
    TSMC_VOLUME_DEFECT_DENSITY,
    MurphyYield,
    PerfectYield,
)

__all__ = ["figure1", "PAPER_DIE_SIZES_MM2"]

#: The paper's x-axis: 100 to 800 mm^2.
PAPER_DIE_SIZES_MM2: tuple[float, ...] = tuple(range(100, 801, 25))


def figure1(
    die_sizes_mm2: tuple[float, ...] = PAPER_DIE_SIZES_MM2,
    defect_density_per_cm2: float = TSMC_VOLUME_DEFECT_DENSITY,
) -> FigureResult:
    """Reproduce Figure 1 (both yield curves, normalized to 100 mm^2)."""
    perfect = EmbodiedFootprintModel(yield_model=PerfectYield())
    murphy = EmbodiedFootprintModel(
        yield_model=MurphyYield(defect_density_per_cm2=defect_density_per_cm2)
    )

    def series_for(model: EmbodiedFootprintModel, name: str) -> Series:
        # model.sweep runs columnar (repro.wafer.batch), bit-exact with
        # per-point normalized_footprint calls.
        points = [
            Point(x=area, y=value, label=f"{area:g}mm2")
            for area, value in model.sweep(
                die_sizes_mm2, FIGURE1_REFERENCE_AREA_MM2
            )
        ]
        return Series(name=name, points=tuple(points))

    panel = Panel(
        name="embodied footprint per chip vs die size",
        x_label="die size (mm2)",
        y_label="normalized embodied footprint per chip",
        series=(
            series_for(perfect, "perfect yield"),
            series_for(murphy, "Murphy model"),
        ),
    )
    return FigureResult(
        figure_id="figure1",
        caption=(
            "Embodied footprint per chip as a function of die size for a "
            "300 mm wafer, perfect yield vs the Murphy model "
            f"(D0 = {defect_density_per_cm2} /cm2), normalized to 100 mm2."
        ),
        panels=(panel,),
        notes=(
            "Perfect yield grows near-linearly with die size; Murphy grows "
            "super-linearly (second-degree-polynomial-like), matching the "
            "paper's trendline remark.",
        ),
    )
