"""Figure 2: the fixed-work versus fixed-time proxies, illustrated.

Figure 2 is conceptual — power-over-time profiles for two designs under
the two lifetime scenarios — but it is still a figure, so we reproduce
it as data: exact step profiles for a slow/frugal design X and a
fast/hungry design Y over a unit observation window.

* **fixed-work** (panel a): both designs perform one unit of work. X
  takes longer at lower power; Y finishes early and idles. The
  highlighted areas (energy = integral of power) are what the scenario
  compares.
* **fixed-time** (panel b): Y uses its freed-up time for extra work, so
  both designs are busy for the whole window; total energy is now
  proportional to *power*, the fixed-time proxy.

The series are step functions sampled at the phase boundaries, so the
areas computed from them are exact; :func:`profile_energy` integrates a
profile and the tests verify the proxy identities the caption states.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.design import DesignPoint
from ..core.quantities import ensure_non_negative
from ..report.series import FigureResult, Panel, Point, Series

__all__ = ["figure2", "profile_energy", "DEFAULT_X", "DEFAULT_Y", "IDLE_POWER"]

#: The illustration's two designs: X slow and frugal, Y fast and hungry.
DEFAULT_X = DesignPoint("design X", area=1.0, perf=1.0, power=1.0)
DEFAULT_Y = DesignPoint("design Y", area=1.0, perf=2.0, power=3.0)

#: Idle power while a design waits out the rest of the window.
IDLE_POWER = 0.1


def _step_profile(name: str, segments: list[tuple[float, float]]) -> Series:
    """A step function as a series: each segment is (duration, power).

    Points come in pairs per segment (start and end at the same power),
    so a line through them draws the rectangle outline exactly.
    """
    points: list[Point] = []
    t = 0.0
    for duration, power in segments:
        points.append(Point(x=t, y=power, label=""))
        t += duration
        points.append(Point(x=t, y=power, label=""))
    return Series(name=name, points=tuple(points))


def profile_energy(series: Series) -> float:
    """Integrate a step profile: sum of width x height per segment."""
    total = 0.0
    points = series.points
    for start, end in zip(points[::2], points[1::2]):
        width = ensure_non_negative(end.x - start.x, "segment width")
        total += width * start.y
    return total


def figure2(
    design_x: DesignPoint = DEFAULT_X,
    design_y: DesignPoint = DEFAULT_Y,
    idle_power: float = IDLE_POWER,
) -> FigureResult:
    """Reproduce Figure 2's two panels as exact step profiles.

    The observation window is the slower design's execution time for
    one unit of work (normalized to 1).
    """
    ensure_non_negative(idle_power, "idle_power")
    window = 1.0 / min(design_x.perf, design_y.perf)

    def busy_time(design: DesignPoint) -> float:
        return 1.0 / design.perf

    fixed_work = Panel(
        name="(a) fixed-work",
        x_label="time",
        y_label="power",
        series=(
            _step_profile(
                design_x.name,
                [(busy_time(design_x), design_x.power)]
                + (
                    [(window - busy_time(design_x), idle_power)]
                    if window > busy_time(design_x)
                    else []
                ),
            ),
            _step_profile(
                design_y.name,
                [(busy_time(design_y), design_y.power)]
                + (
                    [(window - busy_time(design_y), idle_power)]
                    if window > busy_time(design_y)
                    else []
                ),
            ),
        ),
    )
    fixed_time = Panel(
        name="(b) fixed-time",
        x_label="time",
        y_label="power",
        series=(
            _step_profile(design_x.name, [(window, design_x.power)]),
            _step_profile(
                f"{design_y.name} (+extra work)", [(window, design_y.power)]
            ),
        ),
    )
    return FigureResult(
        figure_id="figure2",
        caption=(
            "Operational footprint is proportional to energy under "
            "fixed-work (a) and to power under fixed-time (b): the "
            "highlighted areas are the step-profile integrals."
        ),
        panels=(fixed_work, fixed_time),
        notes=(
            "Conceptual figure reproduced as exact step profiles; "
            "profile_energy() integrates them and the tests verify the "
            "caption's proxy identities.",
        ),
    )
