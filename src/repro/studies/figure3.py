"""Figure 3: symmetric multicore versus single-core sustainability.

Four panels ({embodied, operational} x {fixed-work, fixed-time}); per
panel one curve per parallel fraction f in {0.5, 0.7, 0.8, 0.9, 0.95}
with points at N in {1, 2, 4, 8, 16, 32} BCEs, plus the Pollack
single-core curve over the same BCE ladder. Everything is normalized
to the one-BCE single-core processor; gamma = 0.2.
"""

from __future__ import annotations

from typing import Sequence

from ..amdahl.pollack import big_core_design
from ..amdahl.symmetric import DEFAULT_LEAKAGE, SymmetricMulticore
from ..core.design import DesignPoint
from ..core.ncf import ncf
from ..report.series import FigureResult, Panel, Point, Series
from .common import FOUR_PANELS, PanelSpec

__all__ = ["figure3", "PAPER_BCE_LADDER", "PAPER_PARALLEL_FRACTIONS"]

#: The paper's BCE counts: powers of two from 1 to 32.
PAPER_BCE_LADDER: tuple[int, ...] = (1, 2, 4, 8, 16, 32)

#: The paper's parallel fractions.
PAPER_PARALLEL_FRACTIONS: tuple[float, ...] = (0.5, 0.7, 0.8, 0.9, 0.95)


def _multicore_series(
    spec: PanelSpec,
    parallel_fraction: float,
    bces: Sequence[int],
    leakage: float,
    baseline: DesignPoint,
) -> Series:
    points = []
    for n in bces:
        design = SymmetricMulticore(
            cores=n, parallel_fraction=parallel_fraction, leakage=leakage
        ).design_point()
        points.append(
            Point(
                x=design.perf_ratio(baseline),
                y=ncf(design, baseline, spec.scenario, spec.alpha),
                label=f"{n} BCEs",
            )
        )
    return Series(name=f"f={parallel_fraction:g}", points=tuple(points))


def _single_core_series(
    spec: PanelSpec, bces: Sequence[int], baseline: DesignPoint
) -> Series:
    points = []
    for n in bces:
        design = big_core_design(n)
        points.append(
            Point(
                x=design.perf_ratio(baseline),
                y=ncf(design, baseline, spec.scenario, spec.alpha),
                label=f"{n} BCEs",
            )
        )
    return Series(name="single-core", points=tuple(points))


def figure3(
    bces: Sequence[int] = PAPER_BCE_LADDER,
    parallel_fractions: Sequence[float] = PAPER_PARALLEL_FRACTIONS,
    leakage: float = DEFAULT_LEAKAGE,
) -> FigureResult:
    """Reproduce Figure 3 (all four panels)."""
    baseline = DesignPoint.baseline("1-BCE single-core")
    panels = []
    for spec in FOUR_PANELS:
        series = [_single_core_series(spec, bces, baseline)]
        series.extend(
            _multicore_series(spec, f, bces, leakage, baseline)
            for f in parallel_fractions
        )
        panels.append(
            Panel(
                name=spec.title,
                x_label="normalized performance",
                y_label="normalized carbon footprint",
                series=tuple(series),
            )
        )
    return FigureResult(
        figure_id="figure3",
        caption=(
            "Symmetric multicore vs single-core, 1-32 BCEs, f in "
            f"{list(parallel_fractions)}, gamma = {leakage:g}; normalized to "
            "the one-BCE single core. Multicore is strongly sustainable."
        ),
        panels=tuple(panels),
    )
