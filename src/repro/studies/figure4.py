"""Figure 4: asymmetric versus symmetric multicore sustainability.

Asymmetric multicores pair one 4-BCE big core with N-4 small one-BCE
cores, compared against symmetric multicores of the same total area;
N in {8, 16, 32}, f in {0.5, 0.8, 0.95}, gamma = 0.2, normalized to
the one-BCE single core.
"""

from __future__ import annotations

from typing import Sequence

from ..amdahl.asymmetric import AsymmetricMulticore
from ..amdahl.symmetric import DEFAULT_LEAKAGE, SymmetricMulticore
from ..core.design import DesignPoint
from ..core.ncf import ncf
from ..report.series import FigureResult, Panel, Point, Series
from .common import FOUR_PANELS, PanelSpec

__all__ = ["figure4", "PAPER_ASYM_BCES", "PAPER_ASYM_FRACTIONS", "PAPER_BIG_CORE_BCES"]

#: The paper's configurations for Figure 4.
PAPER_ASYM_BCES: tuple[int, ...] = (8, 16, 32)
PAPER_ASYM_FRACTIONS: tuple[float, ...] = (0.5, 0.8, 0.95)
PAPER_BIG_CORE_BCES = 4


def _series(
    spec: PanelSpec,
    kind: str,
    parallel_fraction: float,
    bces: Sequence[int],
    big_core_bces: int,
    leakage: float,
    baseline: DesignPoint,
) -> Series:
    points = []
    for n in bces:
        if kind == "sym":
            design = SymmetricMulticore(
                cores=n, parallel_fraction=parallel_fraction, leakage=leakage
            ).design_point()
        else:
            design = AsymmetricMulticore(
                total_bces=n,
                big_core_bces=big_core_bces,
                parallel_fraction=parallel_fraction,
                leakage=leakage,
            ).design_point()
        points.append(
            Point(
                x=design.perf_ratio(baseline),
                y=ncf(design, baseline, spec.scenario, spec.alpha),
                label=f"{n} BCEs",
            )
        )
    return Series(name=f"{kind} {parallel_fraction:g}", points=tuple(points))


def figure4(
    bces: Sequence[int] = PAPER_ASYM_BCES,
    parallel_fractions: Sequence[float] = PAPER_ASYM_FRACTIONS,
    big_core_bces: int = PAPER_BIG_CORE_BCES,
    leakage: float = DEFAULT_LEAKAGE,
) -> FigureResult:
    """Reproduce Figure 4 (all four panels, sym + asym series)."""
    baseline = DesignPoint.baseline("1-BCE single-core")
    panels = []
    for spec in FOUR_PANELS:
        series = []
        for f in parallel_fractions:
            series.append(
                _series(spec, "sym", f, bces, big_core_bces, leakage, baseline)
            )
            series.append(
                _series(spec, "asym", f, bces, big_core_bces, leakage, baseline)
            )
        panels.append(
            Panel(
                name=spec.title,
                x_label="normalized performance",
                y_label="normalized carbon footprint",
                series=tuple(series),
            )
        )
    return FigureResult(
        figure_id="figure4",
        caption=(
            "Asymmetric multicores (one "
            f"{big_core_bces}-BCE big core plus N-{big_core_bces} one-BCE "
            "small cores) vs symmetric multicores of equal area; normalized "
            "to the one-BCE single core. Heterogeneity is weakly sustainable."
        ),
        panels=tuple(panels),
    )
