"""Figure 5: hardware acceleration and dark silicon.

Panel (a): the H.264 accelerator (+6.5 % area, 500x energy advantage);
panel (b): the dark-silicon SoC (+200 % area). Each panel plots NCF
versus the fraction of time on the accelerator for the embodied- and
operational-dominated regimes. Fixed-work and fixed-time coincide here
because the accelerator delivers the same performance as the host core.
"""

from __future__ import annotations

from typing import Sequence

from ..accel.accelerator import HAMEED_H264, AcceleratedSystem, Accelerator
from ..accel.dark_silicon import PAPER_DARK_SILICON
from ..core.scenario import EMBODIED_DOMINATED, OPERATIONAL_DOMINATED, UseScenario
from ..report.series import FigureResult, Panel, Point, Series

__all__ = ["figure5", "DEFAULT_UTILIZATIONS"]

#: The x-axis sweep: fraction of time on the accelerator.
DEFAULT_UTILIZATIONS: tuple[float, ...] = tuple(i / 20.0 for i in range(21))


def _panel(
    name: str,
    accelerator: Accelerator,
    utilizations: Sequence[float],
) -> Panel:
    series = []
    for weight in (EMBODIED_DOMINATED, OPERATIONAL_DOMINATED):
        points = [
            Point(
                x=t,
                y=AcceleratedSystem(accelerator, t).ncf(
                    weight.alpha, UseScenario.FIXED_WORK
                ),
                label=f"t={t:g}",
            )
            for t in utilizations
        ]
        series.append(Series(name=weight.name, points=tuple(points)))
    return Panel(
        name=name,
        x_label="fraction of time on accelerator",
        y_label="normalized carbon footprint",
        series=tuple(series),
    )


def figure5(utilizations: Sequence[float] = DEFAULT_UTILIZATIONS) -> FigureResult:
    """Reproduce Figure 5 (both panels)."""
    dark = PAPER_DARK_SILICON.as_accelerator()
    return FigureResult(
        figure_id="figure5",
        caption=(
            "Total footprint of hardware specialization normalized to the "
            "OoO core: (a) +6.5 % chip area, (b) +200 % chip area (dark "
            "silicon), both with a 500x energy advantage."
        ),
        panels=(
            _panel("(a) 6.5% extra chip area", HAMEED_H264, utilizations),
            _panel("(b) 200% extra chip area", dark, utilizations),
        ),
        notes=(
            "Fixed-work and fixed-time NCF coincide: the accelerator matches "
            "the host core's performance, so power and energy ratios are equal.",
        ),
    )
