"""Figure 6: last-level-cache sustainability.

NCF versus normalized performance for LLCs of 1-16 MB (powers of two),
one panel per alpha regime, fixed-work and fixed-time series per panel;
normalized to the 1 MB configuration.
"""

from __future__ import annotations

from typing import Sequence

from ..cache.hierarchy import CachedProcessor
from ..cache.llc_study import PAPER_LLC_SIZES_MB, llc_sweep
from ..report.series import FigureResult, Panel, Point, Series
from .common import TWO_WEIGHT_PANELS

__all__ = ["figure6"]


def figure6(
    sizes_mb: Sequence[float] = PAPER_LLC_SIZES_MB,
    template: CachedProcessor | None = None,
) -> FigureResult:
    """Reproduce Figure 6 (both panels)."""
    panels = []
    for _, title, weight in TWO_WEIGHT_PANELS:
        points = llc_sweep(weight.alpha, tuple(sizes_mb), template=template)
        fw = Series(
            name="fixed-work",
            points=tuple(
                Point(x=p.perf, y=p.ncf_fixed_work, label=f"{p.size_mb:g}MB")
                for p in points
            ),
        )
        ft = Series(
            name="fixed-time",
            points=tuple(
                Point(x=p.perf, y=p.ncf_fixed_time, label=f"{p.size_mb:g}MB")
                for p in points
            ),
        )
        panels.append(
            Panel(
                name=title,
                x_label="normalized performance",
                y_label="normalized carbon footprint",
                series=(fw, ft),
            )
        )
    return FigureResult(
        figure_id="figure6",
        caption=(
            "Sustainability impact of last-level caches: NCF as a function "
            "of cache size (1-16 MB), normalized to the 1 MB configuration. "
            "Caching is not sustainable, or marginally weakly sustainable "
            "when the operational footprint dominates."
        ),
        panels=tuple(panels),
        notes=(
            "CACTI 5.1 anchors: 20.7x area and 0.55->2.9 nJ access energy "
            "from 1 MB to 16 MB; sqrt miss-rate rule; workload 80 % "
            "memory-bound in time and energy at 1 MB.",
        ),
    )
