"""Figure 7: InO versus FSC versus OoO microarchitectures.

Four panels; each scatters the three cores in the NCF-versus-
performance plane, normalized to InO.
"""

from __future__ import annotations

from ..microarch.cores import INO_CORE
from ..microarch.study import core_chart
from ..report.series import FigureResult, Panel, Point, Series
from .common import FOUR_PANELS

__all__ = ["figure7"]


def figure7() -> FigureResult:
    """Reproduce Figure 7 (all four panels)."""
    panels = []
    for spec in FOUR_PANELS:
        chart = core_chart(spec.scenario, spec.alpha)
        series = Series(
            name="cores",
            points=tuple(
                Point(x=point.perf, y=point.ncf, label=point.name) for point in chart
            ),
        )
        panels.append(
            Panel(
                name=spec.title,
                x_label="normalized performance",
                y_label="normalized carbon footprint",
                series=(series,),
            )
        )
    return FigureResult(
        figure_id="figure7",
        caption=(
            "InO, FSC and OoO microarchitectures, normalized to InO "
            f"(baseline {INO_CORE.name}). OoO is less sustainable than InO; "
            "FSC is (close to) strongly sustainable vs InO and strongly "
            "sustainable vs OoO."
        ),
        panels=tuple(panels),
    )
