"""Figure 8: branch-prediction sustainability versus predictor area.

NCF as a function of the predictor's share of core chip area (0-8 %),
one panel per alpha regime with fixed-work and fixed-time series, using
Parikh et al.'s measured -7 % energy / +14 % performance effect.
"""

from __future__ import annotations

from typing import Sequence

from ..core.scenario import UseScenario
from ..report.series import FigureResult, Panel, Point, Series
from ..speculation.branch_prediction import PARIKH_HYBRID, BranchPredictorEffect, ncf_vs_area
from .common import TWO_WEIGHT_PANELS

__all__ = ["figure8", "DEFAULT_AREA_SHARES"]

#: The x-axis: predictor area share, 0 % to 8 %.
DEFAULT_AREA_SHARES: tuple[float, ...] = tuple(i / 200.0 for i in range(17))


def figure8(
    area_shares: Sequence[float] = DEFAULT_AREA_SHARES,
    effect: BranchPredictorEffect = PARIKH_HYBRID,
) -> FigureResult:
    """Reproduce Figure 8 (both panels)."""
    panels = []
    for _, title, weight in TWO_WEIGHT_PANELS:
        series = []
        for scenario in (UseScenario.FIXED_WORK, UseScenario.FIXED_TIME):
            points = tuple(
                Point(
                    x=share,
                    y=ncf_vs_area(share, scenario, weight.alpha, effect),
                    label=f"{share:.1%}",
                )
                for share in area_shares
            )
            series.append(Series(name=scenario.value, points=points))
        panels.append(
            Panel(
                name=title,
                x_label="branch predictor chip area",
                y_label="normalized carbon footprint",
                series=tuple(series),
            )
        )
    return FigureResult(
        figure_id="figure8",
        caption=(
            "Sustainability impact of branch prediction: NCF vs predictor "
            "area share (Parikh et al.: -7 % energy, +14 % performance vs a "
            "small bimodal predictor). Weakly sustainable when operational "
            "emissions dominate; not sustainable beyond ~2 % area when "
            "embodied emissions dominate."
        ),
        panels=tuple(panels),
    )
