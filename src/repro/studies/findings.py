"""Findings #1-#17: verification of every quantitative claim in §5-§7.

Each check records the paper's quoted value, the value this library
computes, and a tolerance. Tolerances reflect the paper's rounding
(most quotes carry two significant digits); a handful of checks carry
looser tolerances with a note where the paper's phrasing is
approximate (see EXPERIMENTS.md).

The module is consumed three ways: ``pytest`` asserts every check
passes, ``benchmarks/bench_findings.py`` prints the full table, and
the CLI renders it on demand (``focal findings``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..accel.accelerator import HAMEED_H264, AcceleratedSystem, breakeven_utilization
from ..accel.dark_silicon import PAPER_DARK_SILICON
from ..amdahl.asymmetric import AsymmetricMulticore
from ..amdahl.pollack import big_core_design
from ..amdahl.symmetric import SymmetricMulticore
from ..cache.llc_study import classify_llc
from ..core.classify import Sustainability, classify
from ..core.design import DesignPoint
from ..core.ncf import ncf, relative_footprint
from ..core.scenario import UseScenario
from ..dvfs.operating_point import classify_downscaling
from ..dvfs.turboboost import classify_turboboost
from ..gating.pipeline_gating import gating_ncf
from ..microarch.cores import FSC_CORE, INO_CORE, OOO_CORE
from ..speculation.branch_prediction import max_sustainable_area
from ..speculation.runahead import runahead_ncf
from ..technode.dieshrink import classify_die_shrink, die_shrink
from ..technode.scaling import CLASSICAL_SCALING, POST_DENNARD_SCALING
from .case_study import case_study

__all__ = ["FindingCheck", "all_findings", "failed_findings"]

FW = UseScenario.FIXED_WORK
FT = UseScenario.FIXED_TIME
BASELINE = DesignPoint.baseline("1-BCE single-core")


@dataclass(frozen=True, slots=True)
class FindingCheck:
    """One verifiable claim from the paper."""

    finding: str
    claim: str
    paper_value: float | str
    computed: float | str
    tolerance: float = 0.02
    note: str = ""

    @property
    def passed(self) -> bool:
        if isinstance(self.paper_value, str) or isinstance(self.computed, str):
            return str(self.paper_value) == str(self.computed)
        if self.paper_value == 0.0:
            return abs(self.computed) <= self.tolerance
        return abs(self.computed - self.paper_value) <= self.tolerance * abs(
            self.paper_value
        )

    def as_dict(self) -> dict[str, object]:
        return {
            "finding": self.finding,
            "claim": self.claim,
            "paper": self.paper_value,
            "computed": self.computed,
            "tolerance": self.tolerance,
            "passed": self.passed,
            "note": self.note,
        }


def _sym(n: int, f: float) -> DesignPoint:
    return SymmetricMulticore(cores=n, parallel_fraction=f).design_point()


def _asym(n: int, f: float) -> DesignPoint:
    return AsymmetricMulticore(
        total_bces=n, big_core_bces=4, parallel_fraction=f
    ).design_point()


def _finding_1() -> list[FindingCheck]:
    multicore = _sym(32, 0.95)
    single = big_core_design(32)
    reduction_emb = 1.0 - ncf(multicore, single, FT, 0.8)
    reduction_op = 1.0 - ncf(multicore, single, FT, 0.2)
    category = classify(multicore, single, 0.5).category
    return [
        FindingCheck(
            "F1",
            "32-BCE multicore vs equal-area single core, fixed-time, "
            "embodied-dominated: footprint reduction",
            0.10,
            round(reduction_emb, 4),
            tolerance=0.05,
        ),
        FindingCheck(
            "F1",
            "same, operational-dominated: footprint reduction",
            0.39,
            round(reduction_op, 4),
            tolerance=0.02,
        ),
        FindingCheck(
            "F1",
            "multicore vs equal-area single core is strongly sustainable",
            Sustainability.STRONG.value,
            category.value,
        ),
    ]


def _finding_2() -> list[FindingCheck]:
    high = _sym(32, 0.95)
    low = _sym(32, 0.5)
    fw_ratio = relative_footprint(high, low, BASELINE, FW, 0.2)
    ft_ratio = relative_footprint(high, low, BASELINE, FT, 0.2)
    return [
        FindingCheck(
            "F2",
            "parallelizing f: 0.5 -> 0.95 on 32 BCEs, fixed-work, "
            "operational-dominated: footprint reduction",
            0.23,
            round(1.0 - fw_ratio, 4),
            tolerance=0.02,
        ),
        FindingCheck(
            "F2",
            "same, fixed-time: footprint increase",
            0.53,
            round(ft_ratio - 1.0, 4),
            tolerance=0.02,
        ),
    ]


def _finding_3() -> list[FindingCheck]:
    small_parallel = _sym(16, 0.95)
    big_less_parallel = _sym(32, 0.9)
    perf_gain = small_parallel.perf / big_less_parallel.perf - 1.0
    reduction_ft_op = 1.0 - relative_footprint(
        small_parallel, big_less_parallel, BASELINE, FT, 0.2
    )
    reduction_fw_emb = 1.0 - relative_footprint(
        small_parallel, big_less_parallel, BASELINE, FW, 0.8
    )
    return [
        FindingCheck(
            "F3",
            "16 BCEs f=0.95 vs 32 BCEs f=0.9: performance gain",
            0.17,
            round(perf_gain, 4),
            tolerance=0.02,
        ),
        FindingCheck(
            "F3",
            "same: footprint reduction, fixed-time operational-dominated",
            0.30,
            round(reduction_ft_op, 4),
            tolerance=0.02,
        ),
        FindingCheck(
            "F3",
            "same: footprint reduction, fixed-work embodied-dominated",
            0.50,
            round(reduction_fw_emb, 4),
            tolerance=0.02,
        ),
    ]


def _finding_4() -> list[FindingCheck]:
    asym = _asym(32, 0.8)
    sym = _sym(32, 0.8)
    fw_reduction = 1.0 - relative_footprint(asym, sym, BASELINE, FW, 0.2)
    ft_increase = relative_footprint(asym, sym, BASELINE, FT, 0.2) - 1.0
    return [
        FindingCheck(
            "F4",
            "asym vs sym 32 BCEs f=0.8, fixed-work operational-dominated: "
            "footprint reduction",
            0.04,
            round(fw_reduction, 4),
            tolerance=0.15,
        ),
        FindingCheck(
            "F4",
            "same, fixed-time: footprint increase",
            0.22,
            round(ft_increase, 4),
            tolerance=0.02,
        ),
    ]


def _finding_5() -> list[FindingCheck]:
    asym16 = _asym(16, 0.8)
    sym32 = _sym(32, 0.8)
    perf_gain = asym16.perf / sym32.perf - 1.0
    red_ft_op = 1.0 - relative_footprint(asym16, sym32, BASELINE, FT, 0.2)
    red_fw_emb = 1.0 - relative_footprint(asym16, sym32, BASELINE, FW, 0.8)
    asym16_hp = _asym(16, 0.95)
    sym32_hp = _sym(32, 0.95)
    perf_loss = 1.0 - asym16_hp.perf / sym32_hp.perf
    red_hp_ft = 1.0 - relative_footprint(asym16_hp, sym32_hp, BASELINE, FT, 0.2)
    red_hp_fw = 1.0 - relative_footprint(asym16_hp, sym32_hp, BASELINE, FW, 0.8)
    return [
        FindingCheck(
            "F5",
            "asym 16 BCEs vs sym 32 BCEs, f=0.8: performance gain",
            0.35,
            round(perf_gain, 4),
            tolerance=0.02,
        ),
        FindingCheck(
            "F5",
            "same: footprint reduction (fixed-time, operational-dominated)",
            0.28,
            round(red_ft_op, 4),
            tolerance=0.03,
        ),
        FindingCheck(
            "F5",
            "same: footprint reduction (fixed-work, embodied-dominated)",
            0.50,
            round(red_fw_emb, 4),
            tolerance=0.02,
        ),
        FindingCheck(
            "F5",
            "f=0.95: asym 16 vs sym 32 performance degradation",
            0.235,
            round(perf_loss, 4),
            tolerance=0.02,
        ),
        FindingCheck(
            "F5",
            "f=0.95: footprint reduction (fixed-time, operational-dominated)",
            0.38,
            round(red_hp_ft, 4),
            tolerance=0.02,
        ),
        FindingCheck(
            "F5",
            "f=0.95: footprint reduction (fixed-work, embodied-dominated)",
            0.50,
            round(red_hp_fw, 4),
            tolerance=0.02,
        ),
    ]


def _finding_6() -> list[FindingCheck]:
    breakeven = breakeven_utilization(HAMEED_H264, 0.8, FW)
    at_half = AcceleratedSystem(HAMEED_H264, 0.5).ncf(0.2, FW)
    return [
        FindingCheck(
            "F6",
            "H.264 accelerator break-even utilization, embodied-dominated",
            0.30,
            round(breakeven if breakeven is not None else -1.0, 4),
            tolerance=0.15,
            note=(
                "paper says 'more than 30 %'; the model gives 26 % — within "
                "the paper's one-significant-digit phrasing"
            ),
        ),
        FindingCheck(
            "F6",
            "NCF at 50 % utilization, operational-dominated",
            0.614,
            round(at_half, 4),
            tolerance=0.02,
            note=(
                "paper's 'reduces by 60 %' is read as 'reduces to ~60 %'; "
                "the affine model yields 0.614 (see EXPERIMENTS.md)"
            ),
        ),
    ]


def _finding_7() -> list[FindingCheck]:
    soc = PAPER_DARK_SILICON
    at_zero = soc.ncf(0.0, 0.8)
    breakeven = soc.breakeven(0.2)
    return [
        FindingCheck(
            "F7",
            "dark silicon, embodied-dominated, unused estate: footprint "
            "multiplier",
            2.5,
            round(at_zero, 4),
            tolerance=0.05,
            note="exact model value 2.6; paper quotes ~2.5x",
        ),
        FindingCheck(
            "F7",
            "dark silicon break-even utilization, operational-dominated",
            0.50,
            round(breakeven if breakeven is not None else -1.0, 4),
            tolerance=0.02,
        ),
        FindingCheck(
            "F7",
            "break-even is infeasible within the dark-silicon power budget",
            "infeasible",
            "infeasible" if not soc.breakeven_feasible(0.2) else "feasible",
            note="break-even sits exactly at the 50 % concurrency limit",
        ),
    ]


def _finding_8() -> list[FindingCheck]:
    emb_16mb = classify_llc(16.0, 0.8)
    op_2mb = classify_llc(2.0, 0.2)
    return [
        FindingCheck(
            "F8",
            "16 MB LLC vs 1 MB, embodied-dominated",
            Sustainability.LESS.value,
            emb_16mb.value,
        ),
        FindingCheck(
            "F8",
            "2 MB LLC vs 1 MB, operational-dominated (marginally weak)",
            Sustainability.WEAK.value,
            op_2mb.value,
        ),
    ]


def _finding_9_10_11() -> list[FindingCheck]:
    checks = [
        FindingCheck(
            "F9",
            "OoO vs InO, embodied-dominated",
            Sustainability.LESS.value,
            classify(OOO_CORE, INO_CORE, 0.8).category.value,
        ),
        FindingCheck(
            "F9",
            "OoO vs InO, operational-dominated",
            Sustainability.LESS.value,
            classify(OOO_CORE, INO_CORE, 0.2).category.value,
        ),
    ]
    fsc_fw_08 = ncf(FSC_CORE, INO_CORE, FW, 0.8)
    fsc_ft_08 = ncf(FSC_CORE, INO_CORE, FT, 0.8)
    checks.append(
        FindingCheck(
            "F10",
            "FSC vs InO: fixed-work NCF below 1 (embodied-dominated)",
            "below 1",
            "below 1" if fsc_fw_08 < 1.0 else f"{fsc_fw_08:.3f}",
        )
    )
    checks.append(
        FindingCheck(
            "F10",
            "FSC vs InO: fixed-time NCF barely above 1",
            1.01,
            round(fsc_ft_08, 4),
            tolerance=0.005,
        )
    )
    red_emb_fw = 1.0 - relative_footprint(FSC_CORE, OOO_CORE, INO_CORE, FW, 0.8)
    red_op_ft = 1.0 - relative_footprint(FSC_CORE, OOO_CORE, INO_CORE, FT, 0.2)
    perf_loss = 1.0 - FSC_CORE.perf / OOO_CORE.perf
    checks.extend(
        [
            FindingCheck(
                "F11",
                "FSC vs OoO: smallest footprint reduction across scenarios",
                0.32,
                round(red_emb_fw, 4),
                tolerance=0.03,
            ),
            FindingCheck(
                "F11",
                "FSC vs OoO: largest footprint reduction across scenarios",
                0.53,
                round(red_op_ft, 4),
                tolerance=0.03,
            ),
            FindingCheck(
                "F11",
                "FSC vs OoO: performance degradation",
                0.063,
                round(perf_loss, 4),
                tolerance=0.02,
            ),
        ]
    )
    return checks


def _finding_12() -> list[FindingCheck]:
    emb_fw = max_sustainable_area(FW, 0.8)
    op_fw = max_sustainable_area(FW, 0.2)
    emb_ft = max_sustainable_area(FT, 0.8)
    return [
        FindingCheck(
            "F12",
            "max sustainable predictor area, fixed-work embodied-dominated",
            0.02,
            round(emb_fw if emb_fw is not None else -1.0, 4),
            tolerance=0.15,
            note="paper: 'more than 2 % of core chip area' flips the verdict; "
            "exact boundary 1.75 %",
        ),
        FindingCheck(
            "F12",
            "fixed-work operational-dominated: sustainable across the whole "
            "0-8 % sweep",
            "yes",
            "yes" if (op_fw is not None and op_fw > 0.08) else "no",
        ),
        FindingCheck(
            "F12",
            "fixed-time: never sustainable (power rises)",
            "never",
            "never" if emb_ft is None else f"{emb_ft:.3f}",
        ),
    ]


def _finding_13() -> list[FindingCheck]:
    return [
        FindingCheck(
            "F13",
            "PRE NCF fixed-work alpha=0.2",
            0.95,
            round(runahead_ncf(FW, 0.2), 4),
            tolerance=0.01,
        ),
        FindingCheck(
            "F13",
            "PRE NCF fixed-time alpha=0.2",
            1.23,
            round(runahead_ncf(FT, 0.2), 4),
            tolerance=0.01,
        ),
        FindingCheck(
            "F13",
            "PRE NCF fixed-work alpha=0.8",
            0.99,
            round(runahead_ncf(FW, 0.8), 4),
            tolerance=0.01,
        ),
        FindingCheck(
            "F13",
            "PRE NCF fixed-time alpha=0.8",
            1.06,
            round(runahead_ncf(FT, 0.8), 4),
            tolerance=0.01,
        ),
    ]


def _finding_14_15() -> list[FindingCheck]:
    return [
        FindingCheck(
            "F14",
            "DVFS down-scaling, embodied-dominated",
            Sustainability.STRONG.value,
            classify_downscaling(0.8).value,
        ),
        FindingCheck(
            "F14",
            "DVFS down-scaling, operational-dominated",
            Sustainability.STRONG.value,
            classify_downscaling(0.2).value,
        ),
        FindingCheck(
            "F15",
            "turbo boosting, embodied-dominated",
            Sustainability.LESS.value,
            classify_turboboost(0.8).value,
        ),
        FindingCheck(
            "F15",
            "turbo boosting, operational-dominated",
            Sustainability.LESS.value,
            classify_turboboost(0.2).value,
        ),
    ]


def _finding_16() -> list[FindingCheck]:
    return [
        FindingCheck(
            "F16",
            "pipeline gating NCF fixed-work alpha=0.8",
            0.99,
            round(gating_ncf(FW, 0.8), 4),
            tolerance=0.01,
        ),
        FindingCheck(
            "F16",
            "pipeline gating NCF fixed-time alpha=0.8",
            0.98,
            round(gating_ncf(FT, 0.8), 4),
            tolerance=0.01,
        ),
        FindingCheck(
            "F16",
            "pipeline gating NCF fixed-work alpha=0.2",
            0.97,
            round(gating_ncf(FW, 0.2), 4),
            tolerance=0.01,
        ),
        FindingCheck(
            "F16",
            "pipeline gating NCF fixed-time alpha=0.2",
            0.92,
            round(gating_ncf(FT, 0.2), 4),
            tolerance=0.01,
        ),
    ]


def _finding_17() -> list[FindingCheck]:
    outcome = die_shrink(POST_DENNARD_SCALING, 1)
    return [
        FindingCheck(
            "F17",
            "die-shrink embodied multiplier (0.5 area x 1.252 wafer)",
            0.625,
            round(outcome.embodied, 4),
            tolerance=0.01,
        ),
        FindingCheck(
            "F17",
            "die shrink, post-Dennard, is strongly sustainable",
            Sustainability.STRONG.value,
            classify_die_shrink(POST_DENNARD_SCALING, 0.5).value,
        ),
        FindingCheck(
            "F17",
            "die shrink, classical scaling, is strongly sustainable",
            Sustainability.STRONG.value,
            classify_die_shrink(CLASSICAL_SCALING, 0.5).value,
        ),
    ]


def _case_study_checks() -> list[FindingCheck]:
    points = {p.cores: p for p in case_study()}
    checks = [
        FindingCheck(
            "CS",
            "8-core option: achievable frequency multiplier",
            1.24,
            round(points[8].frequency_multiplier, 4),
            tolerance=0.01,
        ),
        FindingCheck(
            "CS",
            "4-core option: achievable frequency multiplier",
            1.41,
            round(points[4].frequency_multiplier, 4),
            tolerance=0.01,
        ),
        FindingCheck(
            "CS",
            "4-core embodied footprint vs old node",
            0.625,
            round(points[4].embodied, 4),
            tolerance=0.01,
        ),
        FindingCheck(
            "CS",
            "8-core embodied footprint vs old node",
            1.25,
            round(points[8].embodied, 4),
            tolerance=0.01,
        ),
        FindingCheck(
            "CS",
            "4-core performance gain",
            1.41,
            round(points[4].perf, 4),
            tolerance=0.01,
        ),
        FindingCheck(
            "CS",
            "6-core performance gain",
            1.52,
            round(points[6].perf, 4),
            tolerance=0.01,
        ),
    ]
    for cores in (4, 5, 6):
        for alpha, regime in ((0.8, "embodied"), (0.2, "operational")):
            checks.append(
                FindingCheck(
                    "CS",
                    f"{cores}-core option is strongly sustainable "
                    f"({regime}-dominated)",
                    Sustainability.STRONG.value,
                    points[cores].category(alpha).value,
                )
            )
    checks.append(
        FindingCheck(
            "CS",
            "7-core option, embodied-dominated: not sustainable",
            Sustainability.LESS.value,
            points[7].category(0.8).value,
        )
    )
    checks.append(
        FindingCheck(
            "CS",
            "8-core option, operational-dominated: weakly sustainable",
            Sustainability.WEAK.value,
            points[8].category(0.2).value,
        )
    )
    return checks


_ALL_BUILDERS: tuple[Callable[[], list[FindingCheck]], ...] = (
    _finding_1,
    _finding_2,
    _finding_3,
    _finding_4,
    _finding_5,
    _finding_6,
    _finding_7,
    _finding_8,
    _finding_9_10_11,
    _finding_12,
    _finding_13,
    _finding_14_15,
    _finding_16,
    _finding_17,
    _case_study_checks,
)


def all_findings() -> list[FindingCheck]:
    """Every verifiable claim, in paper order."""
    checks: list[FindingCheck] = []
    for builder in _ALL_BUILDERS:
        checks.extend(builder())
    return checks


def failed_findings() -> list[FindingCheck]:
    """The checks that do not reproduce (expected: none)."""
    return [check for check in all_findings() if not check.passed]
