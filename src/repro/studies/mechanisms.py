"""The mechanism catalogue: the paper's headline categorization.

The abstract promises to "analyze and categorize a broad set of
archetypal processor mechanisms into strongly, weakly or less
sustainable design choices". This module produces that catalogue as a
structured table — one row per mechanism per alpha regime, with the
NCF evidence and the paper's expected category — serving as the
top-level summary the individual figures feed into.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..accel.accelerator import HAMEED_H264, AcceleratedSystem
from ..accel.dark_silicon import PAPER_DARK_SILICON
from ..amdahl.asymmetric import AsymmetricMulticore
from ..amdahl.pollack import big_core_design
from ..amdahl.symmetric import SymmetricMulticore
from ..core.classify import Sustainability, Verdict, classify
from ..core.design import DesignPoint
from ..core.scenario import EMBODIED_DOMINATED, OPERATIONAL_DOMINATED, E2OWeight
from ..dvfs.operating_point import DVFSConfig, scale_design
from ..dvfs.turboboost import TurboBoost, boosted_design
from ..gating.pipeline_gating import gated_design
from ..microarch.cores import FSC_CORE, INO_CORE, OOO_CORE
from ..speculation.branch_prediction import predictor_design
from ..speculation.runahead import runahead_design
from ..technode.dieshrink import shrunk_design
from ..technode.scaling import POST_DENNARD_SCALING

__all__ = [
    "MechanismEntry",
    "mechanism_catalogue",
    "catalogue_pairs",
    "PAPER_CATEGORIES",
]


@dataclass(frozen=True, slots=True)
class MechanismEntry:
    """One mechanism's verdict under one alpha regime."""

    mechanism: str
    section: str
    regime: str
    verdict: Verdict
    paper_category: Sustainability

    @property
    def matches_paper(self) -> bool:
        return self.verdict.category is self.paper_category

    def as_dict(self) -> dict[str, object]:
        return {
            "mechanism": self.mechanism,
            "section": self.section,
            "regime": self.regime,
            "ncf_fw": self.verdict.ncf_fixed_work,
            "ncf_ft": self.verdict.ncf_fixed_time,
            "computed": self.verdict.category.value,
            "paper": self.paper_category.value,
            "match": self.matches_paper,
        }


#: The paper's categorization (§5-§6), per alpha regime where the paper
#: distinguishes; "representative configuration" noted per mechanism.
#: Heterogeneity, branch prediction and caching flip with the regime.
STRONG = Sustainability.STRONG
WEAK = Sustainability.WEAK
LESS = Sustainability.LESS

PAPER_CATEGORIES: dict[str, tuple[Sustainability, Sustainability]] = {
    # mechanism -> (embodied-dominated, operational-dominated)
    "multicore": (STRONG, STRONG),
    "heterogeneity": (WEAK, WEAK),
    "hardware acceleration (well-used)": (STRONG, STRONG),
    "dark silicon": (LESS, LESS),
    "caching (16MB LLC)": (LESS, LESS),
    "low-complexity core (FSC vs OoO)": (STRONG, STRONG),
    "OoO core (vs InO)": (LESS, LESS),
    "branch prediction (4.4% area)": (LESS, WEAK),
    "runahead execution (PRE)": (WEAK, WEAK),
    "DVFS down-scaling": (STRONG, STRONG),
    "turbo boost": (LESS, LESS),
    "pipeline gating": (STRONG, STRONG),
    "die shrink": (STRONG, STRONG),
}


def catalogue_pairs() -> list[tuple[str, str, DesignPoint, DesignPoint]]:
    """(mechanism, section, design, baseline) for every catalogue row.

    Public so studies beyond the categorization (e.g. the classical-
    metrics conflict analysis) can reuse exactly the same design pairs."""
    llc_16mb = _cached(16.0)
    llc_1mb = _cached(1.0)
    return [
        (
            "multicore",
            "5.1",
            SymmetricMulticore(32, 0.95).design_point(),
            big_core_design(32),
        ),
        (
            "heterogeneity",
            "5.2",
            AsymmetricMulticore(32, 4, 0.8).design_point(),
            SymmetricMulticore(32, 0.8).design_point(),
        ),
        (
            "hardware acceleration (well-used)",
            "5.3",
            AcceleratedSystem(HAMEED_H264, 0.5).design_point(),
            DesignPoint.baseline("OoO core"),
        ),
        (
            "dark silicon",
            "5.4",
            PAPER_DARK_SILICON.system(0.2).design_point(),
            DesignPoint.baseline("core"),
        ),
        ("caching (16MB LLC)", "5.5", llc_16mb, llc_1mb),
        ("low-complexity core (FSC vs OoO)", "5.6", FSC_CORE, OOO_CORE),
        ("OoO core (vs InO)", "5.6", OOO_CORE, INO_CORE),
        (
            "branch prediction (4.4% area)",
            "5.7",
            predictor_design(0.044),
            DesignPoint.baseline("bimodal"),
        ),
        ("runahead execution (PRE)", "5.7", runahead_design(), DesignPoint.baseline("OoO")),
        (
            "DVFS down-scaling",
            "5.8",
            scale_design(DesignPoint.baseline(), 0.8, DVFSConfig()),
            DesignPoint.baseline("nominal"),
        ),
        (
            "turbo boost",
            "5.8",
            boosted_design(DesignPoint.baseline(), TurboBoost()),
            DesignPoint.baseline("nominal"),
        ),
        ("pipeline gating", "5.9", gated_design(), DesignPoint.baseline("ungated")),
        (
            "die shrink",
            "6",
            shrunk_design(DesignPoint.baseline("chip"), POST_DENNARD_SCALING),
            DesignPoint.baseline("chip"),
        ),
    ]


def _cached(size_mb: float) -> DesignPoint:
    from ..cache.hierarchy import CachedProcessor

    return CachedProcessor(llc_size_mb=size_mb).design_point()


def mechanism_catalogue(
    regimes: tuple[E2OWeight, E2OWeight] = (EMBODIED_DOMINATED, OPERATIONAL_DOMINATED),
) -> list[MechanismEntry]:
    """The full categorization table: every mechanism x both regimes."""
    entries: list[MechanismEntry] = []
    for mechanism, section, design, baseline in catalogue_pairs():
        expected = PAPER_CATEGORIES[mechanism]
        for weight, paper_category in zip(regimes, expected):
            entries.append(
                MechanismEntry(
                    mechanism=mechanism,
                    section=section,
                    regime=weight.name,
                    verdict=classify(design, baseline, weight.alpha),
                    paper_category=paper_category,
                )
            )
    return entries
