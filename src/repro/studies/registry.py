"""Study registry: every figure driver by name.

The registry decouples consumers (CLI, benchmarks, integration tests)
from the individual driver modules; ``run_study("figure3")`` is the
single entry point for regenerating any figure.
"""

from __future__ import annotations

from typing import Callable

from ..core.errors import UnknownStudyError
from ..obs.log import get_logger, kv
from ..obs.trace import NULL_SPAN, span
from ..report.series import FigureResult
from .case_study import figure9
from .figure1 import figure1
from .figure2 import figure2
from .figure3 import figure3
from .figure4 import figure4
from .figure5 import figure5
from .figure6 import figure6
from .figure7 import figure7
from .figure8 import figure8

__all__ = ["STUDIES", "run_study", "study_names"]

StudyDriver = Callable[[], FigureResult]

#: All figures; Figure 2 is the paper's conceptual illustration,
#: reproduced as exact step profiles (see repro.studies.figure2).
STUDIES: dict[str, StudyDriver] = {
    "figure1": figure1,
    "figure2": figure2,
    "figure3": figure3,
    "figure4": figure4,
    "figure5": figure5,
    "figure6": figure6,
    "figure7": figure7,
    "figure8": figure8,
    "figure9": figure9,
}


def study_names() -> list[str]:
    """Sorted names of all registered studies."""
    return sorted(STUDIES)


def run_study(name: str) -> FigureResult:
    """Regenerate one figure by name (e.g. ``"figure3"``).

    Runs inside a ``study:<name>`` span when tracing is on, and logs
    start/finish/failure through the shared :mod:`repro.obs.log`
    logger — a driver blowing up is reported before the exception
    propagates, never swallowed silently.
    """
    log = get_logger()
    try:
        driver = STUDIES[name]
    except KeyError:
        log.error(kv("study.unknown", study=name))
        raise UnknownStudyError(
            f"unknown study {name!r}; available: {', '.join(study_names())}"
        ) from None
    log.debug(kv("study.run", study=name))
    with span(f"study:{name}", study=name) as sp:
        try:
            figure = driver()
        except Exception as exc:
            log.error(kv("study.failed", study=name, error=repr(exc)))
            raise
        if sp is not NULL_SPAN:
            sp.set(
                panels=len(figure.panels),
                points=sum(
                    len(series.points)
                    for panel in figure.panels
                    for series in panel.series
                ),
            )
    log.debug(kv("study.done", study=name))
    return figure
