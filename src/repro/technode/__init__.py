"""Technology nodes, Imec manufacturing-footprint data, Dennard and
post-Dennard scaling, and the die-shrink analysis (paper §6)."""

from .dieshrink import (
    DieShrinkOutcome,
    classify_die_shrink,
    die_shrink,
    shrunk_design,
)
from .imec import (
    IMEC_IEDM2020,
    SCOPE1_ANNUAL_GROWTH,
    SCOPE1_PER_NODE_GROWTH,
    SCOPE2_ANNUAL_GROWTH,
    SCOPE2_PER_NODE_GROWTH,
    ImecGrowthRates,
    annual_to_per_node,
    wafer_footprint_multiplier,
)
from .nodes import NODE_ROSTER, TechNode, node_by_name, transitions_between
from .roadmap import GenerationPoint, RoadmapPolicy, roadmap
from .scaling import CLASSICAL_SCALING, POST_DENNARD_SCALING, ScalingRegime

__all__ = [
    "TechNode",
    "NODE_ROSTER",
    "node_by_name",
    "transitions_between",
    "ImecGrowthRates",
    "IMEC_IEDM2020",
    "annual_to_per_node",
    "wafer_footprint_multiplier",
    "SCOPE1_ANNUAL_GROWTH",
    "SCOPE2_ANNUAL_GROWTH",
    "SCOPE1_PER_NODE_GROWTH",
    "SCOPE2_PER_NODE_GROWTH",
    "ScalingRegime",
    "CLASSICAL_SCALING",
    "POST_DENNARD_SCALING",
    "DieShrinkOutcome",
    "die_shrink",
    "classify_die_shrink",
    "shrunk_design",
    "RoadmapPolicy",
    "GenerationPoint",
    "roadmap",
]
