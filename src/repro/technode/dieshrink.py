"""Die-shrink sustainability analysis (paper §6, Finding #17).

Re-implementing an existing processor in the next node halves its chip
area but raises the per-wafer manufacturing footprint (Imec: +25.2 %
scope-2, +19.5 % scope-1 per transition). To first order the embodied
footprint per chip is proportional to area times per-wafer footprint,
so a die shrink nets

    embodied multiplier = 0.5 * 1.252 = 0.626  (scope-2-driven)

— a clear reduction: *a die shrink is strongly sustainable* (the
operational footprint also never increases, in either scaling regime).

:func:`die_shrink` produces the shrunk design as a
:class:`~repro.core.design.DesignPoint` whose area field carries the
*embodied-footprint-equivalent* area (area multiplier times wafer-
footprint multiplier), so NCF computations against the old-node design
need no special-casing.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.classify import Sustainability, classify_values
from ..core.design import DesignPoint
from ..core.errors import ValidationError
from ..core.ncf import ncf_from_ratios
from ..core.scenario import UseScenario
from .imec import IMEC_IEDM2020, ImecGrowthRates
from .scaling import POST_DENNARD_SCALING, ScalingRegime

__all__ = ["DieShrinkOutcome", "die_shrink", "classify_die_shrink"]


@dataclass(frozen=True, slots=True)
class DieShrinkOutcome:
    """All first-order multipliers of one die shrink.

    Every field is the new-node value divided by the old-node value for
    the *same* circuit.
    """

    regime: str
    transitions: int
    area: float
    embodied: float
    power: float
    performance: float

    @property
    def energy(self) -> float:
        return self.power / self.performance

    def ncf(self, scenario: UseScenario, alpha: float) -> float:
        """NCF of the shrunk design versus the old-node design."""
        operational = self.energy if scenario is UseScenario.FIXED_WORK else self.power
        return ncf_from_ratios(self.embodied, operational, alpha)


def die_shrink(
    regime: ScalingRegime = POST_DENNARD_SCALING,
    transitions: int = 1,
    rates: ImecGrowthRates = IMEC_IEDM2020,
) -> DieShrinkOutcome:
    """First-order multipliers for shrinking a circuit *transitions*
    nodes ahead under the given scaling *regime*."""
    if transitions < 0:
        raise ValidationError(f"transitions must be >= 0, got {transitions}")
    scaled = regime.after(transitions)
    area = scaled.area_factor
    embodied = area * rates.wafer_footprint_multiplier(transitions)
    return DieShrinkOutcome(
        regime=regime.name,
        transitions=transitions,
        area=area,
        embodied=embodied,
        power=scaled.power_factor,
        performance=scaled.performance_factor,
    )


def classify_die_shrink(
    regime: ScalingRegime = POST_DENNARD_SCALING,
    alpha: float = 0.5,
    transitions: int = 1,
    rates: ImecGrowthRates = IMEC_IEDM2020,
) -> Sustainability:
    """Sustainability category of a die shrink (Finding #17: strong).

    Post-Dennard fixed-time is exactly neutral on the operational axis
    (power unchanged), and the embodied axis improves, so the aggregate
    still classifies as strongly sustainable.
    """
    outcome = die_shrink(regime, transitions, rates)
    return classify_values(
        outcome.ncf(UseScenario.FIXED_WORK, alpha),
        outcome.ncf(UseScenario.FIXED_TIME, alpha),
    )


def shrunk_design(
    design: DesignPoint,
    regime: ScalingRegime = POST_DENNARD_SCALING,
    transitions: int = 1,
    rates: ImecGrowthRates = IMEC_IEDM2020,
) -> DesignPoint:
    """Return *design* re-implemented *transitions* nodes ahead.

    The returned design's ``area`` is the embodied-footprint-equivalent
    area (it already folds in the per-wafer footprint growth), so NCF
    against the original design is directly meaningful.
    """
    outcome = die_shrink(regime, transitions, rates)
    return DesignPoint(
        name=f"{design.name} ({regime.name} shrink x{transitions})",
        area=design.area * outcome.embodied,
        perf=design.perf * outcome.performance,
        power=design.power * outcome.power,
    )


__all__.append("shrunk_design")
