"""Imec manufacturing-footprint growth data (paper §3.1, §6).

Imec's DTCO-with-sustainability study (Garcia Bardon et al., IEDM'20)
quantifies how the per-wafer manufacturing footprint grows with newer
nodes, following the GHG Protocol scopes:

* **scope-2** (fab energy): +11.9 % per year, i.e. **+25.2 % per node
  transition** at a two-year cadence (1.119^2 ≈ 1.252);
* **scope-1** (chemicals and gases, e.g. SF6/NF3/CF4): +9.3 % per year,
  i.e. **+19.5 % per node transition** (1.093^2 ≈ 1.195);
* **scope-3** (raw-material extraction and processing) is acknowledged
  but not quantified per node; FOCAL folds it into the per-wafer
  constant.

The per-node numbers 25.2 % and 19.5 % are quoted directly in the
paper's §6 and drive the die-shrink analysis and the §7 case study.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import ValidationError
from ..core.quantities import ensure_fraction, ensure_non_negative, ensure_positive

__all__ = ["ImecGrowthRates", "IMEC_IEDM2020", "wafer_footprint_multiplier"]

#: Annual growth in fab energy per wafer (scope-2).
SCOPE2_ANNUAL_GROWTH = 0.119

#: Annual growth in emitted chemicals/gases per wafer (scope-1).
SCOPE1_ANNUAL_GROWTH = 0.093

#: Per-node-transition growth quoted in the paper (two-year cadence).
SCOPE2_PER_NODE_GROWTH = 0.252
SCOPE1_PER_NODE_GROWTH = 0.195


@dataclass(frozen=True, slots=True)
class ImecGrowthRates:
    """Per-wafer footprint growth model across node transitions.

    ``scope2_share`` sets how much of the per-wafer footprint is fab
    energy versus chemicals/gases when blending the two growth rates;
    the paper's headline die-shrink number (0.5 * 1.252 = 0.626 ≈
    0.625) uses the scope-2 rate alone, which corresponds to
    ``scope2_share = 1.0`` (the default here, matching §6/§7).
    """

    scope1_per_node: float = SCOPE1_PER_NODE_GROWTH
    scope2_per_node: float = SCOPE2_PER_NODE_GROWTH
    scope2_share: float = 1.0

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "scope1_per_node", ensure_non_negative(self.scope1_per_node, "scope1_per_node")
        )
        object.__setattr__(
            self, "scope2_per_node", ensure_non_negative(self.scope2_per_node, "scope2_per_node")
        )
        object.__setattr__(
            self, "scope2_share", ensure_fraction(self.scope2_share, "scope2_share")
        )

    @property
    def blended_per_node(self) -> float:
        """Per-node growth of the blended per-wafer footprint."""
        return (
            self.scope2_share * self.scope2_per_node
            + (1.0 - self.scope2_share) * self.scope1_per_node
        )

    def wafer_footprint_multiplier(self, transitions: int = 1) -> float:
        """Per-wafer footprint of a node *transitions* steps ahead,
        relative to the current node."""
        if transitions < 0:
            raise ValidationError(f"transitions must be >= 0, got {transitions}")
        return (1.0 + self.blended_per_node) ** transitions


#: The paper's configuration: scope-2 rate drives the per-wafer growth.
IMEC_IEDM2020 = ImecGrowthRates()


def wafer_footprint_multiplier(transitions: int = 1, rates: ImecGrowthRates = IMEC_IEDM2020) -> float:
    """Convenience wrapper over :meth:`ImecGrowthRates.wafer_footprint_multiplier`."""
    return rates.wafer_footprint_multiplier(transitions)


def annual_to_per_node(annual_rate: float, years_per_node: float = 2.0) -> float:
    """Convert an annual growth rate to a per-node-transition rate.

    ``annual_to_per_node(0.119) ≈ 0.252`` reproduces the paper's
    scope-2 per-node figure.
    """
    ensure_non_negative(annual_rate, "annual_rate")
    ensure_positive(years_per_node, "years_per_node")
    return (1.0 + annual_rate) ** years_per_node - 1.0


__all__.append("annual_to_per_node")
__all__.extend(
    [
        "SCOPE1_ANNUAL_GROWTH",
        "SCOPE2_ANNUAL_GROWTH",
        "SCOPE1_PER_NODE_GROWTH",
        "SCOPE2_PER_NODE_GROWTH",
    ]
)
