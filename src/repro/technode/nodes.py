"""CMOS technology-node roster.

A minimal representation of the logic nodes the paper's manufacturing
data spans (Imec's DTCO study covers 28 nm down to 3 nm). Nodes are
ordered from oldest (largest feature size) to newest; consecutive nodes
are one "node transition" apart, which is the unit the Imec growth
rates apply to (paper §6).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import ValidationError
from ..core.quantities import ensure_int_at_least, ensure_positive

__all__ = ["TechNode", "NODE_ROSTER", "node_by_name", "transitions_between"]


@dataclass(frozen=True, slots=True)
class TechNode:
    """One logic technology node.

    ``index`` orders nodes oldest-to-newest (28 nm = 0); ``label`` is
    the marketing name; ``years_per_node`` reflects the roughly
    two-year cadence used to convert annual growth rates to per-node
    rates.
    """

    label: str
    feature_nm: float
    index: int
    years_per_node: float = 2.0

    def __post_init__(self) -> None:
        if not self.label:
            raise ValidationError("TechNode.label must be non-empty")
        object.__setattr__(self, "feature_nm", ensure_positive(self.feature_nm, "feature_nm"))
        object.__setattr__(self, "index", ensure_int_at_least(self.index, 0, "index"))
        object.__setattr__(
            self, "years_per_node", ensure_positive(self.years_per_node, "years_per_node")
        )


#: Imec's study range: 28 nm through 3 nm.
NODE_ROSTER: tuple[TechNode, ...] = (
    TechNode("28nm", 28.0, 0),
    TechNode("20nm", 20.0, 1),
    TechNode("16nm", 16.0, 2),
    TechNode("10nm", 10.0, 3),
    TechNode("7nm", 7.0, 4),
    TechNode("5nm", 5.0, 5),
    TechNode("3nm", 3.0, 6),
)

_BY_NAME = {node.label: node for node in NODE_ROSTER}


def node_by_name(label: str) -> TechNode:
    """Look up a roster node by its label (e.g. ``"7nm"``)."""
    try:
        return _BY_NAME[label]
    except KeyError:
        known = ", ".join(sorted(_BY_NAME))
        raise ValidationError(f"unknown node {label!r}; known nodes: {known}") from None


def transitions_between(old: TechNode, new: TechNode) -> int:
    """Number of node transitions from *old* to *new* (>= 0).

    Raises when *new* is older than *old*: the die-shrink analysis only
    moves forward in time.
    """
    if new.index < old.index:
        raise ValidationError(
            f"cannot shrink from {old.label} to the older node {new.label}"
        )
    return new.index - old.index
