"""Multi-generation roadmap: Moore's Law spent two ways (paper §6
discussion).

The paper's §6 closes with a pointed observation: chips *would* have
become more sustainable over time had architects used each node to make
them smaller, but in practice the freed transistors were spent on more
functionality — Jevons' paradox in silicon. This module quantifies that
discussion across the full Imec node range with two policies:

* **shrink** — keep the same multicore, let the die halve each node;
* **constant-area** — double the core count each node, keeping die
  area constant.

Each generation applies post-Dennard (or classical) device scaling, the
Imec per-wafer footprint growth, and the Woo–Lee multicore model for
performance/power of the grown chip. The output is a per-generation
trajectory of embodied footprint, power, performance and NCF relative
to the starting design.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..amdahl.symmetric import DEFAULT_LEAKAGE, SymmetricMulticore
from ..core.ncf import ncf_from_ratios
from ..core.quantities import ensure_fraction, ensure_int_at_least
from ..core.scenario import UseScenario
from .imec import IMEC_IEDM2020, ImecGrowthRates
from .scaling import POST_DENNARD_SCALING, ScalingRegime

__all__ = ["RoadmapPolicy", "GenerationPoint", "roadmap"]


class RoadmapPolicy(enum.Enum):
    """How each node transition's transistor budget is spent."""

    SHRINK = "shrink"
    CONSTANT_AREA = "constant-area"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True, slots=True)
class GenerationPoint:
    """One generation of the roadmap, relative to generation 0."""

    generation: int
    cores: int
    area: float
    embodied: float
    perf: float
    power: float

    @property
    def energy(self) -> float:
        return self.power / self.perf

    def ncf(self, scenario: UseScenario, alpha: float) -> float:
        operational = self.energy if scenario is UseScenario.FIXED_WORK else self.power
        return ncf_from_ratios(self.embodied, operational, alpha)


def roadmap(
    policy: RoadmapPolicy,
    generations: int = 6,
    *,
    start_cores: int = 4,
    parallel_fraction: float = 0.75,
    leakage: float = DEFAULT_LEAKAGE,
    regime: ScalingRegime = POST_DENNARD_SCALING,
    rates: ImecGrowthRates = IMEC_IEDM2020,
) -> list[GenerationPoint]:
    """Trajectory over *generations* node transitions under *policy*.

    Generation 0 is the starting chip (all ratios 1); the default six
    transitions span the Imec 28 nm -> 3 nm range. Under SHRINK the
    core count stays at ``start_cores``; under CONSTANT_AREA it doubles
    every generation. Performance and power combine device scaling with
    the Woo-Lee multicore model; the embodied footprint combines die
    area with the per-wafer manufacturing growth.
    """
    ensure_int_at_least(generations, 0, "generations")
    ensure_int_at_least(start_cores, 1, "start_cores")
    ensure_fraction(parallel_fraction, "parallel_fraction")

    base = SymmetricMulticore(start_cores, parallel_fraction, leakage)
    points = [
        GenerationPoint(
            generation=0,
            cores=start_cores,
            area=1.0,
            embodied=1.0,
            perf=1.0,
            power=1.0,
        )
    ]
    for gen in range(1, generations + 1):
        device = regime.after(gen)
        wafer_growth = rates.wafer_footprint_multiplier(gen)
        if policy is RoadmapPolicy.SHRINK:
            cores = start_cores
            area = device.area_factor  # same circuit, smaller die
        else:
            cores = start_cores * (2**gen)
            area = 1.0  # the shrink is spent on doubling the cores
        chip = SymmetricMulticore(cores, parallel_fraction, leakage)
        # Per-core power at the new node's full frequency scales with
        # the regime (x1 post-Dennard, x0.5^gen classical); the chip's
        # activity shape is the Woo-Lee average over the (possibly
        # larger) core count.
        perf = device.frequency_factor * chip.speedup / base.speedup
        power = device.power_factor * chip.power / base.power
        points.append(
            GenerationPoint(
                generation=gen,
                cores=cores,
                area=area,
                embodied=area * wafer_growth,
                perf=perf,
                power=power,
            )
        )
    return points
