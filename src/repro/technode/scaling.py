"""Classical (Dennard) versus post-Dennard device scaling (paper §6).

When a circuit is implemented in the next technology node its area
halves; what happens to power and energy depends on the scaling regime:

* **classical (Dennard) scaling** — supply voltage scales with feature
  size: per-circuit power halves, the circuit clocks 1.41x faster, and
  energy per unit work drops 2.82x (2 x 1.41);
* **post-Dennard scaling** — voltage no longer scales: per-circuit
  power stays constant, frequency still improves 1.41x, and energy per
  unit work drops 1.41x.

These are the multipliers the paper's §6 die-shrink discussion quotes
verbatim. The :class:`ScalingRegime` dataclass generalizes to any
number of consecutive transitions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.errors import ValidationError
from ..core.quantities import ensure_positive

__all__ = ["ScalingRegime", "CLASSICAL_SCALING", "POST_DENNARD_SCALING"]

#: Linear-dimension shrink per node: sqrt(2), so area halves.
LINEAR_SHRINK_PER_NODE = math.sqrt(2.0)


@dataclass(frozen=True, slots=True)
class ScalingRegime:
    """Per-node-transition multipliers for one scaling regime.

    All multipliers apply to the *same circuit* re-implemented in the
    next node (not to a chip that re-spends the area on more logic).
    """

    name: str
    area_factor: float
    power_factor: float
    frequency_factor: float

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("ScalingRegime.name must be non-empty")
        object.__setattr__(self, "area_factor", ensure_positive(self.area_factor, "area_factor"))
        object.__setattr__(
            self, "power_factor", ensure_positive(self.power_factor, "power_factor")
        )
        object.__setattr__(
            self,
            "frequency_factor",
            ensure_positive(self.frequency_factor, "frequency_factor"),
        )

    @property
    def performance_factor(self) -> float:
        """Single-circuit performance scales with clock frequency."""
        return self.frequency_factor

    @property
    def energy_factor(self) -> float:
        """Energy per unit work: power divided by performance."""
        return self.power_factor / self.frequency_factor

    def after(self, transitions: int) -> "ScalingRegime":
        """Cumulative multipliers after *transitions* consecutive node
        transitions (compounded)."""
        if transitions < 0:
            raise ValidationError(f"transitions must be >= 0, got {transitions}")
        return ScalingRegime(
            name=f"{self.name} x{transitions}",
            area_factor=self.area_factor**transitions,
            power_factor=self.power_factor**transitions,
            frequency_factor=self.frequency_factor**transitions,
        )


#: Dennard scaling: power halves, frequency x1.41, energy /2.82.
CLASSICAL_SCALING = ScalingRegime(
    name="classical",
    area_factor=0.5,
    power_factor=0.5,
    frequency_factor=LINEAR_SHRINK_PER_NODE,
)

#: Post-Dennard: power constant, frequency x1.41, energy /1.41.
POST_DENNARD_SCALING = ScalingRegime(
    name="post-Dennard",
    area_factor=0.5,
    power_factor=1.0,
    frequency_factor=LINEAR_SHRINK_PER_NODE,
)
