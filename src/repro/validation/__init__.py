"""Model-validation limits: synthetic LCA aggregation and the
FOCAL-vs-LCA gap (paper §3.6)."""

from .lca import SystemLCA, chip_attribution_error, validation_gap

__all__ = ["SystemLCA", "chip_attribution_error", "validation_gap"]
