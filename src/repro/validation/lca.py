"""Synthetic LCA reports and the limits of model validation (paper §3.6).

The paper argues that validating a processor carbon model is nearly
impossible today: the only public data are system-level Life Cycle
Assessment (LCA) reports that aggregate the *entire* device into one
number, so the processor's contribution cannot be isolated. This module
makes the argument quantitative:

* :class:`SystemLCA` composes a device's total footprint from its
  components (chip, memory, storage, board, enclosure, use phase) the
  way an LCA report would — then publishes only the total;
* :func:`chip_attribution_error` shows how badly a chip-level
  conclusion drawn from LCA totals can be off: two devices whose chips
  differ by a factor X have totals that differ by far less, with the
  gap controlled by the chip's share of the total;
* :func:`validation_gap` measures the FOCAL-vs-LCA discrepancy as a
  function of chip share — reproducing the shape of ACT's reported
  "non-negligible gap" from first principles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ..core.errors import ValidationError
from ..core.quantities import ensure_non_negative

__all__ = ["SystemLCA", "chip_attribution_error", "validation_gap"]


@dataclass(frozen=True)
class SystemLCA:
    """A device's component-level footprint, published as a total.

    Component values are kg CO2e over the device's life (embodied plus
    use phase folded per component, as real LCA reports do).
    """

    name: str
    chip: float
    other_components: Mapping[str, float] = field(
        default_factory=lambda: {
            "memory": 25.0,
            "storage": 15.0,
            "board": 20.0,
            "enclosure": 10.0,
            "use-phase": 60.0,
        }
    )

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("SystemLCA.name must be non-empty")
        ensure_non_negative(self.chip, "chip")
        for component, value in self.other_components.items():
            ensure_non_negative(value, f"component {component!r}")

    @property
    def rest_of_system(self) -> float:
        return sum(self.other_components.values())

    @property
    def total(self) -> float:
        """The only number a published LCA exposes."""
        return self.chip + self.rest_of_system

    @property
    def chip_share(self) -> float:
        """Ground truth a validator does not get to see."""
        return self.chip / self.total if self.total else 0.0


def chip_attribution_error(device_x: SystemLCA, device_y: SystemLCA) -> float:
    """How much the LCA-total ratio understates the chip ratio.

    Returns ``(chip ratio) / (total ratio)`` — 1.0 means LCA totals
    faithfully reflect the chip difference; values far above 1 mean the
    rest-of-system swamps it (the paper's §3.6 point).
    """
    if device_y.chip == 0.0 or device_y.total == 0.0:
        raise ValidationError("baseline device must have non-zero chip and total")
    chip_ratio = device_x.chip / device_y.chip
    total_ratio = device_x.total / device_y.total
    if total_ratio == 0.0:
        raise ValidationError("degenerate total ratio")
    return chip_ratio / total_ratio


def validation_gap(
    focal_chip_ratio: float,
    chip_share: float,
) -> float:
    """Relative gap between a *correct* chip-level prediction and the
    LCA-total ratio it would be validated against.

    Assumes the rest of the system is identical across the two devices
    (the best case for validation!). The LCA-total ratio is then

        total_ratio = share * chip_ratio + (1 - share)

    and the gap is ``|chip_ratio - total_ratio| / total_ratio``. Even a
    perfect model shows this gap when scored against LCA totals, which
    is the paper's §3.6 argument and its reading of ACT's reported
    mismatch.
    """
    if focal_chip_ratio <= 0.0:
        raise ValidationError(f"chip ratio must be > 0, got {focal_chip_ratio}")
    if not 0.0 < chip_share <= 1.0:
        raise ValidationError(f"chip_share must be in (0, 1], got {chip_share}")
    total_ratio = chip_share * focal_chip_ratio + (1.0 - chip_share)
    return abs(focal_chip_ratio - total_ratio) / total_ratio
