"""Wafer geometry, die yield, and the per-chip embodied-footprint proxy
(paper §3.1, Figure 1)."""

from .batch import (
    chips_per_wafer_array,
    de_vries_valid_mask,
    die_yield_array,
    footprint_per_chip_array,
    normalized_footprint_array,
)
from .binning import BinnedYield, BinningModel
from .embodied import FIGURE1_REFERENCE_AREA_MM2, EmbodiedFootprintModel
from .geometry import WAFER_200MM, WAFER_300MM, WAFER_450MM, Wafer, chips_per_wafer
from .yield_models import (
    TSMC_VOLUME_DEFECT_DENSITY,
    BoseEinsteinYield,
    MurphyYield,
    PerfectYield,
    PoissonYield,
    SeedsYield,
    YieldModel,
)

__all__ = [
    "Wafer",
    "WAFER_200MM",
    "WAFER_300MM",
    "WAFER_450MM",
    "chips_per_wafer",
    "YieldModel",
    "PerfectYield",
    "PoissonYield",
    "MurphyYield",
    "SeedsYield",
    "BoseEinsteinYield",
    "TSMC_VOLUME_DEFECT_DENSITY",
    "EmbodiedFootprintModel",
    "FIGURE1_REFERENCE_AREA_MM2",
    "BinningModel",
    "BinnedYield",
    "chips_per_wafer_array",
    "de_vries_valid_mask",
    "die_yield_array",
    "footprint_per_chip_array",
    "normalized_footprint_array",
]
