"""Columnar wafer kernels: array-in/array-out versions of the wafer
substrate (paper §3.1, Figure 1).

Every function here is the NumPy twin of a scalar method in
:mod:`repro.wafer.geometry`, :mod:`repro.wafer.yield_models`,
:mod:`repro.wafer.binning` or :mod:`repro.wafer.embodied`, and is
**bit-exact** with it: the kernels perform the same IEEE-754 operations
in the same order (transcendental sites route through the exact
elementwise helpers in :mod:`repro.core.batch`, because NumPy's SIMD
``exp``/``expm1`` drift from libm by an ulp on a few percent of
inputs). A die-area sweep through these kernels therefore produces
byte-identical curves to the scalar per-point loop it replaces — the
speedup is free of numerical consequences.

:meth:`repro.wafer.embodied.EmbodiedFootprintModel.sweep` routes
through :func:`normalized_footprint_array`, so every figure study that
sweeps die sizes runs columnar automatically.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..core.batch import (
    ensure_non_negative_array,
    ensure_positive_array,
    exact_exp,
    exact_expm1,
    exact_pow,
)
from ..core.errors import DomainError
from ..core.quantities import ensure_positive
from .binning import BinningModel
from .embodied import FIGURE1_REFERENCE_AREA_MM2, EmbodiedFootprintModel
from .geometry import DE_VRIES_EDGE_COEFFICIENT, WAFER_300MM, Wafer
from .yield_models import (
    BoseEinsteinYield,
    MurphyYield,
    PerfectYield,
    PoissonYield,
    SeedsYield,
    YieldModel,
)

__all__ = [
    "gross_dies_array",
    "chips_per_wafer_array",
    "de_vries_valid_mask",
    "poisson_yield_array",
    "murphy_yield_array",
    "seeds_yield_array",
    "bose_einstein_yield_array",
    "binned_yield_array",
    "die_yield_array",
    "good_chips_per_wafer_array",
    "footprint_per_chip_array",
    "normalized_footprint_array",
    "footprint_sweep",
]

_MM2_PER_CM2 = 100.0


def _defects_per_die_array(
    die_areas_mm2: object, density_per_cm2: float
) -> np.ndarray:
    """Array twin of ``yield_models._defects_per_die``: ``A * D``."""
    areas = ensure_positive_array(die_areas_mm2, "die_areas_mm2")
    return areas / _MM2_PER_CM2 * density_per_cm2


# ----------------------------------------------------------------------
# Geometry (de Vries chips per wafer)
# ----------------------------------------------------------------------
def gross_dies_array(
    die_areas_mm2: object, wafer: Wafer = WAFER_300MM
) -> np.ndarray:
    """Array twin of :meth:`~repro.wafer.geometry.Wafer.gross_dies`.

    Raises :class:`~repro.core.errors.DomainError` when any die exceeds
    the de Vries formula's validity (non-positive predicted count),
    matching the scalar method; use :func:`de_vries_valid_mask` first
    when sweeping across the validity boundary.
    """
    areas = ensure_positive_array(die_areas_mm2, "die_areas_mm2")
    edge = DE_VRIES_EDGE_COEFFICIENT * math.pi * wafer.diameter_mm
    cpw = wafer.area_mm2 / areas - edge / np.sqrt(areas)
    bad = cpw <= 0.0
    if bad.any():
        index = int(np.argmax(bad.ravel()))
        area = areas.ravel()[index]
        raise DomainError(
            f"die area {area:g} mm^2 exceeds the de Vries formula's validity "
            f"for a {wafer.diameter_mm:g} mm wafer "
            f"(predicted CPW {cpw.ravel()[index]:g})"
        )
    return cpw


def chips_per_wafer_array(
    die_areas_mm2: object, wafer: Wafer = WAFER_300MM
) -> np.ndarray:
    """Array twin of :func:`~repro.wafer.geometry.chips_per_wafer`."""
    return gross_dies_array(die_areas_mm2, wafer)


def de_vries_valid_mask(
    die_areas_mm2: object, wafer: Wafer = WAFER_300MM
) -> np.ndarray:
    """Boolean mask of die areas inside the de Vries validity region.

    ``True`` exactly where the scalar :meth:`Wafer.gross_dies` would
    return instead of raising ``DomainError`` — the masking primitive
    for sweeps that cross the validity boundary.
    """
    areas = ensure_positive_array(die_areas_mm2, "die_areas_mm2")
    edge = DE_VRIES_EDGE_COEFFICIENT * math.pi * wafer.diameter_mm
    cpw = wafer.area_mm2 / areas - edge / np.sqrt(areas)
    return cpw > 0.0


# ----------------------------------------------------------------------
# Die-yield models
# ----------------------------------------------------------------------
def poisson_yield_array(
    die_areas_mm2: object, defect_density_per_cm2: float
) -> np.ndarray:
    """Array twin of :meth:`PoissonYield.die_yield`: ``exp(-A D)``."""
    density = ensure_positive_or_zero(defect_density_per_cm2)
    ad = _defects_per_die_array(die_areas_mm2, density)
    return exact_exp(-ad)


def murphy_yield_array(
    die_areas_mm2: object, defect_density_per_cm2: float
) -> np.ndarray:
    """Array twin of :meth:`MurphyYield.die_yield`:
    ``((1 - exp(-A D)) / (A D))^2`` with the small-``A D`` limit."""
    density = ensure_positive_or_zero(defect_density_per_cm2)
    ad = _defects_per_die_array(die_areas_mm2, density)
    small = ad < 1e-12
    with np.errstate(divide="ignore", invalid="ignore"):
        value = exact_pow(-exact_expm1(-ad) / ad, 2)
    return np.where(small, 1.0, value)


def seeds_yield_array(
    die_areas_mm2: object, defect_density_per_cm2: float
) -> np.ndarray:
    """Array twin of :meth:`SeedsYield.die_yield`: ``1 / (1 + A D)``."""
    density = ensure_positive_or_zero(defect_density_per_cm2)
    ad = _defects_per_die_array(die_areas_mm2, density)
    return 1.0 / (1.0 + ad)


def bose_einstein_yield_array(
    die_areas_mm2: object,
    defect_density_per_cm2: float,
    critical_layers: int,
) -> np.ndarray:
    """Array twin of :meth:`BoseEinsteinYield.die_yield`:
    ``(1 + A D / n)^-n`` for *n* critical layers."""
    density = ensure_positive_or_zero(defect_density_per_cm2)
    ad = _defects_per_die_array(die_areas_mm2, density)
    per_layer = ad / critical_layers
    return exact_pow(1.0 + per_layer, -critical_layers)


def binned_yield_array(die_areas_mm2: object, binning: BinningModel) -> np.ndarray:
    """Array twin of :meth:`BinningModel.sellable_fraction`."""
    areas = ensure_positive_array(die_areas_mm2, "die_areas_mm2")
    expected_defects = areas / _MM2_PER_CM2 * binning.defect_density_per_cm2
    p_good = exact_exp(-expected_defects / binning.blocks)
    p_bad = 1.0 - p_good
    total = np.zeros_like(areas)
    for k in range(binning.max_defective_blocks + 1):
        total = total + math.comb(binning.blocks, k) * exact_pow(
            p_bad, k
        ) * exact_pow(p_good, binning.blocks - k)
    return np.minimum(1.0, total)


def ensure_positive_or_zero(density: float) -> float:
    """Validate a defect density exactly like the scalar models do."""
    from ..core.quantities import ensure_non_negative

    return ensure_non_negative(density, "defect_density_per_cm2")


def die_yield_array(model: YieldModel, die_areas_mm2: object) -> np.ndarray:
    """Per-area die yields for any :class:`YieldModel`.

    The stock models dispatch to their columnar kernels; an unknown
    model falls back to its scalar ``die_yield`` per element (still
    bit-exact — it *is* the scalar path — just not vectorized).
    """
    areas = ensure_positive_array(die_areas_mm2, "die_areas_mm2")
    if isinstance(model, PerfectYield):
        return np.ones_like(areas)
    if isinstance(model, PoissonYield):
        return poisson_yield_array(areas, model.defect_density_per_cm2)
    if isinstance(model, MurphyYield):
        return murphy_yield_array(areas, model.defect_density_per_cm2)
    if isinstance(model, SeedsYield):
        return seeds_yield_array(areas, model.defect_density_per_cm2)
    if isinstance(model, BoseEinsteinYield):
        return bose_einstein_yield_array(
            areas, model.defect_density_per_cm2, model.critical_layers
        )
    binning = getattr(model, "binning", None)
    if isinstance(binning, BinningModel):
        return binned_yield_array(areas, binning)
    flat = areas.ravel()
    out = np.fromiter(
        (model.die_yield(float(a)) for a in flat), np.float64, count=flat.size
    )
    return out.reshape(areas.shape)


# ----------------------------------------------------------------------
# Embodied footprint per chip
# ----------------------------------------------------------------------
def good_chips_per_wafer_array(
    model: EmbodiedFootprintModel, die_areas_mm2: object
) -> np.ndarray:
    """Array twin of :meth:`EmbodiedFootprintModel.good_chips_per_wafer`."""
    areas = ensure_positive_array(die_areas_mm2, "die_areas_mm2")
    return gross_dies_array(areas, model.wafer) * die_yield_array(
        model.yield_model, areas
    )


def footprint_per_chip_array(
    model: EmbodiedFootprintModel, die_areas_mm2: object
) -> np.ndarray:
    """Array twin of :meth:`EmbodiedFootprintModel.footprint_per_chip`."""
    return model.footprint_per_wafer / good_chips_per_wafer_array(
        model, die_areas_mm2
    )


def normalized_footprint_array(
    model: EmbodiedFootprintModel,
    die_areas_mm2: object,
    reference_area_mm2: float = FIGURE1_REFERENCE_AREA_MM2,
) -> np.ndarray:
    """Array twin of :meth:`EmbodiedFootprintModel.normalized_footprint`.

    The reference divisor is computed through the scalar path, so each
    element equals exactly what the scalar method returns for it.
    """
    ensure_positive(reference_area_mm2, "reference_area_mm2")
    return footprint_per_chip_array(
        model, die_areas_mm2
    ) / model.footprint_per_chip(reference_area_mm2)


def footprint_sweep(
    model: EmbodiedFootprintModel,
    die_areas_mm2: Sequence[float],
    reference_area_mm2: float = FIGURE1_REFERENCE_AREA_MM2,
) -> list[tuple[float, float]]:
    """(die area, normalized footprint) pairs, computed columnar.

    The kernel behind :meth:`EmbodiedFootprintModel.sweep`; areas are
    echoed back exactly as passed.
    """
    values = normalized_footprint_array(model, die_areas_mm2, reference_area_mm2)
    return [
        (area, float(value)) for area, value in zip(die_areas_mm2, values)
    ]
