"""Product binning: effective yield via selling defective dies.

Paper §3.1: "In practice, to maximize profit, industry increases the
effective yield by turning off or bypassing defective circuit blocks in
large chips, selling those chips as lower-performance, lower-power
products. In fact, profit is maximized when all defective chips can be
sold as alternative products, thereby approaching the perfect yield
model curve."

This module makes that argument quantitative. A die is divided into
``blocks`` redundant circuit blocks (e.g. cores); a die is sellable in
bin *k* if at most *k* blocks are defective. Assuming Poisson-
distributed defects with the die-level expected count split evenly over
blocks, the sellable fraction interpolates between the raw yield model
(no binning) and perfect yield (every die sellable).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.errors import ValidationError
from ..core.quantities import ensure_int_at_least, ensure_non_negative, ensure_positive

__all__ = ["BinningModel", "BinnedYield"]


@dataclass(frozen=True, slots=True)
class BinningModel:
    """Sellable-die fraction for a block-redundant die.

    Parameters
    ----------
    blocks:
        Number of independent circuit blocks on the die (>= 1).
    max_defective_blocks:
        Dies with up to this many defective blocks are still sellable
        (as lower bins). ``0`` means no binning; ``blocks`` means every
        die sells (perfect effective yield for block-local defects).
    defect_density_per_cm2:
        Defect density.
    """

    blocks: int
    max_defective_blocks: int
    defect_density_per_cm2: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "blocks", ensure_int_at_least(self.blocks, 1, "blocks"))
        object.__setattr__(
            self,
            "max_defective_blocks",
            ensure_int_at_least(self.max_defective_blocks, 0, "max_defective_blocks"),
        )
        if self.max_defective_blocks > self.blocks:
            raise ValidationError(
                f"max_defective_blocks ({self.max_defective_blocks}) cannot exceed "
                f"blocks ({self.blocks})"
            )
        object.__setattr__(
            self,
            "defect_density_per_cm2",
            ensure_non_negative(self.defect_density_per_cm2, "defect_density_per_cm2"),
        )

    def _block_good_probability(self, die_area_mm2: float) -> float:
        """Poisson probability that one block carries no defect."""
        area_cm2 = ensure_positive(die_area_mm2, "die_area_mm2") / 100.0
        expected_defects = area_cm2 * self.defect_density_per_cm2
        return math.exp(-expected_defects / self.blocks)

    def sellable_fraction(self, die_area_mm2: float) -> float:
        """Probability a die has at most ``max_defective_blocks`` bad
        blocks (binomial over independent blocks)."""
        p_good = self._block_good_probability(die_area_mm2)
        p_bad = 1.0 - p_good
        total = 0.0
        for k in range(self.max_defective_blocks + 1):
            total += (
                math.comb(self.blocks, k) * p_bad**k * p_good ** (self.blocks - k)
            )
        return min(1.0, total)

    def expected_good_blocks(self, die_area_mm2: float) -> float:
        """Mean number of functional blocks per die (sellable or not)."""
        return self.blocks * self._block_good_probability(die_area_mm2)


@dataclass(frozen=True, slots=True)
class BinnedYield:
    """Adapter exposing a :class:`BinningModel` as a yield model.

    Lets the binning analysis plug directly into
    :class:`~repro.wafer.embodied.EmbodiedFootprintModel`, quantifying
    how binning moves the embodied-footprint curve from Murphy-like
    toward the perfect-yield trendline.
    """

    binning: BinningModel
    name: str = "binned"

    def die_yield(self, area_mm2: float) -> float:
        return self.binning.sellable_fraction(area_mm2)
