"""Per-chip embodied-footprint proxy (paper §3.1, Figure 1).

The wafer is the unit of production, so the embodied footprint per
*good* chip is the wafer footprint divided by the number of good chips:

    embodied_per_chip  ∝  1 / (CPW(A) * Y(A))

FOCAL's figures normalize this to a reference die size (100 mm^2 in
Figure 1), which cancels the per-wafer constant; this module supports
both the normalized form and an absolute form given a per-wafer
footprint (useful with :mod:`repro.technode` data).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..core.quantities import ensure_positive
from .geometry import WAFER_300MM, Wafer
from .yield_models import PerfectYield, YieldModel

__all__ = ["EmbodiedFootprintModel", "FIGURE1_REFERENCE_AREA_MM2"]

#: Figure 1 normalizes embodied footprint per chip to a 100 mm^2 die.
FIGURE1_REFERENCE_AREA_MM2 = 100.0


@dataclass(frozen=True, slots=True)
class EmbodiedFootprintModel:
    """Embodied footprint per chip as a function of die size.

    Parameters
    ----------
    wafer:
        Wafer geometry (default: 300 mm).
    yield_model:
        Die-yield model (default: perfect yield).
    footprint_per_wafer:
        Carbon footprint attributed to processing one wafer, in
        arbitrary units (default 1.0 — all FOCAL uses are relative).
    """

    wafer: Wafer = WAFER_300MM
    yield_model: YieldModel = field(default_factory=PerfectYield)
    footprint_per_wafer: float = 1.0

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "footprint_per_wafer",
            ensure_positive(self.footprint_per_wafer, "footprint_per_wafer"),
        )

    def good_chips_per_wafer(self, die_area_mm2: float) -> float:
        """Gross chips per wafer times die yield."""
        return self.wafer.gross_dies(die_area_mm2) * self.yield_model.die_yield(
            die_area_mm2
        )

    def footprint_per_chip(self, die_area_mm2: float) -> float:
        """Embodied footprint attributed to one good chip."""
        return self.footprint_per_wafer / self.good_chips_per_wafer(die_area_mm2)

    def normalized_footprint(
        self,
        die_area_mm2: float,
        reference_area_mm2: float = FIGURE1_REFERENCE_AREA_MM2,
    ) -> float:
        """Footprint per chip normalized to a reference die size.

        This is exactly the y-axis of the paper's Figure 1.
        """
        ensure_positive(reference_area_mm2, "reference_area_mm2")
        return self.footprint_per_chip(die_area_mm2) / self.footprint_per_chip(
            reference_area_mm2
        )

    def sweep(
        self,
        die_areas_mm2: Sequence[float],
        reference_area_mm2: float = FIGURE1_REFERENCE_AREA_MM2,
    ) -> list[tuple[float, float]]:
        """(die area, normalized footprint) pairs for a range of sizes.

        Runs columnar through :func:`repro.wafer.batch.footprint_sweep`
        (bit-exact with the per-point scalar loop it replaced), so the
        figure studies sweep die sizes at array speed.
        """
        from .batch import footprint_sweep

        return footprint_sweep(self, die_areas_mm2, reference_area_mm2)
