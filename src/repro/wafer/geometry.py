"""Wafer geometry: the de Vries chips-per-wafer formula (paper §3.1).

The unit of production in a fab is a wafer; what architects control is
die size. de Vries (IEEE TSM 2005) empirically derives the number of
(gross) chips per wafer as a function of die area ``A``:

    CPW = pi * d^2 / (4 * A)  -  0.58 * pi * d / sqrt(A)

with ``d`` the wafer diameter. The first term is the wafer area divided
by the die area; the second corrects for partial dies lost at the
wafer's circular edge.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.errors import DomainError
from ..core.quantities import ensure_positive

__all__ = ["Wafer", "WAFER_300MM", "WAFER_200MM", "WAFER_450MM", "chips_per_wafer"]

#: Edge-loss coefficient fitted by de Vries.
DE_VRIES_EDGE_COEFFICIENT = 0.58


@dataclass(frozen=True, slots=True)
class Wafer:
    """A circular wafer of a given diameter (mm)."""

    diameter_mm: float

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "diameter_mm", ensure_positive(self.diameter_mm, "diameter_mm")
        )

    @property
    def area_mm2(self) -> float:
        """Total wafer area in mm^2."""
        return math.pi * self.diameter_mm**2 / 4.0

    def gross_dies(self, die_area_mm2: float) -> float:
        """Gross chips per wafer for a die of *die_area_mm2* (de Vries).

        Returns a real number (the formula is an empirical continuous
        fit); round down for a physical count. Raises
        :class:`~repro.core.errors.DomainError` when the die is so
        large that the formula predicts a non-positive count — beyond
        the formula's region of validity.
        """
        area = ensure_positive(die_area_mm2, "die_area_mm2")
        cpw = (
            self.area_mm2 / area
            - DE_VRIES_EDGE_COEFFICIENT * math.pi * self.diameter_mm / math.sqrt(area)
        )
        if cpw <= 0.0:
            raise DomainError(
                f"die area {area:g} mm^2 exceeds the de Vries formula's validity "
                f"for a {self.diameter_mm:g} mm wafer (predicted CPW {cpw:g})"
            )
        return cpw

    def max_practical_die_area_mm2(self) -> float:
        """Largest die area (mm^2) for which the formula stays positive.

        Solves ``gross_dies(A) = 0``: the quadratic in ``sqrt(A)`` gives
        ``sqrt(A) = d / (4 * 0.58)``.
        """
        sqrt_area = self.diameter_mm / (4.0 * DE_VRIES_EDGE_COEFFICIENT)
        return sqrt_area**2


#: The mainstream production wafer (the paper's default).
WAFER_300MM = Wafer(diameter_mm=300.0)

#: Legacy wafer size, still used for mature nodes.
WAFER_200MM = Wafer(diameter_mm=200.0)

#: The (never commercialized) next step, for what-if analyses.
WAFER_450MM = Wafer(diameter_mm=450.0)


def chips_per_wafer(die_area_mm2: float, wafer: Wafer = WAFER_300MM) -> float:
    """Convenience wrapper: gross chips per wafer for a 300 mm wafer."""
    return wafer.gross_dies(die_area_mm2)
