"""Die-yield models (paper §3.1, Figure 1).

The larger the die, the larger the probability that a manufacturing
defect lands on it and the lower the yield. The paper contrasts a
*perfect yield* model (every die is good — the limit industry
approaches by selling partially defective chips as lower-bin products)
with the *Murphy* model at a defect density of 0.09 defects/cm^2
(achievable in volume production per TSMC's N5 disclosure).

All models expose ``die_yield(area_mm2) -> fraction in (0, 1]`` and are
parameterized by a defect density in defects/cm^2 (the industry's
customary unit; areas are mm^2 throughout the library, the conversion
happens here).

Implemented models (Leachman, *Yield Modeling and Analysis*, 2014):

* perfect:     ``Y = 1``
* Poisson:     ``Y = exp(-A D)``
* Murphy:      ``Y = ((1 - exp(-A D)) / (A D))^2``
* Seeds:       ``Y = 1 / (1 + A D)``
* Bose-Einstein (n critical layers): ``Y = 1 / (1 + A D)^n``
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from ..core.errors import ValidationError
from ..core.quantities import ensure_int_at_least, ensure_non_negative, ensure_positive

__all__ = [
    "YieldModel",
    "PerfectYield",
    "PoissonYield",
    "MurphyYield",
    "SeedsYield",
    "BoseEinsteinYield",
    "TSMC_VOLUME_DEFECT_DENSITY",
]

#: Defect density (defects/cm^2) the paper cites as achievable in volume
#: production (TSMC N5).
TSMC_VOLUME_DEFECT_DENSITY = 0.09

_MM2_PER_CM2 = 100.0


def _defects_per_die(area_mm2: float, density_per_cm2: float) -> float:
    """Expected defect count on a die: ``A * D`` in consistent units."""
    area = ensure_positive(area_mm2, "area_mm2")
    return area / _MM2_PER_CM2 * density_per_cm2


@runtime_checkable
class YieldModel(Protocol):
    """Anything that maps a die area to a yield fraction."""

    name: str

    def die_yield(self, area_mm2: float) -> float:
        """Fraction of good dies for the given die area, in (0, 1]."""
        ...


@dataclass(frozen=True, slots=True)
class PerfectYield:
    """All dies are good.

    The paper motivates this as the profit-maximizing limit: industry
    bins partially defective large chips into lower-performance
    products, approaching perfect *effective* yield.
    """

    name: str = "perfect"

    def die_yield(self, area_mm2: float) -> float:
        ensure_positive(area_mm2, "area_mm2")
        return 1.0


@dataclass(frozen=True, slots=True)
class PoissonYield:
    """Poisson model: defects land independently, any defect kills."""

    defect_density_per_cm2: float = TSMC_VOLUME_DEFECT_DENSITY
    name: str = "poisson"

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "defect_density_per_cm2",
            ensure_non_negative(self.defect_density_per_cm2, "defect_density_per_cm2"),
        )

    def die_yield(self, area_mm2: float) -> float:
        return math.exp(-_defects_per_die(area_mm2, self.defect_density_per_cm2))


@dataclass(frozen=True, slots=True)
class MurphyYield:
    """Murphy's model: defect density varies across the wafer
    (triangular distribution), giving

        Y = ((1 - exp(-A D)) / (A D))^2

    — the model the paper uses for Figure 1. Tends to 1 as ``A D -> 0``
    (handled analytically to avoid 0/0).
    """

    defect_density_per_cm2: float = TSMC_VOLUME_DEFECT_DENSITY
    name: str = "murphy"

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "defect_density_per_cm2",
            ensure_non_negative(self.defect_density_per_cm2, "defect_density_per_cm2"),
        )

    def die_yield(self, area_mm2: float) -> float:
        ad = _defects_per_die(area_mm2, self.defect_density_per_cm2)
        if ad < 1e-12:
            return 1.0
        # -expm1(-x) = 1 - exp(-x), computed without the catastrophic
        # cancellation the naive form suffers for small x.
        return (-math.expm1(-ad) / ad) ** 2


@dataclass(frozen=True, slots=True)
class SeedsYield:
    """Seeds' model: exponentially distributed defect density,
    ``Y = 1 / (1 + A D)``. More pessimistic than Murphy for large dies."""

    defect_density_per_cm2: float = TSMC_VOLUME_DEFECT_DENSITY
    name: str = "seeds"

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "defect_density_per_cm2",
            ensure_non_negative(self.defect_density_per_cm2, "defect_density_per_cm2"),
        )

    def die_yield(self, area_mm2: float) -> float:
        return 1.0 / (1.0 + _defects_per_die(area_mm2, self.defect_density_per_cm2))


@dataclass(frozen=True, slots=True)
class BoseEinsteinYield:
    """Bose-Einstein model: ``Y = (1 + A D)^-n`` for *n* critical
    process layers. Reduces to Seeds for ``n = 1``; widely used for
    advanced multi-layer nodes."""

    defect_density_per_cm2: float = TSMC_VOLUME_DEFECT_DENSITY
    critical_layers: int = 10
    name: str = "bose-einstein"

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "defect_density_per_cm2",
            ensure_non_negative(self.defect_density_per_cm2, "defect_density_per_cm2"),
        )
        object.__setattr__(
            self,
            "critical_layers",
            ensure_int_at_least(self.critical_layers, 1, "critical_layers"),
        )
        if self.critical_layers > 1000:
            raise ValidationError(
                f"critical_layers={self.critical_layers} is implausibly large"
            )

    def die_yield(self, area_mm2: float) -> float:
        ad = _defects_per_die(area_mm2, self.defect_density_per_cm2)
        # Per-layer defect density: split D evenly across layers so the
        # model is comparable to the single-layer models at small A*D.
        per_layer = ad / self.critical_layers
        return (1.0 + per_layer) ** (-self.critical_layers)
