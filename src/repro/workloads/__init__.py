"""Workload profiles and the mechanism advisor: the paper's §5
catalogue applied to concrete software classes."""

from .advisor import ADVISOR_BCES, Recommendation, advise
from .profiles import WORKLOAD_ROSTER, WorkloadProfile, workload_by_name

__all__ = [
    "WorkloadProfile",
    "WORKLOAD_ROSTER",
    "workload_by_name",
    "Recommendation",
    "advise",
    "ADVISOR_BCES",
]
