"""The mechanism advisor: FOCAL's §5 catalogue applied to a workload.

Given a workload profile and a device regime (embodied- or
operational-dominated), evaluates every archetypal mechanism the paper
studies on *that* workload and ranks them — the "insight and guidance
for computer architects" the paper positions FOCAL to provide, packaged
as an API.

Each recommendation is a concrete design-pair comparison:

* symmetric multicore (16 BCEs at the workload's f) vs the equal-area
  big core;
* asymmetric multicore vs the equal-area symmetric one;
* the H.264-class accelerator at the workload's accelerator
  utilization vs the bare core;
* FSC vs OoO;
* doubling the LLC on the workload's memory intensity;
* pipeline gating, runahead (PRE), DVFS down-scaling, turbo boost.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..accel.accelerator import HAMEED_H264, AcceleratedSystem
from ..amdahl.asymmetric import AsymmetricMulticore
from ..amdahl.pollack import big_core_design
from ..amdahl.symmetric import SymmetricMulticore
from ..cache.hierarchy import CachedProcessor, MemoryBoundWorkload
from ..core.classify import Sustainability, Verdict, classify
from ..core.design import DesignPoint
from ..core.scenario import E2OWeight
from ..dvfs.operating_point import DVFSConfig, scale_design
from ..dvfs.turboboost import TurboBoost, boosted_design
from ..gating.pipeline_gating import gated_design
from ..microarch.cores import FSC_CORE, OOO_CORE
from ..speculation.runahead import runahead_design
from .profiles import WorkloadProfile

__all__ = ["Recommendation", "advise"]

#: Chip size used for the multicore comparisons, in BCEs.
ADVISOR_BCES = 16

_CATEGORY_ORDER = {
    Sustainability.STRONG: 0,
    Sustainability.NEUTRAL: 1,
    Sustainability.WEAK: 2,
    Sustainability.LESS: 3,
}


@dataclass(frozen=True, slots=True)
class Recommendation:
    """One mechanism's verdict on the given workload."""

    mechanism: str
    verdict: Verdict
    perf_ratio: float
    rationale: str

    @property
    def category(self) -> Sustainability:
        return self.verdict.category

    def sort_key(self) -> tuple[int, float]:
        """Strong first; within a category, lowest fixed-work NCF."""
        return (_CATEGORY_ORDER[self.category], self.verdict.ncf_fixed_work)


def _recommend(
    mechanism: str,
    design: DesignPoint,
    baseline: DesignPoint,
    alpha: float,
    rationale: str,
) -> Recommendation:
    return Recommendation(
        mechanism=mechanism,
        verdict=classify(design, baseline, alpha),
        perf_ratio=design.perf_ratio(baseline),
        rationale=rationale,
    )


def advise(workload: WorkloadProfile, regime: E2OWeight) -> list[Recommendation]:
    """Evaluate the paper's mechanism catalogue on *workload*.

    Returns recommendations sorted most-sustainable-first. The list
    always contains the same mechanisms; what changes with the workload
    is each mechanism's verdict and magnitude.
    """
    alpha = regime.alpha
    f = workload.parallel_fraction
    recs: list[Recommendation] = []

    multicore = SymmetricMulticore(ADVISOR_BCES, f).design_point()
    big_core = big_core_design(ADVISOR_BCES)
    recs.append(
        _recommend(
            "multicore (vs equal-area big core)",
            multicore,
            big_core,
            alpha,
            f"{ADVISOR_BCES} one-BCE cores at f={f:g} vs one "
            f"{ADVISOR_BCES}-BCE Pollack core",
        )
    )

    asym = AsymmetricMulticore(ADVISOR_BCES, 4, f).design_point()
    recs.append(
        _recommend(
            "heterogeneity (vs symmetric multicore)",
            asym,
            multicore,
            alpha,
            f"one 4-BCE big core + {ADVISOR_BCES - 4} small at f={f:g}",
        )
    )

    accel = AcceleratedSystem(
        HAMEED_H264, workload.accelerator_utilization
    ).design_point()
    recs.append(
        _recommend(
            "fixed-function accelerator",
            accel,
            DesignPoint.baseline("host core"),
            alpha,
            f"H.264-class accelerator at {workload.accelerator_utilization:.0%} "
            "utilization",
        )
    )

    recs.append(
        _recommend(
            "low-complexity core (FSC vs OoO)",
            FSC_CORE,
            OOO_CORE,
            alpha,
            "forward-slice core instead of full out-of-order",
        )
    )

    llc_base = CachedProcessor(
        llc_size_mb=1.0,
        workload=MemoryBoundWorkload(
            memory_time_share=workload.memory_time_share,
            memory_energy_share=workload.memory_time_share,
        ),
    )
    doubled = replace(llc_base, llc_size_mb=2.0)
    recs.append(
        _recommend(
            "double the LLC",
            doubled.design_point(),
            llc_base.design_point(),
            alpha,
            f"1 MB -> 2 MB at {workload.memory_time_share:.0%} memory intensity",
        )
    )

    recs.append(
        _recommend(
            "pipeline gating",
            gated_design(),
            DesignPoint.baseline("ungated"),
            alpha,
            "confidence-gated fetch (Manne et al.)",
        )
    )
    recs.append(
        _recommend(
            "runahead execution (PRE)",
            runahead_design(),
            DesignPoint.baseline("OoO"),
            alpha,
            "precise runahead on long-latency loads",
        )
    )
    recs.append(
        _recommend(
            "DVFS down-scaling",
            scale_design(DesignPoint.baseline(), 0.8, DVFSConfig()),
            DesignPoint.baseline("nominal"),
            alpha,
            "run 20 % below nominal V/f",
        )
    )
    recs.append(
        _recommend(
            "turbo boost",
            boosted_design(DesignPoint.baseline(), TurboBoost()),
            DesignPoint.baseline("nominal"),
            alpha,
            "opportunistic 1.2x V/f boost",
        )
    )

    recs.sort(key=Recommendation.sort_key)
    return recs
