"""Workload profiles: the software side of FOCAL's findings.

Several of the paper's findings are statements about *software*:
parallelize rather than add cores (#3), heterogeneity only pays when
parallelism is modest (#5), accelerators only pay when hot (#6). This
module gives those statements a home: a :class:`WorkloadProfile`
captures the workload characteristics the §5 models consume, and a
roster of literature-based profiles covers the classes the paper cites
(desktop TLP from Blake et al., mobile TLP from Gao et al., and the
memory-intensive §5.5 workload).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import ValidationError
from ..core.quantities import ensure_fraction

__all__ = ["WorkloadProfile", "WORKLOAD_ROSTER", "workload_by_name"]


@dataclass(frozen=True, slots=True)
class WorkloadProfile:
    """First-order workload characteristics.

    Parameters
    ----------
    name:
        Label.
    parallel_fraction:
        Amdahl ``f``: fraction of serial execution that parallelizes.
    memory_time_share:
        Fraction of execution time stalled on memory (cache study).
    accelerator_utilization:
        Fraction of time the workload can spend on a matching
        fixed-function accelerator.
    description:
        One-line provenance note.
    """

    name: str
    parallel_fraction: float
    memory_time_share: float = 0.3
    accelerator_utilization: float = 0.0
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("WorkloadProfile.name must be non-empty")
        for field_name in (
            "parallel_fraction",
            "memory_time_share",
            "accelerator_utilization",
        ):
            object.__setattr__(
                self, field_name, ensure_fraction(getattr(self, field_name), field_name)
            )

    @property
    def is_highly_parallel(self) -> bool:
        """The paper's f > 0.8 threshold where heterogeneity stops
        being the sustainable way to buy performance (Finding #5)."""
        return self.parallel_fraction > 0.8


#: Literature-anchored workload classes.
WORKLOAD_ROSTER: tuple[WorkloadProfile, ...] = (
    WorkloadProfile(
        name="desktop",
        parallel_fraction=0.6,
        memory_time_share=0.3,
        accelerator_utilization=0.05,
        description="limited TLP in desktop applications (Blake et al., ISCA'10)",
    ),
    WorkloadProfile(
        name="mobile",
        parallel_fraction=0.7,
        memory_time_share=0.35,
        accelerator_utilization=0.3,
        description="modest TLP, heavy media acceleration (Gao et al., ISPASS'14)",
    ),
    WorkloadProfile(
        name="hpc-strong-scaling",
        parallel_fraction=0.95,
        memory_time_share=0.4,
        accelerator_utilization=0.0,
        description="highly parallel, fixed-work scenario archetype",
    ),
    WorkloadProfile(
        name="datacenter",
        parallel_fraction=0.85,
        memory_time_share=0.5,
        accelerator_utilization=0.15,
        description="abundant request parallelism, fixed-time archetype",
    ),
    WorkloadProfile(
        name="memory-intensive",
        parallel_fraction=0.75,
        memory_time_share=0.8,
        accelerator_utilization=0.0,
        description="the paper's §5.5 cache-study workload",
    ),
)

_BY_NAME = {w.name: w for w in WORKLOAD_ROSTER}


def workload_by_name(name: str) -> WorkloadProfile:
    """Look up a roster workload (e.g. ``"mobile"``)."""
    try:
        return _BY_NAME[name]
    except KeyError:
        known = ", ".join(sorted(_BY_NAME))
        raise ValidationError(f"unknown workload {name!r}; known: {known}") from None
