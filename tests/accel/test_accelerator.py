"""Unit tests for the hardware-acceleration model (paper §5.3)."""

from __future__ import annotations

import pytest

from repro.accel.accelerator import (
    HAMEED_H264,
    AcceleratedSystem,
    Accelerator,
    breakeven_utilization,
)
from repro.core.errors import ValidationError
from repro.core.scenario import UseScenario

FW = UseScenario.FIXED_WORK
FT = UseScenario.FIXED_TIME


class TestAccelerator:
    def test_paper_example_parameters(self):
        assert HAMEED_H264.area_overhead == 0.065
        assert HAMEED_H264.energy_advantage == 500.0
        assert HAMEED_H264.speedup == 1.0

    def test_energy_per_work(self):
        assert HAMEED_H264.energy_per_work == pytest.approx(1 / 500)

    def test_active_power(self):
        acc = Accelerator(area_overhead=0.1, energy_advantage=10.0, speedup=2.0)
        assert acc.active_power == pytest.approx(2.0 / 10.0)

    def test_rejects_negative_area(self):
        with pytest.raises(ValidationError):
            Accelerator(area_overhead=-0.1, energy_advantage=10.0)

    def test_rejects_zero_advantage(self):
        with pytest.raises(ValidationError):
            Accelerator(area_overhead=0.1, energy_advantage=0.0)


class TestAcceleratedSystem:
    def test_unused_accelerator_costs_only_area(self):
        system = AcceleratedSystem(HAMEED_H264, 0.0)
        assert system.area == pytest.approx(1.065)
        assert system.perf == 1.0
        assert system.power == 1.0

    def test_paper_energy_model(self):
        """E(t) = (1 - t) + t/500 for the paper's configuration."""
        for t in (0.1, 0.5, 0.9):
            system = AcceleratedSystem(HAMEED_H264, t)
            assert system.energy == pytest.approx((1 - t) + t / 500)

    def test_performance_unchanged_when_speedup_one(self):
        assert AcceleratedSystem(HAMEED_H264, 0.7).perf == pytest.approx(1.0)

    def test_fixed_work_equals_fixed_time_when_speedup_one(self):
        system = AcceleratedSystem(HAMEED_H264, 0.4)
        assert system.ncf(0.3, FW) == pytest.approx(system.ncf(0.3, FT))

    def test_speedup_raises_performance(self):
        acc = Accelerator(area_overhead=0.1, energy_advantage=10.0, speedup=4.0)
        system = AcceleratedSystem(acc, 0.5)
        assert system.perf == pytest.approx(0.5 + 0.5 * 4.0)

    def test_idle_leakage_charged_when_unused(self):
        acc = Accelerator(area_overhead=0.1, energy_advantage=10.0, idle_leakage=0.05)
        system = AcceleratedSystem(acc, 0.0)
        assert system.power == pytest.approx(1.05)

    def test_host_idle_leakage_charged_while_accelerating(self):
        acc = Accelerator(
            area_overhead=0.1, energy_advantage=10.0, host_idle_leakage=0.1
        )
        system = AcceleratedSystem(acc, 1.0)
        assert system.power == pytest.approx(0.1 + 0.1)  # host leak + accel

    def test_ncf_monotone_decreasing_in_utilization(self):
        values = [
            AcceleratedSystem(HAMEED_H264, t).ncf(0.8, FW)
            for t in (0.0, 0.25, 0.5, 0.75, 1.0)
        ]
        assert values == sorted(values, reverse=True)

    def test_rejects_utilization_above_one(self):
        with pytest.raises(ValidationError):
            AcceleratedSystem(HAMEED_H264, 1.5)


class TestBreakeven:
    def test_paper_embodied_dominated_value(self):
        """alpha = 0.8: analytic t* = 0.8*0.065 / (0.2*(1-1/500)) = 0.2605."""
        t = breakeven_utilization(HAMEED_H264, 0.8, FW)
        assert t == pytest.approx(0.2605, abs=1e-3)

    def test_operational_dominated_breaks_even_early(self):
        t = breakeven_utilization(HAMEED_H264, 0.2, FW)
        assert t is not None and t < 0.02

    def test_zero_area_accelerator_breaks_even_immediately(self):
        acc = Accelerator(area_overhead=0.0, energy_advantage=2.0)
        assert breakeven_utilization(acc, 0.8, FW) == 0.0

    def test_unamortizable_returns_none(self):
        """Huge area, tiny advantage: never pays off."""
        acc = Accelerator(area_overhead=10.0, energy_advantage=1.01)
        assert breakeven_utilization(acc, 0.8, FW) is None

    def test_breakeven_ncf_is_one(self):
        t = breakeven_utilization(HAMEED_H264, 0.8, FW)
        assert AcceleratedSystem(HAMEED_H264, t).ncf(0.8, FW) == pytest.approx(
            1.0, abs=1e-6
        )
