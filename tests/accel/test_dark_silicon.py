"""Unit tests for the dark-silicon model (paper §5.4, Finding #7)."""

from __future__ import annotations

import pytest

from repro.accel.dark_silicon import PAPER_DARK_SILICON, DarkSiliconSoC
from repro.core.errors import ValidationError
from repro.core.scenario import UseScenario

FW = UseScenario.FIXED_WORK


class TestAreaAccounting:
    def test_two_thirds_means_200_percent_overhead(self):
        assert PAPER_DARK_SILICON.area_overhead == pytest.approx(2.0)

    def test_half_chip_means_100_percent(self):
        assert DarkSiliconSoC(accelerator_area_share=0.5).area_overhead == (
            pytest.approx(1.0)
        )

    def test_full_chip_share_rejected(self):
        with pytest.raises(ValidationError):
            DarkSiliconSoC(accelerator_area_share=1.0)

    def test_as_accelerator_inherits_parameters(self):
        acc = PAPER_DARK_SILICON.as_accelerator()
        assert acc.area_overhead == pytest.approx(2.0)
        assert acc.energy_advantage == 500.0


class TestNCF:
    def test_finding7_embodied_multiplier_at_zero_use(self):
        """Unused dark silicon, embodied-dominated: ~2.6x footprint."""
        assert PAPER_DARK_SILICON.ncf(0.0, 0.8) == pytest.approx(2.6)

    def test_full_use_still_above_one_when_embodied_dominates(self):
        """Even 100 % utilization cannot amortize 200 % extra area at
        alpha = 0.8."""
        assert PAPER_DARK_SILICON.ncf(1.0, 0.8) > 1.0

    def test_ncf_decreases_with_utilization(self):
        values = [PAPER_DARK_SILICON.ncf(t, 0.2) for t in (0.0, 0.5, 1.0)]
        assert values == sorted(values, reverse=True)


class TestBreakeven:
    def test_finding7_operational_breakeven_is_half(self):
        """Exact boundary is 0.5/0.998 = 0.501 (paper rounds to 50 %)."""
        assert PAPER_DARK_SILICON.breakeven(0.2) == pytest.approx(0.5 / 0.998, abs=1e-4)

    def test_embodied_breakeven_unreachable(self):
        assert PAPER_DARK_SILICON.breakeven(0.8) is None

    def test_feasibility_against_power_budget(self):
        """The break-even equals the concurrency cap: 'might not be
        feasible, simply because it is dark silicon'. Our model flags
        anything above the cap as infeasible; at exactly the cap the
        strict reading keeps it feasible only within tolerance — check
        both sides explicitly."""
        generous = DarkSiliconSoC(max_concurrent_utilization=0.6)
        assert generous.breakeven_feasible(0.2)
        tight = DarkSiliconSoC(max_concurrent_utilization=0.3)
        assert not tight.breakeven_feasible(0.3)

    def test_infeasible_when_breakeven_is_none(self):
        assert not PAPER_DARK_SILICON.breakeven_feasible(0.8)
