"""Unit tests for SoC composition and the reconfigurable-fabric
comparison."""

from __future__ import annotations

import pytest

from repro.accel.accelerator import Accelerator, AcceleratedSystem
from repro.accel.soc import SoC, reconfigurable_equivalent
from repro.core.errors import ValidationError
from repro.core.scenario import UseScenario

FW = UseScenario.FIXED_WORK


def make_acc(area: float, advantage: float = 100.0, speedup: float = 1.0) -> Accelerator:
    return Accelerator(area_overhead=area, energy_advantage=advantage, speedup=speedup)


class TestSoC:
    def test_empty_soc_is_the_bare_core(self):
        soc = SoC()
        assert soc.area == 1.0
        assert soc.perf == 1.0
        assert soc.power == 1.0
        assert soc.ncf(0.5) == pytest.approx(1.0)

    def test_single_accelerator_matches_accelerated_system(self):
        acc = make_acc(0.065, 500.0)
        soc = SoC.build([(acc, 0.5)])
        reference = AcceleratedSystem(acc, 0.5)
        assert soc.area == pytest.approx(reference.area)
        assert soc.perf == pytest.approx(reference.perf)
        assert soc.power == pytest.approx(reference.power)

    def test_utilizations_must_fit_unit_time(self):
        acc = make_acc(0.1)
        with pytest.raises(ValidationError, match="sum"):
            SoC.build([(acc, 0.6), (acc, 0.6)])

    def test_area_adds_across_accelerators(self):
        soc = SoC.build([(make_acc(0.1), 0.2), (make_acc(0.3), 0.2)])
        assert soc.area == pytest.approx(1.4)

    def test_core_time_is_remainder(self):
        soc = SoC.build([(make_acc(0.1), 0.25), (make_acc(0.1), 0.25)])
        assert soc.core_time == pytest.approx(0.5)

    def test_speedup_accumulates_work(self):
        soc = SoC.build([(make_acc(0.1, speedup=3.0), 0.5)])
        assert soc.perf == pytest.approx(0.5 + 1.5)

    def test_idle_leakage_of_unused_blocks_counted(self):
        leaky = Accelerator(area_overhead=0.1, energy_advantage=10.0, idle_leakage=0.2)
        soc = SoC.build([(leaky, 0.0)])
        assert soc.power == pytest.approx(1.0 + 0.2)


class TestReconfigurable:
    def test_area_is_largest_accelerator(self):
        soc = SoC.build([(make_acc(0.3), 0.2), (make_acc(0.5), 0.2), (make_acc(0.1), 0.2)])
        fabric = reconfigurable_equivalent(soc)
        assert fabric.area == pytest.approx(1.5)

    def test_area_premium_applies(self):
        soc = SoC.build([(make_acc(0.4), 0.3)])
        fabric = reconfigurable_equivalent(soc, area_premium=1.5)
        assert fabric.area == pytest.approx(1.0 + 0.6)

    def test_energy_profile_preserved(self):
        soc = SoC.build([(make_acc(0.3, 100.0), 0.4), (make_acc(0.2, 50.0), 0.3)])
        fabric = reconfigurable_equivalent(soc)
        assert fabric.power == pytest.approx(soc.power)
        assert fabric.perf == pytest.approx(soc.perf)

    def test_fabric_more_sustainable_than_estate(self):
        """The §5.4 discussion point: one reused block beats many
        fixed-function blocks on embodied footprint."""
        soc = SoC.build(
            [(make_acc(0.3), 0.2), (make_acc(0.3), 0.2), (make_acc(0.3), 0.2)]
        )
        fabric = reconfigurable_equivalent(soc)
        assert fabric.ncf(0.8) < soc.ncf(0.8)

    def test_requires_accelerators(self):
        with pytest.raises(ValidationError):
            reconfigurable_equivalent(SoC())

    def test_custom_name(self):
        soc = SoC.build([(make_acc(0.3), 0.2)], name="video SoC")
        assert "reconfigurable" in reconfigurable_equivalent(soc).name
