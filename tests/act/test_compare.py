"""Unit tests for the FOCAL-vs-ACT agreement harness (paper §3.5)."""

from __future__ import annotations

import pytest

from repro.act.compare import compare_focal_vs_act, focal_design_from_spec
from repro.act.model import ActChipSpec, ActModel
from repro.wafer.yield_models import PerfectYield


def spec(name: str, area: float, power: float, node: str = "7nm") -> ActChipSpec:
    return ActChipSpec(name, die_area_mm2=area, avg_power_w=power, node=node)


class TestAgreement:
    def test_identical_chips_agree_at_one(self):
        report = compare_focal_vs_act(spec("a", 300, 50), spec("b", 300, 50))
        assert report.act_ratio == pytest.approx(1.0)
        assert report.focal_ncf == pytest.approx(1.0)
        assert report.agree

    def test_smaller_cooler_chip_agrees_below_one(self):
        report = compare_focal_vs_act(spec("small", 200, 40), spec("big", 400, 80))
        assert report.act_ratio < 1.0
        assert report.focal_ncf < 1.0
        assert report.agree

    def test_exact_match_under_perfect_yield_same_node(self):
        """With yield independent of area (perfect) and no packaging,
        ACT's embodied is proportional to area and its use phase to
        power — FOCAL at the ACT-derived alpha is then *exactly* ACT."""
        model = ActModel(yield_model=PerfectYield(), packaging_kg=0.0)
        report = compare_focal_vs_act(spec("x", 250, 30), spec("y", 400, 90), model)
        assert report.focal_ncf == pytest.approx(report.act_ratio, rel=1e-12)
        assert report.relative_gap < 1e-12

    def test_yield_creates_the_gap(self):
        """Murphy yield makes embodied super-linear in area: FOCAL's
        linear area proxy then deviates — the 'non-negligible gap' the
        paper discusses, here attributable to a single cause."""
        report = compare_focal_vs_act(spec("x", 100, 30), spec("y", 700, 30))
        assert report.relative_gap > 0.0
        # Direction still agrees: both call the small chip better.
        assert report.agree

    def test_effective_alpha_matches_baseline_split(self):
        model = ActModel()
        baseline = spec("base", 400, 80)
        report = compare_focal_vs_act(spec("x", 300, 60), baseline, model)
        assert report.effective_alpha == pytest.approx(
            model.footprint(baseline).embodied_share
        )

    def test_cross_node_comparison_directionally_sane(self):
        """Die shrink in ACT terms: half the area on the next node with
        the same power must not increase the ACT total (the Finding #17
        direction)."""
        old = spec("old", 400, 80, node="7nm")
        new = spec("new", 200, 80, node="5nm")
        report = compare_focal_vs_act(new, old)
        assert report.act_ratio < 1.0


class TestHelpers:
    def test_focal_design_from_spec(self):
        d = focal_design_from_spec(spec("x", 123, 45), perf=2.0)
        assert d.area == 123
        assert d.power == 45
        assert d.perf == 2.0
