"""Unit tests for the simplified ACT-style bottom-up model."""

from __future__ import annotations

import pytest

from repro.act.model import ActChipSpec, ActModel
from repro.act.params import (
    ACT_NODE_PARAMS,
    COAL_HEAVY_GRID,
    RENEWABLE_GRID,
    WORLD_AVERAGE_GRID,
)
from repro.core.errors import ValidationError
from repro.wafer.yield_models import PerfectYield


@pytest.fixture
def model() -> ActModel:
    return ActModel()


@pytest.fixture
def chip() -> ActChipSpec:
    return ActChipSpec("server CPU", die_area_mm2=400.0, avg_power_w=100.0, node="7nm")


class TestSpec:
    def test_default_lifetime_three_years(self, chip):
        assert chip.lifetime_hours == pytest.approx(3 * 365 * 24)

    def test_unknown_node_rejected(self):
        with pytest.raises(ValidationError, match="unknown node"):
            ActChipSpec("x", die_area_mm2=100.0, avg_power_w=10.0, node="6nm")

    def test_zero_power_allowed(self):
        """An always-off chip has a purely embodied footprint."""
        spec = ActChipSpec("x", die_area_mm2=100.0, avg_power_w=0.0)
        assert ActModel().operational_kg(spec) == 0.0

    def test_rejects_bad_area(self):
        with pytest.raises(ValidationError):
            ActChipSpec("x", die_area_mm2=-1.0, avg_power_w=10.0)


class TestEmbodied:
    def test_closed_form_with_perfect_yield(self, chip):
        model = ActModel(yield_model=PerfectYield(), packaging_kg=0.0)
        params = ACT_NODE_PARAMS["7nm"]
        per_cm2 = (
            WORLD_AVERAGE_GRID.kg_per_kwh * params.energy_per_area_kwh
            + params.gas_per_area_kg
            + params.material_per_area_kg
        )
        assert model.embodied_kg(chip) == pytest.approx(per_cm2 * 4.0)

    def test_yield_inflates_embodied(self, chip, model):
        perfect = ActModel(yield_model=PerfectYield())
        assert model.embodied_kg(chip) > perfect.embodied_kg(chip)

    def test_packaging_added_flat(self, chip):
        base = ActModel(packaging_kg=0.0)
        packaged = ActModel(packaging_kg=0.5)
        assert packaged.embodied_kg(chip) == pytest.approx(
            base.embodied_kg(chip) + 0.5
        )

    def test_newer_node_higher_embodied_per_area(self, chip):
        """The Imec trend is baked into the node table."""
        older = ActChipSpec("x", die_area_mm2=400.0, avg_power_w=100.0, node="28nm")
        newer = ActChipSpec("x", die_area_mm2=400.0, avg_power_w=100.0, node="3nm")
        assert ActModel().embodied_kg(newer) > ActModel().embodied_kg(older)

    def test_bigger_die_more_embodied(self, model):
        small = ActChipSpec("s", die_area_mm2=100.0, avg_power_w=10.0)
        big = ActChipSpec("b", die_area_mm2=600.0, avg_power_w=10.0)
        assert model.embodied_kg(big) > 6 * model.embodied_kg(small) * 0.9


class TestOperational:
    def test_closed_form(self, chip, model):
        expected = WORLD_AVERAGE_GRID.kg_per_kwh * 100.0 * chip.lifetime_hours / 1000.0
        assert model.operational_kg(chip) == pytest.approx(expected)

    def test_renewable_grid_slashes_use_phase(self, chip):
        dirty = ActModel(use_grid=COAL_HEAVY_GRID)
        clean = ActModel(use_grid=RENEWABLE_GRID)
        assert clean.operational_kg(chip) < 0.1 * dirty.operational_kg(chip)


class TestFootprint:
    def test_total_is_sum(self, chip, model):
        fp = model.footprint(chip)
        assert fp.total_kg == pytest.approx(fp.embodied_kg + fp.operational_kg)

    def test_embodied_share_in_unit_interval(self, chip, model):
        share = model.footprint(chip).embodied_share
        assert 0.0 < share < 1.0

    def test_mobile_like_chip_is_embodied_dominated(self, model):
        """Low average power (heavy idle): embodied dominates — the
        Gupta et al. observation FOCAL's alpha=0.8 regime encodes."""
        phone = ActChipSpec("phone SoC", die_area_mm2=120.0, avg_power_w=0.2, node="5nm")
        assert model.footprint(phone).embodied_share > 0.5

    def test_always_on_server_is_operational_dominated(self, model):
        server = ActChipSpec("server", die_area_mm2=400.0, avg_power_w=200.0, node="7nm")
        assert model.footprint(server).embodied_share < 0.5
